//! Live-socket tests: a real server on a loopback OS-assigned port, real
//! clients, full protocol round trips — hostile input, admission control
//! under a pipelined burst, and the graceful drain.

use std::io::Write;
use std::time::Duration;

use pd_serve::prelude::*;
use serde_json::{json, Value};

/// Binds on port 0, runs the server on a background thread, and returns
/// (handle, join). The join yields the drain-time [`ServerStats`].
fn start(cfg: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<ServerStats>) {
    let server = Server::bind(cfg).expect("bind loopback port 0");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (handle, join)
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect_retry(handle.local_addr(), Duration::from_secs(5)).expect("connect")
}

/// A cheap spec the worker finishes in milliseconds.
fn tiny_spec() -> WireSpec {
    serde_json::from_value(json!({
        "family": "fat-tree",
        "servers": 16,
        "yield_trials": 2,
        "repair_trials": 1,
    }))
    .expect("tiny spec")
}

/// A spec heavy enough to hold a single worker busy while a burst lands.
fn heavy_spec() -> WireSpec {
    serde_json::from_value(json!({
        "family": "jellyfish",
        "servers": 256,
        "fault_scenarios": 20,
        "yield_trials": 50,
        "repair_trials": 10,
    }))
    .expect("heavy spec")
}

fn shutdown_and_join(
    handle: &ServerHandle,
    join: std::thread::JoinHandle<ServerStats>,
) -> ServerStats {
    handle.shutdown();
    join.join().expect("server thread")
}

#[test]
fn evaluate_status_and_shutdown_round_trip() {
    let (handle, join) = start(ServerConfig {
        jobs: 2,
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);

    let resp = client
        .request(&Request::evaluate(json!("r1"), tiny_spec()))
        .expect("evaluate round trip");
    assert!(resp.ok, "tiny spec evaluates: {:?}", resp.error);
    assert_eq!(resp.id, json!("r1"));
    let report = resp.report.expect("report payload");
    assert_eq!(report.servers, 16);

    let resp = client
        .request(&Request::bare(json!("r2"), Op::Status))
        .expect("status round trip");
    let status = resp.status.expect("status payload");
    assert!(status.requests >= 2);
    assert_eq!(status.completed, 1);
    assert!(!status.draining);

    let resp = client
        .request(&Request::bare(json!("r3"), Op::Shutdown))
        .expect("shutdown acknowledged");
    assert!(resp.ok);
    assert_eq!(resp.draining, Some(true));

    let stats = join.join().expect("server thread");
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn malformed_and_oversized_lines_leave_the_connection_usable() {
    let (handle, join) = start(ServerConfig {
        jobs: 1,
        max_line_bytes: 256,
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);

    // Not JSON at all: typed bad_request, null id.
    client.send_line("this is not json").expect("send garbage");
    let resp = client.recv().expect("io").expect("a response is owed");
    assert!(resp.error_is(ERR_BAD_REQUEST), "{:?}", resp.error);
    assert_eq!(resp.id, Value::Null);

    // Parseable JSON with a salvageable id but an unknown op.
    client
        .send_line(r#"{"id":"bad-op","op":"frobnicate"}"#)
        .expect("send bad op");
    let resp = client.recv().expect("io").expect("response");
    assert!(resp.error_is(ERR_BAD_REQUEST));
    assert_eq!(resp.id, json!("bad-op"), "id salvaged from the bad line");

    // A payload field that does not fit the op.
    client
        .send_line(r#"{"id":"mix","op":"status","budget":4}"#)
        .expect("send misuse");
    let resp = client.recv().expect("io").expect("response");
    assert!(resp.error_is(ERR_BAD_REQUEST));
    assert!(resp.error.as_deref().unwrap().contains("budget"));

    // An oversized line: discarded to its newline, typed rejection.
    let huge = format!(r#"{{"op":"evaluate","spec":{{"family":"{}"#, "x".repeat(4096));
    client.send_line(&huge).expect("send oversized");
    let resp = client.recv().expect("io").expect("response");
    assert!(resp.error_is(ERR_BAD_REQUEST));
    assert!(resp.error.as_deref().unwrap().contains("exceeds"));

    // Blank lines are skipped without a response; the next real request
    // still gets exactly one answer — the connection survived it all.
    client.send_line("").expect("send blank");
    let resp = client
        .request(&Request::evaluate(json!("after"), tiny_spec()))
        .expect("evaluate after hostile input");
    assert!(resp.ok, "{:?}", resp.error);
    assert_eq!(resp.id, json!("after"));

    shutdown_and_join(&handle, join);
}

#[test]
fn overloaded_burst_gets_typed_rejections_and_ordered_responses() {
    // One worker, a one-slot queue: a pipelined burst behind a heavy head
    // request must overflow admission while the server stays responsive.
    let (handle, join) = start(ServerConfig {
        jobs: 1,
        queue_cap: 1,
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);

    let burst = 16usize;
    client
        .send(&Request::evaluate(json!("head"), heavy_spec()))
        .expect("send head");
    for i in 0..burst {
        client
            .send(&Request::evaluate(json!(format!("b{i}")), tiny_spec()))
            .expect("send burst");
    }

    // Responses must come back in request order, whatever the workers did.
    let mut rejected = 0;
    let mut completed = 0;
    for i in 0..=burst {
        let resp = client.recv().expect("io").expect("every request is owed a response");
        let want = if i == 0 {
            json!("head")
        } else {
            json!(format!("b{}", i - 1))
        };
        assert_eq!(resp.id, want, "responses arrive in request order");
        if resp.error_is(ERR_OVERLOADED) {
            rejected += 1;
        } else {
            assert!(resp.ok, "non-rejected must evaluate: {:?}", resp.error);
            completed += 1;
        }
    }
    assert!(rejected > 0, "a {burst}-deep burst over a 1-slot queue must overflow");
    assert!(completed >= 2, "head plus at least one queued request complete");

    // The server is still responsive after shedding load.
    let resp = client
        .request(&Request::bare(json!("alive"), Op::Status))
        .expect("status after burst");
    let status = resp.status.expect("status payload");
    assert_eq!(status.rejected, rejected as u64);

    let stats = shutdown_and_join(&handle, join);
    assert_eq!(stats.rejected, rejected as u64);
    assert_eq!(stats.completed, completed as u64);
}

#[test]
fn drain_finishes_inflight_work_and_rejects_late_arrivals() {
    let (handle, join) = start(ServerConfig {
        jobs: 1,
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);

    // Pipeline real work, then the shutdown, then more work — all before
    // reading anything. The admitted job must complete; requests parsed
    // after the drain begins must get typed shutting_down rejections.
    client
        .send(&Request::evaluate(json!("w1"), tiny_spec()))
        .expect("send work");
    client
        .send(&Request::bare(json!("bye"), Op::Shutdown))
        .expect("send shutdown");
    client
        .send(&Request::evaluate(json!("late"), tiny_spec()))
        .expect("send late work");
    client.finish_sending().expect("half-close");

    let resp = client.recv().expect("io").expect("w1 response");
    assert_eq!(resp.id, json!("w1"));
    assert!(resp.ok, "admitted work finishes during drain: {:?}", resp.error);
    let resp = client.recv().expect("io").expect("shutdown ack");
    assert_eq!(resp.draining, Some(true));
    let resp = client.recv().expect("io").expect("late response");
    assert_eq!(resp.id, json!("late"));
    assert!(resp.error_is(ERR_SHUTTING_DOWN), "{:?}", resp.error);
    assert!(client.recv().expect("io").is_none(), "clean EOF after the drain");

    let stats = join.join().expect("server thread");
    assert_eq!(stats.completed, 1);
}

#[test]
fn batch_and_search_ops_work_end_to_end() {
    let (handle, join) = start(ServerConfig {
        jobs: 2,
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);

    // Batch: two identical specs must yield two identical reports.
    let req = Request {
        specs: Some(vec![tiny_spec(), tiny_spec()]),
        ..Request::bare(json!("batch"), Op::Batch)
    };
    let resp = client.request(&req).expect("batch round trip");
    assert!(resp.ok, "{:?}", resp.error);
    let results = resp.results.expect("batch payload");
    assert_eq!(results.len(), 2);
    assert!(results.iter().all(|item| item.report.is_some()));
    assert_eq!(
        results[0].report, results[1].report,
        "identical specs get identical reports"
    );

    // Per-index validation failure is a bad_request naming the slot.
    let bad: WireSpec = serde_json::from_value(json!({"family": "hypercube", "servers": 8}))
        .expect("parse — validation happens at resolve time");
    let req = Request {
        specs: Some(vec![tiny_spec(), bad]),
        ..Request::bare(json!("batch-bad"), Op::Batch)
    };
    let resp = client.request(&req).expect("bad batch round trip");
    assert!(resp.error_is(ERR_BAD_REQUEST));
    assert!(resp.error.as_deref().unwrap().contains("specs[1]"));

    // Search over a 2-point space.
    let req = Request {
        space: Some(WireSpace {
            families: vec!["fat-tree".into(), "leaf-spine".into()],
            servers: vec![64],
            speeds: vec![100.0],
            seeds: vec![11],
            halls: vec!["hall-std".into()],
            media: vec!["media-std".into()],
            fault_scenarios: vec![0],
            yield_trials: Some(2),
            repair_trials: Some(1),
        }),
        ..Request::bare(json!("sweep"), Op::Search)
    };
    let resp = client.request(&req).expect("search round trip");
    assert!(resp.ok, "{:?}", resp.error);
    let records = resp.records.expect("search payload");
    assert_eq!(records.len(), 2);
    assert_eq!(resp.interrupted, None, "uninterrupted search");

    shutdown_and_join(&handle, join);
}

#[test]
fn raw_socket_clients_need_only_lines_and_json() {
    // The protocol's portability claim: no client library, just a socket.
    let (handle, join) = start(ServerConfig::default());
    let mut stream =
        std::net::TcpStream::connect(handle.local_addr()).expect("raw connect");
    stream
        .write_all(b"{\"id\":1,\"op\":\"status\"}\n")
        .expect("raw write");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let line = match read_bounded_line(&mut reader, 1 << 20).expect("raw read") {
        LineRead::Line(l) => l,
        other => panic!("expected a line, got {other:?}"),
    };
    let v: Value = serde_json::from_str(&line).expect("response is JSON");
    assert_eq!(v["id"], json!(1));
    assert_eq!(v["ok"], json!(true));
    drop(reader);
    shutdown_and_join(&handle, join);
}
