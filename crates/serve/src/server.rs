//! The daemon: accept loop, per-connection pipelining, admission control,
//! worker pool, and graceful drain.
//!
//! ## Thread architecture
//!
//! ```text
//!             accept loop (Server::run, the calling thread)
//!                  │ one pair per connection
//!        ┌─────────┴──────────┐
//!   reader thread        writer thread
//!   parse / validate     reorder by seq,
//!   admit or reject      write + flush in
//!        │               request order
//!        ▼                    ▲
//!   bounded pending queue ────┘ (mpsc per connection)
//!        │
//!   fixed worker pool (cfg.jobs threads)
//!   evaluate_many_controlled / run_search
//! ```
//!
//! * **Pipelining with in-order responses.** A client may write many
//!   request lines without waiting. The reader stamps each request with a
//!   per-connection sequence number; fast responses (status, rejections)
//!   and slow ones (evaluations) all funnel through the connection's
//!   writer, which buffers out-of-order completions and writes strictly in
//!   request order — the protocol's ordering guarantee costs one
//!   `BTreeMap`, not a round trip.
//! * **Admission control.** Work requests are admitted into one bounded
//!   process-wide queue. At capacity the request is answered immediately
//!   with a typed [`ERR_OVERLOADED`] rejection — the server's memory is
//!   bounded by `queue_cap`, not by how fast clients can write.
//! * **Session caching.** All workers share one process-wide
//!   [`ArtifactCache`], so repeated queries against the same topology (the
//!   interactive design-assistant pattern) skip regeneration across
//!   connections, and queries that share a *prefix* of the pipeline —
//!   same placement, different fault ensemble — resume from the deepest
//!   cached stage instead of stage zero. Caching never changes response
//!   bytes — cached artifacts are byte-identical to recomputation — it
//!   only changes latency. Per-tier hit/miss/eviction counts are exposed
//!   through the `status` op.
//! * **Resilience inheritance.** Every evaluation runs through
//!   [`evaluate_many_controlled`] under a [`BatchControl`] derived from
//!   the server config and the request's `deadline_ms`, so per-spec
//!   timeouts, deadlines, retries, and watchdog supervision behave exactly
//!   as they do in the batch CLI — one enforcement path, not two.
//! * **Graceful drain.** `shutdown` (or [`ServerHandle::shutdown`]) stops
//!   the accept loop, half-closes every connection's read side, lets the
//!   workers finish every admitted job, flushes every writer, and returns
//!   from [`Server::run`] — the bin then exits 0. Requests arriving after
//!   the drain begins get a typed [`ERR_SHUTTING_DOWN`] rejection.
//!
//! [`ERR_OVERLOADED`]: crate::proto::ERR_OVERLOADED
//! [`ERR_SHUTTING_DOWN`]: crate::proto::ERR_SHUTTING_DOWN

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use pd_core::batch::{evaluate_many_controlled, ArtifactCache, BatchControl, BatchOptions};
use pd_core::resilience::{CancelToken, Deadline, RetryPolicy, WatchdogConfig};
use pd_core::DesignSpec;
use pd_metrics::{Counter, Gauge, Histogram};
use pd_search::{run_search, ParamSpace, SearchConfig, Strategy};
use serde_json::Value;

use crate::proto::{
    parse_request, read_bounded_line, salvage_id, BatchItem, LineRead, Op, Request, Response,
    StatusBody, DEFAULT_MAX_LINE_BYTES,
};

/// Everything the daemon needs to start.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` = loopback, OS-assigned port).
    pub addr: String,
    /// Worker threads (0 = one per core). This is the evaluation
    /// parallelism cap; connections are unbounded threads but do no
    /// evaluation work themselves.
    pub jobs: usize,
    /// Admission cap on the pending queue (jobs admitted but not yet
    /// executing). Requests past the cap get a typed `overloaded`
    /// rejection.
    pub queue_cap: usize,
    /// Per-spec wall-clock budget, as the batch CLI's `--spec-timeout`.
    pub spec_timeout: Option<Duration>,
    /// Default per-request deadline when the request carries no
    /// `deadline_ms` (measured from admission, queue wait included).
    pub default_deadline: Option<Duration>,
    /// Extra attempts for transient failures, as the CLI's `--retries`.
    pub retries: u32,
    /// Watchdog stall threshold; `None` disables supervision.
    pub watchdog: Option<Duration>,
    /// Generation-cache bound (`None` = unbounded — fine for tests, not
    /// for a long-lived daemon).
    pub cache_cap: Option<usize>,
    /// Bound on one request line, bytes (oversized lines get a typed
    /// `bad_request`; the connection survives).
    pub max_line_bytes: usize,
    /// Most specs accepted in one `batch` request.
    pub max_batch_specs: usize,
    /// Largest `search` space accepted, in grid points.
    pub max_search_points: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            jobs: 0,
            queue_cap: 64,
            spec_timeout: None,
            default_deadline: None,
            retries: 0,
            watchdog: None,
            cache_cap: Some(512),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            max_batch_specs: 256,
            max_search_points: 4096,
        }
    }
}

/// What the daemon did over its lifetime, returned by [`Server::run`]
/// after a graceful drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Request lines received (all ops, malformed included).
    pub requests: u64,
    /// Work requests completed.
    pub completed: u64,
    /// Work requests rejected by admission control.
    pub rejected: u64,
}

/// Registry handles for the serving layer's global metrics.
///
/// `serve.{connections,requests}` are **counts**: they are driven by what
/// clients send, the workload itself. Everything observing timing or
/// scheduling is a **diagnostic**: `serve.rejected` (whether a burst
/// overflows the queue depends on how fast workers drain it),
/// `serve.inflight` (instantaneous), `serve.queue.depth` (depth at each
/// admission), and `serve.request.wall_ns` (admission-to-response wall
/// clock, queue wait included). See `docs/OBSERVABILITY.md`.
struct ServeMetrics {
    connections: Arc<Counter>,
    requests: Arc<Counter>,
    rejected: Arc<Counter>,
    inflight: Arc<Gauge>,
    queue_depth: Arc<Histogram>,
    request_wall_ns: Arc<Counter>,
}

/// Inclusive power-of-two bucket bounds for admission-time queue depths.
const QUEUE_DEPTH_BUCKETS: [u64; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

fn serve_metrics() -> &'static ServeMetrics {
    static CELLS: OnceLock<ServeMetrics> = OnceLock::new();
    CELLS.get_or_init(|| {
        let reg = pd_metrics::global();
        ServeMetrics {
            connections: reg.counter("serve.connections"),
            requests: reg.counter("serve.requests"),
            rejected: reg.diagnostic_counter("serve.rejected"),
            inflight: reg.diagnostic_gauge("serve.inflight"),
            queue_depth: reg.diagnostic_histogram("serve.queue.depth", &QUEUE_DEPTH_BUCKETS),
            request_wall_ns: reg.diagnostic_counter("serve.request.wall_ns"),
        }
    })
}

/// An admitted work request, waiting for (or running on) a worker.
struct Job {
    id: Value,
    seq: u64,
    work: Work,
    deadline: Option<Deadline>,
    accepted: Instant,
    tx: Sender<(u64, String)>,
}

/// The resolved payload of a work request — validation happened at
/// admission, so workers never see a malformed request.
enum Work {
    Evaluate(Box<DesignSpec>),
    Batch(Vec<DesignSpec>),
    Search { space: ParamSpace, strategy: Strategy },
}

/// The pending queue and its drain latch, guarded together.
#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    /// Once true (and the queue empty), workers exit.
    closed: bool,
}

/// Exact lifetime counters backing `status` responses and [`ServerStats`].
/// The global `serve.*` registry cells aggregate over every server in the
/// process; these are this server's own numbers.
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    live: AtomicU64,
    requests: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    inflight: AtomicU64,
}

/// A count-based wait group (std has no join handle for a dynamic set of
/// detached connection threads).
#[derive(Default)]
struct WaitGroup {
    count: Mutex<usize>,
    cv: Condvar,
}

impl WaitGroup {
    fn enter(&self) {
        *self.count.lock().expect("waitgroup lock") += 1;
    }

    fn leave(&self) {
        let mut n = self.count.lock().expect("waitgroup lock");
        *n -= 1;
        if *n == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut n = self.count.lock().expect("waitgroup lock");
        while *n > 0 {
            n = self.cv.wait(n).expect("waitgroup lock");
        }
    }
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    cfg: ServerConfig,
    addr: SocketAddr,
    cache: Arc<ArtifactCache>,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    /// Set once by the first shutdown trigger; never cleared.
    draining: AtomicBool,
    /// Root of every evaluation's cancel tree. Deliberately **not**
    /// cancelled on drain: drain means "finish admitted work", and
    /// admitted jobs keep their deadlines as their only bound.
    root: CancelToken,
    started: Instant,
    workers: usize,
    counters: Counters,
    /// Read-side handles of live connections, for unblocking readers at
    /// drain time.
    conns: Mutex<HashMap<u64, TcpStream>>,
    readers: WaitGroup,
    writers: WaitGroup,
}

impl Shared {
    /// The per-job resilience controls: server knobs + the request's
    /// deadline, on a fresh child of the server's root token.
    fn control(&self, deadline: Option<Deadline>) -> BatchControl {
        BatchControl {
            cancel: self.root.child(),
            spec_timeout: self.cfg.spec_timeout,
            batch_deadline: deadline,
            retry: match self.cfg.retries {
                0 => RetryPolicy::none(),
                extra => RetryPolicy::attempts(extra + 1),
            },
            watchdog: self.cfg.watchdog.map(|stall_threshold| WatchdogConfig { stall_threshold }),
            chaos: None,
        }
    }

    /// Starts the drain exactly once: raise the latch, then poke the
    /// accept loop awake with a throwaway self-connection.
    fn begin_shutdown(&self) {
        if self.draining.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
    }

    /// Admission control: queue the job, or say exactly why not.
    fn submit(&self, job: Job) -> Result<(), Response> {
        if self.draining.load(Ordering::Acquire) {
            return Err(Response::shutting_down(job.id));
        }
        let mut q = self.queue.lock().expect("queue lock");
        if q.closed || self.draining.load(Ordering::Acquire) {
            return Err(Response::shutting_down(job.id));
        }
        if q.jobs.len() >= self.cfg.queue_cap {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            serve_metrics().rejected.incr();
            return Err(Response::overloaded(job.id, self.cfg.queue_cap));
        }
        q.jobs.push_back(job);
        serve_metrics().queue_depth.record(q.jobs.len() as u64);
        drop(q);
        self.queue_cv.notify_one();
        Ok(())
    }

    fn status_body(&self) -> StatusBody {
        let queued = self.queue.lock().expect("queue lock").jobs.len() as u64;
        StatusBody {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            connections: self.counters.connections.load(Ordering::Relaxed),
            live_connections: self.counters.live.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            inflight: self.counters.inflight.load(Ordering::Relaxed),
            queued,
            workers: self.workers,
            queue_cap: self.cfg.queue_cap,
            draining: self.draining.load(Ordering::Acquire),
            cache_entries: self.cache.generate().len(),
            cache_hits: self.cache.generate().hits(),
            cache_misses: self.cache.generate().misses(),
            artifact_tiers: self
                .cache
                .tier_stats()
                .into_iter()
                .map(|t| crate::proto::TierStatus {
                    stage: t.stage.name().to_string(),
                    entries: t.entries as u64,
                    hits: t.hits as u64,
                    misses: t.misses as u64,
                    evictions: t.evictions as u64,
                })
                .collect(),
        }
    }
}

/// A handle for triggering the drain from outside the protocol (tests,
/// signal handlers). Cheap to clone.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Begins the graceful drain, exactly as a `shutdown` request would.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }
}

/// A bound-but-not-yet-running daemon. [`Server::bind`] then
/// [`Server::run`]; `run` blocks until a graceful drain completes.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and builds the shared state. No threads start
    /// until [`Server::run`].
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = if cfg.jobs == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            cfg.jobs
        };
        let cache = Arc::new(match cfg.cache_cap {
            Some(cap) => ArtifactCache::with_capacity(cap),
            None => ArtifactCache::new(),
        });
        let shared = Arc::new(Shared {
            cfg,
            addr,
            cache,
            queue: Mutex::new(QueueState::default()),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            root: CancelToken::new(),
            started: Instant::now(),
            workers,
            counters: Counters::default(),
            conns: Mutex::new(HashMap::new()),
            readers: WaitGroup::default(),
            writers: WaitGroup::default(),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A drain trigger usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the daemon on the calling thread until a graceful drain
    /// completes: accept → serve → (shutdown request) → stop accepting →
    /// finish every admitted job → flush every connection → return.
    pub fn run(self) -> std::io::Result<ServerStats> {
        let Server { listener, shared } = self;
        let worker_handles: Vec<_> = (0..shared.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pd-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let mut next_conn = 0u64;
        for stream in listener.incoming() {
            if shared.draining.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            if shared.draining.load(Ordering::Acquire) {
                break; // the drain's own wake-up poke lands here
            }
            let conn_id = next_conn;
            next_conn += 1;
            if let Err(e) = spawn_connection(&shared, conn_id, stream) {
                // A clone failure only loses this one connection.
                eprintln!("pd-serve: connection {conn_id} setup failed: {e}");
            }
        }

        // Drain, in dependency order: close the listener (no new
        // connections), half-close every reader (no new requests), wait
        // for the readers to retire, close the queue (workers finish the
        // admitted backlog and exit), then wait for the writers to flush
        // the last responses.
        drop(listener);
        for stream in shared.conns.lock().expect("conns lock").values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        shared.readers.wait();
        shared.queue.lock().expect("queue lock").closed = true;
        shared.queue_cv.notify_all();
        for h in worker_handles {
            let _ = h.join();
        }
        shared.writers.wait();

        Ok(ServerStats {
            connections: shared.counters.connections.load(Ordering::Relaxed),
            requests: shared.counters.requests.load(Ordering::Relaxed),
            completed: shared.counters.completed.load(Ordering::Relaxed),
            rejected: shared.counters.rejected.load(Ordering::Relaxed),
        })
    }
}

/// Registers a connection and spawns its reader/writer pair.
fn spawn_connection(shared: &Arc<Shared>, conn_id: u64, stream: TcpStream) -> std::io::Result<()> {
    let _ = stream.set_nodelay(true);
    let read_half = stream.try_clone()?;
    let registry_half = stream.try_clone()?;

    shared.counters.connections.fetch_add(1, Ordering::Relaxed);
    serve_metrics().connections.incr();
    shared.counters.live.fetch_add(1, Ordering::Relaxed);
    shared
        .conns
        .lock()
        .expect("conns lock")
        .insert(conn_id, registry_half);

    let (tx, rx) = mpsc::channel::<(u64, String)>();

    shared.writers.enter();
    let writer_shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("pd-serve-writer-{conn_id}"))
        .spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                writer_loop(stream, rx)
            }));
            writer_shared.writers.leave();
            drop(result);
        })
        .expect("spawn writer");

    shared.readers.enter();
    let reader_shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("pd-serve-reader-{conn_id}"))
        .spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                reader_loop(&reader_shared, read_half, tx)
            }));
            reader_shared
                .conns
                .lock()
                .expect("conns lock")
                .remove(&conn_id);
            reader_shared.counters.live.fetch_sub(1, Ordering::Relaxed);
            reader_shared.readers.leave();
            drop(result);
        })
        .expect("spawn reader");
    Ok(())
}

/// One connection's request side: bounded reads, parse, validate, then
/// answer inline (status, rejections, shutdown) or admit to the queue.
/// Every request — even a malformed one — produces exactly one response
/// at its sequence slot, so pipelined responses can never skew.
fn reader_loop(shared: &Arc<Shared>, stream: TcpStream, tx: Sender<(u64, String)>) {
    let mut reader = BufReader::new(stream);
    let mut seq = 0u64;
    loop {
        let line = match read_bounded_line(&mut reader, shared.cfg.max_line_bytes) {
            Ok(LineRead::Eof) | Err(_) => break,
            Ok(LineRead::TooLong { discarded }) => {
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                serve_metrics().requests.incr();
                let resp = Response::bad_request(
                    Value::Null,
                    format!(
                        "request line exceeds {} bytes ({} discarded); connection kept",
                        shared.cfg.max_line_bytes, discarded
                    ),
                );
                if tx.send((seq, resp.to_json_line())).is_err() {
                    break;
                }
                seq += 1;
                continue;
            }
            Ok(LineRead::Line(l)) => l,
        };
        if line.trim().is_empty() {
            continue; // blank keep-alive lines get no response
        }
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        serve_metrics().requests.incr();

        let direct = match parse_request(&line) {
            Err(e) => Some(Response::bad_request(salvage_id(&line), e)),
            Ok(req) => handle_request(shared, req, seq, &tx),
        };
        if let Some(resp) = direct {
            if tx.send((seq, resp.to_json_line())).is_err() {
                break;
            }
        }
        seq += 1;
    }
}

/// Fields that only make sense for some ops are rejected loudly — a
/// `spec` on a `status` request is a caller bug, not noise to ignore.
fn payload_misuse(req: &Request) -> Option<String> {
    let fields = [
        ("spec", req.spec.is_some()),
        ("specs", req.specs.is_some()),
        ("space", req.space.is_some()),
        ("strategy", req.strategy.is_some()),
        ("budget", req.budget.is_some()),
        ("seed", req.seed.is_some()),
        ("eta", req.eta.is_some()),
        ("deadline_ms", req.deadline_ms.is_some()),
    ];
    let allowed: &[&str] = match req.op {
        Op::Evaluate => &["spec", "deadline_ms"],
        Op::Batch => &["specs", "deadline_ms"],
        Op::Search => &["space", "strategy", "budget", "seed", "eta", "deadline_ms"],
        Op::Status | Op::Shutdown => &[],
    };
    fields
        .iter()
        .find(|(name, set)| *set && !allowed.contains(name))
        .map(|(name, _)| {
            format!(
                "field {name:?} does not apply to op {:?}",
                format!("{:?}", req.op).to_lowercase()
            )
        })
}

/// Validates and dispatches one parsed request. Returns the response to
/// send at this sequence slot, or `None` when a job was admitted (the
/// worker will send it).
fn handle_request(
    shared: &Arc<Shared>,
    req: Request,
    seq: u64,
    tx: &Sender<(u64, String)>,
) -> Option<Response> {
    if let Some(misuse) = payload_misuse(&req) {
        return Some(Response::bad_request(req.id, misuse));
    }
    let deadline = req
        .deadline_ms
        .map(Duration::from_millis)
        .or(shared.cfg.default_deadline)
        .map(Deadline::after);

    let work = match req.op {
        Op::Status => return Some(Response::status(req.id, shared.status_body())),
        Op::Shutdown => {
            shared.begin_shutdown();
            return Some(Response::draining(req.id));
        }
        Op::Evaluate => {
            let Some(wire) = req.spec else {
                return Some(Response::bad_request(req.id, "op \"evaluate\" needs \"spec\""));
            };
            match wire.resolve() {
                Ok((point, trials)) => Work::Evaluate(Box::new(point.spec(&trials))),
                Err(e) => return Some(Response::bad_request(req.id, e)),
            }
        }
        Op::Batch => {
            let Some(wires) = req.specs else {
                return Some(Response::bad_request(req.id, "op \"batch\" needs \"specs\""));
            };
            if wires.len() > shared.cfg.max_batch_specs {
                return Some(Response::bad_request(
                    req.id,
                    format!(
                        "batch of {} specs exceeds the cap of {}",
                        wires.len(),
                        shared.cfg.max_batch_specs
                    ),
                ));
            }
            let mut specs = Vec::with_capacity(wires.len());
            for (i, wire) in wires.iter().enumerate() {
                match wire.resolve() {
                    Ok((point, trials)) => specs.push(point.spec(&trials)),
                    Err(e) => {
                        return Some(Response::bad_request(req.id, format!("specs[{i}]: {e}")))
                    }
                }
            }
            Work::Batch(specs)
        }
        Op::Search => {
            let space = match req.space.unwrap_or_default().resolve() {
                Ok(space) => space,
                Err(e) => return Some(Response::bad_request(req.id, e)),
            };
            if space.len() > shared.cfg.max_search_points {
                return Some(Response::bad_request(
                    req.id,
                    format!(
                        "search space of {} points exceeds the cap of {}",
                        space.len(),
                        shared.cfg.max_search_points
                    ),
                ));
            }
            let strategy = match crate::proto::resolve_strategy(
                req.strategy.as_deref(),
                req.budget,
                req.seed,
                req.eta,
            ) {
                Ok(s) => s,
                Err(e) => return Some(Response::bad_request(req.id, e)),
            };
            Work::Search { space, strategy }
        }
    };

    let job = Job {
        id: req.id,
        seq,
        work,
        deadline,
        accepted: Instant::now(),
        tx: tx.clone(),
    };
    match shared.submit(job) {
        Ok(()) => None,
        Err(rejection) => Some(rejection),
    }
}

/// One connection's response side: receive `(seq, line)` completions in
/// any order, write them in sequence order, flush after each so a
/// waiting client sees its response without batching delay. A broken
/// pipe stops writing but keeps consuming, so workers never block on a
/// dead client.
fn writer_loop(stream: TcpStream, rx: Receiver<(u64, String)>) {
    let mut w = BufWriter::new(stream);
    let mut next = 0u64;
    let mut pending: BTreeMap<u64, String> = BTreeMap::new();
    let mut dead = false;
    for (seq, line) in rx {
        pending.insert(seq, line);
        while let Some(line) = pending.remove(&next) {
            next += 1;
            if dead {
                continue;
            }
            let wrote = w
                .write_all(line.as_bytes())
                .and_then(|_| w.write_all(b"\n"))
                .and_then(|_| w.flush());
            if wrote.is_err() {
                dead = true;
            }
        }
    }
    let _ = w.flush();
    let _ = w.get_ref().shutdown(Shutdown::Write);
}

/// A worker: pop admitted jobs until the queue is closed and empty, then
/// exit. One `catch_unwind` per job keeps a pathological request from
/// taking the pool down.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.closed {
                    break None;
                }
                q = shared.queue_cv.wait(q).expect("queue lock");
            }
        };
        let Some(job) = job else { return };

        shared.counters.inflight.fetch_add(1, Ordering::Relaxed);
        serve_metrics().inflight.add(1);
        let seq = job.seq;
        let tx = job.tx.clone();
        let accepted = job.accepted;
        let fallback_id = job.id.clone();
        let resp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(shared, job)
        }))
        .unwrap_or_else(|_| {
            Response::error(fallback_id, "evaluation panicked: serve worker crashed")
        });
        shared.counters.inflight.fetch_sub(1, Ordering::Relaxed);
        serve_metrics().inflight.add(-1);
        shared.counters.completed.fetch_add(1, Ordering::Relaxed);
        serve_metrics()
            .request_wall_ns
            .add(accepted.elapsed().as_nanos() as u64);
        let _ = tx.send((seq, resp.to_json_line()));
    }
}

/// Cancels a token when a deadline passes, unless dropped first. Backs
/// `search` requests, whose deadline cannot ride through `BatchControl`
/// (the search runner owns its batch control internally).
struct DeadlineGuard {
    state: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl DeadlineGuard {
    fn watch(deadline: Deadline, token: CancelToken) -> Self {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("pd-serve-deadline".to_string())
            .spawn(move || {
                let (lock, cv) = &*thread_state;
                let mut done = lock.lock().expect("deadline lock");
                loop {
                    if *done {
                        return;
                    }
                    let remaining = deadline.remaining();
                    if remaining.is_zero() {
                        token.cancel();
                        return;
                    }
                    done = cv
                        .wait_timeout(done, remaining)
                        .expect("deadline lock")
                        .0;
                }
            })
            .expect("spawn deadline guard");
        Self {
            state,
            handle: Some(handle),
        }
    }
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        *self.state.0.lock().expect("deadline lock") = true;
        self.state.1.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Runs one admitted job to its response. Evaluate/batch go through
/// [`evaluate_many_controlled`] against the process-wide cache; search
/// goes through [`run_search`] under a cancel token its deadline guard
/// fires.
fn execute(shared: &Shared, job: Job) -> Response {
    match job.work {
        Work::Evaluate(spec) => {
            let control = shared.control(job.deadline);
            let mut results = evaluate_many_controlled(
                std::slice::from_ref(&spec),
                &BatchOptions::jobs(1),
                &shared.cache,
                None,
                &control,
            );
            match results.pop().expect("one result per spec") {
                Ok(ev) => Response::report(job.id, ev.report),
                Err(e) => Response::error(job.id, e.to_string()),
            }
        }
        Work::Batch(specs) => {
            let control = shared.control(job.deadline);
            let results = evaluate_many_controlled(
                &specs,
                &BatchOptions::jobs(1),
                &shared.cache,
                None,
                &control,
            );
            let items: Vec<BatchItem> = results
                .into_iter()
                .map(|r| match r {
                    Ok(ev) => BatchItem::ok(ev.report),
                    Err(e) => BatchItem::err(e.to_string()),
                })
                .collect();
            Response::results(job.id, items)
        }
        Work::Search { space, strategy } => {
            let token = shared.root.child();
            let _guard = job
                .deadline
                .map(|d| DeadlineGuard::watch(d, token.clone()));
            let cfg = SearchConfig {
                space,
                strategy,
                jobs: 1,
                cache_capacity: shared.cfg.cache_cap,
                cache: Some(Arc::clone(&shared.cache)),
                progress: false,
                cancel: Some(token),
                ..SearchConfig::default()
            };
            let out = run_search(&cfg);
            Response::records(job.id, out.records, out.interrupted)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = ServerConfig::default();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert!(cfg.queue_cap > 0);
        assert_eq!(cfg.max_line_bytes, DEFAULT_MAX_LINE_BYTES);
    }

    #[test]
    fn payload_misuse_is_detected_per_op() {
        let mut req = Request::bare(Value::Null, Op::Status);
        assert_eq!(payload_misuse(&req), None);
        req.budget = Some(4);
        let msg = payload_misuse(&req).expect("budget on status is misuse");
        assert!(msg.contains("budget"), "{msg}");
        assert!(msg.contains("status"), "{msg}");

        let mut req = Request::bare(Value::Null, Op::Evaluate);
        req.deadline_ms = Some(5);
        assert_eq!(payload_misuse(&req), None, "deadline rides on work ops");
        req.specs = Some(Vec::new());
        assert!(payload_misuse(&req).is_some(), "specs does not fit evaluate");
    }

    #[test]
    fn deadline_guard_fires_once_expired_and_not_before() {
        let token = CancelToken::new();
        {
            let _guard = DeadlineGuard::watch(
                Deadline::after(Duration::from_secs(60)),
                token.clone(),
            );
        }
        assert!(!token.is_cancelled(), "dropping the guard must not cancel");

        let token = CancelToken::new();
        let guard = DeadlineGuard::watch(Deadline::after(Duration::ZERO), token.clone());
        let waited = Instant::now();
        while !token.is_cancelled() && waited.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(token.is_cancelled(), "expired deadline must cancel");
        drop(guard);
    }

    #[test]
    fn waitgroup_blocks_until_everyone_leaves() {
        let wg = Arc::new(WaitGroup::default());
        for _ in 0..3 {
            wg.enter();
        }
        let waiter = {
            let wg = Arc::clone(&wg);
            std::thread::spawn(move || wg.wait())
        };
        for _ in 0..3 {
            wg.leave();
        }
        waiter.join().expect("waiter returns");
        wg.wait(); // zero members: returns immediately
    }
}
