//! The pd-serve wire protocol: line-delimited JSON over TCP.
//!
//! One request per line, one response per line, in request order per
//! connection. The framing is deliberately primitive — `\n`-terminated
//! JSON objects — so any language's socket + JSON library is a complete
//! client, and a transcript is a replayable text file.
//!
//! ## Requests
//!
//! ```json
//! {"id":"r1","op":"evaluate","spec":{"family":"fat-tree","servers":64}}
//! {"id":"r2","op":"batch","specs":[{"family":"jellyfish","servers":128,"seed":7}]}
//! {"id":"r3","op":"search","space":{"families":["fat-tree"],"servers":[64,128]},"budget":8}
//! {"id":"r4","op":"status"}
//! {"id":"r5","op":"shutdown"}
//! ```
//!
//! `id` is any JSON value and is echoed verbatim in the response;
//! `deadline_ms` (optional on work-carrying ops) bounds the request's wall
//! clock from admission, queue wait included. Unknown fields are rejected
//! (`bad_request`), so typos fail loudly instead of being ignored.
//!
//! ## Responses
//!
//! Exactly one per request, `id` echoed, `ok` telling the caller whether a
//! payload or an `error` string follows. Error strings are prefixed by a
//! stable taxonomy — [`ERR_BAD_REQUEST`], [`ERR_OVERLOADED`],
//! [`ERR_SHUTTING_DOWN`] for protocol-level rejections, and the
//! `pd_core::pipeline::EvalError` `Display` renderings (`generation: …`,
//! `placement: …`, `cancelled: …`, `timed out: …`, …) for evaluation
//! failures — so clients can dispatch on `error.split(':').next()`.
//!
//! ## Determinism
//!
//! Evaluation is a pure function of the spec, and every payload type here
//! serializes with a fixed field order, so the response body for a given
//! `evaluate`/`batch` request is **byte-identical** across runs, server
//! job counts, and cache states — the property `loadgen` asserts. `status`
//! bodies and `overloaded` rejections observe the wall clock and are
//! excluded from that contract.

use pd_core::DeployabilityReport;
use pd_search::{Family, HallVariant, MediaPolicy, ParamSpace, Point, PointRecord, Strategy, TrialProfile};
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Default bound on one request line (bytes, newline excluded). A line
/// that exceeds the server's bound is answered with a typed `bad_request`
/// and discarded to its terminating newline; the connection survives.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// Error-string prefix for malformed or invalid requests.
pub const ERR_BAD_REQUEST: &str = "bad_request";
/// Error-string prefix for admission-control rejections (queue at cap).
pub const ERR_OVERLOADED: &str = "overloaded";
/// Error-string prefix for requests arriving while the server drains.
pub const ERR_SHUTTING_DOWN: &str = "shutting_down";

/// The request verbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Op {
    /// Evaluate one design spec → one [`DeployabilityReport`].
    Evaluate,
    /// Evaluate a list of specs → one result per spec, in spec order.
    Batch,
    /// Run a design-space search → the search's [`PointRecord`] list.
    Search,
    /// Server health and queue counters (answered inline, never queued).
    Status,
    /// Begin graceful drain: stop accepting, finish in-flight, exit 0.
    Shutdown,
}

/// One request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Request {
    /// Caller-chosen correlation value, echoed in the response.
    #[serde(default, skip_serializing_if = "Value::is_null")]
    pub id: Value,
    /// The verb.
    pub op: Op,
    /// The design to evaluate (`op: evaluate`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub spec: Option<WireSpec>,
    /// The designs to evaluate (`op: batch`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub specs: Option<Vec<WireSpec>>,
    /// The space to search (`op: search`; omitted = the default space).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub space: Option<WireSpace>,
    /// Search strategy: `"grid"` (default), `"random"`, or `"adaptive"`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub strategy: Option<String>,
    /// Search budget (grid truncation / random samples / adaptive
    /// full-pipeline budget).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub budget: Option<usize>,
    /// Draw seed for `strategy: "random"` (default 11).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub seed: Option<u64>,
    /// Halving factor for `strategy: "adaptive"` (default 2).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub eta: Option<usize>,
    /// Wall-clock budget for this request, measured from admission (queue
    /// wait included). On expiry the evaluation stops at its next stage
    /// boundary with a typed `timed out: …` / `cancelled: …` error.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// A request with only `id` and `op` set (status / shutdown shape).
    pub fn bare(id: impl Into<Value>, op: Op) -> Self {
        Self {
            id: id.into(),
            op,
            spec: None,
            specs: None,
            space: None,
            strategy: None,
            budget: None,
            seed: None,
            eta: None,
            deadline_ms: None,
        }
    }

    /// An `evaluate` request for one spec.
    pub fn evaluate(id: impl Into<Value>, spec: WireSpec) -> Self {
        Self {
            spec: Some(spec),
            ..Self::bare(id, Op::Evaluate)
        }
    }

    /// The request's JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("Request serializes")
    }
}

/// Parses one request line; the error is the human-readable reason a
/// `bad_request` response carries.
pub fn parse_request(line: &str) -> Result<Request, String> {
    serde_json::from_str(line.trim()).map_err(|e| e.to_string())
}

/// Best-effort recovery of the `id` from a line that failed to parse as a
/// [`Request`], so even a `bad_request` response can be correlated.
pub fn salvage_id(line: &str) -> Value {
    serde_json::from_str::<Value>(line.trim())
        .ok()
        .and_then(|v| v.get("id").cloned())
        .unwrap_or(Value::Null)
}

/// A design spec on the wire: one coordinate of the pd-search parameter
/// space by name, plus Monte-Carlo trial counts. This is deliberately the
/// *search-space* encoding rather than a raw `DesignSpec` dump: every
/// field is a human-writable scalar, the encoding is stable across
/// internal spec refactors, and [`WireSpec::resolve`] reuses
/// `pd_search::Point::spec` so a served evaluation is byte-identical to
/// the same point evaluated by the `search` CLI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct WireSpec {
    /// Topology family name (`fat-tree`, `folded-clos`, `leaf-spine`,
    /// `jellyfish`, `xpander`, `slimfly`, `flat-bf`, `fatclique`,
    /// `direct-connect`).
    pub family: String,
    /// Target server count (families round up per their granularity).
    pub servers: usize,
    /// Link speed in Gbps (default 100).
    #[serde(default = "default_speed")]
    pub speed_gbps: f64,
    /// Construction + sampling seed (default 11).
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Hall geometry: `hall-std` / `hall-dense` / `hall-long` (or the
    /// unprefixed tails). Default `hall-std`.
    #[serde(default = "default_hall")]
    pub hall: String,
    /// Cabling media policy: `media-std` / `media-derated` / `media-panel`
    /// (or the unprefixed tails). Default `media-std`.
    #[serde(default = "default_media")]
    pub media: String,
    /// Correlated-fault ensemble size (default 0 = sweep off — the
    /// interactive default favors latency).
    #[serde(default)]
    pub fault_scenarios: usize,
    /// Yield-simulation trials (default 10, the search profile).
    #[serde(default = "default_yield_trials")]
    pub yield_trials: usize,
    /// Repair-simulation trials (default 3, the search profile).
    #[serde(default = "default_repair_trials")]
    pub repair_trials: usize,
}

fn default_speed() -> f64 {
    100.0
}
fn default_seed() -> u64 {
    11
}
fn default_hall() -> String {
    HallVariant::Standard.name().to_string()
}
fn default_media() -> String {
    MediaPolicy::Standard.name().to_string()
}
fn default_yield_trials() -> usize {
    TrialProfile::default().yield_trials
}
fn default_repair_trials() -> usize {
    TrialProfile::default().repair_trials
}

impl WireSpec {
    /// The wire encoding of a search-space point (the inverse of
    /// [`WireSpec::resolve`]; `loadgen` draws points and sends these).
    pub fn for_point(point: &Point, trials: &TrialProfile) -> Self {
        Self {
            family: point.family.name().to_string(),
            servers: point.servers,
            speed_gbps: point.speed_gbps,
            seed: point.seed,
            hall: point.hall.name().to_string(),
            media: point.media.name().to_string(),
            fault_scenarios: point.fault_scenarios,
            yield_trials: trials.yield_trials,
            repair_trials: trials.repair_trials,
        }
    }

    /// Validates the names and bounds, yielding the point + trial profile
    /// the worker materializes with `Point::spec`. The error is the
    /// `bad_request` detail.
    pub fn resolve(&self) -> Result<(Point, TrialProfile), String> {
        let family = Family::from_name(&self.family).ok_or_else(|| {
            format!(
                "unknown family {:?} (known: {})",
                self.family,
                Family::ALL.map(|f| f.name()).join(", ")
            )
        })?;
        let hall = HallVariant::from_name(&self.hall)
            .ok_or_else(|| format!("unknown hall {:?} (known: hall-std, hall-dense, hall-long)", self.hall))?;
        let media = MediaPolicy::from_name(&self.media).ok_or_else(|| {
            format!("unknown media {:?} (known: media-std, media-derated, media-panel)", self.media)
        })?;
        if self.servers == 0 {
            return Err("servers must be ≥ 1".to_string());
        }
        if !self.speed_gbps.is_finite() || self.speed_gbps <= 0.0 {
            return Err(format!("speed_gbps must be a positive number, got {}", self.speed_gbps));
        }
        if self.yield_trials == 0 || self.repair_trials == 0 {
            return Err("yield_trials and repair_trials must be ≥ 1".to_string());
        }
        Ok((
            Point {
                family,
                servers: self.servers,
                speed_gbps: self.speed_gbps,
                seed: self.seed,
                hall,
                media,
                fault_scenarios: self.fault_scenarios,
            },
            TrialProfile {
                yield_trials: self.yield_trials,
                repair_trials: self.repair_trials,
            },
        ))
    }
}

/// A parameter space on the wire (`op: search`). Every knob is optional;
/// an empty/omitted list means that knob's `ParamSpace::default` value.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct WireSpace {
    /// Family names (empty = all nine).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub families: Vec<String>,
    /// Target server counts.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub servers: Vec<usize>,
    /// Link speeds (Gbps).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub speeds: Vec<f64>,
    /// Construction seeds.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub seeds: Vec<u64>,
    /// Hall variant names.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub halls: Vec<String>,
    /// Media policy names.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub media: Vec<String>,
    /// Fault-ensemble sizes.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub fault_scenarios: Vec<usize>,
    /// Yield trials per point (default: the search profile's 10).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub yield_trials: Option<usize>,
    /// Repair trials per point (default: the search profile's 3).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub repair_trials: Option<usize>,
}

impl WireSpace {
    /// Validates names and materializes the [`ParamSpace`].
    pub fn resolve(&self) -> Result<ParamSpace, String> {
        let mut space = ParamSpace::default();
        if !self.families.is_empty() {
            space.families = self
                .families
                .iter()
                .map(|n| Family::from_name(n).ok_or_else(|| format!("unknown family {n:?}")))
                .collect::<Result<_, _>>()?;
        }
        if !self.servers.is_empty() {
            if self.servers.contains(&0) {
                return Err("servers must be ≥ 1".to_string());
            }
            space.servers = self.servers.clone();
        }
        if !self.speeds.is_empty() {
            if self.speeds.iter().any(|s| !s.is_finite() || *s <= 0.0) {
                return Err("speeds must be positive numbers".to_string());
            }
            space.speeds = self.speeds.clone();
        }
        if !self.seeds.is_empty() {
            space.seeds = self.seeds.clone();
        }
        if !self.halls.is_empty() {
            space.halls = self
                .halls
                .iter()
                .map(|n| HallVariant::from_name(n).ok_or_else(|| format!("unknown hall {n:?}")))
                .collect::<Result<_, _>>()?;
        }
        if !self.media.is_empty() {
            space.media = self
                .media
                .iter()
                .map(|n| MediaPolicy::from_name(n).ok_or_else(|| format!("unknown media {n:?}")))
                .collect::<Result<_, _>>()?;
        }
        if !self.fault_scenarios.is_empty() {
            space.fault_scenarios = self.fault_scenarios.clone();
        }
        if let Some(y) = self.yield_trials {
            if y == 0 {
                return Err("yield_trials must be ≥ 1".to_string());
            }
            space.trials.yield_trials = y;
        }
        if let Some(r) = self.repair_trials {
            if r == 0 {
                return Err("repair_trials must be ≥ 1".to_string());
            }
            space.trials.repair_trials = r;
        }
        Ok(space)
    }
}

/// Resolves a search request's strategy fields. The error is the
/// `bad_request` detail.
pub fn resolve_strategy(
    name: Option<&str>,
    budget: Option<usize>,
    seed: Option<u64>,
    eta: Option<usize>,
) -> Result<Strategy, String> {
    match name.unwrap_or("grid") {
        "grid" => Ok(Strategy::Grid { budget }),
        "random" => Ok(Strategy::Random {
            samples: budget.unwrap_or(16),
            seed: seed.unwrap_or(11),
        }),
        "adaptive" => Ok(Strategy::Adaptive {
            budget: budget.unwrap_or(16),
            eta: eta.unwrap_or(2).max(2),
        }),
        other => Err(format!(
            "unknown strategy {other:?} (known: grid, random, adaptive)"
        )),
    }
}

/// One slot of a `batch` response: a report or a rendered `EvalError`, in
/// the request's spec order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct BatchItem {
    /// The report, when the spec evaluated.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub report: Option<DeployabilityReport>,
    /// The rendered `EvalError`, when it did not.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

impl BatchItem {
    /// A successful slot.
    pub fn ok(report: DeployabilityReport) -> Self {
        Self {
            report: Some(report),
            error: None,
        }
    }

    /// A failed slot.
    pub fn err(error: impl Into<String>) -> Self {
        Self {
            report: None,
            error: Some(error.into()),
        }
    }
}

/// The `status` payload. Every field observes the live server, so status
/// bodies are **diagnostics** — never part of the byte-identity contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct StatusBody {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// Connections currently open.
    pub live_connections: u64,
    /// Request lines received since start (all ops, malformed included).
    pub requests: u64,
    /// Work requests completed (a response was produced).
    pub completed: u64,
    /// Work requests rejected by admission control.
    pub rejected: u64,
    /// Work requests currently executing on workers.
    pub inflight: u64,
    /// Work requests admitted and waiting for a worker.
    pub queued: u64,
    /// Worker-pool size.
    pub workers: usize,
    /// Admission cap on the pending queue.
    pub queue_cap: usize,
    /// Whether the server is draining (shutdown requested).
    pub draining: bool,
    /// Distinct topologies in the shared generation cache.
    pub cache_entries: usize,
    /// Generation-cache hits since start.
    pub cache_hits: usize,
    /// Generation-cache misses since start.
    pub cache_misses: usize,
    /// Per-tier artifact-cache statistics, in pipeline order. `default`
    /// so clients tolerate status bodies from older servers.
    #[serde(default)]
    pub artifact_tiers: Vec<TierStatus>,
}

/// One artifact-cache tier's statistics inside a [`StatusBody`]. Mirrors
/// `pd_core::artifacts::TierStats` on the wire; like the rest of the
/// status body these counters are diagnostics, never part of the
/// byte-identity contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TierStatus {
    /// Tier stage name (lowercase, e.g. `"place"`).
    pub stage: String,
    /// Snapshots currently cached in this tier.
    pub entries: u64,
    /// Prefix adoptions credited to this tier since start.
    pub hits: u64,
    /// Probes that found nothing at this tier since start.
    pub misses: u64,
    /// Snapshots evicted by the per-tier LRU bound since start.
    pub evictions: u64,
}

/// One response line. Exactly one of the payload fields is populated on
/// `ok: true`; `error` is populated on `ok: false`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Response {
    /// The request's `id`, echoed.
    #[serde(default, skip_serializing_if = "Value::is_null")]
    pub id: Value,
    /// Whether the request produced its payload.
    pub ok: bool,
    /// `evaluate` payload.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub report: Option<DeployabilityReport>,
    /// `batch` payload, in spec order.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub results: Option<Vec<BatchItem>>,
    /// `search` payload, in plan order.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub records: Option<Vec<PointRecord>>,
    /// Set on a `search` response whose run was interrupted (deadline or
    /// shutdown) before exhausting its plan — the records are a valid
    /// prefix, but not the complete deterministic answer.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub interrupted: Option<bool>,
    /// `status` payload.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub status: Option<StatusBody>,
    /// `shutdown` acknowledgement: the server is draining.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub draining: Option<bool>,
    /// The failure, when `ok` is false: a protocol rejection
    /// (`bad_request: …` / `overloaded: …` / `shutting_down: …`) or a
    /// rendered `EvalError`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

impl Response {
    fn empty(id: Value, ok: bool) -> Self {
        Self {
            id,
            ok,
            report: None,
            results: None,
            records: None,
            interrupted: None,
            status: None,
            draining: None,
            error: None,
        }
    }

    /// A successful `evaluate` response.
    pub fn report(id: Value, report: DeployabilityReport) -> Self {
        Self {
            report: Some(report),
            ..Self::empty(id, true)
        }
    }

    /// A successful `batch` response.
    pub fn results(id: Value, results: Vec<BatchItem>) -> Self {
        Self {
            results: Some(results),
            ..Self::empty(id, true)
        }
    }

    /// A successful `search` response.
    pub fn records(id: Value, records: Vec<PointRecord>, interrupted: bool) -> Self {
        Self {
            records: Some(records),
            interrupted: interrupted.then_some(true),
            ..Self::empty(id, true)
        }
    }

    /// A `status` response.
    pub fn status(id: Value, status: StatusBody) -> Self {
        Self {
            status: Some(status),
            ..Self::empty(id, true)
        }
    }

    /// A `shutdown` acknowledgement.
    pub fn draining(id: Value) -> Self {
        Self {
            draining: Some(true),
            ..Self::empty(id, true)
        }
    }

    /// A failure response carrying an already-prefixed error string (a
    /// rendered `EvalError`, or one of the protocol prefixes).
    pub fn error(id: Value, error: impl Into<String>) -> Self {
        Self {
            error: Some(error.into()),
            ..Self::empty(id, false)
        }
    }

    /// A typed `bad_request` failure.
    pub fn bad_request(id: Value, detail: impl std::fmt::Display) -> Self {
        Self::error(id, format!("{ERR_BAD_REQUEST}: {detail}"))
    }

    /// A typed `overloaded` admission rejection.
    pub fn overloaded(id: Value, queue_cap: usize) -> Self {
        Self::error(
            id,
            format!("{ERR_OVERLOADED}: pending queue at capacity ({queue_cap}); retry later"),
        )
    }

    /// A typed `shutting_down` rejection.
    pub fn shutting_down(id: Value) -> Self {
        Self::error(
            id,
            format!("{ERR_SHUTTING_DOWN}: server is draining and accepts no new work"),
        )
    }

    /// Whether the error (if any) carries the given taxonomy prefix.
    pub fn error_is(&self, prefix: &str) -> bool {
        self.error
            .as_deref()
            .is_some_and(|e| e.starts_with(prefix))
    }

    /// The response's JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("Response serializes")
    }
}

/// Parses one response line.
pub fn parse_response(line: &str) -> Result<Response, String> {
    serde_json::from_str(line.trim()).map_err(|e| e.to_string())
}

/// Outcome of one bounded line read.
#[derive(Debug, PartialEq, Eq)]
pub enum LineRead {
    /// A complete line (newline stripped; the final unterminated line
    /// before EOF also lands here).
    Line(String),
    /// The line exceeded the bound. `discarded` bytes were dropped up to
    /// (not including) the terminating newline — or EOF — and the reader
    /// is positioned after it: the connection survives.
    TooLong {
        /// Bytes dropped.
        discarded: usize,
    },
    /// Clean end of stream.
    Eof,
}

/// Reads one `\n`-terminated line, holding at most `max` bytes in memory.
///
/// This is the server's defense against a client (or a port scanner)
/// streaming an unbounded line: memory stays bounded, the oversized line
/// is consumed to its newline, and the caller can answer with a typed
/// `bad_request` and keep the connection.
pub fn read_bounded_line(
    r: &mut impl std::io::BufRead,
    max: usize,
) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match r.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(finish_line(buf))
            });
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if buf.len() + pos > max {
                let discarded = buf.len() + pos;
                r.consume(pos + 1);
                return Ok(LineRead::TooLong { discarded });
            }
            buf.extend_from_slice(&chunk[..pos]);
            r.consume(pos + 1);
            return Ok(LineRead::Line(finish_line(buf)));
        }
        let n = chunk.len();
        if buf.len() + n > max {
            let mut discarded = buf.len() + n;
            r.consume(n);
            // Keep discarding until the newline (or EOF) so the *next*
            // read starts on a fresh line.
            loop {
                let chunk = match r.fill_buf() {
                    Ok(c) => c,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                };
                if chunk.is_empty() {
                    return Ok(LineRead::TooLong { discarded });
                }
                if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
                    discarded += pos;
                    r.consume(pos + 1);
                    return Ok(LineRead::TooLong { discarded });
                }
                discarded += chunk.len();
                let n = chunk.len();
                r.consume(n);
            }
        }
        buf.extend_from_slice(chunk);
        r.consume(n);
    }
}

fn finish_line(mut buf: Vec<u8>) -> String {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8_lossy(&buf).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn spec() -> WireSpec {
        WireSpec {
            family: "fat-tree".into(),
            servers: 64,
            speed_gbps: 100.0,
            seed: 7,
            hall: "hall-std".into(),
            media: "media-std".into(),
            fault_scenarios: 0,
            yield_trials: 5,
            repair_trials: 2,
        }
    }

    fn round_trip_request(req: &Request) {
        let line = req.to_json_line();
        let parsed = parse_request(&line).expect("request parses back");
        assert_eq!(&parsed, req);
        assert_eq!(parsed.to_json_line(), line, "byte-stable round trip");
    }

    fn round_trip_response(resp: &Response) {
        let line = resp.to_json_line();
        let parsed = parse_response(&line).expect("response parses back");
        assert_eq!(&parsed, resp);
        assert_eq!(parsed.to_json_line(), line, "byte-stable round trip");
    }

    #[test]
    fn every_request_variant_round_trips() {
        round_trip_request(&Request::evaluate(json!("r1"), spec()));
        round_trip_request(&Request {
            specs: Some(vec![spec(), spec()]),
            deadline_ms: Some(2500),
            ..Request::bare(json!(42), Op::Batch)
        });
        round_trip_request(&Request {
            space: Some(WireSpace {
                families: vec!["fat-tree".into()],
                servers: vec![64, 128],
                yield_trials: Some(4),
                ..WireSpace::default()
            }),
            strategy: Some("random".into()),
            budget: Some(8),
            seed: Some(3),
            ..Request::bare(json!({"k": 1}), Op::Search)
        });
        round_trip_request(&Request::bare(Value::Null, Op::Status));
        round_trip_request(&Request::bare(json!("bye"), Op::Shutdown));
    }

    #[test]
    fn every_response_variant_round_trips() {
        // A report-bearing response round-trips through the full
        // DeployabilityReport; build one via a real (tiny) evaluation.
        let mut dspec = pd_core::DesignSpec::new(
            "proto-rt",
            pd_core::TopologySpec::FatTree {
                k: 4,
                speed: pd_geometry::Gbps::new(100.0),
            },
        );
        dspec.yields.trials = 2;
        dspec.repair.trials = 1;
        let report = pd_core::evaluate(&dspec).expect("tiny evaluation").report;

        round_trip_response(&Response::report(json!("a"), report.clone()));
        round_trip_response(&Response::results(
            json!("b"),
            vec![BatchItem::ok(report), BatchItem::err("placement: hall full")],
        ));
        round_trip_response(&Response::records(json!("c"), Vec::new(), true));
        round_trip_response(&Response::status(
            json!("d"),
            StatusBody {
                uptime_ms: 12,
                connections: 3,
                live_connections: 1,
                requests: 9,
                completed: 7,
                rejected: 1,
                inflight: 1,
                queued: 0,
                workers: 2,
                queue_cap: 64,
                draining: false,
                cache_entries: 2,
                cache_hits: 5,
                cache_misses: 2,
                artifact_tiers: vec![TierStatus {
                    stage: "place".into(),
                    entries: 2,
                    hits: 4,
                    misses: 3,
                    evictions: 1,
                }],
            },
        ));
        round_trip_response(&Response::draining(json!("e")));
        round_trip_response(&Response::bad_request(Value::Null, "no such op"));
        round_trip_response(&Response::overloaded(json!(1), 64));
        round_trip_response(&Response::shutting_down(json!(2)));
    }

    #[test]
    fn error_taxonomy_prefixes_are_detectable() {
        assert!(Response::bad_request(Value::Null, "x").error_is(ERR_BAD_REQUEST));
        assert!(Response::overloaded(Value::Null, 8).error_is(ERR_OVERLOADED));
        assert!(Response::shutting_down(Value::Null).error_is(ERR_SHUTTING_DOWN));
        assert!(!Response::error(Value::Null, "placement: full").error_is(ERR_BAD_REQUEST));
        assert!(!Response::draining(Value::Null).error_is(ERR_BAD_REQUEST));
    }

    #[test]
    fn unknown_fields_and_ops_are_rejected() {
        assert!(parse_request(r#"{"op":"evaluate","sepc":{}}"#).is_err());
        assert!(parse_request(r#"{"op":"frobnicate"}"#).is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request("").is_err());
    }

    #[test]
    fn spec_defaults_fill_in() {
        let req = parse_request(r#"{"id":"x","op":"evaluate","spec":{"family":"jellyfish","servers":96}}"#)
            .expect("minimal spec parses");
        let ws = req.spec.expect("spec present");
        assert_eq!(ws.speed_gbps, 100.0);
        assert_eq!(ws.seed, 11);
        assert_eq!(ws.hall, "hall-std");
        assert_eq!(ws.media, "media-std");
        assert_eq!(ws.fault_scenarios, 0);
        let (point, trials) = ws.resolve().expect("resolves");
        assert_eq!(point.family.name(), "jellyfish");
        assert_eq!(point.servers, 96);
        assert_eq!(trials, TrialProfile::default());
    }

    #[test]
    fn wire_spec_round_trips_through_a_point() {
        let (point, trials) = spec().resolve().expect("resolves");
        let back = WireSpec::for_point(&point, &trials);
        assert_eq!(back, spec());
        assert_eq!(point.label(), "fat-tree/s64/g100/x7/hall-std/media-std/f0");
    }

    #[test]
    fn wire_spec_validation_is_typed() {
        let bad = |f: fn(&mut WireSpec)| {
            let mut s = spec();
            f(&mut s);
            s.resolve().expect_err("must reject")
        };
        assert!(bad(|s| s.family = "hypercube".into()).contains("unknown family"));
        assert!(bad(|s| s.hall = "hall-huge".into()).contains("unknown hall"));
        assert!(bad(|s| s.media = "fso".into()).contains("unknown media"));
        assert!(bad(|s| s.servers = 0).contains("servers"));
        assert!(bad(|s| s.speed_gbps = f64::NAN).contains("speed_gbps"));
        assert!(bad(|s| s.speed_gbps = -1.0).contains("speed_gbps"));
        assert!(bad(|s| s.yield_trials = 0).contains("trials"));
    }

    #[test]
    fn wire_space_resolves_with_defaults_and_rejects_unknowns() {
        let space = WireSpace::default().resolve().expect("default space");
        assert_eq!(space, ParamSpace::default());

        let narrowed = WireSpace {
            families: vec!["fat-tree".into(), "leaf-spine".into()],
            servers: vec![64],
            halls: vec!["dense".into()],
            repair_trials: Some(1),
            ..WireSpace::default()
        }
        .resolve()
        .expect("narrowed space");
        assert_eq!(narrowed.len(), 2);
        assert_eq!(narrowed.halls, vec![HallVariant::Dense]);
        assert_eq!(narrowed.trials.repair_trials, 1);

        assert!(WireSpace {
            families: vec!["torus".into()],
            ..WireSpace::default()
        }
        .resolve()
        .is_err());
        assert!(WireSpace {
            servers: vec![0],
            ..WireSpace::default()
        }
        .resolve()
        .is_err());
    }

    #[test]
    fn strategies_resolve_with_defaults() {
        assert_eq!(
            resolve_strategy(None, Some(5), None, None).unwrap(),
            Strategy::Grid { budget: Some(5) }
        );
        assert_eq!(
            resolve_strategy(Some("random"), None, Some(3), None).unwrap(),
            Strategy::Random { samples: 16, seed: 3 }
        );
        assert_eq!(
            resolve_strategy(Some("adaptive"), Some(4), None, Some(3)).unwrap(),
            Strategy::Adaptive { budget: 4, eta: 3 }
        );
        assert!(resolve_strategy(Some("annealing"), None, None, None).is_err());
    }

    #[test]
    fn salvage_id_recovers_what_it_can() {
        assert_eq!(salvage_id(r#"{"id":"r9","op":"nope"}"#), json!("r9"));
        assert_eq!(salvage_id(r#"{"id":7,"op":[]}"#), json!(7));
        assert_eq!(salvage_id("garbage"), Value::Null);
        assert_eq!(salvage_id(r#"{"op":"status"}"#), Value::Null);
    }

    #[test]
    fn bounded_line_reads() {
        use std::io::BufReader;
        let data = b"short\nexactly10\n\nthis line is far too long for the bound\nnext\nlast";
        let mut r = BufReader::new(&data[..]);
        let max = 10;
        assert_eq!(read_bounded_line(&mut r, max).unwrap(), LineRead::Line("short".into()));
        assert_eq!(
            read_bounded_line(&mut r, max).unwrap(),
            LineRead::Line("exactly10".into())
        );
        assert_eq!(read_bounded_line(&mut r, max).unwrap(), LineRead::Line(String::new()));
        assert_eq!(
            read_bounded_line(&mut r, max).unwrap(),
            LineRead::TooLong { discarded: 38 }
        );
        assert_eq!(read_bounded_line(&mut r, max).unwrap(), LineRead::Line("next".into()));
        // Final unterminated line still delivered, then EOF.
        assert_eq!(read_bounded_line(&mut r, max).unwrap(), LineRead::Line("last".into()));
        assert_eq!(read_bounded_line(&mut r, max).unwrap(), LineRead::Eof);

        // Oversized line that hits EOF before any newline.
        let mut r = BufReader::new(&b"wayyyy too long without newline"[..]);
        assert!(matches!(
            read_bounded_line(&mut r, 5).unwrap(),
            LineRead::TooLong { .. }
        ));
        assert_eq!(read_bounded_line(&mut r, 5).unwrap(), LineRead::Eof);

        // CRLF is tolerated.
        let mut r = BufReader::new(&b"crlf\r\n"[..]);
        assert_eq!(read_bounded_line(&mut r, 10).unwrap(), LineRead::Line("crlf".into()));
    }
}
