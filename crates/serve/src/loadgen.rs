//! A seeded closed-loop load generator — and a live determinism checker.
//!
//! `N` connections each send `M` `evaluate` requests, one at a time
//! (closed loop: the next request leaves only after the previous response
//! arrives). Specs are drawn **deterministically** from a [`ParamSpace`]
//! by a per-connection [`SplitMix64`] stream seeded from `(seed, conn)`,
//! so two runs with the same config — against servers with any `--jobs`
//! count, any cache state, any interleaving — request exactly the same
//! spec sequence.
//!
//! That makes the harness double as the serving layer's determinism
//! check: every successful response body (the response minus its `id`,
//! re-serialized through `serde_json`'s sorted-key canonical form) is
//! recorded per spec label, and any two responses for the same label must
//! be **byte-identical** — across requests, connections, and runs. The
//! outcome carries a digest over the canonical bodies so two separate
//! invocations (say `--jobs 1` vs `--jobs 8` servers) can be compared
//! with a single number.
//!
//! Load-dependent rejections (`overloaded`, `shutting_down`) are counted
//! but excluded from the body record — they describe the server's moment,
//! not the design. Typed evaluation errors are deterministic and are held
//! to the same byte-identity bar as reports.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pd_core::resilience::fnv1a;
use pd_search::{ParamSpace, TrialProfile};
use pd_topology::gen::SplitMix64;
use serde_json::Value;

use crate::client::Client;
use crate::proto::{Op, Request, TierStatus, WireSpec, ERR_OVERLOADED, ERR_SHUTTING_DOWN};

/// A load run's shape. Every field participates in determinism except
/// `addr`.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// The server to drive.
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Requests per connection.
    pub requests: usize,
    /// Root seed for the per-connection draw streams.
    pub seed: u64,
    /// The space specs are drawn from.
    pub space: ParamSpace,
    /// Optional per-request deadline to attach.
    pub deadline_ms: Option<u64>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4717".to_string(),
            connections: 4,
            requests: 16,
            seed: 11,
            space: default_space(),
            deadline_ms: None,
        }
    }
}

/// The default load space: every family at one modest size, no fault
/// sweep, small trial counts — requests that are cheap enough to push
/// real concurrency through a test server yet still exercise the whole
/// pipeline.
pub fn default_space() -> ParamSpace {
    ParamSpace {
        servers: vec![128],
        fault_scenarios: vec![0],
        trials: TrialProfile {
            yield_trials: 5,
            repair_trials: 2,
        },
        ..ParamSpace::default()
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadgenOutcome {
    /// Requests sent.
    pub sent: usize,
    /// Successful (`ok: true`) responses.
    pub ok: usize,
    /// Typed evaluation errors (deterministic; still body-checked).
    pub eval_errors: usize,
    /// Admission rejections (`overloaded` / `shutting_down`).
    pub rejected: usize,
    /// Distinct spec labels observed.
    pub distinct_specs: usize,
    /// Byte-identity violations: any label whose responses disagreed.
    /// Empty on a healthy deterministic server.
    pub mismatches: Vec<String>,
    /// FNV-1a digest over `(label, canonical body)` pairs in sorted
    /// order. Equal configs against equal-code servers yield equal
    /// digests, whatever the servers' job counts.
    pub body_digest: u64,
    /// Wall clock for the whole run.
    pub wall: Duration,
    /// Completed-response latency percentiles.
    pub latency: LatencySummary,
    /// The server's per-tier artifact-cache statistics, fetched with one
    /// `status` request after the load completes. Diagnostics only —
    /// deliberately excluded from [`LoadgenOutcome::body_digest`], which
    /// must stay equal across cache states. Empty if the fetch failed
    /// (the load results still stand).
    pub artifact_tiers: Vec<TierStatus>,
}

/// Latency percentiles over completed (non-rejected) responses.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Slowest observed.
    pub max: Duration,
}

impl LoadgenOutcome {
    /// Completed responses per second.
    pub fn throughput_rps(&self) -> f64 {
        let done = (self.ok + self.eval_errors) as f64;
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            done / secs
        } else {
            0.0
        }
    }

    /// Whether every repeated spec got byte-identical bodies.
    pub fn bodies_consistent(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// The human-readable report the `loadgen` bin prints.
    pub fn render_summary(&self) -> String {
        let mut out = format!(
            "loadgen: {} sent, {} ok, {} eval-errors, {} rejected in {:.2?} \
             ({:.1} responses/s)\n\
             latency: p50 {:.2?}  p90 {:.2?}  p99 {:.2?}  max {:.2?}\n\
             determinism: {} distinct spec(s), {} mismatch(es), body digest {:016x}\n",
            self.sent,
            self.ok,
            self.eval_errors,
            self.rejected,
            self.wall,
            self.throughput_rps(),
            self.latency.p50,
            self.latency.p90,
            self.latency.p99,
            self.latency.max,
            self.distinct_specs,
            self.mismatches.len(),
            self.body_digest,
        );
        out.push_str(&render_tier_table(&self.artifact_tiers));
        out
    }
}

/// Renders per-tier artifact-cache statistics as indented lines, one per
/// tier, in pipeline order; empty input renders nothing. Shared by the
/// loadgen summary and the `client` bin's `status` pretty-printer.
pub fn render_tier_table(tiers: &[TierStatus]) -> String {
    if tiers.is_empty() {
        return String::new();
    }
    let mut out = String::from("artifact cache (per tier): hits / misses / evictions / entries\n");
    for t in tiers {
        out.push_str(&format!(
            "  {:<9} {:>6} / {:>6} / {:>6} / {:>6}\n",
            t.stage, t.hits, t.misses, t.evictions, t.entries
        ));
    }
    out
}

/// The canonical comparison form of a response: its JSON with the `id`
/// removed (ids differ per request by design), re-serialized through
/// `serde_json`'s sorted-key `Value` so field order can never alias a
/// real difference.
pub fn canonical_body(response_line: &str) -> Result<String, String> {
    let mut v: Value = serde_json::from_str(response_line.trim()).map_err(|e| e.to_string())?;
    if let Some(obj) = v.as_object_mut() {
        obj.remove("id");
    }
    serde_json::to_string(&v).map_err(|e| e.to_string())
}

/// Whether a response line is a load-dependent rejection (excluded from
/// the byte-identity record).
fn is_rejection(line: &str) -> bool {
    match serde_json::from_str::<Value>(line.trim()) {
        Ok(v) => v
            .get("error")
            .and_then(Value::as_str)
            .is_some_and(|e| e.starts_with(ERR_OVERLOADED) || e.starts_with(ERR_SHUTTING_DOWN)),
        Err(_) => false,
    }
}

/// The deterministic spec stream for one connection.
fn draw_stream(cfg: &LoadgenConfig, conn: usize) -> impl Iterator<Item = WireSpec> + '_ {
    // Seed each connection's stream independently of every other's: a
    // splitmix step over (root seed, connection index) decorrelates
    // adjacent seeds without any cross-connection coordination.
    let mut rng = SplitMix64::new(
        pd_core::resilience::splitmix64(cfg.seed ^ (conn as u64).wrapping_mul(0x9E3779B97F4A7C15)),
    );
    let space = &cfg.space;
    (0..cfg.requests).map(move |_| {
        let point = space.point(rng.below(space.len().max(1)));
        WireSpec::for_point(&point, &space.trials)
    })
}

/// Shared tally the connection threads fold into.
#[derive(Default)]
struct Tally {
    ok: usize,
    eval_errors: usize,
    rejected: usize,
    latencies: Vec<Duration>,
    /// label → canonical body first seen for it.
    bodies: BTreeMap<String, String>,
    mismatches: Vec<String>,
    io_errors: Vec<String>,
}

impl Tally {
    fn record_body(&mut self, label: &str, body: String) {
        match self.bodies.get(label) {
            None => {
                self.bodies.insert(label.to_string(), body);
            }
            Some(prev) if *prev == body => {}
            Some(_) => self.mismatches.push(format!(
                "spec {label}: response bodies differ across requests"
            )),
        }
    }
}

/// Runs the load. Connection threads run their closed loops concurrently;
/// an I/O failure on one connection fails the run (a load test against a
/// dying server is not a measurement).
pub fn run_loadgen(cfg: &LoadgenConfig) -> std::io::Result<LoadgenOutcome> {
    if cfg.space.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "loadgen space is empty",
        ));
    }
    let tally = Mutex::new(Tally::default());
    let started = Instant::now();

    std::thread::scope(|s| {
        for conn in 0..cfg.connections {
            let tally = &tally;
            s.spawn(move || {
                let result = drive_connection(cfg, conn, tally);
                if let Err(e) = result {
                    tally
                        .lock()
                        .expect("tally lock")
                        .io_errors
                        .push(format!("connection {conn}: {e}"));
                }
            });
        }
    });

    let wall = started.elapsed();
    let mut tally = tally.into_inner().expect("tally lock");
    if let Some(first) = tally.io_errors.first() {
        return Err(std::io::Error::other(first.clone()));
    }

    tally.latencies.sort();
    let pct = |latencies: &[Duration], p: f64| -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[idx]
    };
    let latency = LatencySummary {
        p50: pct(&tally.latencies, 0.50),
        p90: pct(&tally.latencies, 0.90),
        p99: pct(&tally.latencies, 0.99),
        max: tally.latencies.last().copied().unwrap_or_default(),
    };

    let mut digest_input = Vec::new();
    for (label, body) in &tally.bodies {
        digest_input.extend_from_slice(label.as_bytes());
        digest_input.push(0);
        digest_input.extend_from_slice(body.as_bytes());
        digest_input.push(0);
    }

    Ok(LoadgenOutcome {
        sent: cfg.connections * cfg.requests,
        ok: tally.ok,
        eval_errors: tally.eval_errors,
        rejected: tally.rejected,
        distinct_specs: tally.bodies.len(),
        mismatches: std::mem::take(&mut tally.mismatches),
        body_digest: fnv1a(&digest_input),
        wall,
        latency,
        artifact_tiers: fetch_tier_stats(cfg).unwrap_or_default(),
    })
}

/// Fetches the server's per-tier cache statistics with one `status`
/// round trip on a fresh connection. Best-effort: any failure yields
/// `None` rather than failing the measured load run.
fn fetch_tier_stats(cfg: &LoadgenConfig) -> Option<Vec<TierStatus>> {
    let mut client = Client::connect(cfg.addr.as_str()).ok()?;
    let resp = client.request(&Request::bare("loadgen-status", Op::Status)).ok()?;
    Some(resp.status?.artifact_tiers)
}

/// One connection's closed loop.
fn drive_connection(cfg: &LoadgenConfig, conn: usize, tally: &Mutex<Tally>) -> std::io::Result<()> {
    let mut client = Client::connect_retry(cfg.addr.as_str(), Duration::from_secs(5))?;
    for (r, wire) in draw_stream(cfg, conn).enumerate() {
        let label = {
            let (point, _) = wire
                .resolve()
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
            point.label()
        };
        let req = Request {
            deadline_ms: cfg.deadline_ms,
            ..Request::evaluate(Value::from(format!("c{conn}-r{r}")), wire)
        };
        let sent_at = Instant::now();
        client.send(&req)?;
        let Some(line) = client.recv_line()? else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-run",
            ));
        };
        let elapsed = sent_at.elapsed();

        let mut t = tally.lock().expect("tally lock");
        if is_rejection(&line) {
            t.rejected += 1;
            continue;
        }
        t.latencies.push(elapsed);
        let ok = serde_json::from_str::<Value>(line.trim())
            .ok()
            .and_then(|v| v.get("ok").and_then(Value::as_bool))
            .unwrap_or(false);
        if ok {
            t.ok += 1;
        } else {
            t.eval_errors += 1;
        }
        match canonical_body(&line) {
            Ok(body) => t.record_body(&label, body),
            Err(e) => t.mismatches.push(format!("spec {label}: unparseable response: {e}")),
        }
    }
    let _ = client.finish_sending();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_streams_are_deterministic_and_distinct_per_connection() {
        let cfg = LoadgenConfig::default();
        let a: Vec<WireSpec> = draw_stream(&cfg, 0).collect();
        let b: Vec<WireSpec> = draw_stream(&cfg, 0).collect();
        assert_eq!(a, b, "same (seed, conn) → same stream");
        assert_eq!(a.len(), cfg.requests);

        let other: Vec<WireSpec> = draw_stream(&cfg, 1).collect();
        assert_ne!(a, other, "different connections draw different streams");

        let mut reseeded = cfg.clone();
        reseeded.seed = 12;
        let c: Vec<WireSpec> = draw_stream(&reseeded, 0).collect();
        assert_ne!(a, c, "different root seed → different stream");
    }

    #[test]
    fn canonical_body_strips_id_and_sorts_keys() {
        let a = canonical_body(r#"{"id":"x","ok":true,"report":null}"#).unwrap();
        let b = canonical_body(r#"{"report":null,"ok":true,"id":999}"#).unwrap();
        assert_eq!(a, b, "id and key order must not distinguish bodies");
        assert!(!a.contains("id"));
    }

    #[test]
    fn rejections_are_recognized_by_prefix() {
        assert!(is_rejection(
            r#"{"id":1,"ok":false,"error":"overloaded: pending queue at capacity (8); retry later"}"#
        ));
        assert!(is_rejection(
            r#"{"id":1,"ok":false,"error":"shutting_down: server is draining and accepts no new work"}"#
        ));
        assert!(!is_rejection(r#"{"id":1,"ok":false,"error":"placement: hall full"}"#));
        assert!(!is_rejection(r#"{"id":1,"ok":true}"#));
    }

    #[test]
    fn tally_flags_divergent_bodies() {
        let mut t = Tally::default();
        t.record_body("a", "body1".into());
        t.record_body("a", "body1".into());
        assert!(t.mismatches.is_empty());
        t.record_body("a", "body2".into());
        assert_eq!(t.mismatches.len(), 1);
    }

    #[test]
    fn tier_table_renders_in_order_and_hides_when_absent() {
        assert_eq!(render_tier_table(&[]), "");
        let tiers = vec![
            TierStatus {
                stage: "place".into(),
                entries: 2,
                hits: 10,
                misses: 3,
                evictions: 1,
            },
            TierStatus {
                stage: "report".into(),
                entries: 5,
                hits: 0,
                misses: 5,
                evictions: 0,
            },
        ];
        let table = render_tier_table(&tiers);
        let place = table.find("place").expect("place row");
        let report = table.find("report").expect("report row");
        assert!(place < report, "rows keep pipeline order");
        assert!(table.starts_with("artifact cache (per tier):"));
    }

    #[test]
    fn percentiles_cover_edge_counts() {
        let mk = |n: usize| -> Vec<Duration> {
            (1..=n).map(|i| Duration::from_millis(i as u64)).collect()
        };
        let pct = |latencies: &[Duration], p: f64| -> Duration {
            if latencies.is_empty() {
                return Duration::ZERO;
            }
            let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
            latencies[idx]
        };
        assert_eq!(pct(&mk(0), 0.5), Duration::ZERO);
        assert_eq!(pct(&mk(1), 0.99), Duration::from_millis(1));
        assert_eq!(pct(&mk(100), 0.50), Duration::from_millis(50));
        assert_eq!(pct(&mk(100), 0.99), Duration::from_millis(99));
    }
}
