//! A minimal blocking client for the pd-serve protocol.
//!
//! One socket, one [`BufReader`], request/response helpers. The protocol
//! allows pipelining; this client exposes both the lock-step
//! [`Client::request`] round trip and the raw [`Client::send_line`] /
//! [`Client::recv_line`] halves the load generator pipelines with.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::proto::{
    parse_response, read_bounded_line, LineRead, Request, Response, DEFAULT_MAX_LINE_BYTES,
};

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Bound on one response line (reports are large; keep this generous).
    pub max_line_bytes: usize,
}

impl Client {
    /// Connects, with TCP_NODELAY so small request lines are not Nagled.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let _ = writer.set_nodelay(true);
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES * 16,
        })
    }

    /// Retries [`Client::connect`] until it succeeds or `budget` runs out
    /// — for tests and CI racing a just-spawned server to its bind.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        budget: Duration,
    ) -> std::io::Result<Client> {
        let started = Instant::now();
        loop {
            match Client::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) if started.elapsed() >= budget => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Sends one already-serialized request line (no trailing newline).
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Sends one request without waiting for the response (pipelining).
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        self.send_line(&req.to_json_line())
    }

    /// Receives the next response line; `None` on a clean EOF.
    pub fn recv_line(&mut self) -> std::io::Result<Option<String>> {
        match read_bounded_line(&mut self.reader, self.max_line_bytes)? {
            LineRead::Line(l) => Ok(Some(l)),
            LineRead::Eof => Ok(None),
            LineRead::TooLong { discarded } => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("response line over {} bytes ({discarded} discarded)", self.max_line_bytes),
            )),
        }
    }

    /// Receives and parses the next response; `None` on a clean EOF.
    pub fn recv(&mut self) -> std::io::Result<Option<Response>> {
        let Some(line) = self.recv_line()? else {
            return Ok(None);
        };
        parse_response(&line)
            .map(Some)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// One lock-step round trip. The connection closing before a response
    /// arrives is an error — every request is owed a response.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        self.send(req)?;
        self.recv()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }

    /// Half-closes the write side, telling the server this client is done
    /// sending (its reader sees EOF once the pipeline drains).
    pub fn finish_sending(&self) -> std::io::Result<()> {
        self.writer.shutdown(std::net::Shutdown::Write)
    }
}
