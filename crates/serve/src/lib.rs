//! # pd-serve — the evaluation daemon
//!
//! Every other entry point in this workspace is a one-shot CLI: each
//! invocation pays process startup and rebuilds the generation cache from
//! cold. The paper's §5 agenda (capability envelopes, digital twins)
//! implies the opposite workload — an *interactive* design assistant
//! answering many small "score this design" queries against a warm model.
//! This crate is that host: a std-only long-lived daemon over
//! [`std::net::TcpListener`], speaking a line-delimited JSON protocol.
//!
//! * [`proto`] — the wire protocol: [`proto::Request`] /
//!   [`proto::Response`], the [`proto::WireSpec`] design encoding, the
//!   typed error taxonomy (`bad_request` / `overloaded` /
//!   `shutting_down` / rendered `EvalError`s), and the bounded line
//!   reader that keeps hostile input from growing memory.
//! * [`server`] — [`server::Server`]: accept loop, per-connection
//!   pipelining with in-order responses, a bounded admission queue
//!   feeding a fixed worker pool through
//!   [`pd_core::batch::evaluate_many_controlled`], one process-wide
//!   tiered [`pd_core::batch::ArtifactCache`] (shared across connections
//!   and with search runs), and graceful drain on `shutdown`.
//! * [`client`] — a minimal blocking [`client::Client`] (the `client`
//!   bin, tests, and the load generator all use it).
//! * [`loadgen`] — [`loadgen::run_loadgen`]: a seeded closed-loop load
//!   harness that doubles as a live determinism checker, asserting
//!   byte-identical response bodies for identical specs.
//!
//! ## Determinism
//!
//! The serving layer adds concurrency, caching, and admission control —
//! none of which may touch response bytes. Evaluation responses are a
//! pure function of the request spec: byte-identical across worker
//! counts, cache states, connection interleavings, and server restarts.
//! Only `status` bodies and admission rejections (`overloaded`,
//! `shutting_down`) observe the wall clock, and both are typed so clients
//! and the load harness can exclude them. `docs/ARCHITECTURE.md`
//! ("Serving layer") specifies the protocol; `docs/OBSERVABILITY.md`
//! catalogs the `serve.*` metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod proto;
pub mod server;

pub use client::Client;
pub use loadgen::{render_tier_table, run_loadgen, LoadgenConfig, LoadgenOutcome};
pub use proto::{Op, Request, Response, WireSpec, WireSpace};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};

/// One-stop imports for binaries and tests.
pub mod prelude {
    pub use crate::client::Client;
    pub use crate::loadgen::{render_tier_table, run_loadgen, LoadgenConfig, LoadgenOutcome};
    pub use crate::proto::{
        parse_request, parse_response, read_bounded_line, BatchItem, LineRead, Op, Request,
        Response, StatusBody, TierStatus, WireSpec, WireSpace, ERR_BAD_REQUEST, ERR_OVERLOADED,
        ERR_SHUTTING_DOWN,
    };
    pub use crate::server::{Server, ServerConfig, ServerHandle, ServerStats};
}
