//! Interop with the `petgraph` ecosystem.
//!
//! The [`Network`] type owns identity and port-budget semantics; for
//! general-purpose graph algorithms (centrality, spanning trees, SCCs, …)
//! downstream users can lower it into a [`petgraph::graph::UnGraph`] whose
//! node weights are [`SwitchId`]s and edge weights are [`LinkId`]s, run any
//! petgraph algorithm, and map results back through the returned
//! [`PetgraphView`].

use crate::network::{LinkId, Network, SwitchId};
use petgraph::graph::{EdgeIndex, NodeIndex, UnGraph};
use std::collections::HashMap;

/// A lowered petgraph copy of a [`Network`] plus the id ⇄ index maps.
#[derive(Debug, Clone)]
pub struct PetgraphView {
    /// The undirected graph; node weight = switch id, edge weight = link id.
    pub graph: UnGraph<SwitchId, LinkId>,
    /// Switch id → node index.
    pub node_of: HashMap<SwitchId, NodeIndex>,
    /// Link id → edge index.
    pub edge_of: HashMap<LinkId, EdgeIndex>,
}

impl PetgraphView {
    /// Lowers a network into petgraph form.
    pub fn build(net: &Network) -> Self {
        let mut graph = UnGraph::with_capacity(net.switch_count(), net.link_count());
        let mut node_of = HashMap::with_capacity(net.switch_count());
        for s in net.switches() {
            node_of.insert(s.id, graph.add_node(s.id));
        }
        let mut edge_of = HashMap::with_capacity(net.link_count());
        for l in net.links() {
            edge_of.insert(l.id, graph.add_edge(node_of[&l.a], node_of[&l.b], l.id));
        }
        Self {
            graph,
            node_of,
            edge_of,
        }
    }

    /// Number of connected components (petgraph-backed; used as a
    /// cross-check oracle against [`Network::is_connected`]).
    pub fn connected_components(&self) -> usize {
        petgraph::algo::connected_components(&self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{fat_tree, jellyfish, JellyfishParams};
    use pd_geometry::Gbps;

    #[test]
    fn view_matches_network_shape() {
        let n = fat_tree(4, Gbps::new(100.0)).unwrap();
        let v = PetgraphView::build(&n);
        assert_eq!(v.graph.node_count(), n.switch_count());
        assert_eq!(v.graph.edge_count(), n.link_count());
        assert_eq!(v.connected_components(), 1);
    }

    #[test]
    fn petgraph_agrees_with_is_connected() {
        let mut n = jellyfish(&JellyfishParams::default()).unwrap();
        assert_eq!(PetgraphView::build(&n).connected_components(), 1);
        assert!(n.is_connected());
        // Disconnect one switch entirely.
        let victim = n.switches().next().unwrap().id;
        let links: Vec<_> = n.incident_links(victim).to_vec();
        for l in links {
            n.remove_link(l).unwrap();
        }
        assert_eq!(PetgraphView::build(&n).connected_components(), 2);
        assert!(!n.is_connected());
    }

    #[test]
    fn edge_weights_map_back_to_links() {
        let n = fat_tree(4, Gbps::new(100.0)).unwrap();
        let v = PetgraphView::build(&n);
        for l in n.links() {
            let e = v.edge_of[&l.id];
            assert_eq!(*v.graph.edge_weight(e).unwrap(), l.id);
            let (a, b) = v.graph.edge_endpoints(e).unwrap();
            let (wa, wb) = (*v.graph.node_weight(a).unwrap(), *v.graph.node_weight(b).unwrap());
            assert!((wa, wb) == (l.a, l.b) || (wa, wb) == (l.b, l.a));
        }
    }
}
