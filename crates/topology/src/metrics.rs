//! Abstract "goodness" metrics — the traditional yardsticks the paper says
//! are necessary but not sufficient (§1: "Traditional metrics of network
//! 'goodness' do not account for these costs and constraints").
//!
//! The headline experiment (E6) computes these side-by-side with the
//! physical-deployability metrics to show how the two rankings diverge.

use crate::csr::{self, CsrNet, Masks};
use crate::gen::SplitMix64;
use crate::network::{Network, SwitchId};
use crate::routing::{AllPairs, EcmpLoads};
use crate::traffic::TrafficMatrix;
use pd_geometry::Gbps;
use serde::{Deserialize, Serialize};

/// The abstract-goodness report for one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoodnessReport {
    /// Topology label.
    pub label: String,
    /// Switch count.
    pub switches: usize,
    /// Link count.
    pub links: usize,
    /// Server count.
    pub servers: u32,
    /// Hop-count diameter.
    pub diameter: u16,
    /// Mean hop distance between server-bearing switches.
    pub mean_server_distance: f64,
    /// Normalized sampled bisection bandwidth: min sampled balanced-cut
    /// capacity divided by (servers/2 × server port speed). ≥ 1.0 means
    /// full bisection (upper-bound estimate; see [`sampled_bisection`]).
    pub bisection_per_server: f64,
    /// Minimum edge-disjoint paths over sampled server-switch pairs.
    pub min_edge_disjoint_paths: usize,
    /// ECMP throughput proxy: per-server throughput (Gbps) under a uniform
    /// all-to-all matrix at the saturation scale factor.
    pub uniform_throughput_per_server: f64,
    /// Spectral gap `d − λ₂` if the network is regular (expander quality);
    /// `None` for irregular networks.
    pub spectral_gap: Option<f64>,
}

/// Parameters for goodness computation (sampling budgets, seed).
#[derive(Debug, Clone)]
pub struct GoodnessParams {
    /// Random balanced cuts to sample for the bisection estimate.
    pub bisection_samples: usize,
    /// Switch pairs to sample for edge-disjoint path counting.
    pub disjoint_pairs: usize,
    /// Seed for all sampling.
    pub seed: u64,
}

impl Default for GoodnessParams {
    fn default() -> Self {
        Self {
            bisection_samples: 32,
            disjoint_pairs: 16,
            seed: 1,
        }
    }
}

/// Computes the full goodness report.
pub fn goodness(net: &Network, params: &GoodnessParams) -> GoodnessReport {
    goodness_on(net, &CsrNet::build(net), params)
}

/// As [`goodness`], but on a prebuilt [`CsrNet`] of the same network so the
/// executor can thread one dense view through every kernel of an
/// evaluation (all-pairs BFS, ECMP, bisection cuts, max-flow sampling).
pub fn goodness_on(net: &Network, view: &CsrNet, params: &GoodnessParams) -> GoodnessReport {
    let ap = AllPairs::compute_on(view);
    let tm = TrafficMatrix::uniform_servers(net, Gbps::new(1.0));
    let loads = EcmpLoads::compute_on(view, &ap, &tm);
    let scale = loads.throughput_scale(net);
    let servers = net.server_count();
    let host_switches: Vec<SwitchId> = net
        .switches()
        .filter(|s| s.server_ports > 0)
        .map(|s| s.id)
        .collect();
    // Per-server throughput at saturation: each host switch sends
    // (hosts−1) × scale Gbps; divide by its server count.
    let uniform_throughput_per_server = if servers == 0 || !scale.is_finite() {
        0.0
    } else {
        let per_switch_out = (host_switches.len().saturating_sub(1)) as f64 * scale;
        let avg_servers_per_switch = f64::from(servers) / host_switches.len() as f64;
        per_switch_out / avg_servers_per_switch
    };

    let mut rng = SplitMix64::new(params.seed);
    let bisection_per_server = sampled_bisection_on(view, params.bisection_samples, &mut rng);

    let min_edge_disjoint_paths =
        sampled_min_disjoint_on(view, params.disjoint_pairs, &mut rng);

    GoodnessReport {
        label: net.label.clone(),
        switches: net.switch_count(),
        links: net.link_count(),
        servers,
        diameter: ap.diameter(),
        mean_server_distance: ap.mean_server_distance(net),
        bisection_per_server,
        min_edge_disjoint_paths,
        uniform_throughput_per_server,
        spectral_gap: spectral_gap_regular(net),
    }
}

/// Estimates bisection bandwidth by sampling random balanced partitions of
/// the server-bearing switches and taking the *minimum* observed cut
/// capacity, normalized by `servers/2 × port speed` (i.e. 1.0 = full
/// bisection for the sampled cuts).
///
/// This is an **upper bound** on the true bisection (any sampled cut is a
/// candidate minimum); it is the standard proxy when exact minimum bisection
/// (NP-hard) is out of reach, and sampling noise is controlled by the seed
/// so comparisons across topologies are reproducible.
pub fn sampled_bisection(net: &Network, samples: usize, rng: &mut SplitMix64) -> f64 {
    sampled_bisection_on(&CsrNet::build(net), samples, rng)
}

/// As [`sampled_bisection`], on a prebuilt [`CsrNet`]. Each sampled cut is
/// one shuffle of the host index list plus one dense BFS side-assignment
/// ([`csr::cut_capacity`]): transit switches join the side from which BFS
/// first reaches them, and the crossing capacity is summed in link index
/// order — RNG consumption and results match the id-based version this
/// replaces.
pub fn sampled_bisection_on(view: &CsrNet, samples: usize, rng: &mut SplitMix64) -> f64 {
    let hosts = view.host_switches();
    if hosts.len() < 2 {
        return 0.0;
    }
    let server_speed = view.switch_port_speed(hosts[0]);
    let full = f64::from(view.server_count()) / 2.0 * server_speed;

    let mut side_a = vec![false; view.switch_count()];
    let best = csr::with_scratch(|scratch| {
        let mut best = f64::INFINITY;
        for _ in 0..samples.max(1) {
            let mut shuffled = hosts.clone();
            rng.shuffle(&mut shuffled);
            side_a.fill(false);
            for &h in &shuffled[..shuffled.len() / 2] {
                side_a[h as usize] = true;
            }
            best = best.min(csr::cut_capacity(view, &hosts, &side_a, scratch));
        }
        best
    });
    if full > 0.0 {
        best / full
    } else {
        0.0
    }
}

/// Minimum edge-disjoint path count over sampled host pairs, as
/// unit-capacity max-flow on the shared dense view.
fn sampled_min_disjoint_on(view: &CsrNet, pairs: usize, rng: &mut SplitMix64) -> usize {
    let hosts = view.host_switches();
    if hosts.len() < 2 {
        return 0;
    }
    csr::with_scratch(|scratch| {
        let mut min = usize::MAX;
        for _ in 0..pairs.max(1) {
            let a = hosts[rng.below(hosts.len())];
            let mut b = hosts[rng.below(hosts.len())];
            while b == a {
                b = hosts[rng.below(hosts.len())];
            }
            min = min.min(csr::max_flow(view, a, b, None, scratch));
        }
        if min == usize::MAX {
            0
        } else {
            min
        }
    })
}

/// For a `d`-regular network (counting network links only), estimates the
/// second adjacency eigenvalue λ₂ by power iteration on the component
/// orthogonal to the all-ones vector, and returns the spectral gap `d − λ₂`.
/// Returns `None` if the network is not regular.
///
/// Expander graphs (Jellyfish, Xpander, Slim Fly) have large gaps; this is
/// the "attractive theoretical property" of §4.2 that the deployability
/// metrics get weighed against.
pub fn spectral_gap_regular(net: &Network) -> Option<f64> {
    let ids: Vec<SwitchId> = net.switches().map(|s| s.id).collect();
    let n = ids.len();
    if n < 2 {
        return None;
    }
    let index: std::collections::HashMap<SwitchId, usize> =
        ids.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let d = net.degree(ids[0]);
    if d == 0 || ids.iter().any(|&s| net.degree(s) != d) {
        return None;
    }
    // Adjacency rows (with multiplicity for parallel links).
    let adj: Vec<Vec<usize>> = ids
        .iter()
        .map(|&s| net.neighbors(s).map(|v| index[&v]).collect())
        .collect();

    // Deterministic pseudo-random start vector, orthogonalized against 1.
    let mut rng = SplitMix64::new(0xDEC0DE);
    let mut v: Vec<f64> = (0..n)
        .map(|_| rng.next_u64() as f64 / u64::MAX as f64 - 0.5)
        .collect();
    let mut lambda = 0.0;
    for _ in 0..300 {
        // Project out the all-ones direction (the λ₁ = d eigenvector).
        let mean = v.iter().sum::<f64>() / n as f64;
        for x in v.iter_mut() {
            *x -= mean;
        }
        // Multiply by adjacency.
        let mut w = vec![0.0; n];
        for (i, row) in adj.iter().enumerate() {
            for &j in row {
                w[j] += v[i];
            }
        }
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-30 {
            return Some(d as f64); // graph so symmetric the residual vanished
        }
        lambda = norm
            / v.iter()
                .map(|x| x * x)
                .sum::<f64>()
                .sqrt()
                .max(1e-300);
        for (x, y) in v.iter_mut().zip(&w) {
            *x = y / norm;
        }
    }
    Some(d as f64 - lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{fat_tree, jellyfish, leaf_spine, JellyfishParams};

    #[test]
    fn fat_tree_goodness_sane() {
        let n = fat_tree(4, Gbps::new(100.0)).unwrap();
        let g = goodness(&n, &GoodnessParams::default());
        assert_eq!(g.diameter, 4);
        assert_eq!(g.servers, 16);
        assert_eq!(g.min_edge_disjoint_paths, 2);
        // Fat-tree is full bisection: normalized bisection ≥ 1.
        assert!(
            g.bisection_per_server >= 0.99,
            "got {}",
            g.bisection_per_server
        );
        // Rearrangeably non-blocking: per-server uniform throughput should
        // be near the 100 Gbps NIC rate.
        assert!(
            g.uniform_throughput_per_server >= 50.0,
            "got {}",
            g.uniform_throughput_per_server
        );
        assert!(g.spectral_gap.is_none(), "fat-tree is not regular overall");
    }

    #[test]
    fn jellyfish_has_positive_spectral_gap() {
        let n = jellyfish(&JellyfishParams {
            tors: 40,
            network_degree: 6,
            servers_per_tor: 4,
            link_speed: Gbps::new(100.0),
            seed: 3,
        })
        .unwrap();
        let gap = spectral_gap_regular(&n).expect("regular");
        // Random 6-regular graphs are near-Ramanujan: λ₂ ≈ 2√5 ≈ 4.47,
        // gap ≈ 1.5; allow a broad band.
        assert!(gap > 0.5 && gap < 6.0, "gap {gap}");
    }

    #[test]
    fn irregular_network_has_no_gap() {
        let n = leaf_spine(4, 2, 8, 1, Gbps::new(100.0)).unwrap();
        assert!(spectral_gap_regular(&n).is_none());
    }

    #[test]
    fn bisection_sampling_is_deterministic() {
        let n = fat_tree(4, Gbps::new(100.0)).unwrap();
        let a = sampled_bisection(&n, 16, &mut SplitMix64::new(9));
        let b = sampled_bisection(&n, 16, &mut SplitMix64::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn jellyfish_beats_fat_tree_on_mean_distance_at_equal_gear() {
        // The §4.2 premise: expanders look better on paper. Same switch
        // count (20), same radix budget.
        let ft = fat_tree(4, Gbps::new(100.0)).unwrap();
        let jf = jellyfish(&JellyfishParams {
            tors: 20,
            network_degree: 3,
            servers_per_tor: 1,
            link_speed: Gbps::new(100.0),
            seed: 1,
        })
        .unwrap();
        let gp = GoodnessParams::default();
        let gft = goodness(&ft, &gp);
        let gjf = goodness(&jf, &gp);
        assert!(
            gjf.mean_server_distance < gft.mean_server_distance,
            "jellyfish {} vs fat-tree {}",
            gjf.mean_server_distance,
            gft.mean_server_distance
        );
    }
}

/// Throughput retention under random link failures.
///
/// §3.3: physical components "fail relatively often at scale", and designs
/// are judged on how gracefully capacity degrades while repairs are in
/// flight. This metric removes a random `fail_fraction` of links, recomputes
/// the ECMP throughput proxy, and reports retention statistics over
/// `samples` seeded draws. Expander families advertise strong retention —
/// one of the §4.2 "attractive theoretical properties" the deployability
/// metrics get weighed against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Fraction of links failed per sample.
    pub fail_fraction: f64,
    /// Mean throughput retained (failed scale ÷ healthy scale), over
    /// samples where traffic stayed connected.
    pub mean_retention: f64,
    /// Worst retention observed (0.0 if any sample disconnected traffic).
    pub worst_retention: f64,
    /// Fraction of samples where some demand became unroutable.
    pub disconnect_fraction: f64,
}

/// Computes [`ResilienceReport`] for a network under a uniform server
/// traffic matrix.
pub fn failure_resilience(
    net: &Network,
    fail_fraction: f64,
    samples: usize,
    seed: u64,
) -> ResilienceReport {
    failure_resilience_on(net, &CsrNet::build(net), fail_fraction, samples, seed)
}

/// As [`failure_resilience`], on a prebuilt [`CsrNet`]. Each sample masks
/// the failed links on the shared dense view ([`Masks`]) instead of cloning
/// the network and removing them; one masked ECMP evaluation yields both
/// the disconnect check (`routable < total demands`) and the degraded
/// throughput scale. The link shuffle consumes the RNG exactly as before,
/// so per-seed results remain stable.
pub fn failure_resilience_on(
    net: &Network,
    view: &CsrNet,
    fail_fraction: f64,
    samples: usize,
    seed: u64,
) -> ResilienceReport {
    let tm = TrafficMatrix::uniform_servers(net, Gbps::new(1.0));
    let demands = csr::IndexedDemands::build(view, &tm);

    let fail_count = ((view.link_count() as f64) * fail_fraction).round() as usize;
    let mut rng = SplitMix64::new(seed);
    let mut masks = Masks::healthy(view);

    csr::with_scratch(|scratch| {
        let healthy = csr::ecmp_evaluate(view, &demands, None, scratch).throughput_scale();

        let mut retained_sum = 0.0;
        let mut retained_n = 0usize;
        let mut worst = f64::INFINITY;
        let mut disconnects = 0usize;
        for _ in 0..samples.max(1) {
            let mut ids: Vec<u32> = (0..view.link_count() as u32).collect();
            rng.shuffle(&mut ids);
            masks.link_alive.fill(true);
            for &l in ids.iter().take(fail_count) {
                masks.link_alive[l as usize] = false;
            }
            let outcome = csr::ecmp_evaluate(view, &demands, Some(&masks), scratch);
            if outcome.routable < demands.total {
                disconnects += 1;
                worst = 0.0;
                continue;
            }
            let retention = if healthy > 0.0 && healthy.is_finite() {
                (outcome.throughput_scale() / healthy).min(1.0)
            } else {
                0.0
            };
            retained_sum += retention;
            retained_n += 1;
            worst = worst.min(retention);
        }
        ResilienceReport {
            fail_fraction,
            mean_retention: if retained_n == 0 {
                0.0
            } else {
                retained_sum / retained_n as f64
            },
            worst_retention: if worst.is_finite() { worst } else { 0.0 },
            disconnect_fraction: disconnects as f64 / samples.max(1) as f64,
        }
    })
}

#[cfg(test)]
mod resilience_tests {
    use super::*;
    use crate::gen::{jellyfish, leaf_spine, JellyfishParams};

    #[test]
    fn zero_failures_retain_everything() {
        let n = leaf_spine(4, 4, 8, 1, Gbps::new(100.0)).unwrap();
        let r = failure_resilience(&n, 0.0, 4, 1);
        assert_eq!(r.mean_retention, 1.0);
        assert_eq!(r.disconnect_fraction, 0.0);
    }

    #[test]
    fn more_failures_retain_less() {
        let n = jellyfish(&JellyfishParams {
            tors: 40,
            network_degree: 8,
            servers_per_tor: 4,
            link_speed: Gbps::new(100.0),
            seed: 2,
        })
        .unwrap();
        let light = failure_resilience(&n, 0.05, 8, 3);
        let heavy = failure_resilience(&n, 0.30, 8, 3);
        assert!(light.mean_retention >= heavy.mean_retention);
        assert!(light.mean_retention > 0.5);
        assert!(light.worst_retention <= light.mean_retention);
    }

    #[test]
    fn expander_retains_more_than_leaf_spine_under_heavy_failures() {
        // The §4.2 "attractive theoretical property" as a measured fact:
        // at equal-ish scale, the expander's rich path diversity degrades
        // more gracefully than the two-tier hierarchy.
        let ls = leaf_spine(16, 4, 8, 1, Gbps::new(100.0)).unwrap();
        let jf = jellyfish(&JellyfishParams {
            tors: 20,
            network_degree: 6,
            servers_per_tor: 7,
            link_speed: Gbps::new(100.0),
            seed: 5,
        })
        .unwrap();
        let r_ls = failure_resilience(&ls, 0.25, 10, 7);
        let r_jf = failure_resilience(&jf, 0.25, 10, 7);
        assert!(
            r_jf.disconnect_fraction <= r_ls.disconnect_fraction
                || r_jf.mean_retention > r_ls.mean_retention,
            "jellyfish {:?} vs leaf-spine {:?}",
            r_jf,
            r_ls
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let n = leaf_spine(6, 3, 8, 1, Gbps::new(100.0)).unwrap();
        let a = failure_resilience(&n, 0.2, 6, 11);
        let b = failure_resilience(&n, 0.2, 6, 11);
        assert_eq!(a, b);
    }
}
