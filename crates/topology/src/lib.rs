//! # pd-topology — abstract network substrate
//!
//! The paper's argument is that networks judged only at this level of
//! abstraction — a graph of switches and links — can look excellent while
//! being miserable to deploy. This crate provides that abstraction layer
//! *and* generators for every topology family the paper discusses, so the
//! rest of the toolkit can quantify the gap:
//!
//! * [`Network`]: a stable-ID multigraph of switches (role, layer, radix,
//!   block membership) and links (speed, OCS-mediated or direct).
//! * Generators ([`gen`]): folded Clos / fat-tree, leaf-spine, VL2,
//!   Jellyfish (random regular graphs), Xpander (k-lifts), Slim Fly (MMS
//!   graphs for prime q), flattened butterfly, FatClique-style hierarchical
//!   cliques, and Jupiter-evolved direct-connect blocks over an OCS layer.
//! * Abstract "goodness" [`metrics`]: diameter, mean shortest path, spectral
//!   gap / Cheeger bound, sampled bisection, edge-disjoint path diversity,
//!   and an ECMP throughput proxy under configurable [`traffic`] matrices.
//! * [`routing`]: BFS all-pairs distances, exact ECMP flow splitting, Yen's
//!   k-shortest paths.
//! * [`csr`]: the dense compressed-sparse-row kernel engine the routing and
//!   goodness layers run on — index-based BFS / ECMP / max-flow / cut
//!   kernels with reusable scratch, alive-masks for degraded evaluation,
//!   and index-ordered float accumulation so results are byte-stable.
//!
//! Everything is deterministic given an explicit seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod gen;
pub mod interop;
pub mod metrics;
pub mod network;
pub mod routing;
pub mod traffic;

pub use network::{BlockId, Link, LinkId, Network, NetworkError, Switch, SwitchId, SwitchRole};
pub use traffic::TrafficMatrix;
