//! Routing algorithms over the abstract network: BFS all-pairs distances,
//! exact ECMP flow splitting, Yen's k-shortest paths, and unit-capacity
//! max-flow for edge-disjoint path counting.
//!
//! These are the "traditional metrics of network goodness" machinery (paper
//! §1) — the abstraction layer whose blind spots the rest of the toolkit
//! exists to illuminate. The hot kernels (all-pairs BFS, ECMP splitting,
//! max-flow) run on the dense [`crate::csr`] engine; the types here keep
//! their id-based public shapes and the `compute_on` variants let callers
//! share one prebuilt [`CsrNet`] across kernels.

use crate::csr::{self, CsrNet};
use crate::network::{LinkId, Network, SwitchId};
use crate::traffic::TrafficMatrix;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

/// Dense all-pairs hop-count distances, with a stable switch-id ⇄ index map.
#[derive(Debug, Clone)]
pub struct AllPairs {
    ids: Vec<SwitchId>,
    index: HashMap<SwitchId, usize>,
    /// `dist[i][j]` in hops; `u16::MAX` when unreachable.
    dist: Vec<Vec<u16>>,
}

impl AllPairs {
    /// Runs BFS from every switch. `O(V·(V+E))`, fine for the scales the
    /// experiments use (≤ a few thousand switches).
    pub fn compute(net: &Network) -> Self {
        Self::compute_on(&CsrNet::build(net))
    }

    /// As [`AllPairs::compute`], but on a prebuilt [`CsrNet`] so the dense
    /// view can be shared with the other kernels. Rows fan out over
    /// [`csr::kernel_jobs`] worker threads in contiguous index chunks; each
    /// row is written by exactly one worker and BFS distances are
    /// schedule-invariant, so the matrix is byte-identical at any setting.
    pub fn compute_on(view: &CsrNet) -> Self {
        let ids: Vec<SwitchId> = view.switch_ids().to_vec();
        let index: HashMap<SwitchId, usize> =
            ids.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let dist = csr::all_pairs_dist(view);
        Self { ids, index, dist }
    }

    /// Hop distance between two switches; `None` if unreachable or unknown.
    pub fn distance(&self, a: SwitchId, b: SwitchId) -> Option<u16> {
        let (&i, &j) = (self.index.get(&a)?, self.index.get(&b)?);
        let d = self.dist[i][j];
        (d != u16::MAX).then_some(d)
    }

    /// Largest finite pairwise distance (0 for the empty network).
    pub fn diameter(&self) -> u16 {
        self.dist
            .iter()
            .flatten()
            .copied()
            .filter(|&d| d != u16::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Mean hop distance over ordered distinct reachable pairs.
    pub fn mean_distance(&self) -> f64 {
        let mut sum = 0u64;
        let mut count = 0u64;
        for (i, row) in self.dist.iter().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                if i != j && d != u16::MAX {
                    sum += u64::from(d);
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    /// Mean distance restricted to pairs of server-bearing switches — the
    /// latency proxy servers actually see.
    pub fn mean_server_distance(&self, net: &Network) -> f64 {
        let servers: Vec<usize> = self
            .ids
            .iter()
            .enumerate()
            .filter(|(_, id)| net.switch(**id).map(|s| s.server_ports > 0).unwrap_or(false))
            .map(|(i, _)| i)
            .collect();
        let mut sum = 0u64;
        let mut count = 0u64;
        for &i in &servers {
            for &j in &servers {
                if i != j && self.dist[i][j] != u16::MAX {
                    sum += u64::from(self.dist[i][j]);
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    /// The switch ids in index order.
    pub fn ids(&self) -> &[SwitchId] {
        &self.ids
    }
}

/// Per-link traffic loads from exact ECMP splitting of a traffic matrix.
#[derive(Debug, Clone, Default)]
pub struct EcmpLoads {
    /// Load per link in Gbps-equivalents (same unit as the demands).
    pub link_load: HashMap<LinkId, f64>,
}

impl EcmpLoads {
    /// Routes every demand of `tm` over all shortest paths with exact
    /// equal-split-per-hop semantics (the classic ECMP fluid model):
    /// at every switch, flow toward a destination divides equally among all
    /// next hops that lie on some shortest path.
    pub fn compute(net: &Network, ap: &AllPairs, tm: &TrafficMatrix) -> Self {
        Self::compute_on(&CsrNet::build(net), ap, tm)
    }

    /// As [`compute`](Self::compute), on a prebuilt [`CsrNet`].
    ///
    /// Destinations are processed in increasing switch-index order, each
    /// destination's switches in decreasing distance (counting sort, ties
    /// by index), and all load/inflow accumulation runs over dense
    /// index/adjacency-ordered arrays — the float-sum order is fixed by
    /// construction, so loads are byte-stable across processes. (The
    /// previous implementation iterated a `by_dst: HashMap` in RandomState
    /// order while summing `f64` shares.)
    pub fn compute_on(view: &CsrNet, ap: &AllPairs, tm: &TrafficMatrix) -> Self {
        debug_assert_eq!(view.switch_ids(), &ap.ids[..], "CSR/AllPairs index spaces differ");
        let demands = csr::IndexedDemands::build(view, tm);
        let link_load = csr::with_scratch(|scratch| {
            csr::ecmp_with_distances(view, &demands, &ap.dist, scratch);
            csr::take_loads(view, scratch)
                .into_iter()
                .enumerate()
                .filter(|&(_, v)| v > 0.0)
                .map(|(l, v)| (view.link_id(l as u32), v))
                .collect()
        });
        Self { link_load }
    }

    /// Maximum link utilization given each link's capacity; `0.0` for an
    /// empty load set.
    pub fn max_utilization(&self, net: &Network) -> f64 {
        self.link_load
            .iter()
            .filter_map(|(l, &load)| {
                let cap = net.link(*l)?.capacity().value();
                (cap > 0.0).then_some(load / cap)
            })
            .fold(0.0, f64::max)
    }

    /// Throughput proxy: the largest scale factor `α` such that `α × tm`
    /// fits within every link capacity under ECMP. (The inverse of max
    /// utilization.) Returns `f64::INFINITY` for an all-zero load.
    pub fn throughput_scale(&self, net: &Network) -> f64 {
        let mlu = self.max_utilization(net);
        if mlu == 0.0 {
            f64::INFINITY
        } else {
            1.0 / mlu
        }
    }
}

/// Counts edge-disjoint paths between two switches via unit-capacity
/// max-flow (BFS augmentation; each undirected link is one unit of capacity
/// in either direction, as in standard Menger analysis).
pub fn edge_disjoint_paths(net: &Network, s: SwitchId, t: SwitchId) -> usize {
    let view = CsrNet::build(net);
    let (Some(si), Some(ti)) = (view.switch_idx(s), view.switch_idx(t)) else {
        return 0;
    };
    csr::with_scratch(|scratch| csr::max_flow(&view, si, ti, None, scratch))
}

/// A simple path through the network, as a switch sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path(pub Vec<SwitchId>);

impl Path {
    /// Hop count.
    pub fn hops(&self) -> usize {
        self.0.len().saturating_sub(1)
    }
}

/// Yen's algorithm: up to `k` loop-free shortest paths from `s` to `t` by
/// hop count, in nondecreasing length order.
///
/// Candidate management is a hash set of every path ever enqueued (replacing
/// two linear `contains` scans) plus a binary heap keyed on hop count
/// (replacing a full re-sort per iteration) — `O(log n)` per candidate
/// instead of `O(n log n)`, with the selection order of the quadratic
/// version reproduced exactly: minimum hops first, ties broken toward the
/// most recently inserted candidate (what stable-sort-descending + `pop()`
/// used to yield).
pub fn k_shortest_paths(net: &Network, s: SwitchId, t: SwitchId, k: usize) -> Vec<Path> {
    let Some(first) = bfs_path(net, s, t, &Default::default(), &Default::default()) else {
        return Vec::new();
    };

    /// Max-heap entry ordered so `pop()` yields fewest hops, ties toward
    /// the largest insertion sequence number.
    #[derive(PartialEq, Eq)]
    struct Cand {
        hops: usize,
        seq: usize,
        path: Path,
    }
    impl Ord for Cand {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other.hops.cmp(&self.hops).then(self.seq.cmp(&other.seq))
        }
    }
    impl PartialOrd for Cand {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut seen: HashSet<Vec<SwitchId>> = HashSet::new();
    seen.insert(first.0.clone());
    let mut found = vec![first];
    let mut candidates: BinaryHeap<Cand> = BinaryHeap::new();
    let mut seq = 0usize;
    while found.len() < k {
        let last = found.last().expect("non-empty").clone();
        for i in 0..last.0.len() - 1 {
            let spur = last.0[i];
            let root = &last.0[..=i];
            // Ban edges used by previously found paths sharing this root.
            let mut banned_edges: HashSet<(SwitchId, SwitchId)> = Default::default();
            for p in &found {
                if p.0.len() > i + 1 && p.0[..=i] == *root {
                    let (a, b) = (p.0[i], p.0[i + 1]);
                    banned_edges.insert((a, b));
                    banned_edges.insert((b, a));
                }
            }
            // Ban root nodes except the spur itself.
            let banned_nodes: HashSet<SwitchId> = root[..i].iter().copied().collect();
            if let Some(tail) = bfs_path(net, spur, t, &banned_nodes, &banned_edges) {
                let mut full = root[..i].to_vec();
                full.extend(tail.0);
                // `seen` covers found ∪ pending: every popped candidate
                // moves into `found`, so one membership test replaces both
                // of the old linear scans.
                if seen.insert(full.clone()) {
                    let path = Path(full);
                    candidates.push(Cand {
                        hops: path.hops(),
                        seq,
                        path,
                    });
                    seq += 1;
                }
            }
        }
        match candidates.pop() {
            Some(best) => found.push(best.path),
            None => break,
        }
    }
    found
}

fn bfs_path(
    net: &Network,
    s: SwitchId,
    t: SwitchId,
    banned_nodes: &std::collections::HashSet<SwitchId>,
    banned_edges: &std::collections::HashSet<(SwitchId, SwitchId)>,
) -> Option<Path> {
    if banned_nodes.contains(&s) {
        return None;
    }
    if s == t {
        return Some(Path(vec![s]));
    }
    let mut parent: HashMap<SwitchId, SwitchId> = HashMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(s);
    parent.insert(s, s);
    while let Some(u) = queue.pop_front() {
        for v in net.neighbors(u) {
            if banned_nodes.contains(&v)
                || banned_edges.contains(&(u, v))
                || parent.contains_key(&v)
            {
                continue;
            }
            parent.insert(v, u);
            if v == t {
                let mut path = vec![t];
                let mut cur = t;
                while cur != s {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(Path(path));
            }
            queue.push_back(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{fat_tree, leaf_spine};
    use crate::network::SwitchRole;
    use pd_geometry::Gbps;

    fn speed() -> Gbps {
        Gbps::new(100.0)
    }

    #[test]
    fn fat_tree_distances() {
        let n = fat_tree(4, speed()).unwrap();
        let ap = AllPairs::compute(&n);
        // Fat-tree: ToR↔ToR same pod = 2, cross-pod = 4, diameter 4.
        assert_eq!(ap.diameter(), 4);
        let tors: Vec<_> = n
            .switches()
            .filter(|s| s.role == SwitchRole::Tor)
            .map(|s| (s.id, s.block))
            .collect();
        let same_pod: Vec<_> = tors
            .iter()
            .filter(|(_, b)| *b == tors[0].1)
            .map(|(id, _)| *id)
            .collect();
        assert_eq!(ap.distance(same_pod[0], same_pod[1]), Some(2));
        let other = tors.iter().find(|(_, b)| *b != tors[0].1).unwrap().0;
        assert_eq!(ap.distance(tors[0].0, other), Some(4));
    }

    #[test]
    fn ecmp_uniform_loads_are_symmetric_on_leaf_spine() {
        let n = leaf_spine(4, 4, 4, 1, speed()).unwrap();
        let ap = AllPairs::compute(&n);
        let tm = TrafficMatrix::uniform_servers(&n, Gbps::new(1.0));
        let loads = EcmpLoads::compute(&n, &ap, &tm);
        // Every leaf-spine link should carry the same load by symmetry.
        let vals: Vec<f64> = loads.link_load.values().copied().collect();
        assert_eq!(vals.len(), n.link_count());
        let first = vals[0];
        for v in &vals {
            assert!((v - first).abs() < 1e-9, "asymmetric: {v} vs {first}");
        }
    }

    #[test]
    fn ecmp_conserves_flow() {
        // Total load summed over links ≥ demand × min hops; and with unit
        // demand between two leaves on a leaf-spine, each of the 4 two-hop
        // paths carries 1/4.
        let n = leaf_spine(2, 4, 4, 1, speed()).unwrap();
        let ap = AllPairs::compute(&n);
        let leaves: Vec<_> = n
            .switches()
            .filter(|s| s.role == SwitchRole::Tor)
            .map(|s| s.id)
            .collect();
        let tm = TrafficMatrix::single(leaves[0], leaves[1], Gbps::new(1.0));
        let loads = EcmpLoads::compute(&n, &ap, &tm);
        let total: f64 = loads.link_load.values().sum();
        assert!((total - 2.0).abs() < 1e-9, "1 Gbps × 2 hops, got {total}");
        for (&l, &v) in &loads.link_load {
            assert!((v - 0.25).abs() < 1e-9, "link {l} load {v}");
        }
    }

    #[test]
    fn throughput_scale_inverse_of_mlu() {
        let n = leaf_spine(4, 2, 8, 1, speed()).unwrap();
        let ap = AllPairs::compute(&n);
        let tm = TrafficMatrix::uniform_servers(&n, Gbps::new(1.0));
        let loads = EcmpLoads::compute(&n, &ap, &tm);
        let mlu = loads.max_utilization(&n);
        assert!(mlu > 0.0);
        assert!((loads.throughput_scale(&n) - 1.0 / mlu).abs() < 1e-12);
    }

    #[test]
    fn edge_disjoint_paths_on_fat_tree() {
        let n = fat_tree(4, speed()).unwrap();
        let tors: Vec<_> = n
            .switches()
            .filter(|s| s.role == SwitchRole::Tor)
            .map(|s| s.id)
            .collect();
        // Any two ToRs in a k=4 fat-tree have 2 edge-disjoint paths (2 uplinks).
        assert_eq!(edge_disjoint_paths(&n, tors[0], tors[7]), 2);
        assert_eq!(edge_disjoint_paths(&n, tors[0], tors[0]), 0);
    }

    #[test]
    fn k_shortest_paths_ordering_and_simplicity() {
        let n = fat_tree(4, speed()).unwrap();
        let tors: Vec<_> = n
            .switches()
            .filter(|s| s.role == SwitchRole::Tor)
            .map(|s| s.id)
            .collect();
        let paths = k_shortest_paths(&n, tors[0], tors[7], 6);
        assert!(!paths.is_empty());
        // Nondecreasing hop counts, all simple, all valid endpoints.
        let mut prev = 0;
        for p in &paths {
            assert!(p.hops() >= prev);
            prev = p.hops();
            assert_eq!(p.0.first(), Some(&tors[0]));
            assert_eq!(p.0.last(), Some(&tors[7]));
            let set: std::collections::HashSet<_> = p.0.iter().collect();
            assert_eq!(set.len(), p.0.len(), "path revisits a switch");
        }
        // k=4 fat-tree has exactly 4 shortest 4-hop paths between cross-pod
        // ToRs; the first four returned must all be 4 hops.
        assert!(paths.len() >= 4);
        assert!(paths[..4].iter().all(|p| p.hops() == 4));
    }

    /// The pre-optimization quadratic Yen implementation (linear `contains`
    /// scans + full re-sort per iteration), kept verbatim as a behavioral
    /// oracle for the heap-based version.
    fn k_shortest_reference(net: &Network, s: SwitchId, t: SwitchId, k: usize) -> Vec<Path> {
        let Some(first) = bfs_path(net, s, t, &Default::default(), &Default::default()) else {
            return Vec::new();
        };
        let mut found = vec![first];
        let mut candidates: Vec<Path> = Vec::new();
        while found.len() < k {
            let last = found.last().expect("non-empty").clone();
            for i in 0..last.0.len() - 1 {
                let spur = last.0[i];
                let root = &last.0[..=i];
                let mut banned_edges: HashSet<(SwitchId, SwitchId)> = Default::default();
                for p in &found {
                    if p.0.len() > i + 1 && p.0[..=i] == *root {
                        let (a, b) = (p.0[i], p.0[i + 1]);
                        banned_edges.insert((a, b));
                        banned_edges.insert((b, a));
                    }
                }
                let banned_nodes: HashSet<SwitchId> = root[..i].iter().copied().collect();
                if let Some(tail) = bfs_path(net, spur, t, &banned_nodes, &banned_edges) {
                    let mut full = root[..i].to_vec();
                    full.extend(tail.0);
                    let cand = Path(full);
                    if !found.contains(&cand) && !candidates.contains(&cand) {
                        candidates.push(cand);
                    }
                }
            }
            candidates.sort_by_key(|p| std::cmp::Reverse(p.hops()));
            match candidates.pop() {
                Some(best) => found.push(best),
                None => break,
            }
        }
        found
    }

    #[test]
    fn k_shortest_matches_quadratic_reference() {
        let n = fat_tree(4, speed()).unwrap();
        let tors: Vec<_> = n
            .switches()
            .filter(|s| s.role == SwitchRole::Tor)
            .map(|s| s.id)
            .collect();
        for (s, t, k) in [
            (tors[0], tors[7], 8),
            (tors[0], tors[1], 5),
            (tors[2], tors[6], 12),
            (tors[3], tors[4], 1),
            (tors[0], tors[0], 3),
        ] {
            assert_eq!(
                k_shortest_paths(&n, s, t, k),
                k_shortest_reference(&n, s, t, k),
                "divergence at s={s} t={t} k={k}"
            );
        }
    }

    #[test]
    fn mean_distance_positive_and_bounded() {
        let n = fat_tree(4, speed()).unwrap();
        let ap = AllPairs::compute(&n);
        let m = ap.mean_distance();
        assert!(m > 1.0 && m <= f64::from(ap.diameter()));
        let ms = ap.mean_server_distance(&n);
        assert!(ms >= 2.0 && ms <= 4.0);
    }
}
