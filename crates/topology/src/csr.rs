//! Dense compressed-sparse-row graph kernels — the hot-path engine behind
//! routing, goodness, and fault evaluation.
//!
//! The paper (§1) obliges every evaluation to compute "traditional metrics
//! of network goodness" next to the deployability metrics, and the ROADMAP
//! north star ("as fast as the hardware allows") puts those kernels —
//! all-pairs BFS, exact ECMP splitting, unit-capacity max-flow, sampled
//! cut capacity, per-scenario degraded re-evaluation — on the critical
//! path of every spec. This module gives them a dense substrate:
//!
//! * [`CsrNet`]: a compressed-sparse-row view of a [`Network`], built once
//!   — contiguous `u32` switch/link indices, adjacency as `offsets` +
//!   `(neighbor, link)` target arrays, a per-link capacity array, and
//!   stable id ⇄ index maps. Kernels walk arrays instead of probing
//!   `HashMap<SwitchId, …>`.
//! * [`Scratch`]: every reusable buffer the kernels need (distance rows,
//!   frontier ring, flow accumulators, residual capacities, component
//!   marks). [`with_scratch`] checks buffers out of a thread-local pool so
//!   batch workers stop reallocating BFS state on every call.
//! * [`Masks`]: alive/dead bits per switch and link, so degraded states
//!   are evaluated by masking the shared healthy [`CsrNet`] instead of
//!   cloning the `Network` and removing elements.
//! * A process-wide [`kernel_jobs`] knob gating intra-evaluation
//!   parallelism (per-source BFS rows, per-scenario fault sweeps). Results
//!   are merged in index order, so output bytes are identical at every
//!   setting — `jobs=1` is the byte-reference, not a different answer.
//!
//! ## Determinism contract
//!
//! Every kernel here is index-deterministic: iteration follows switch /
//! link index order (and adjacency order, which mirrors
//! [`Network::incident_links`]), never hash-map iteration order. All
//! floating-point accumulation happens in that fixed order, so results are
//! byte-stable across processes and across [`kernel_jobs`] settings. The
//! `kernel.csr.*` metrics are Diagnostic-class (see `docs/OBSERVABILITY.md`):
//! cache adoption can skip kernel execution entirely, so run counts are
//! scheduling-dependent by design.

use crate::network::{LinkId, Network, SwitchId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Distance value for unreachable switches (mirrors
/// [`crate::routing::AllPairs`]'s sentinel).
pub const UNREACHABLE: u16 = u16::MAX;

// ---------------------------------------------------------------------------
// Kernel parallelism knob
// ---------------------------------------------------------------------------

/// Worker threads for intra-evaluation kernel parallelism; 1 = serial.
static KERNEL_JOBS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide kernel parallelism (the `--kernel-jobs` CLI knob).
/// `0` means one worker per core; any other value is used as-is. Results
/// are byte-identical at every setting — this knob trades wall-clock time
/// only.
pub fn set_kernel_jobs(jobs: usize) {
    let resolved = if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    };
    KERNEL_JOBS.store(resolved.max(1), Ordering::Relaxed);
}

/// The current process-wide kernel parallelism (≥ 1; defaults to 1, the
/// serial byte-reference).
pub fn kernel_jobs() -> usize {
    KERNEL_JOBS.load(Ordering::Relaxed).max(1)
}

// ---------------------------------------------------------------------------
// Diagnostic metrics
// ---------------------------------------------------------------------------

struct KernelMetrics {
    builds: Arc<pd_metrics::Counter>,
    bfs_runs: Arc<pd_metrics::Counter>,
    ecmp_runs: Arc<pd_metrics::Counter>,
    maxflow_runs: Arc<pd_metrics::Counter>,
    scratch_reuse: Arc<pd_metrics::Counter>,
}

/// Registry handles, resolved once. All Diagnostic-class: warm
/// artifact-cache runs adopt finished stages and skip kernel execution, so
/// these counts are scheduling-dependent (see `docs/OBSERVABILITY.md`).
fn kernel_metrics() -> &'static KernelMetrics {
    static CELLS: OnceLock<KernelMetrics> = OnceLock::new();
    CELLS.get_or_init(|| {
        let reg = pd_metrics::global();
        KernelMetrics {
            builds: reg.diagnostic_counter("kernel.csr.builds"),
            bfs_runs: reg.diagnostic_counter("kernel.csr.bfs_runs"),
            ecmp_runs: reg.diagnostic_counter("kernel.csr.ecmp_runs"),
            maxflow_runs: reg.diagnostic_counter("kernel.csr.maxflow_runs"),
            scratch_reuse: reg.diagnostic_counter("kernel.csr.scratch_reuse"),
        }
    })
}

// ---------------------------------------------------------------------------
// CsrNet
// ---------------------------------------------------------------------------

/// A compressed-sparse-row view of a [`Network`], built once and shared by
/// every kernel that evaluates the same design (healthy or masked).
///
/// Switch index `i` is the position of the switch in
/// [`Network::switches`] insertion order; link index `l` is the position
/// in [`Network::links`] order. The adjacency of switch `i` lives at
/// `targets[offsets[i] .. offsets[i + 1]]` as `(neighbor_index,
/// link_index)` pairs, in the same order as
/// [`Network::incident_links`] — so kernels reproduce the exact traversal
/// order of the id-based code they replace.
#[derive(Debug, Clone)]
pub struct CsrNet {
    switch_ids: Vec<SwitchId>,
    switch_index: HashMap<SwitchId, u32>,
    link_ids: Vec<LinkId>,
    link_index: HashMap<LinkId, u32>,
    /// Endpoint indices `(a, b)` per link, mirroring [`crate::network::Link`].
    ends: Vec<(u32, u32)>,
    /// Total capacity per link (speed × trunking), in Gbps.
    capacity: Vec<f64>,
    /// Server-facing ports per switch.
    server_ports: Vec<u16>,
    /// Port speed per switch, in Gbps.
    port_speed: Vec<f64>,
    /// CSR offsets: adjacency of switch `i` spans
    /// `offsets[i] .. offsets[i+1]` in `targets`.
    offsets: Vec<u32>,
    /// `(neighbor switch index, link index)` pairs.
    targets: Vec<(u32, u32)>,
}

impl CsrNet {
    /// Builds the CSR view of `net`. `O(V + E)`; records one
    /// `kernel.csr.builds` tick.
    pub fn build(net: &Network) -> Self {
        let switch_ids: Vec<SwitchId> = net.switches().map(|s| s.id).collect();
        let switch_index: HashMap<SwitchId, u32> = switch_ids
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        let link_ids: Vec<LinkId> = net.links().map(|l| l.id).collect();
        let link_index: HashMap<LinkId, u32> = link_ids
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, i as u32))
            .collect();
        let ends: Vec<(u32, u32)> = net
            .links()
            .map(|l| (switch_index[&l.a], switch_index[&l.b]))
            .collect();
        let capacity: Vec<f64> = net.links().map(|l| l.capacity().value()).collect();
        let server_ports: Vec<u16> = net.switches().map(|s| s.server_ports).collect();
        let port_speed: Vec<f64> = net.switches().map(|s| s.port_speed.value()).collect();

        let n = switch_ids.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * link_ids.len());
        offsets.push(0u32);
        for &sid in &switch_ids {
            for &lid in net.incident_links(sid) {
                let (Some(&li), Some(link)) = (link_index.get(&lid), net.link(lid)) else {
                    continue;
                };
                let Some(other) = link.try_other(sid) else {
                    continue;
                };
                targets.push((switch_index[&other], li));
            }
            offsets.push(targets.len() as u32);
        }

        kernel_metrics().builds.incr();
        Self {
            switch_ids,
            switch_index,
            link_ids,
            link_index,
            ends,
            capacity,
            server_ports,
            port_speed,
            offsets,
            targets,
        }
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switch_ids.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.link_ids.len()
    }

    /// Switch ids in index order.
    pub fn switch_ids(&self) -> &[SwitchId] {
        &self.switch_ids
    }

    /// Link ids in index order.
    pub fn link_ids(&self) -> &[LinkId] {
        &self.link_ids
    }

    /// Dense index of a switch id.
    pub fn switch_idx(&self, id: SwitchId) -> Option<u32> {
        self.switch_index.get(&id).copied()
    }

    /// Dense index of a link id.
    pub fn link_idx(&self, id: LinkId) -> Option<u32> {
        self.link_index.get(&id).copied()
    }

    /// Switch id of a dense index.
    pub fn switch_id(&self, idx: u32) -> SwitchId {
        self.switch_ids[idx as usize]
    }

    /// Link id of a dense index.
    pub fn link_id(&self, idx: u32) -> LinkId {
        self.link_ids[idx as usize]
    }

    /// Endpoint indices `(a, b)` of a link.
    pub fn link_ends(&self, idx: u32) -> (u32, u32) {
        self.ends[idx as usize]
    }

    /// Capacity of a link (Gbps).
    pub fn link_capacity(&self, idx: u32) -> f64 {
        self.capacity[idx as usize]
    }

    /// Server-facing ports of a switch.
    pub fn switch_server_ports(&self, idx: u32) -> u16 {
        self.server_ports[idx as usize]
    }

    /// Port speed of a switch (Gbps).
    pub fn switch_port_speed(&self, idx: u32) -> f64 {
        self.port_speed[idx as usize]
    }

    /// Total server-facing ports.
    pub fn server_count(&self) -> u32 {
        self.server_ports.iter().map(|&p| u32::from(p)).sum()
    }

    /// `(neighbor, link)` adjacency of switch `u`, in
    /// [`Network::incident_links`] order.
    pub fn adjacency(&self, u: u32) -> &[(u32, u32)] {
        let (lo, hi) = (
            self.offsets[u as usize] as usize,
            self.offsets[u as usize + 1] as usize,
        );
        &self.targets[lo..hi]
    }

    /// Switch indices bearing servers, in index order.
    pub fn host_switches(&self) -> Vec<u32> {
        (0..self.switch_count() as u32)
            .filter(|&i| self.server_ports[i as usize] > 0)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Masks
// ---------------------------------------------------------------------------

/// Alive/dead bits per switch and link, for evaluating degraded states on
/// a shared healthy [`CsrNet`] without cloning the `Network`.
#[derive(Debug, Clone)]
pub struct Masks {
    /// `true` while the switch is up.
    pub switch_alive: Vec<bool>,
    /// `true` while the link is up.
    pub link_alive: Vec<bool>,
}

impl Masks {
    /// Everything alive.
    pub fn healthy(csr: &CsrNet) -> Self {
        Self {
            switch_alive: vec![true; csr.switch_count()],
            link_alive: vec![true; csr.link_count()],
        }
    }
}

#[inline]
fn switch_ok(alive: Option<&Masks>, u: u32) -> bool {
    alive.is_none_or(|m| m.switch_alive[u as usize])
}

#[inline]
fn link_ok(alive: Option<&Masks>, l: u32) -> bool {
    alive.is_none_or(|m| m.link_alive[l as usize])
}

// ---------------------------------------------------------------------------
// Scratch + thread-local pool
// ---------------------------------------------------------------------------

/// Reusable kernel buffers. One `Scratch` serves every kernel in this
/// module; buffers grow to the largest network evaluated on the thread and
/// are then reused allocation-free. Obtain one via [`with_scratch`] (the
/// pooled path) or [`Scratch::default`] (owned).
#[derive(Debug, Default)]
pub struct Scratch {
    dist: Vec<u16>,
    frontier: Vec<u32>,
    inflow: Vec<f64>,
    load: Vec<f64>,
    order: Vec<u32>,
    counts: Vec<u32>,
    starts: Vec<u32>,
    residual: Vec<i32>,
    visited: Vec<bool>,
    parent_switch: Vec<u32>,
    parent_link: Vec<u32>,
    parent_dir: Vec<u8>,
    side: Vec<u8>,
    mark: Vec<bool>,
}

thread_local! {
    static SCRATCH_POOL: RefCell<Vec<Scratch>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a [`Scratch`] checked out of this thread's pool,
/// returning it afterwards. Reuse (pool non-empty) ticks
/// `kernel.csr.scratch_reuse`; the first call on a thread allocates.
pub fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    let mut scratch = SCRATCH_POOL.with(|p| p.borrow_mut().pop());
    if scratch.is_some() {
        kernel_metrics().scratch_reuse.incr();
    }
    let mut scratch = scratch.take().unwrap_or_default();
    let out = f(&mut scratch);
    SCRATCH_POOL.with(|p| p.borrow_mut().push(scratch));
    out
}

// ---------------------------------------------------------------------------
// BFS
// ---------------------------------------------------------------------------

/// Single-source BFS hop distances into `dist` (length
/// [`CsrNet::switch_count`]); unreachable (or masked-dead) switches get
/// [`UNREACHABLE`]. A dead source leaves the whole row unreachable,
/// matching the removed-switch semantics of the clone-based path this
/// replaces.
pub fn bfs_fill(
    csr: &CsrNet,
    src: u32,
    alive: Option<&Masks>,
    scratch: &mut Scratch,
    dist: &mut [u16],
) {
    debug_assert_eq!(dist.len(), csr.switch_count());
    dist.fill(UNREACHABLE);
    kernel_metrics().bfs_runs.incr();
    if !switch_ok(alive, src) {
        return;
    }
    dist[src as usize] = 0;
    let frontier = &mut scratch.frontier;
    frontier.clear();
    frontier.push(src);
    let mut head = 0usize;
    while head < frontier.len() {
        let u = frontier[head];
        head += 1;
        let du = dist[u as usize];
        for &(v, l) in csr.adjacency(u) {
            if !link_ok(alive, l) || !switch_ok(alive, v) {
                continue;
            }
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                frontier.push(v);
            }
        }
    }
}

/// All-pairs BFS rows, fanned out over [`kernel_jobs`] threads in
/// contiguous source-index chunks. Row `i` is the distance vector from
/// switch index `i`; every row is written by exactly one worker, so the
/// result is byte-identical at any job count.
pub fn all_pairs_dist(csr: &CsrNet) -> Vec<Vec<u16>> {
    all_pairs_dist_with_jobs(csr, kernel_jobs())
}

/// [`all_pairs_dist`] with an explicit job count (tests pin both sides of
/// the determinism contract with this).
pub fn all_pairs_dist_with_jobs(csr: &CsrNet, jobs: usize) -> Vec<Vec<u16>> {
    let n = csr.switch_count();
    let mut dist = vec![vec![UNREACHABLE; n]; n];
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        with_scratch(|scratch| {
            for (i, row) in dist.iter_mut().enumerate() {
                bfs_fill(csr, i as u32, None, scratch, row);
            }
        });
        return dist;
    }
    let chunk = n.div_ceil(jobs);
    std::thread::scope(|s| {
        for (ci, rows) in dist.chunks_mut(chunk).enumerate() {
            s.spawn(move || {
                with_scratch(|scratch| {
                    for (k, row) in rows.iter_mut().enumerate() {
                        bfs_fill(csr, (ci * chunk + k) as u32, None, scratch, row);
                    }
                });
            });
        }
    });
    dist
}

// ---------------------------------------------------------------------------
// ECMP
// ---------------------------------------------------------------------------

/// A traffic matrix lowered to dense indices: demand entries grouped by
/// destination, destinations in increasing index order, entries within a
/// destination in matrix order. This is the fixed accumulation order that
/// makes ECMP float sums byte-stable — no `HashMap` iteration anywhere.
#[derive(Debug, Clone, Default)]
pub struct IndexedDemands {
    /// `(dst, sources)` groups; `sources` are `(src, gbps)`.
    pub by_dst: Vec<(u32, Vec<(u32, f64)>)>,
    /// Total demand entries (routable or not).
    pub total: usize,
}

impl IndexedDemands {
    /// Lowers `tm` onto `csr`'s index space. Demands whose endpoints are
    /// unknown to the network are dropped (they can never route).
    pub fn build(csr: &CsrNet, tm: &crate::traffic::TrafficMatrix) -> Self {
        let n = csr.switch_count();
        let mut groups: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut total = 0usize;
        for d in tm.demands() {
            let (Some(s), Some(t)) = (csr.switch_idx(d.src), csr.switch_idx(d.dst)) else {
                continue;
            };
            groups[t as usize].push((s, d.gbps.value()));
            total += 1;
        }
        let by_dst = groups
            .into_iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(t, g)| (t as u32, g))
            .collect();
        Self { by_dst, total }
    }
}

/// The result of one masked ECMP evaluation: per-link loads live in the
/// caller's scratch; this carries the aggregate facts degraded evaluation
/// needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcmpOutcome {
    /// Largest load ÷ capacity over alive links with positive capacity.
    pub max_utilization: f64,
    /// Demand entries whose endpoints are both alive and connected.
    pub routable: usize,
}

impl EcmpOutcome {
    /// Throughput proxy: the largest scale factor α such that α × demand
    /// fits every link capacity; infinite for an all-zero load.
    pub fn throughput_scale(&self) -> f64 {
        if self.max_utilization == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.max_utilization
        }
    }
}

/// Splits one destination's flow over all shortest paths (the classic
/// equal-split-per-hop ECMP fluid model), accumulating into
/// `scratch.load`. `dist` is the hop distance of every switch *to* the
/// destination. Switches are processed in decreasing distance, ties broken
/// by increasing index (a counting sort — exactly the stable order of the
/// id-based implementation this replaces).
fn ecmp_process_dst(
    csr: &CsrNet,
    dst: u32,
    dist: &[u16],
    sources: &[(u32, f64)],
    alive: Option<&Masks>,
    scratch: &mut Scratch,
) {
    let n = csr.switch_count();
    scratch.inflow.resize(n, 0.0);
    scratch.inflow.fill(0.0);
    for &(src, gbps) in sources {
        if src != dst && dist[src as usize] != UNREACHABLE {
            scratch.inflow[src as usize] += gbps;
        }
    }

    // Counting sort: switches with finite positive distance, descending by
    // distance, ascending by index within a distance.
    let maxd = dist
        .iter()
        .copied()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0) as usize;
    scratch.counts.resize(maxd + 1, 0);
    scratch.counts.fill(0);
    let mut reachable = 0usize;
    for &d in dist {
        if d != UNREACHABLE && d > 0 {
            scratch.counts[d as usize] += 1;
            reachable += 1;
        }
    }
    // Descending buckets: bucket `d` starts after all buckets > d.
    scratch.starts.resize(maxd + 1, 0);
    scratch.starts.fill(0);
    let mut acc = 0u32;
    for d in (1..=maxd).rev() {
        scratch.starts[d] = acc;
        acc += scratch.counts[d];
    }
    scratch.order.resize(reachable, 0);
    for u in 0..n as u32 {
        let d = dist[u as usize];
        if d != UNREACHABLE && d > 0 {
            let pos = &mut scratch.starts[d as usize];
            scratch.order[*pos as usize] = u;
            *pos += 1;
        }
    }

    for k in 0..reachable {
        let u = scratch.order[k];
        let flow = scratch.inflow[u as usize];
        if flow <= 0.0 {
            continue;
        }
        let du = dist[u as usize];
        // Downhill links: neighbor strictly closer to dst. Count first,
        // then distribute in adjacency order.
        let mut down = 0usize;
        for &(v, l) in csr.adjacency(u) {
            if link_ok(alive, l)
                && dist[v as usize] != UNREACHABLE
                && dist[v as usize] + 1 == du
            {
                down += 1;
            }
        }
        if down == 0 {
            continue; // isolated inconsistency; skip rather than panic
        }
        let share = flow / down as f64;
        for &(v, l) in csr.adjacency(u) {
            if link_ok(alive, l)
                && dist[v as usize] != UNREACHABLE
                && dist[v as usize] + 1 == du
            {
                scratch.load[l as usize] += share;
                scratch.inflow[v as usize] += share;
            }
        }
    }
}

/// Exact ECMP splitting of `demands` over shortest paths in the (possibly
/// masked) network, leaving per-link loads in `scratch` (read them with
/// [`take_loads`] or fold them via the returned [`EcmpOutcome`]).
///
/// Destinations are processed in increasing index order with one BFS each;
/// every float accumulation follows index/adjacency order, so the result
/// is byte-stable across processes and job counts.
pub fn ecmp_evaluate(
    csr: &CsrNet,
    demands: &IndexedDemands,
    alive: Option<&Masks>,
    scratch: &mut Scratch,
) -> EcmpOutcome {
    kernel_metrics().ecmp_runs.incr();
    let (n, m) = (csr.switch_count(), csr.link_count());
    scratch.load.resize(m, 0.0);
    scratch.load.fill(0.0);
    scratch.dist.resize(n, UNREACHABLE);
    let mut routable = 0usize;

    for (dst, sources) in &demands.by_dst {
        if !switch_ok(alive, *dst) {
            continue;
        }
        let mut dist = std::mem::take(&mut scratch.dist);
        bfs_fill(csr, *dst, alive, scratch, &mut dist);
        routable += sources
            .iter()
            .filter(|&&(src, _)| dist[src as usize] != UNREACHABLE && src != *dst)
            .count();
        ecmp_process_dst(csr, *dst, &dist, sources, alive, scratch);
        scratch.dist = dist;
    }

    let mut mlu = 0.0f64;
    for l in 0..m as u32 {
        let cap = csr.link_capacity(l);
        if link_ok(alive, l) && cap > 0.0 && scratch.load[l as usize] > 0.0 {
            mlu = mlu.max(scratch.load[l as usize] / cap);
        }
    }
    EcmpOutcome {
        max_utilization: mlu,
        routable,
    }
}

/// Like [`ecmp_evaluate`] but with caller-supplied distance rows
/// (`dist_to[dst][u]` = hops from `u` to `dst`, e.g. the rows of an
/// already-computed all-pairs matrix), skipping the per-destination BFS.
pub fn ecmp_with_distances(
    csr: &CsrNet,
    demands: &IndexedDemands,
    dist_to: &[Vec<u16>],
    scratch: &mut Scratch,
) {
    kernel_metrics().ecmp_runs.incr();
    let m = csr.link_count();
    scratch.load.resize(m, 0.0);
    scratch.load.fill(0.0);
    for (dst, sources) in &demands.by_dst {
        ecmp_process_dst(csr, *dst, &dist_to[*dst as usize], sources, None, scratch);
    }
}

/// Copies the per-link loads the last ECMP kernel left in `scratch`.
pub fn take_loads(csr: &CsrNet, scratch: &Scratch) -> Vec<f64> {
    scratch.load[..csr.link_count()].to_vec()
}

// ---------------------------------------------------------------------------
// Max-flow (edge-disjoint paths)
// ---------------------------------------------------------------------------

/// Unit-capacity max-flow between two switch indices (BFS augmentation;
/// each undirected link is one unit in either direction — standard Menger
/// analysis). The dense residual array replaces the
/// `HashMap<(LinkId, u8), i32>` of the id-based implementation.
pub fn max_flow(
    csr: &CsrNet,
    s: u32,
    t: u32,
    alive: Option<&Masks>,
    scratch: &mut Scratch,
) -> usize {
    if s == t {
        return 0;
    }
    kernel_metrics().maxflow_runs.incr();
    let (n, m) = (csr.switch_count(), csr.link_count());
    scratch.residual.resize(2 * m, 0);
    for l in 0..m as u32 {
        let cap = i32::from(link_ok(alive, l));
        scratch.residual[2 * l as usize] = cap;
        scratch.residual[2 * l as usize + 1] = cap;
    }
    scratch.visited.resize(n, false);
    scratch.parent_switch.resize(n, 0);
    scratch.parent_link.resize(n, 0);
    scratch.parent_dir.resize(n, 0);

    let mut flow = 0usize;
    loop {
        // BFS in the residual graph.
        scratch.visited.fill(false);
        scratch.visited[s as usize] = true;
        let frontier = &mut scratch.frontier;
        frontier.clear();
        frontier.push(s);
        let mut head = 0usize;
        let mut reached = false;
        while head < frontier.len() {
            let u = frontier[head];
            head += 1;
            if u == t {
                reached = true;
                break;
            }
            for &(v, l) in csr.adjacency(u) {
                let dir = u32::from(csr.link_ends(l).0 != u);
                if v != s
                    && switch_ok(alive, v)
                    && !scratch.visited[v as usize]
                    && scratch.residual[(2 * l + dir) as usize] > 0
                {
                    scratch.visited[v as usize] = true;
                    scratch.parent_switch[v as usize] = u;
                    scratch.parent_link[v as usize] = l;
                    scratch.parent_dir[v as usize] = dir as u8;
                    frontier.push(v);
                }
            }
        }
        if !reached && !scratch.visited[t as usize] {
            return flow;
        }
        // Augment by 1 along the parent chain.
        let mut cur = t;
        while cur != s {
            let l = scratch.parent_link[cur as usize];
            let dir = u32::from(scratch.parent_dir[cur as usize]);
            scratch.residual[(2 * l + dir) as usize] -= 1;
            scratch.residual[(2 * l + (dir ^ 1)) as usize] += 1;
            cur = scratch.parent_switch[cur as usize];
        }
        flow += 1;
    }
}

// ---------------------------------------------------------------------------
// Cuts and components
// ---------------------------------------------------------------------------

/// Capacity crossing a host partition: hosts are pre-assigned to side A
/// (`side_a[h]`) or B, transit switches join the side from which BFS first
/// reaches them (seeding follows `hosts` order, ties → earlier seed), and
/// the crossing capacity is summed in link index order — the same
/// assignment and summation order as the id-based `cut_capacity`.
pub fn cut_capacity(
    csr: &CsrNet,
    hosts: &[u32],
    side_a: &[bool],
    scratch: &mut Scratch,
) -> f64 {
    let n = csr.switch_count();
    scratch.side.resize(n, 0);
    scratch.side.fill(0);
    let frontier = &mut scratch.frontier;
    frontier.clear();
    for &h in hosts {
        scratch.side[h as usize] = if side_a[h as usize] { 1 } else { 2 };
        frontier.push(h);
    }
    let mut head = 0usize;
    while head < frontier.len() {
        let u = frontier[head];
        head += 1;
        let su = scratch.side[u as usize];
        for &(v, _) in csr.adjacency(u) {
            if scratch.side[v as usize] == 0 {
                scratch.side[v as usize] = su;
                frontier.push(v);
            }
        }
    }
    let mut cut = 0.0;
    for l in 0..csr.link_count() as u32 {
        let (a, b) = csr.link_ends(l);
        let (sa, sb) = (scratch.side[a as usize], scratch.side[b as usize]);
        if sa != 0 && sb != 0 && sa != sb {
            cut += csr.link_capacity(l);
        }
    }
    cut
}

/// Server mass of the largest connected component among alive switches.
pub fn largest_component_servers(
    csr: &CsrNet,
    alive: Option<&Masks>,
    scratch: &mut Scratch,
) -> u32 {
    let n = csr.switch_count();
    scratch.mark.resize(n, false);
    scratch.mark.fill(false);
    let mut best = 0u32;
    for root in 0..n as u32 {
        if scratch.mark[root as usize] || !switch_ok(alive, root) {
            continue;
        }
        let mut mass = 0u32;
        let stack = &mut scratch.frontier;
        stack.clear();
        stack.push(root);
        scratch.mark[root as usize] = true;
        while let Some(u) = stack.pop() {
            mass += u32::from(csr.switch_server_ports(u));
            for &(v, l) in csr.adjacency(u) {
                if link_ok(alive, l) && switch_ok(alive, v) && !scratch.mark[v as usize] {
                    scratch.mark[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        best = best.max(mass);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{fat_tree, leaf_spine};
    use crate::traffic::TrafficMatrix;
    use pd_geometry::Gbps;

    fn net() -> Network {
        fat_tree(4, Gbps::new(100.0)).unwrap()
    }

    #[test]
    fn build_round_trips_ids_and_capacities() {
        let n = net();
        let csr = CsrNet::build(&n);
        assert_eq!(csr.switch_count(), n.switch_count());
        assert_eq!(csr.link_count(), n.link_count());
        for s in n.switches() {
            let i = csr.switch_idx(s.id).expect("indexed");
            assert_eq!(csr.switch_id(i), s.id);
            assert_eq!(csr.switch_server_ports(i), s.server_ports);
        }
        for l in n.links() {
            let i = csr.link_idx(l.id).expect("indexed");
            assert_eq!(csr.link_id(i), l.id);
            assert_eq!(csr.link_capacity(i), l.capacity().value());
        }
        // Adjacency mirrors incident_links order.
        for s in n.switches() {
            let i = csr.switch_idx(s.id).unwrap();
            let adj: Vec<LinkId> = csr
                .adjacency(i)
                .iter()
                .map(|&(_, l)| csr.link_id(l))
                .collect();
            assert_eq!(adj, n.incident_links(s.id));
        }
    }

    #[test]
    fn all_pairs_rows_are_identical_at_any_job_count() {
        let n = net();
        let csr = CsrNet::build(&n);
        let serial = all_pairs_dist_with_jobs(&csr, 1);
        for jobs in [2, 4, 7] {
            assert_eq!(serial, all_pairs_dist_with_jobs(&csr, jobs), "jobs={jobs}");
        }
    }

    #[test]
    fn masked_bfs_matches_removal() {
        let mut n = leaf_spine(4, 2, 4, 1, Gbps::new(100.0)).unwrap();
        let csr = CsrNet::build(&n);
        let victim = n.links().next().unwrap().id;
        let mut masks = Masks::healthy(&csr);
        masks.link_alive[csr.link_idx(victim).unwrap() as usize] = false;

        let mut scratch = Scratch::default();
        let mut masked = vec![UNREACHABLE; csr.switch_count()];
        bfs_fill(&csr, 0, Some(&masks), &mut scratch, &mut masked);

        n.remove_link(victim).unwrap();
        let removed_csr = CsrNet::build(&n);
        let mut removed = vec![UNREACHABLE; removed_csr.switch_count()];
        bfs_fill(&removed_csr, 0, None, &mut scratch, &mut removed);
        // Same switch order (removal touched only a link), same distances.
        assert_eq!(masked, removed);
    }

    #[test]
    fn ecmp_outcome_is_deterministic_and_conserves_flow() {
        let n = leaf_spine(2, 4, 4, 1, Gbps::new(100.0)).unwrap();
        let csr = CsrNet::build(&n);
        let hosts = csr.host_switches();
        let tm = TrafficMatrix::single(
            csr.switch_id(hosts[0]),
            csr.switch_id(hosts[1]),
            Gbps::new(1.0),
        );
        let demands = IndexedDemands::build(&csr, &tm);
        let mut scratch = Scratch::default();
        let a = ecmp_evaluate(&csr, &demands, None, &mut scratch);
        let loads_a = take_loads(&csr, &scratch);
        let b = ecmp_evaluate(&csr, &demands, None, &mut scratch);
        let loads_b = take_loads(&csr, &scratch);
        assert_eq!(a, b);
        assert_eq!(loads_a, loads_b, "float accumulation order must be fixed");
        // 1 Gbps across 4 two-hop paths: every link carries exactly 1/4.
        let total: f64 = loads_a.iter().sum();
        assert!((total - 2.0).abs() < 1e-12, "got {total}");
        assert_eq!(a.routable, 1);
    }

    #[test]
    fn max_flow_counts_disjoint_paths() {
        let n = net();
        let csr = CsrNet::build(&n);
        let hosts = csr.host_switches();
        let mut scratch = Scratch::default();
        let k = max_flow(&csr, hosts[0], hosts[7], None, &mut scratch);
        assert_eq!(k, 2, "k=4 fat-tree ToRs have 2 edge-disjoint paths");
        assert_eq!(max_flow(&csr, hosts[0], hosts[0], None, &mut scratch), 0);
    }

    #[test]
    fn dead_switch_disconnects_its_servers() {
        let n = net();
        let csr = CsrNet::build(&n);
        let mut scratch = Scratch::default();
        let all = largest_component_servers(&csr, None, &mut scratch);
        assert_eq!(all, csr.server_count());
        let victim = csr.host_switches()[0];
        let mut masks = Masks::healthy(&csr);
        masks.switch_alive[victim as usize] = false;
        for &(_, l) in csr.adjacency(victim) {
            masks.link_alive[l as usize] = false;
        }
        let degraded = largest_component_servers(&csr, Some(&masks), &mut scratch);
        assert_eq!(
            degraded,
            csr.server_count() - u32::from(csr.switch_server_ports(victim))
        );
    }

    #[test]
    fn kernel_jobs_knob_clamps_to_at_least_one() {
        // Not a mutation test of the global (other tests run in parallel);
        // just the resolution rules.
        assert!(kernel_jobs() >= 1);
    }
}
