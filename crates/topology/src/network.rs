//! The core network model: switches, links, blocks.
//!
//! Design notes:
//!
//! * **Stable integer ids.** Physical processes (placement, cabling, repair,
//!   decom) need identities that survive graph mutation; we never reuse a
//!   removed link's id.
//! * **Ports are budgeted, not modeled individually.** A switch has a radix;
//!   links and server downlinks consume ports. Individual port objects only
//!   appear in the digital twin, which is where per-port state (in service /
//!   drained / planned) matters.
//! * **Blocks** group switches into deployment units (a Clos pod, an
//!   aggregation block, an Xpander metanode). Placement maps blocks onto
//!   racks; lifecycle operations (drain, expansion) work block-wise.
//! * Links may be marked [`Link::via_ocs`]: logically direct, but physically
//!   routed through an optical-circuit-switch or patch-panel layer (paper
//!   §4.1's indirection).

use pd_geometry::Gbps;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a switch; stable across removals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SwitchId(pub u32);

/// Identifier of a link; never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Identifier of a deployment block (pod / aggregation block / metanode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}
impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ln{}", self.0)
    }
}
impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

/// The role a switch plays; drives placement and lifecycle policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwitchRole {
    /// Top-of-rack switch with server downlinks.
    Tor,
    /// Aggregation / leaf-layer switch.
    Aggregation,
    /// Spine / core switch.
    Spine,
    /// A switch in a flat (single-layer) topology — Jellyfish, Xpander,
    /// Slim Fly, flattened butterfly — that both hosts servers and carries
    /// transit traffic.
    FlatTor,
}

impl SwitchRole {
    /// Human-readable short name.
    pub fn short(&self) -> &'static str {
        match self {
            SwitchRole::Tor => "tor",
            SwitchRole::Aggregation => "agg",
            SwitchRole::Spine => "spine",
            SwitchRole::FlatTor => "flat",
        }
    }
}

/// A switch in the abstract network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Switch {
    /// Stable identifier.
    pub id: SwitchId,
    /// Human-readable name, unique within the network.
    pub name: String,
    /// Role in the topology.
    pub role: SwitchRole,
    /// Layer index: 0 = ToR/flat, 1 = aggregation, 2 = spine/core.
    pub layer: u8,
    /// Total port count.
    pub radix: u16,
    /// Per-port line rate.
    pub port_speed: Gbps,
    /// Ports reserved for server downlinks (only meaningful for
    /// [`SwitchRole::Tor`] / [`SwitchRole::FlatTor`]).
    pub server_ports: u16,
    /// Deployment block this switch belongs to.
    pub block: Option<BlockId>,
}

/// An undirected link between two switches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Stable identifier.
    pub id: LinkId,
    /// One endpoint.
    pub a: SwitchId,
    /// The other endpoint.
    pub b: SwitchId,
    /// Line rate of the link.
    pub speed: Gbps,
    /// Number of parallel physical cables aggregated into this logical link.
    pub trunking: u16,
    /// True if the link is physically mediated by a patch-panel/OCS layer
    /// (paper §4.1): both ends cable to the indirection layer instead of to
    /// each other.
    pub via_ocs: bool,
}

impl Link {
    /// The endpoint opposite `s`.
    ///
    /// # Panics
    /// Panics if `s` is not an endpoint of this link.
    pub fn other(&self, s: SwitchId) -> SwitchId {
        match self.try_other(s) {
            Some(o) => o,
            None => panic!("{s} is not an endpoint of {}", self.id),
        }
    }

    /// The endpoint opposite `s`, or `None` if `s` is not an endpoint —
    /// the total form of [`Link::other`] for callers traversing
    /// user-supplied (possibly inconsistent) networks.
    pub fn try_other(&self, s: SwitchId) -> Option<SwitchId> {
        if s == self.a {
            Some(self.b)
        } else if s == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Total capacity of the (possibly trunked) link.
    pub fn capacity(&self) -> Gbps {
        self.speed * f64::from(self.trunking)
    }
}

/// Errors from network construction and validation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkError {
    /// A link would connect a switch to itself.
    SelfLoop(SwitchId),
    /// A switch id is unknown.
    UnknownSwitch(SwitchId),
    /// A link id is unknown.
    UnknownLink(LinkId),
    /// A switch's ports are over-subscribed: used exceeds radix.
    PortOverflow {
        /// The over-subscribed switch.
        switch: SwitchId,
        /// Ports consumed by links + server downlinks.
        used: u32,
        /// The switch's radix.
        radix: u16,
    },
    /// Two switches share a name.
    DuplicateName(String),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::SelfLoop(s) => write!(f, "self-loop on {s}"),
            NetworkError::UnknownSwitch(s) => write!(f, "unknown switch {s}"),
            NetworkError::UnknownLink(l) => write!(f, "unknown link {l}"),
            NetworkError::PortOverflow { switch, used, radix } => {
                write!(f, "{switch} uses {used} ports but has radix {radix}")
            }
            NetworkError::DuplicateName(n) => write!(f, "duplicate switch name {n:?}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// The abstract network: a multigraph of switches and links.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Network {
    /// Short name of the topology family + parameters, e.g. `"fat-tree(k=8)"`.
    pub label: String,
    switches: Vec<Switch>,
    /// Map from switch id to index in `switches` (ids are stable; indices
    /// are not exposed).
    #[serde(skip)]
    switch_index: HashMap<SwitchId, usize>,
    links: Vec<Link>,
    #[serde(skip)]
    link_index: HashMap<LinkId, usize>,
    /// Adjacency: switch id -> incident link ids.
    #[serde(skip)]
    incident: HashMap<SwitchId, Vec<LinkId>>,
    next_switch: u32,
    next_link: u32,
    next_block: u32,
}

impl Network {
    /// Creates an empty network with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            ..Self::default()
        }
    }

    /// Rebuilds the internal indices; required after deserialization.
    pub fn rebuild_indices(&mut self) {
        self.switch_index = self
            .switches
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id, i))
            .collect();
        self.link_index = self
            .links
            .iter()
            .enumerate()
            .map(|(i, l)| (l.id, i))
            .collect();
        self.incident.clear();
        for l in &self.links {
            self.incident.entry(l.a).or_default().push(l.id);
            self.incident.entry(l.b).or_default().push(l.id);
        }
    }

    /// Allocates a fresh block id.
    pub fn new_block(&mut self) -> BlockId {
        let b = BlockId(self.next_block);
        self.next_block += 1;
        b
    }

    /// Adds a switch and returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn add_switch(
        &mut self,
        name: impl Into<String>,
        role: SwitchRole,
        layer: u8,
        radix: u16,
        port_speed: Gbps,
        server_ports: u16,
        block: Option<BlockId>,
    ) -> SwitchId {
        let id = SwitchId(self.next_switch);
        self.next_switch += 1;
        self.switch_index.insert(id, self.switches.len());
        self.switches.push(Switch {
            id,
            name: name.into(),
            role,
            layer,
            radix,
            port_speed,
            server_ports,
            block,
        });
        self.incident.insert(id, Vec::new());
        id
    }

    /// Adds an undirected link, returning its id.
    pub fn add_link(
        &mut self,
        a: SwitchId,
        b: SwitchId,
        speed: Gbps,
        trunking: u16,
        via_ocs: bool,
    ) -> Result<LinkId, NetworkError> {
        if a == b {
            return Err(NetworkError::SelfLoop(a));
        }
        if !self.switch_index.contains_key(&a) {
            return Err(NetworkError::UnknownSwitch(a));
        }
        if !self.switch_index.contains_key(&b) {
            return Err(NetworkError::UnknownSwitch(b));
        }
        let id = LinkId(self.next_link);
        self.next_link += 1;
        self.link_index.insert(id, self.links.len());
        self.links.push(Link {
            id,
            a,
            b,
            speed,
            trunking,
            via_ocs,
        });
        self.incident.get_mut(&a).expect("checked above").push(id);
        self.incident.get_mut(&b).expect("checked above").push(id);
        Ok(id)
    }

    /// Removes a link (e.g. during rewiring or decom).
    pub fn remove_link(&mut self, id: LinkId) -> Result<Link, NetworkError> {
        let idx = *self
            .link_index
            .get(&id)
            .ok_or(NetworkError::UnknownLink(id))?;
        let link = self.links.swap_remove(idx);
        self.link_index.remove(&id);
        if let Some(moved) = self.links.get(idx) {
            self.link_index.insert(moved.id, idx);
        }
        for end in [link.a, link.b] {
            if let Some(v) = self.incident.get_mut(&end) {
                v.retain(|&l| l != id);
            }
        }
        Ok(link)
    }

    /// Removes a switch and all its incident links; returns removed links.
    pub fn remove_switch(&mut self, id: SwitchId) -> Result<Vec<Link>, NetworkError> {
        let idx = *self
            .switch_index
            .get(&id)
            .ok_or(NetworkError::UnknownSwitch(id))?;
        let incident: Vec<LinkId> = self.incident.get(&id).cloned().unwrap_or_default();
        let mut removed = Vec::with_capacity(incident.len());
        for l in incident {
            removed.push(self.remove_link(l)?);
        }
        self.switches.swap_remove(idx);
        self.switch_index.remove(&id);
        if let Some(moved) = self.switches.get(idx) {
            let mid = moved.id;
            self.switch_index.insert(mid, idx);
        }
        self.incident.remove(&id);
        Ok(removed)
    }

    /// All switches, in insertion order (stable under link mutation).
    pub fn switches(&self) -> impl Iterator<Item = &Switch> {
        self.switches.iter()
    }

    /// All links.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Looks up a switch by id.
    pub fn switch(&self, id: SwitchId) -> Option<&Switch> {
        self.switch_index.get(&id).map(|&i| &self.switches[i])
    }

    /// Looks up a link by id.
    pub fn link(&self, id: LinkId) -> Option<&Link> {
        self.link_index.get(&id).map(|&i| &self.links[i])
    }

    /// Mutable link lookup (used by rewiring plans to retarget endpoints is
    /// deliberately *not* offered; rewiring removes and re-adds links so ids
    /// reflect physical reality — a moved cable is a new cable).
    pub fn link_mut_speed(&mut self, id: LinkId) -> Option<&mut Gbps> {
        self.link_index
            .get(&id)
            .map(|&i| &mut self.links[i].speed)
    }

    /// Link ids incident to a switch.
    pub fn incident_links(&self, id: SwitchId) -> &[LinkId] {
        self.incident.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Neighbor switch ids (with multiplicity for parallel links).
    pub fn neighbors(&self, id: SwitchId) -> impl Iterator<Item = SwitchId> + '_ {
        self.incident_links(id)
            .iter()
            .filter_map(move |l| self.link(*l).and_then(|l| l.try_other(id)))
    }

    /// Ports consumed on a switch: incident link trunking + server downlinks.
    pub fn ports_used(&self, id: SwitchId) -> u32 {
        let links: u32 = self
            .incident_links(id)
            .iter()
            .filter_map(|l| self.link(*l))
            .map(|l| u32::from(l.trunking))
            .sum();
        links
            + self
                .switch(id)
                .map(|s| u32::from(s.server_ports))
                .unwrap_or(0)
    }

    /// Free ports on a switch (saturating at zero).
    pub fn ports_free(&self, id: SwitchId) -> u32 {
        let s = match self.switch(id) {
            Some(s) => s,
            None => return 0,
        };
        u32::from(s.radix).saturating_sub(self.ports_used(id))
    }

    /// Total server-facing ports across the network (the paper's normalizer:
    /// compare designs at equal server count).
    pub fn server_count(&self) -> u32 {
        self.switches
            .iter()
            .map(|s| u32::from(s.server_ports))
            .sum()
    }

    /// All switches in a block.
    pub fn block_members(&self, block: BlockId) -> Vec<SwitchId> {
        self.switches
            .iter()
            .filter(|s| s.block == Some(block))
            .map(|s| s.id)
            .collect()
    }

    /// All distinct blocks present.
    pub fn blocks(&self) -> Vec<BlockId> {
        let mut v: Vec<BlockId> = self
            .switches
            .iter()
            .filter_map(|s| s.block)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        v.sort();
        v
    }

    /// The distinct radixes present (paper §5.4 "diversity-support").
    pub fn distinct_radixes(&self) -> Vec<u16> {
        let mut v: Vec<u16> = self
            .switches
            .iter()
            .map(|s| s.radix)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        v.sort_unstable();
        v
    }

    /// The distinct link speeds present.
    pub fn distinct_speeds(&self) -> Vec<Gbps> {
        let mut v: Vec<f64> = self.links.iter().map(|l| l.speed.value()).collect();
        v.sort_by(f64::total_cmp);
        v.dedup();
        v.into_iter().map(Gbps::new).collect()
    }

    /// Validates structural invariants: port budgets and name uniqueness.
    pub fn validate(&self) -> Result<(), NetworkError> {
        let mut names = std::collections::HashSet::new();
        for s in &self.switches {
            if !names.insert(s.name.as_str()) {
                return Err(NetworkError::DuplicateName(s.name.clone()));
            }
            let used = self.ports_used(s.id);
            if used > u32::from(s.radix) {
                return Err(NetworkError::PortOverflow {
                    switch: s.id,
                    used,
                    radix: s.radix,
                });
            }
        }
        Ok(())
    }

    /// True if the network is connected (ignoring isolated switch-less case).
    pub fn is_connected(&self) -> bool {
        let Some(first) = self.switches.first() else {
            return true;
        };
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![first.id];
        seen.insert(first.id);
        while let Some(s) = stack.pop() {
            for n in self.neighbors(s) {
                if seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        seen.len() == self.switches.len()
    }

    /// Degree (number of incident links, counting trunks once) of a switch.
    pub fn degree(&self, id: SwitchId) -> usize {
        self.incident_links(id).len()
    }

    /// Finds an existing link between two switches, if any.
    pub fn find_link(&self, a: SwitchId, b: SwitchId) -> Option<LinkId> {
        self.incident_links(a)
            .iter()
            .copied()
            .find(|&l| {
                self.link(l)
                    .and_then(|l| l.try_other(a))
                    .is_some_and(|o| o == b)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Network, SwitchId, SwitchId, SwitchId) {
        let mut n = Network::new("tiny");
        let a = n.add_switch("a", SwitchRole::Tor, 0, 4, Gbps::new(100.0), 2, None);
        let b = n.add_switch("b", SwitchRole::Spine, 2, 4, Gbps::new(100.0), 0, None);
        let c = n.add_switch("c", SwitchRole::Spine, 2, 4, Gbps::new(100.0), 0, None);
        (n, a, b, c)
    }

    #[test]
    fn add_and_query_links() {
        let (mut n, a, b, c) = tiny();
        let l1 = n.add_link(a, b, Gbps::new(100.0), 1, false).unwrap();
        let l2 = n.add_link(a, c, Gbps::new(100.0), 1, true).unwrap();
        assert_eq!(n.link_count(), 2);
        assert_eq!(n.link(l1).unwrap().other(a), b);
        assert!(n.link(l2).unwrap().via_ocs);
        assert_eq!(n.find_link(a, c), Some(l2));
        assert_eq!(n.find_link(b, c), None);
        assert_eq!(n.neighbors(a).count(), 2);
    }

    #[test]
    fn try_other_is_total() {
        let (mut n, a, b, c) = tiny();
        let l = n.add_link(a, b, Gbps::new(100.0), 1, false).unwrap();
        let link = n.link(l).unwrap();
        assert_eq!(link.try_other(a), Some(b));
        assert_eq!(link.try_other(b), Some(a));
        // A non-endpoint yields None instead of the panic `other` raises.
        assert_eq!(link.try_other(c), None);
    }

    #[test]
    fn self_loop_rejected() {
        let (mut n, a, _, _) = tiny();
        assert_eq!(
            n.add_link(a, a, Gbps::new(100.0), 1, false),
            Err(NetworkError::SelfLoop(a))
        );
    }

    #[test]
    fn port_budget_accounting() {
        let (mut n, a, b, _) = tiny();
        n.add_link(a, b, Gbps::new(100.0), 2, false).unwrap();
        // a: 2 trunked + 2 server ports = 4 of 4.
        assert_eq!(n.ports_used(a), 4);
        assert_eq!(n.ports_free(a), 0);
        assert_eq!(n.ports_free(b), 2);
        assert!(n.validate().is_ok());
        // One more link overflows a.
        n.add_link(a, b, Gbps::new(100.0), 1, false).unwrap();
        assert!(matches!(
            n.validate(),
            Err(NetworkError::PortOverflow { switch, used: 5, radix: 4 }) if switch == a
        ));
    }

    #[test]
    fn remove_link_updates_adjacency_and_ids_stay_stable() {
        let (mut n, a, b, c) = tiny();
        let l1 = n.add_link(a, b, Gbps::new(100.0), 1, false).unwrap();
        let l2 = n.add_link(a, c, Gbps::new(100.0), 1, false).unwrap();
        n.remove_link(l1).unwrap();
        assert_eq!(n.link_count(), 1);
        assert!(n.link(l1).is_none());
        assert!(n.link(l2).is_some());
        assert_eq!(n.incident_links(b).len(), 0);
        // New links never reuse the removed id.
        let l3 = n.add_link(a, b, Gbps::new(100.0), 1, false).unwrap();
        assert_ne!(l3, l1);
    }

    #[test]
    fn remove_switch_removes_incident_links() {
        let (mut n, a, b, c) = tiny();
        n.add_link(a, b, Gbps::new(100.0), 1, false).unwrap();
        n.add_link(a, c, Gbps::new(100.0), 1, false).unwrap();
        n.add_link(b, c, Gbps::new(100.0), 1, false).unwrap();
        let removed = n.remove_switch(a).unwrap();
        assert_eq!(removed.len(), 2);
        assert_eq!(n.switch_count(), 2);
        assert_eq!(n.link_count(), 1);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn connectivity() {
        let (mut n, a, b, c) = tiny();
        assert!(!n.is_connected());
        n.add_link(a, b, Gbps::new(100.0), 1, false).unwrap();
        assert!(!n.is_connected());
        n.add_link(b, c, Gbps::new(100.0), 1, false).unwrap();
        assert!(n.is_connected());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut n = Network::new("dup");
        n.add_switch("x", SwitchRole::Tor, 0, 4, Gbps::new(100.0), 0, None);
        n.add_switch("x", SwitchRole::Tor, 0, 4, Gbps::new(100.0), 0, None);
        assert_eq!(
            n.validate(),
            Err(NetworkError::DuplicateName("x".into()))
        );
    }

    #[test]
    fn blocks_and_diversity() {
        let mut n = Network::new("blocks");
        let b0 = n.new_block();
        let b1 = n.new_block();
        let s0 = n.add_switch("s0", SwitchRole::Tor, 0, 32, Gbps::new(100.0), 16, Some(b0));
        n.add_switch("s1", SwitchRole::Tor, 0, 64, Gbps::new(400.0), 32, Some(b1));
        assert_eq!(n.blocks(), vec![b0, b1]);
        assert_eq!(n.block_members(b0), vec![s0]);
        assert_eq!(n.distinct_radixes(), vec![32, 64]);
        assert_eq!(n.server_count(), 48);
        assert_eq!(n.distinct_speeds().len(), 0); // speeds come from links
    }

    #[test]
    fn serde_round_trip_with_reindex() {
        let (mut n, a, b, _) = tiny();
        n.add_link(a, b, Gbps::new(100.0), 1, false).unwrap();
        let json = serde_json::to_string(&n).unwrap();
        let mut back: Network = serde_json::from_str(&json).unwrap();
        back.rebuild_indices();
        assert_eq!(back.switch_count(), 3);
        assert_eq!(back.link_count(), 1);
        assert_eq!(back.neighbors(a).collect::<Vec<_>>(), vec![b]);
    }
}
