//! Hierarchical (indirect) topologies: fat-tree, folded Clos, leaf-spine, VL2.
//!
//! These are the designs the paper reports as what hyperscalers actually
//! deploy (§4.1, \[44\]); the deployability experiments compare the flat and
//! expander families against them.

use super::{finish, invalid, GenError};
use crate::network::{Network, SwitchId, SwitchRole};
use pd_geometry::Gbps;

/// Parameters for a parameterized three-tier folded Clos.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosParams {
    /// Number of pods (aggregation blocks).
    pub pods: usize,
    /// ToR switches per pod.
    pub tors_per_pod: usize,
    /// Aggregation switches per pod.
    pub aggs_per_pod: usize,
    /// Spine switches shared by all pods.
    pub spines: usize,
    /// Server downlinks per ToR.
    pub servers_per_tor: u16,
    /// Line rate of every port.
    pub link_speed: Gbps,
    /// Parallel cables per ToR→agg adjacency.
    pub tor_agg_trunking: u16,
    /// Parallel cables per agg→spine adjacency.
    pub agg_spine_trunking: u16,
    /// If true, agg→spine links are marked [`crate::network::Link::via_ocs`]
    /// — physically mediated by a patch-panel or OCS layer (paper §4.1,
    /// Zhao \[56\] / Poutievski \[39\]).
    pub spine_via_panels: bool,
    /// Spine radix is provisioned for this many pods (incremental
    /// deployment, paper §3.5: install few pods day-1, spine sized for the
    /// full build-out). Defaults to `pods`.
    pub max_pods: Option<usize>,
}

impl Default for ClosParams {
    fn default() -> Self {
        Self {
            pods: 4,
            tors_per_pod: 4,
            aggs_per_pod: 4,
            spines: 8,
            servers_per_tor: 16,
            link_speed: Gbps::new(100.0),
            tor_agg_trunking: 1,
            agg_spine_trunking: 1,
            spine_via_panels: false,
            max_pods: None,
        }
    }
}

impl ClosParams {
    /// Radix needed by each ToR under these parameters.
    pub fn tor_radix(&self) -> u16 {
        self.servers_per_tor + (self.aggs_per_pod as u16) * self.tor_agg_trunking
    }

    /// Radix needed by each aggregation switch.
    pub fn agg_radix(&self) -> u16 {
        (self.tors_per_pod as u16) * self.tor_agg_trunking
            + (self.spines as u16) * self.agg_spine_trunking
    }

    /// Radix needed by each spine switch (provisioned for `max_pods`).
    pub fn spine_radix(&self) -> u16 {
        (self.max_pods.unwrap_or(self.pods).max(self.pods) * self.aggs_per_pod) as u16
            * self.agg_spine_trunking
    }
}

/// Builds a three-tier folded Clos: every ToR connects to every agg in its
/// pod; every agg connects to every spine. Each pod is one [`crate::network::BlockId`];
/// the spine layer is a separate block.
pub fn folded_clos(p: &ClosParams) -> Result<Network, GenError> {
    if p.pods == 0 || p.tors_per_pod == 0 || p.aggs_per_pod == 0 || p.spines == 0 {
        return Err(invalid("pods/tors/aggs/spines", "all counts must be positive"));
    }
    let mut net = Network::new(format!(
        "folded-clos(p={},t={},a={},s={})",
        p.pods, p.tors_per_pod, p.aggs_per_pod, p.spines
    ));

    let spine_block = net.new_block();
    let spines: Vec<SwitchId> = (0..p.spines)
        .map(|s| {
            net.add_switch(
                format!("spine{s}"),
                SwitchRole::Spine,
                2,
                p.spine_radix(),
                p.link_speed,
                0,
                Some(spine_block),
            )
        })
        .collect();

    for pod in 0..p.pods {
        let block = net.new_block();
        let aggs: Vec<SwitchId> = (0..p.aggs_per_pod)
            .map(|a| {
                net.add_switch(
                    format!("p{pod}-agg{a}"),
                    SwitchRole::Aggregation,
                    1,
                    p.agg_radix(),
                    p.link_speed,
                    0,
                    Some(block),
                )
            })
            .collect();
        for t in 0..p.tors_per_pod {
            let tor = net.add_switch(
                format!("p{pod}-tor{t}"),
                SwitchRole::Tor,
                0,
                p.tor_radix(),
                p.link_speed,
                p.servers_per_tor,
                Some(block),
            );
            for &agg in &aggs {
                net.add_link(tor, agg, p.link_speed, p.tor_agg_trunking, false)
                    .expect("endpoints exist");
            }
        }
        for &agg in &aggs {
            for &spine in &spines {
                net.add_link(agg, spine, p.link_speed, p.agg_spine_trunking, p.spine_via_panels)
                    .expect("endpoints exist");
            }
        }
    }
    finish(net)
}

/// Builds the canonical k-ary fat-tree: `k` pods of `k/2` ToRs and `k/2`
/// aggs, `(k/2)²` cores, `k/2` servers per ToR, all switches radix `k`.
pub fn fat_tree(k: usize, link_speed: Gbps) -> Result<Network, GenError> {
    if k < 2 || k % 2 != 0 {
        return Err(invalid("k", format!("must be even and ≥ 2, got {k}")));
    }
    let half = k / 2;
    let mut net = Network::new(format!("fat-tree(k={k})"));

    let core_block = net.new_block();
    // Core switch (i, j) connects to the j-th uplink of agg i in every pod.
    let cores: Vec<SwitchId> = (0..half * half)
        .map(|c| {
            net.add_switch(
                format!("core{c}"),
                SwitchRole::Spine,
                2,
                k as u16,
                link_speed,
                0,
                Some(core_block),
            )
        })
        .collect();

    for pod in 0..k {
        let block = net.new_block();
        let aggs: Vec<SwitchId> = (0..half)
            .map(|a| {
                net.add_switch(
                    format!("p{pod}-agg{a}"),
                    SwitchRole::Aggregation,
                    1,
                    k as u16,
                    link_speed,
                    0,
                    Some(block),
                )
            })
            .collect();
        for t in 0..half {
            let tor = net.add_switch(
                format!("p{pod}-tor{t}"),
                SwitchRole::Tor,
                0,
                k as u16,
                link_speed,
                half as u16,
                Some(block),
            );
            for &agg in &aggs {
                net.add_link(tor, agg, link_speed, 1, false).expect("exists");
            }
        }
        for (a, &agg) in aggs.iter().enumerate() {
            for j in 0..half {
                let core = cores[a * half + j];
                net.add_link(agg, core, link_speed, 1, false).expect("exists");
            }
        }
    }
    finish(net)
}

/// Builds a two-tier leaf-spine: every leaf connects to every spine with
/// `trunking` parallel cables.
pub fn leaf_spine(
    leaves: usize,
    spines: usize,
    servers_per_leaf: u16,
    trunking: u16,
    link_speed: Gbps,
) -> Result<Network, GenError> {
    if leaves == 0 || spines == 0 {
        return Err(invalid("leaves/spines", "must be positive"));
    }
    if trunking == 0 {
        return Err(invalid("trunking", "must be positive"));
    }
    let mut net = Network::new(format!("leaf-spine(l={leaves},s={spines})"));
    let spine_block = net.new_block();
    let leaf_radix = servers_per_leaf + spines as u16 * trunking;
    let spine_radix = leaves as u16 * trunking;
    let spine_ids: Vec<SwitchId> = (0..spines)
        .map(|s| {
            net.add_switch(
                format!("spine{s}"),
                SwitchRole::Spine,
                1,
                spine_radix,
                link_speed,
                0,
                Some(spine_block),
            )
        })
        .collect();
    for l in 0..leaves {
        let block = net.new_block();
        let leaf = net.add_switch(
            format!("leaf{l}"),
            SwitchRole::Tor,
            0,
            leaf_radix,
            link_speed,
            servers_per_leaf,
            Some(block),
        );
        for &s in &spine_ids {
            net.add_link(leaf, s, link_speed, trunking, false).expect("exists");
        }
    }
    finish(net)
}

/// Builds a VL2-style network \[20\]: each ToR connects to exactly two
/// aggregation switches; aggregation and intermediate layers form a complete
/// bipartite graph.
///
/// `d_a` is the aggregation-switch radix and `d_i` the intermediate-switch
/// radix. Following the VL2 paper: there are `d_a/2` intermediates, `d_i`
/// aggregation switches, and `d_a · d_i / 4` ToRs.
pub fn vl2(d_a: usize, d_i: usize, servers_per_tor: u16, link_speed: Gbps) -> Result<Network, GenError> {
    if d_a < 2 || d_a % 2 != 0 {
        return Err(invalid("d_a", format!("must be even and ≥ 2, got {d_a}")));
    }
    if d_i == 0 {
        return Err(invalid("d_i", "must be positive"));
    }
    let n_int = d_a / 2;
    let n_agg = d_i;
    let n_tor = d_a * d_i / 4;
    let mut net = Network::new(format!("vl2(da={d_a},di={d_i})"));

    let int_block = net.new_block();
    let ints: Vec<SwitchId> = (0..n_int)
        .map(|i| {
            net.add_switch(
                format!("int{i}"),
                SwitchRole::Spine,
                2,
                d_i as u16,
                link_speed,
                0,
                Some(int_block),
            )
        })
        .collect();
    let agg_block = net.new_block();
    let aggs: Vec<SwitchId> = (0..n_agg)
        .map(|a| {
            net.add_switch(
                format!("agg{a}"),
                SwitchRole::Aggregation,
                1,
                d_a as u16,
                link_speed,
                0,
                Some(agg_block),
            )
        })
        .collect();
    for (a, &agg) in aggs.iter().enumerate() {
        for &int in &ints {
            net.add_link(agg, int, link_speed, 1, false).expect("exists");
        }
        let _ = a;
    }
    // Each ToR picks two consecutive aggs (round-robin), as in VL2's
    // two-uplink design.
    for t in 0..n_tor {
        let block = net.new_block();
        let tor = net.add_switch(
            format!("tor{t}"),
            SwitchRole::Tor,
            0,
            servers_per_tor + 2,
            link_speed,
            servers_per_tor,
            Some(block),
        );
        let a0 = t % n_agg;
        let a1 = (t + 1) % n_agg;
        net.add_link(tor, aggs[a0], link_speed, 1, false).expect("exists");
        if a1 != a0 {
            net.add_link(tor, aggs[a1], link_speed, 1, false).expect("exists");
        }
    }
    finish(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_k4_structure() {
        let n = fat_tree(4, Gbps::new(100.0)).unwrap();
        // k=4: 4 cores, 4 pods × (2 agg + 2 tor) = 16 + 4 = 20 switches.
        assert_eq!(n.switch_count(), 20);
        // Links: tor-agg 4 per pod × 4 = 16; agg-core 4 per pod × 4 = 16.
        assert_eq!(n.link_count(), 32);
        // Servers: 8 ToRs × 2 = 16.
        assert_eq!(n.server_count(), 16);
        // Every switch uses exactly its radix worth of ports in a fat-tree.
        for s in n.switches() {
            assert_eq!(n.ports_used(s.id), u32::from(s.radix), "{}", s.name);
        }
    }

    #[test]
    fn fat_tree_rejects_odd_k() {
        assert!(fat_tree(5, Gbps::new(100.0)).is_err());
        assert!(fat_tree(0, Gbps::new(100.0)).is_err());
    }

    #[test]
    fn folded_clos_counts() {
        let p = ClosParams::default();
        let n = folded_clos(&p).unwrap();
        assert_eq!(n.switch_count(), 8 + 4 * (4 + 4));
        // tor-agg: 4 pods × 4 tors × 4 aggs = 64; agg-spine: 4×4×8 = 128.
        assert_eq!(n.link_count(), 64 + 128);
        assert_eq!(n.server_count(), 4 * 4 * 16);
        assert!(n.is_connected());
    }

    #[test]
    fn folded_clos_panel_flag_marks_spine_links() {
        let p = ClosParams {
            spine_via_panels: true,
            ..ClosParams::default()
        };
        let n = folded_clos(&p).unwrap();
        let (ocs, direct): (Vec<_>, Vec<_>) = n.links().partition(|l| l.via_ocs);
        assert_eq!(ocs.len(), 128);
        assert_eq!(direct.len(), 64);
    }

    #[test]
    fn leaf_spine_structure() {
        let n = leaf_spine(6, 4, 24, 2, Gbps::new(100.0)).unwrap();
        assert_eq!(n.switch_count(), 10);
        assert_eq!(n.link_count(), 24);
        assert_eq!(n.server_count(), 144);
        // Spines have exactly leaves×trunking ports used.
        let spine = n.switches().find(|s| s.role == SwitchRole::Spine).unwrap();
        assert_eq!(n.ports_used(spine.id), 12);
    }

    #[test]
    fn vl2_structure() {
        let n = vl2(4, 4, 20, Gbps::new(10.0)).unwrap();
        // 2 intermediates, 4 aggs, 4 ToRs.
        assert_eq!(n.switch_count(), 2 + 4 + 4);
        // agg-int complete bipartite: 8; ToR uplinks: 4×2 = 8.
        assert_eq!(n.link_count(), 16);
        assert!(n.is_connected());
        for s in n.switches().filter(|s| s.role == SwitchRole::Tor) {
            assert_eq!(n.degree(s.id), 2, "VL2 ToRs have exactly 2 uplinks");
        }
    }

    #[test]
    fn radix_helpers_match_generated_network() {
        let p = ClosParams::default();
        let n = folded_clos(&p).unwrap();
        for s in n.switches() {
            let expect = match s.role {
                SwitchRole::Tor => p.tor_radix(),
                SwitchRole::Aggregation => p.agg_radix(),
                SwitchRole::Spine => p.spine_radix(),
                SwitchRole::FlatTor => unreachable!(),
            };
            assert_eq!(s.radix, expect);
        }
    }
}
