//! Xpander: near-optimal expander datacenters from k-lifts \[50\].
//!
//! Construction (following the Xpander paper): start from the complete graph
//! on `d+1` vertices (each vertex a *metanode*), then lift each metanode
//! into `lift` switches. For every pair of metanodes, replace the single
//! edge with a random perfect matching between their switch sets. Every
//! switch ends with exactly `d` network links — one into each other
//! metanode — and metanodes form natural cable-bundling groups (the
//! deployability property Xpander claims over Jellyfish, paper §4.2).
//!
//! Each metanode is a [`crate::network::BlockId`], which is what lets the
//! placement and bundling layers treat Xpander more kindly than Jellyfish.

use super::{finish, invalid, GenError, SplitMix64};
use crate::network::{Network, SwitchId, SwitchRole};
use pd_geometry::Gbps;

/// Parameters for an Xpander network.
#[derive(Debug, Clone, PartialEq)]
pub struct XpanderParams {
    /// Network degree `d` of each switch (also: number of metanodes − 1).
    pub network_degree: usize,
    /// Lift factor: switches per metanode.
    pub lift: usize,
    /// Server downlinks per switch.
    pub servers_per_tor: u16,
    /// Line rate of every port.
    pub link_speed: Gbps,
    /// RNG seed for the random matchings.
    pub seed: u64,
}

impl Default for XpanderParams {
    fn default() -> Self {
        Self {
            network_degree: 8,
            lift: 8,
            servers_per_tor: 8,
            link_speed: Gbps::new(100.0),
            seed: 1,
        }
    }
}

impl XpanderParams {
    /// Total switches: `(d+1) × lift`.
    pub fn switch_count(&self) -> usize {
        (self.network_degree + 1) * self.lift
    }
}

/// Builds an Xpander network by random k-lifting of K_{d+1}.
pub fn xpander(p: &XpanderParams) -> Result<Network, GenError> {
    let d = p.network_degree;
    let l = p.lift;
    if d < 2 {
        return Err(invalid("network_degree", "need degree ≥ 2"));
    }
    if l == 0 {
        return Err(invalid("lift", "must be positive"));
    }

    // Small lifts can draw matchings whose union is disconnected (e.g. two
    // parallel copies of K_{d+1} at lift 2); retry with fresh matchings, as
    // the Xpander construction requires a connected lift.
    let mut rng = SplitMix64::new(p.seed);
    for _ in 0..64 {
        let net = build_lift(p, &mut rng);
        if net.is_connected() {
            return finish(net);
        }
    }
    Err(GenError::ConstructionFailed(format!(
        "no connected {l}-lift of K_{} found in 64 attempts",
        d + 1
    )))
}

fn build_lift(p: &XpanderParams, rng: &mut SplitMix64) -> Network {
    let d = p.network_degree;
    let l = p.lift;
    let metanodes = d + 1;
    let mut net = Network::new(format!("xpander(d={d},lift={l},seed={})", p.seed));

    let mut members: Vec<Vec<SwitchId>> = Vec::with_capacity(metanodes);
    for m in 0..metanodes {
        let block = net.new_block();
        let ids = (0..l)
            .map(|i| {
                net.add_switch(
                    format!("x{m}-{i}"),
                    SwitchRole::FlatTor,
                    0,
                    d as u16 + p.servers_per_tor,
                    p.link_speed,
                    p.servers_per_tor,
                    Some(block),
                )
            })
            .collect();
        members.push(ids);
    }

    // Random perfect matching between each metanode pair.
    for a in 0..metanodes {
        for b in (a + 1)..metanodes {
            let mut perm: Vec<usize> = (0..l).collect();
            rng.shuffle(&mut perm);
            for (i, &j) in perm.iter().enumerate() {
                net.add_link(members[a][i], members[b][j], p.link_speed, 1, false)
                    .expect("endpoints exist");
            }
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xpander_is_d_regular() {
        let p = XpanderParams::default();
        let n = xpander(&p).unwrap();
        assert_eq!(n.switch_count(), 72); // (8+1) × 8
        assert_eq!(n.link_count(), 72 * 8 / 2);
        for s in n.switches() {
            assert_eq!(n.degree(s.id), 8);
        }
        assert!(n.is_connected());
    }

    #[test]
    fn one_link_per_metanode_pair_per_switch() {
        let p = XpanderParams {
            network_degree: 4,
            lift: 5,
            ..XpanderParams::default()
        };
        let n = xpander(&p).unwrap();
        // Each switch must have exactly one neighbor in each other block.
        for s in n.switches() {
            let mut blocks: Vec<_> = n
                .neighbors(s.id)
                .map(|nb| n.switch(nb).unwrap().block.unwrap())
                .collect();
            blocks.sort();
            blocks.dedup();
            assert_eq!(blocks.len(), 4, "one neighbor block per other metanode");
            assert!(!blocks.contains(&s.block.unwrap()), "no intra-metanode links");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = XpanderParams::default();
        let a: Vec<_> = xpander(&p).unwrap().links().map(|l| (l.a, l.b)).collect();
        let b: Vec<_> = xpander(&p).unwrap().links().map(|l| (l.a, l.b)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn block_count_is_metanode_count() {
        let p = XpanderParams {
            network_degree: 6,
            lift: 3,
            ..XpanderParams::default()
        };
        let n = xpander(&p).unwrap();
        assert_eq!(n.blocks().len(), 7);
        for b in n.blocks() {
            assert_eq!(n.block_members(b).len(), 3);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(xpander(&XpanderParams {
            network_degree: 1,
            ..XpanderParams::default()
        })
        .is_err());
        assert!(xpander(&XpanderParams {
            lift: 0,
            ..XpanderParams::default()
        })
        .is_err());
    }

    #[test]
    fn lift_one_is_complete_graph() {
        let p = XpanderParams {
            network_degree: 5,
            lift: 1,
            ..XpanderParams::default()
        };
        let n = xpander(&p).unwrap();
        assert_eq!(n.switch_count(), 6);
        assert_eq!(n.link_count(), 15); // K6
    }
}
