//! Jupiter-evolved direct-connect fabric: aggregation blocks joined through
//! an OCS layer, with no spine \[39\] (paper §4.1, §4.3).
//!
//! Each aggregation block is a small two-stage Clos (ToRs × middle
//! switches). Every middle-switch uplink terminates on an optical circuit
//! switch; the OCS layer then realizes a *logical* inter-block graph that
//! can be re-created at will ("topology engineering"). Links carried by the
//! OCS are marked [`crate::network::Link::via_ocs`], which is what the
//! cabling layer uses to route them physically via OCS racks and what makes
//! both expansion (§4.1) and the live spine-removal conversion (§4.3) cheap:
//! reconfiguration moves no fiber.
//!
//! [`DirectConnectFabric::reconfigure`] retargets the inter-block capacities to a demand matrix
//! using largest-remainder apportionment of each block's fixed uplink
//! budget — the toolkit's stand-in for Jupiter's traffic/topology
//! engineering.

use super::{finish, invalid, GenError};
use crate::network::{BlockId, Network, SwitchId, SwitchRole};
use pd_geometry::Gbps;

/// Parameters for a direct-connect (spineless) fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectConnectParams {
    /// Number of aggregation blocks.
    pub blocks: usize,
    /// ToR switches per block.
    pub tors_per_block: usize,
    /// Middle (aggregation) switches per block.
    pub mids_per_block: usize,
    /// OCS-facing uplinks per middle switch.
    pub uplinks_per_mid: usize,
    /// Server downlinks per ToR.
    pub servers_per_tor: u16,
    /// Line rate of every port.
    pub link_speed: Gbps,
}

impl Default for DirectConnectParams {
    fn default() -> Self {
        Self {
            blocks: 8,
            tors_per_block: 4,
            mids_per_block: 4,
            uplinks_per_mid: 7,
            servers_per_tor: 16,
            link_speed: Gbps::new(100.0),
        }
    }
}

impl DirectConnectParams {
    /// Total OCS-facing uplinks per block.
    pub fn uplinks_per_block(&self) -> usize {
        self.mids_per_block * self.uplinks_per_mid
    }
}

/// A built direct-connect fabric plus the handles needed to reconfigure it.
#[derive(Debug, Clone)]
pub struct DirectConnectFabric {
    /// The network. Inter-block links are all `via_ocs`.
    pub network: Network,
    /// Block ids in construction order.
    pub block_ids: Vec<BlockId>,
    /// Middle switches per block, in construction order.
    pub mids: Vec<Vec<SwitchId>>,
    params: DirectConnectParams,
}

/// Builds a direct-connect fabric with a uniform inter-block mesh.
pub fn direct_connect(p: &DirectConnectParams) -> Result<DirectConnectFabric, GenError> {
    if p.blocks < 2 {
        return Err(invalid("blocks", "need at least 2 aggregation blocks"));
    }
    if p.tors_per_block == 0 || p.mids_per_block == 0 || p.uplinks_per_mid == 0 {
        return Err(invalid(
            "tors/mids/uplinks",
            "all per-block counts must be positive",
        ));
    }
    if p.uplinks_per_block() < p.blocks - 1 {
        return Err(invalid(
            "uplinks_per_mid",
            format!(
                "{} uplinks per block cannot reach all {} other blocks",
                p.uplinks_per_block(),
                p.blocks - 1
            ),
        ));
    }

    let mut net = Network::new(format!(
        "direct-connect(b={},t={},m={},u={})",
        p.blocks, p.tors_per_block, p.mids_per_block, p.uplinks_per_mid
    ));
    let mid_radix = (p.tors_per_block + p.uplinks_per_mid) as u16;
    let tor_radix = p.servers_per_tor + p.mids_per_block as u16;

    let mut block_ids = Vec::with_capacity(p.blocks);
    let mut mids: Vec<Vec<SwitchId>> = Vec::with_capacity(p.blocks);
    for b in 0..p.blocks {
        let block = net.new_block();
        block_ids.push(block);
        let mid_ids: Vec<SwitchId> = (0..p.mids_per_block)
            .map(|m| {
                net.add_switch(
                    format!("b{b}-mid{m}"),
                    SwitchRole::Aggregation,
                    1,
                    mid_radix,
                    p.link_speed,
                    0,
                    Some(block),
                )
            })
            .collect();
        for t in 0..p.tors_per_block {
            let tor = net.add_switch(
                format!("b{b}-tor{t}"),
                SwitchRole::Tor,
                0,
                tor_radix,
                p.link_speed,
                p.servers_per_tor,
                Some(block),
            );
            for &m in &mid_ids {
                net.add_link(tor, m, p.link_speed, 1, false).expect("exists");
            }
        }
        mids.push(mid_ids);
    }

    let mut fabric = DirectConnectFabric {
        network: net,
        block_ids,
        mids,
        params: p.clone(),
    };
    let uniform = vec![vec![1.0; p.blocks]; p.blocks];
    fabric.reconfigure(&uniform)?;
    fabric.network = finish(std::mem::take(&mut fabric.network))?;
    Ok(fabric)
}

impl DirectConnectFabric {
    /// Current inter-block link counts.
    pub fn interblock_matrix(&self) -> Vec<Vec<usize>> {
        let b = self.block_ids.len();
        let mut m = vec![vec![0usize; b]; b];
        let block_of = |s: SwitchId| {
            let blk = self.network.switch(s).and_then(|s| s.block).expect("has block");
            self.block_ids.iter().position(|&x| x == blk).expect("known block")
        };
        for l in self.network.links().filter(|l| l.via_ocs) {
            let (i, j) = (block_of(l.a), block_of(l.b));
            m[i][j] += 1;
            m[j][i] += 1;
        }
        m
    }

    /// Reconfigures the OCS layer to apportion each block's uplink budget
    /// across other blocks proportionally to `demand[i][j]` (symmetrized),
    /// with at least one link per pair where demand is positive if the
    /// budget allows. Returns the number of logical links changed (the
    /// "rewires" — which for an OCS cost a reconfiguration, not a cable
    /// move).
    pub fn reconfigure(&mut self, demand: &[Vec<f64>]) -> Result<usize, GenError> {
        let b = self.block_ids.len();
        if demand.len() != b || demand.iter().any(|r| r.len() != b) {
            return Err(invalid("demand", format!("matrix must be {b}×{b}")));
        }
        // Symmetrize demand and compute target link counts per pair via
        // largest-remainder apportionment of the total pair budget.
        let budget_per_block = self.params.uplinks_per_block();
        // Total links available = blocks × budget / 2 (each link uses one
        // uplink at both ends).
        let total_links = b * budget_per_block / 2;
        let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
        let mut demand_sum = 0.0;
        for i in 0..b {
            for j in (i + 1)..b {
                let d = (demand[i][j] + demand[j][i]).max(0.0);
                pairs.push((i, j, d));
                demand_sum += d;
            }
        }
        if demand_sum <= 0.0 {
            return Err(invalid("demand", "must have positive total demand"));
        }

        // Every pair first gets one link regardless of demand — direct
        // connectivity between all block pairs is what keeps the spineless
        // fabric one routing domain (and what Jupiter's topology engineering
        // preserves). The remaining budget is apportioned to demand.
        let mut target: Vec<usize> = Vec::with_capacity(pairs.len());
        let mut frac: Vec<(f64, usize)> = Vec::with_capacity(pairs.len());
        let mut used = vec![0usize; b];
        let mut assigned = 0usize;
        for &(i, j, _) in &pairs {
            debug_assert!(used[i] < budget_per_block && used[j] < budget_per_block);
            target.push(1);
            used[i] += 1;
            used[j] += 1;
            assigned += 1;
        }
        let extra_links = total_links.saturating_sub(assigned);
        for (idx, &(i, j, d)) in pairs.iter().enumerate() {
            let ideal = d / demand_sum * extra_links as f64;
            let fl = (ideal.floor() as usize)
                .min(budget_per_block - used[i])
                .min(budget_per_block - used[j]);
            target[idx] += fl;
            used[i] += fl;
            used[j] += fl;
            assigned += fl;
            frac.push((ideal - ideal.floor(), idx));
        }
        frac.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut rest = total_links.saturating_sub(assigned);
        // Repeated passes: keep topping up pairs with remaining budget.
        while rest > 0 {
            let mut progressed = false;
            for &(_, idx) in &frac {
                if rest == 0 {
                    break;
                }
                let (i, j, d) = pairs[idx];
                if d <= 0.0 {
                    continue;
                }
                if used[i] < budget_per_block && used[j] < budget_per_block {
                    target[idx] += 1;
                    used[i] += 1;
                    used[j] += 1;
                    rest -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break; // budgets exhausted (odd leftovers stay unused)
            }
        }

        // Diff against current links and rewire. All removals happen before
        // any additions: on a full fabric every uplink port is in use, so
        // additions only have free ports once the removals release them
        // (exactly how a real OCS reconfiguration sequences drains).
        let current = self.interblock_matrix();
        let mut changed = 0usize;
        for (idx, &(i, j, _)) in pairs.iter().enumerate() {
            let (want, have) = (target[idx], current[i][j]);
            if have > want {
                changed += self.remove_pair_links(i, j, have - want);
            }
        }
        for (idx, &(i, j, _)) in pairs.iter().enumerate() {
            let (want, have) = (target[idx], current[i][j]);
            if want > have {
                changed += self.add_pair_links(i, j, want - have);
            }
        }
        Ok(changed)
    }

    /// Links from middle switch `m` to block index `j` (pair-local count;
    /// the balance ECMP needs — see [`Self::add_pair_links`]).
    fn mid_links_to_block(&self, m: SwitchId, j: usize) -> usize {
        let bj = self.block_ids[j];
        self.network
            .incident_links(m)
            .iter()
            .filter_map(|&l| self.network.link(l))
            .filter(|l| {
                l.via_ocs
                    && self
                        .network
                        .switch(l.other(m))
                        .and_then(|s| s.block)
                        == Some(bj)
            })
            .count()
    }

    /// Removes up to `count` OCS links between block indices `i` and `j`,
    /// always taking from the middle switch currently holding the *most*
    /// links to the pair — keeping the survivors spread across mids.
    fn remove_pair_links(&mut self, i: usize, j: usize, count: usize) -> usize {
        let mut removed = 0;
        for _ in 0..count {
            let victim = self.mids[i]
                .iter()
                .copied()
                .filter(|&m| self.mid_links_to_block(m, j) > 0)
                // Most links to this pair, then most total uplinks in use
                // (fewest free ports) — so survivors stay spread across
                // mids both per-pair and overall.
                .max_by_key(|&m| {
                    (
                        self.mid_links_to_block(m, j),
                        u32::MAX - self.network.ports_free(m),
                    )
                })
                .and_then(|m| {
                    let bj = self.block_ids[j];
                    self.network
                        .incident_links(m)
                        .iter()
                        .copied()
                        .find(|&l| {
                            self.network
                                .link(l)
                                .map(|l| {
                                    l.via_ocs
                                        && self
                                            .network
                                            .switch(l.other(m))
                                            .and_then(|s| s.block)
                                            == Some(bj)
                                })
                                .unwrap_or(false)
                        })
                });
            match victim {
                Some(l) => {
                    self.network.remove_link(l).expect("found above");
                    removed += 1;
                }
                None => break,
            }
        }
        removed
    }

    /// Adds `count` OCS links between blocks `i` and `j`.
    ///
    /// Each end picks the middle switch with the *fewest links to this
    /// specific pair* (ties → most free ports). Per-pair balance matters
    /// for ECMP: if one mid hoarded a pair's links, it would be the only
    /// shortest-path next hop and its ToR uplinks would bottleneck — a
    /// physical-placement artifact throttling an abstractly-fine topology.
    fn add_pair_links(&mut self, i: usize, j: usize, count: usize) -> usize {
        let mut added = 0;
        for _ in 0..count {
            let pick = |f: &Self, block: usize, other: usize| -> Option<SwitchId> {
                f.mids[block]
                    .iter()
                    .copied()
                    .filter(|&m| f.network.ports_free(m) > 0)
                    .min_by_key(|&m| {
                        (
                            f.mid_links_to_block(m, other),
                            usize::MAX - f.network.ports_free(m) as usize,
                        )
                    })
            };
            let (Some(ma), Some(mb)) = (pick(self, i, j), pick(self, j, i)) else {
                break;
            };
            self.network
                .add_link(ma, mb, self.params.link_speed, 1, true)
                .expect("endpoints exist");
            added += 1;
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fabric_structure() {
        let p = DirectConnectParams::default();
        let f = direct_connect(&p).unwrap();
        let n = &f.network;
        assert_eq!(n.switch_count(), 8 * (4 + 4));
        assert!(n.is_connected());
        assert!(n.validate().is_ok());
        // All inter-block links go via OCS; all intra-block do not.
        for l in n.links() {
            let ba = n.switch(l.a).unwrap().block;
            let bb = n.switch(l.b).unwrap().block;
            assert_eq!(l.via_ocs, ba != bb);
        }
        // Uniform matrix: every pair gets at least floor(total/pairs).
        let m = f.interblock_matrix();
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    assert!(m[i][j] >= 3, "pair ({i},{j}) has {} links", m[i][j]);
                }
            }
        }
    }

    #[test]
    fn block_budget_respected() {
        let p = DirectConnectParams::default();
        let f = direct_connect(&p).unwrap();
        let m = f.interblock_matrix();
        for i in 0..p.blocks {
            let row: usize = m[i].iter().sum();
            assert!(row <= p.uplinks_per_block(), "block {i} uses {row}");
        }
    }

    #[test]
    fn reconfigure_follows_demand_skew() {
        let p = DirectConnectParams::default();
        let mut f = direct_connect(&p).unwrap();
        // Blocks 0 and 1 exchange 10× the traffic of everyone else.
        let mut demand = vec![vec![1.0; 8]; 8];
        demand[0][1] = 50.0;
        demand[1][0] = 50.0;
        let changed = f.reconfigure(&demand).unwrap();
        assert!(changed > 0);
        let m = f.interblock_matrix();
        let hot = m[0][1];
        let typical = m[2][3];
        assert!(
            hot > typical,
            "hot pair should get more capacity: hot={hot} typical={typical}"
        );
        assert!(f.network.validate().is_ok());
        assert!(f.network.is_connected());
    }

    #[test]
    fn reconfigure_to_same_demand_is_noop() {
        let p = DirectConnectParams::default();
        let mut f = direct_connect(&p).unwrap();
        let uniform = vec![vec![1.0; 8]; 8];
        let changed = f.reconfigure(&uniform).unwrap();
        assert_eq!(changed, 0);
    }

    #[test]
    fn insufficient_uplinks_rejected() {
        let p = DirectConnectParams {
            blocks: 30,
            mids_per_block: 1,
            uplinks_per_mid: 4,
            ..DirectConnectParams::default()
        };
        assert!(direct_connect(&p).is_err());
    }

    #[test]
    fn bad_demand_matrix_rejected() {
        let p = DirectConnectParams::default();
        let mut f = direct_connect(&p).unwrap();
        assert!(f.reconfigure(&vec![vec![1.0; 3]; 3]).is_err());
        assert!(f.reconfigure(&vec![vec![0.0; 8]; 8]).is_err());
    }
}
