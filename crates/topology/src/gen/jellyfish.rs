//! Jellyfish: datacenter networking with random regular graphs \[47\].
//!
//! Jellyfish wires the network ports of `n` ToRs into a uniform random
//! `r`-regular graph. The paper (§4.2) suspects its *physical*
//! deployability — "highly non-trivial" cable-length and bundling
//! computation — is why it is not deployed; this generator exists so the
//! rest of the toolkit can quantify that.
//!
//! Construction: the standard pairing model with repair. Draw a random
//! perfect matching over port stubs; then eliminate self-loops and parallel
//! edges with random edge swaps (the same local moves Jellyfish uses for
//! incremental expansion). Fails only if the repair budget is exhausted,
//! which for r ≥ 3 and reasonable n is vanishingly rare.

use super::{finish, invalid, GenError, SplitMix64};
use crate::network::{Network, SwitchId, SwitchRole};
use pd_geometry::Gbps;
use std::collections::HashSet;

/// Parameters for a Jellyfish random regular graph.
#[derive(Debug, Clone, PartialEq)]
pub struct JellyfishParams {
    /// Number of ToR switches.
    pub tors: usize,
    /// Network ports per ToR (the regular degree `r`).
    pub network_degree: usize,
    /// Server downlinks per ToR.
    pub servers_per_tor: u16,
    /// Line rate of every port.
    pub link_speed: Gbps,
    /// RNG seed for the random construction.
    pub seed: u64,
}

impl Default for JellyfishParams {
    fn default() -> Self {
        Self {
            tors: 64,
            network_degree: 8,
            servers_per_tor: 8,
            link_speed: Gbps::new(100.0),
            seed: 1,
        }
    }
}

/// Builds a Jellyfish network: a uniform-ish random `r`-regular graph over
/// `n` ToRs, each also carrying `servers_per_tor` downlinks.
pub fn jellyfish(p: &JellyfishParams) -> Result<Network, GenError> {
    let n = p.tors;
    let r = p.network_degree;
    if n < 2 {
        return Err(invalid("tors", "need at least 2 ToRs"));
    }
    if r == 0 {
        return Err(invalid("network_degree", "must be positive"));
    }
    if r >= n {
        return Err(invalid(
            "network_degree",
            format!("degree {r} must be < number of ToRs {n} for a simple graph"),
        ));
    }
    if n * r % 2 != 0 {
        return Err(invalid(
            "tors×network_degree",
            format!("{n}×{r} is odd; an r-regular graph needs an even sum of degrees"),
        ));
    }

    let mut rng = SplitMix64::new(p.seed);
    let edges = random_regular_edges(n, r, &mut rng)?;

    let mut net = Network::new(format!("jellyfish(n={n},r={r},seed={})", p.seed));
    let ids: Vec<SwitchId> = (0..n)
        .map(|i| {
            let block = net.new_block(); // each ToR is its own deployment unit
            net.add_switch(
                format!("jf{i}"),
                SwitchRole::FlatTor,
                0,
                r as u16 + p.servers_per_tor,
                p.link_speed,
                p.servers_per_tor,
                Some(block),
            )
        })
        .collect();
    for (a, b) in edges {
        net.add_link(ids[a], ids[b], p.link_speed, 1, false)
            .expect("simple edges between existing switches");
    }
    finish(net)
}

/// Generates the edge set of a random `r`-regular simple graph on `n`
/// vertices via the pairing model with swap-based repair.
pub(crate) fn random_regular_edges(
    n: usize,
    r: usize,
    rng: &mut SplitMix64,
) -> Result<Vec<(usize, usize)>, GenError> {
    // n = r+1 forces the complete graph; emit it directly rather than
    // hoping the pairing model stumbles onto the unique answer.
    if n == r + 1 {
        let mut edges = Vec::with_capacity(n * r / 2);
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        return Ok(edges);
    }
    const MAX_ATTEMPTS: usize = 64;
    'attempt: for _ in 0..MAX_ATTEMPTS {
        // Pairing model: r stubs per vertex, shuffled, paired consecutively.
        let mut stubs: Vec<usize> = (0..n * r).map(|s| s / r).collect();
        rng.shuffle(&mut stubs);
        let mut edges: Vec<(usize, usize)> = stubs
            .chunks_exact(2)
            .map(|c| (c[0].min(c[1]), c[0].max(c[1])))
            .collect();

        // Repair self-loops and duplicates with random swaps:
        // pick a bad edge (a,b) and a random edge (c,d); rewire to (a,c),(b,d).
        let mut budget = 200 * n * r;
        loop {
            let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(edges.len());
            let mut bad_idx: Option<usize> = None;
            for (i, &e) in edges.iter().enumerate() {
                if e.0 == e.1 || !seen.insert(e) {
                    bad_idx = Some(i);
                    break;
                }
            }
            let Some(i) = bad_idx else {
                return Ok(edges);
            };
            if budget == 0 {
                continue 'attempt;
            }
            budget -= 1;
            let j = rng.below(edges.len());
            if i == j {
                continue;
            }
            let (a, b) = edges[i];
            let (c, d) = edges[j];
            // Candidate rewiring must not create new self-loops.
            if a == c || b == d {
                continue;
            }
            edges[i] = (a.min(c), a.max(c));
            edges[j] = (b.min(d), b.max(d));
        }
    }
    Err(GenError::ConstructionFailed(format!(
        "could not build a simple {r}-regular graph on {n} vertices"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jellyfish_is_regular_and_connected() {
        let p = JellyfishParams::default();
        let n = jellyfish(&p).unwrap();
        assert_eq!(n.switch_count(), 64);
        assert_eq!(n.link_count(), 64 * 8 / 2);
        for s in n.switches() {
            assert_eq!(n.degree(s.id), 8, "{} degree", s.name);
        }
        assert!(n.is_connected());
        assert_eq!(n.server_count(), 64 * 8);
    }

    #[test]
    fn jellyfish_is_seed_deterministic() {
        let p = JellyfishParams::default();
        let a = jellyfish(&p).unwrap();
        let b = jellyfish(&p).unwrap();
        let ea: Vec<_> = a.links().map(|l| (l.a, l.b)).collect();
        let eb: Vec<_> = b.links().map(|l| (l.a, l.b)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = jellyfish(&JellyfishParams::default()).unwrap();
        let b = jellyfish(&JellyfishParams {
            seed: 2,
            ..JellyfishParams::default()
        })
        .unwrap();
        let ea: Vec<_> = a.links().map(|l| (l.a, l.b)).collect();
        let eb: Vec<_> = b.links().map(|l| (l.a, l.b)).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        for seed in 0..10 {
            let edges = random_regular_edges(30, 5, &mut SplitMix64::new(seed)).unwrap();
            let mut seen = HashSet::new();
            for (a, b) in edges {
                assert_ne!(a, b);
                assert!(seen.insert((a, b)), "duplicate edge ({a},{b})");
            }
        }
    }

    #[test]
    fn odd_degree_sum_rejected() {
        let p = JellyfishParams {
            tors: 5,
            network_degree: 3,
            ..JellyfishParams::default()
        };
        assert!(jellyfish(&p).is_err());
    }

    #[test]
    fn degree_too_large_rejected() {
        let p = JellyfishParams {
            tors: 4,
            network_degree: 4,
            ..JellyfishParams::default()
        };
        assert!(jellyfish(&p).is_err());
    }

    #[test]
    fn complete_graph_edge_case() {
        // n=4, r=3 forces K4 — the repair loop must still terminate.
        let p = JellyfishParams {
            tors: 4,
            network_degree: 3,
            seed: 11,
            ..JellyfishParams::default()
        };
        let n = jellyfish(&p).unwrap();
        assert_eq!(n.link_count(), 6);
    }
}
