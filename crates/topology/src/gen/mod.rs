//! Topology generators for every network family the paper discusses.
//!
//! | Generator | Paper anchor |
//! |---|---|
//! | [`clos`](mod@clos) (fat-tree, folded Clos, leaf-spine, VL2) | §4.1, \[20\] |
//! | [`jellyfish`](mod@jellyfish) (random regular graphs) | §4.2, \[47\] |
//! | [`xpander`](mod@xpander) (k-lifted complete graphs) | §4.2, \[50\] |
//! | [`slimfly`](mod@slimfly) (MMS graphs) | §4.2, \[7\] |
//! | [`flattened_butterfly`](mod@flattened_butterfly) | §4.1, \[29\] |
//! | [`fatclique`](mod@fatclique) | §4.2, \[55\] |
//! | [`directconnect`](mod@directconnect) (aggregation blocks over an OCS layer) | §4.3, \[39\] |
//!
//! All generators are deterministic: randomized constructions (Jellyfish,
//! Xpander lifts) take an explicit `u64` seed and use a counter-based RNG.
//! Every generator returns a [`Network`] that passes
//! [`Network::validate`] and is connected, or a [`GenError`] explaining
//! which parameter constraint failed.

pub mod clos;
pub mod directconnect;
pub mod fatclique;
pub mod flattened_butterfly;
pub mod jellyfish;
pub mod slimfly;
pub mod xpander;

pub use clos::{fat_tree, folded_clos, leaf_spine, vl2, ClosParams};
pub use directconnect::{direct_connect, DirectConnectParams};
pub use fatclique::{fatclique, FatCliqueParams};
pub use flattened_butterfly::{flattened_butterfly, FlattenedButterflyParams};
pub use jellyfish::{jellyfish, JellyfishParams};
pub use slimfly::{slimfly, SlimFlyParams};
pub use xpander::{xpander, XpanderParams};

use crate::network::Network;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameter errors from topology generators.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GenError {
    /// A parameter violated a structural requirement.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// Why it is invalid.
        reason: String,
    },
    /// The randomized construction failed to converge (e.g. a random regular
    /// graph that could not be completed after the retry budget).
    ConstructionFailed(String),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            GenError::ConstructionFailed(r) => write!(f, "construction failed: {r}"),
        }
    }
}

impl std::error::Error for GenError {}

/// Stable 64-bit FNV-1a hash — the canonical cache key for generated
/// topologies.
///
/// Generation is deterministic, so a network is fully identified by the
/// bytes of its parameter encoding; `pd-core`'s batch engine memoizes
/// [`Network`] generation on this key so sweeps that share a topology
/// sub-spec (seed ensembles, ablation matrices) generate each network once
/// and clone it. FNV-1a is used because it is trivially dependency-free and
/// stable across runs and platforms, which keeps cache keys reproducible.
pub fn cache_key(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

pub(crate) fn invalid(name: &'static str, reason: impl Into<String>) -> GenError {
    GenError::InvalidParameter {
        name,
        reason: reason.into(),
    }
}

/// Post-construction sanity check shared by all generators: the network must
/// validate and be connected. Generators call this before returning.
pub(crate) fn finish(net: Network) -> Result<Network, GenError> {
    net.validate()
        .map_err(|e| GenError::ConstructionFailed(format!("invariant violated: {e}")))?;
    if !net.is_connected() {
        return Err(GenError::ConstructionFailed(
            "generated network is disconnected".into(),
        ));
    }
    Ok(net)
}

/// A tiny deterministic splitmix64 RNG used by the randomized constructions
/// and exposed for callers that need reproducible sampling (e.g. the
/// goodness metrics).
///
/// We avoid threading `rand` generics through generator internals; splitmix64
/// is adequate for construction randomness, trivially seedable, and keeps the
/// generated topologies bit-stable across platforms and `rand` versions.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Rejection sampling to avoid modulo bias on small n it is
        // negligible, but construction determinism is worth exactness.
        let n64 = n as u64;
        let zone = u64::MAX - (u64::MAX % n64);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n64) as usize;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_is_stable_and_discriminating() {
        // Known FNV-1a vectors: empty input = offset basis, "a" = 0xaf63dc4c8601ec8c.
        assert_eq!(cache_key(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(cache_key(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(cache_key(b"jellyfish seed=7"), cache_key(b"jellyfish seed=7"));
        assert_ne!(cache_key(b"jellyfish seed=7"), cache_key(b"jellyfish seed=8"));
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SplitMix64::new(7);
        for n in 1..50usize {
            for _ in 0..20 {
                assert!(r.below(n) < n);
            }
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(9);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }
}
