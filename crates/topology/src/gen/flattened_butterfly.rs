//! Flattened butterfly: a cost-efficient topology for high-radix networks \[29\].
//!
//! The 2D flattened butterfly arranges switches in an `a × b` grid and fully
//! connects every row and every column. The paper's §4.1 cites Marty et
//! al. \[32\]: directly connecting ToRs this way was "operationally
//! challenging" at Google because racks come and go — exactly the kind of
//! lifecycle cost this toolkit measures.

use super::{finish, invalid, GenError};
use crate::network::{Network, SwitchId, SwitchRole};
use pd_geometry::Gbps;

/// Parameters for a 2D flattened butterfly.
#[derive(Debug, Clone, PartialEq)]
pub struct FlattenedButterflyParams {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Server downlinks per switch (the concentration factor).
    pub servers_per_tor: u16,
    /// Line rate of every port.
    pub link_speed: Gbps,
}

impl Default for FlattenedButterflyParams {
    fn default() -> Self {
        Self {
            rows: 8,
            cols: 8,
            servers_per_tor: 8,
            link_speed: Gbps::new(100.0),
        }
    }
}

impl FlattenedButterflyParams {
    /// Network degree of every switch: `(rows−1) + (cols−1)`.
    pub fn network_degree(&self) -> usize {
        self.rows - 1 + self.cols - 1
    }
}

/// Builds a 2D flattened butterfly: full mesh within each row and column.
/// Each grid row is a deployment block.
pub fn flattened_butterfly(p: &FlattenedButterflyParams) -> Result<Network, GenError> {
    if p.rows < 2 || p.cols < 2 {
        return Err(invalid("rows/cols", "need at least a 2×2 grid"));
    }
    let mut net = Network::new(format!("flat-bf({}x{})", p.rows, p.cols));
    let radix = p.network_degree() as u16 + p.servers_per_tor;
    let mut grid = vec![vec![SwitchId(0); p.cols]; p.rows];
    for r in 0..p.rows {
        let block = net.new_block();
        for c in 0..p.cols {
            grid[r][c] = net.add_switch(
                format!("fb{r}-{c}"),
                SwitchRole::FlatTor,
                0,
                radix,
                p.link_speed,
                p.servers_per_tor,
                Some(block),
            );
        }
    }
    // Row cliques.
    for r in 0..p.rows {
        for c in 0..p.cols {
            for c2 in (c + 1)..p.cols {
                net.add_link(grid[r][c], grid[r][c2], p.link_speed, 1, false)
                    .expect("exists");
            }
        }
    }
    // Column cliques.
    for c in 0..p.cols {
        for r in 0..p.rows {
            for r2 in (r + 1)..p.rows {
                net.add_link(grid[r][c], grid[r2][c], p.link_speed, 1, false)
                    .expect("exists");
            }
        }
    }
    finish(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_structure() {
        let p = FlattenedButterflyParams {
            rows: 4,
            cols: 5,
            ..FlattenedButterflyParams::default()
        };
        let n = flattened_butterfly(&p).unwrap();
        assert_eq!(n.switch_count(), 20);
        // Row cliques: 4 × C(5,2)=10 → 40; column cliques: 5 × C(4,2)=6 → 30.
        assert_eq!(n.link_count(), 70);
        for s in n.switches() {
            assert_eq!(n.degree(s.id), 3 + 4);
        }
        assert!(n.is_connected());
    }

    #[test]
    fn diameter_is_two() {
        let n = flattened_butterfly(&FlattenedButterflyParams::default()).unwrap();
        assert_eq!(crate::routing::AllPairs::compute(&n).diameter(), 2);
    }

    #[test]
    fn too_small_rejected() {
        let p = FlattenedButterflyParams {
            rows: 1,
            cols: 8,
            ..FlattenedButterflyParams::default()
        };
        assert!(flattened_butterfly(&p).is_err());
    }

    #[test]
    fn blocks_are_rows() {
        let p = FlattenedButterflyParams {
            rows: 3,
            cols: 4,
            ..FlattenedButterflyParams::default()
        };
        let n = flattened_butterfly(&p).unwrap();
        assert_eq!(n.blocks().len(), 3);
        for b in n.blocks() {
            assert_eq!(n.block_members(b).len(), 4);
        }
    }
}
