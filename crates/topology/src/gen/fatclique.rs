//! FatClique-style hierarchical clique topology \[55\].
//!
//! The FatClique paper (whose lifecycle-management metrics this toolkit
//! adopts, paper §5.4) composes cliques at three levels: switches form
//! *sub-cliques*, sub-cliques form *cliques*, cliques form the network. Each
//! switch spends some ports inside its sub-clique, some connecting its
//! sub-clique to the other sub-cliques of its clique, and some connecting
//! its clique to other cliques.
//!
//! We implement the two upper levels with uniform port budgets (a documented
//! simplification — the original allows uneven spreads): within a sub-clique
//! all switches are fully meshed; each (sub-clique, other-sub-clique) pair in
//! a clique is connected by one link per switch; each (clique, other-clique)
//! pair is connected by `inter_clique_links` links spread round-robin over
//! the clique's switches.

use super::{finish, invalid, GenError};
use crate::network::{Network, SwitchId, SwitchRole};
use pd_geometry::Gbps;

/// Parameters for a FatClique-style network.
#[derive(Debug, Clone, PartialEq)]
pub struct FatCliqueParams {
    /// Switches per sub-clique.
    pub subclique_size: usize,
    /// Sub-cliques per clique.
    pub subcliques_per_clique: usize,
    /// Number of cliques.
    pub cliques: usize,
    /// Inter-clique links per (clique, clique) pair.
    pub inter_clique_links: usize,
    /// Server downlinks per switch.
    pub servers_per_tor: u16,
    /// Line rate of every port.
    pub link_speed: Gbps,
}

impl Default for FatCliqueParams {
    fn default() -> Self {
        Self {
            subclique_size: 4,
            subcliques_per_clique: 4,
            cliques: 4,
            inter_clique_links: 8,
            servers_per_tor: 8,
            link_speed: Gbps::new(100.0),
        }
    }
}

impl FatCliqueParams {
    /// Total switch count.
    pub fn switch_count(&self) -> usize {
        self.subclique_size * self.subcliques_per_clique * self.cliques
    }

    /// Network ports consumed per switch (assuming the round-robin spread
    /// divides evenly; otherwise some switches use one more).
    pub fn min_network_degree(&self) -> usize {
        let local = self.subclique_size - 1;
        let intra_clique = self.subcliques_per_clique - 1;
        let per_clique_switches = self.subclique_size * self.subcliques_per_clique;
        let inter = (self.cliques - 1) * self.inter_clique_links / per_clique_switches;
        local + intra_clique + inter
    }
}

/// Builds a FatClique-style hierarchical clique network. Each clique is one
/// deployment block.
pub fn fatclique(p: &FatCliqueParams) -> Result<Network, GenError> {
    if p.subclique_size < 2 {
        return Err(invalid("subclique_size", "need ≥ 2 switches per sub-clique"));
    }
    if p.subcliques_per_clique < 2 || p.cliques < 2 {
        return Err(invalid(
            "subcliques_per_clique/cliques",
            "need ≥ 2 at both upper levels",
        ));
    }
    let per_clique = p.subclique_size * p.subcliques_per_clique;
    if p.inter_clique_links == 0 {
        return Err(invalid("inter_clique_links", "must be positive"));
    }

    // Worst-case per-switch port need (round-robin may put one extra
    // inter-clique link on early switches).
    let worst_inter =
        ((p.cliques - 1) * p.inter_clique_links).div_ceil(per_clique);
    let radix = (p.subclique_size - 1 + p.subcliques_per_clique - 1 + worst_inter) as u16
        + p.servers_per_tor;

    let mut net = Network::new(format!(
        "fatclique(s={},sc={},c={})",
        p.subclique_size, p.subcliques_per_clique, p.cliques
    ));

    // clique -> subclique -> switch ids
    let mut ids: Vec<Vec<Vec<SwitchId>>> = Vec::with_capacity(p.cliques);
    for c in 0..p.cliques {
        let block = net.new_block();
        let mut clique = Vec::with_capacity(p.subcliques_per_clique);
        for sc in 0..p.subcliques_per_clique {
            let sub: Vec<SwitchId> = (0..p.subclique_size)
                .map(|i| {
                    net.add_switch(
                        format!("fc{c}-{sc}-{i}"),
                        SwitchRole::FlatTor,
                        0,
                        radix,
                        p.link_speed,
                        p.servers_per_tor,
                        Some(block),
                    )
                })
                .collect();
            clique.push(sub);
        }
        ids.push(clique);
    }

    // Level 1: full mesh inside each sub-clique.
    for clique in &ids {
        for sub in clique {
            for i in 0..sub.len() {
                for j in (i + 1)..sub.len() {
                    net.add_link(sub[i], sub[j], p.link_speed, 1, false).expect("exists");
                }
            }
        }
    }
    // Level 2: switch i of sub-clique a links to switch i of sub-clique b.
    for clique in &ids {
        for a in 0..clique.len() {
            for b in (a + 1)..clique.len() {
                for i in 0..p.subclique_size {
                    net.add_link(clique[a][i], clique[b][i], p.link_speed, 1, false)
                        .expect("exists");
                }
            }
        }
    }
    // Level 3: inter-clique links, round-robin over each clique's switches.
    let flat: Vec<Vec<SwitchId>> = ids
        .iter()
        .map(|c| c.iter().flatten().copied().collect())
        .collect();
    let mut cursor = vec![0usize; p.cliques];
    for a in 0..p.cliques {
        for b in (a + 1)..p.cliques {
            for _ in 0..p.inter_clique_links {
                let sa = flat[a][cursor[a] % per_clique];
                let sb = flat[b][cursor[b] % per_clique];
                cursor[a] += 1;
                cursor[b] += 1;
                net.add_link(sa, sb, p.link_speed, 1, false).expect("exists");
            }
        }
    }
    finish(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_structure() {
        let p = FatCliqueParams::default();
        let n = fatclique(&p).unwrap();
        assert_eq!(n.switch_count(), 64);
        // Level 1: 16 sub-cliques × C(4,2)=6 → 96.
        // Level 2: 4 cliques × C(4,2) pairs=6 × 4 switches → 96.
        // Level 3: C(4,2)=6 pairs × 8 links → 48.
        assert_eq!(n.link_count(), 96 + 96 + 48);
        assert!(n.is_connected());
        assert!(n.validate().is_ok());
    }

    #[test]
    fn blocks_are_cliques() {
        let n = fatclique(&FatCliqueParams::default()).unwrap();
        assert_eq!(n.blocks().len(), 4);
        for b in n.blocks() {
            assert_eq!(n.block_members(b).len(), 16);
        }
    }

    #[test]
    fn ports_within_radix() {
        let p = FatCliqueParams {
            subclique_size: 3,
            subcliques_per_clique: 3,
            cliques: 5,
            inter_clique_links: 7, // deliberately not divisible by 9
            ..FatCliqueParams::default()
        };
        let n = fatclique(&p).unwrap();
        for s in n.switches() {
            assert!(n.ports_used(s.id) <= u32::from(s.radix));
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(fatclique(&FatCliqueParams {
            subclique_size: 1,
            ..Default::default()
        })
        .is_err());
        assert!(fatclique(&FatCliqueParams {
            cliques: 1,
            ..Default::default()
        })
        .is_err());
        assert!(fatclique(&FatCliqueParams {
            inter_clique_links: 0,
            ..Default::default()
        })
        .is_err());
    }
}
