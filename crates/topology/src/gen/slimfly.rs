//! Slim Fly: a cost-effective low-diameter network topology \[7\].
//!
//! Slim Fly builds diameter-2 networks from McKay–Miller–Širáň (MMS) graphs.
//! For a prime `q` with `q ≡ 1 (mod 4)` the construction is:
//!
//! * Switches are labeled `(s, x, y)` with `s ∈ {0, 1}` and `x, y ∈ GF(q)`,
//!   giving `2q²` switches.
//! * Let `ξ` be a primitive root mod `q`. Define the generator sets
//!   `X = {ξ⁰, ξ², …, ξ^(q-3)}` (even powers) and
//!   `X' = {ξ¹, ξ³, …, ξ^(q-2)}` (odd powers).
//! * `(0, x, y) ↔ (0, x, y')`  iff `y − y' ∈ X`;
//! * `(1, m, c) ↔ (1, m, c')`  iff `c − c' ∈ X'`;
//! * `(0, x, y) ↔ (1, m, c)`  iff `y = m·x + c (mod q)`.
//!
//! Network degree is `(3q − 1)/2`. We restrict to prime `q ≡ 1 (mod 4)`
//! (q = 5, 13, 17, 29, …), the cleanest of the three MMS cases; this covers
//! the scales the experiments need and is documented as a scope decision in
//! DESIGN.md.

use super::{finish, invalid, GenError};
use crate::network::{Network, SwitchId, SwitchRole};
use pd_geometry::Gbps;

/// Parameters for a Slim Fly network.
#[derive(Debug, Clone, PartialEq)]
pub struct SlimFlyParams {
    /// The MMS parameter: a prime with `q ≡ 1 (mod 4)`.
    pub q: usize,
    /// Server downlinks per switch.
    pub servers_per_tor: u16,
    /// Line rate of every port.
    pub link_speed: Gbps,
}

impl Default for SlimFlyParams {
    fn default() -> Self {
        Self {
            q: 5,
            servers_per_tor: 4,
            link_speed: Gbps::new(100.0),
        }
    }
}

impl SlimFlyParams {
    /// Total switches: `2q²`.
    pub fn switch_count(&self) -> usize {
        2 * self.q * self.q
    }

    /// Network degree: `(3q − 1)/2`.
    pub fn network_degree(&self) -> usize {
        (3 * self.q - 1) / 2
    }
}

fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n % d == 0 {
            return false;
        }
        d += 1;
    }
    true
}

/// Finds the smallest primitive root modulo prime `q`.
fn primitive_root(q: usize) -> usize {
    // Factor q-1, then test candidates g by checking g^((q-1)/p) != 1.
    let phi = q - 1;
    let mut factors = Vec::new();
    let mut m = phi;
    let mut d = 2;
    while d * d <= m {
        if m % d == 0 {
            factors.push(d);
            while m % d == 0 {
                m /= d;
            }
        }
        d += 1;
    }
    if m > 1 {
        factors.push(m);
    }
    'cand: for g in 2..q {
        for &p in &factors {
            if pow_mod(g, phi / p, q) == 1 {
                continue 'cand;
            }
        }
        return g;
    }
    unreachable!("every prime has a primitive root")
}

fn pow_mod(mut base: usize, mut exp: usize, modulus: usize) -> usize {
    let mut acc = 1usize;
    base %= modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % modulus;
        }
        base = base * base % modulus;
        exp >>= 1;
    }
    acc
}

/// Builds a Slim Fly (MMS) network for prime `q ≡ 1 (mod 4)`.
pub fn slimfly(p: &SlimFlyParams) -> Result<Network, GenError> {
    let q = p.q;
    if !is_prime(q) {
        return Err(invalid("q", format!("{q} is not prime")));
    }
    if q % 4 != 1 {
        return Err(invalid(
            "q",
            format!("{q} ≢ 1 (mod 4); this implementation covers the δ=+1 MMS case"),
        ));
    }

    let xi = primitive_root(q);
    // X  = even powers of ξ, X' = odd powers.
    let mut x_even = Vec::with_capacity((q - 1) / 2);
    let mut x_odd = Vec::with_capacity((q - 1) / 2);
    let mut pow = 1usize;
    for e in 0..(q - 1) {
        if e % 2 == 0 {
            x_even.push(pow);
        } else {
            x_odd.push(pow);
        }
        pow = pow * xi % q;
    }
    let in_even = membership(q, &x_even);
    let in_odd = membership(q, &x_odd);

    let degree = p.network_degree() as u16;
    let mut net = Network::new(format!("slimfly(q={q})"));
    // Index: subgraph s, column x (or m), row y (or c).
    let mut ids = vec![vec![vec![SwitchId(0); q]; q]; 2];
    for s in 0..2 {
        for x in 0..q {
            let block = net.new_block(); // one block per (s, x) column group
            for y in 0..q {
                ids[s][x][y] = net.add_switch(
                    format!("sf{s}-{x}-{y}"),
                    SwitchRole::FlatTor,
                    0,
                    degree + p.servers_per_tor,
                    p.link_speed,
                    p.servers_per_tor,
                    Some(block),
                );
            }
        }
    }

    // Intra-column edges in subgraph 0: y − y' ∈ X (X is symmetric for
    // q ≡ 1 mod 4 since −1 is a quadratic residue).
    for x in 0..q {
        for y in 0..q {
            for yp in (y + 1)..q {
                let diff = (y + q - yp) % q;
                if in_even[diff] {
                    net.add_link(ids[0][x][y], ids[0][x][yp], p.link_speed, 1, false)
                        .expect("exists");
                }
            }
        }
    }
    // Intra-column edges in subgraph 1: c − c' ∈ X'.
    for m in 0..q {
        for c in 0..q {
            for cp in (c + 1)..q {
                let diff = (c + q - cp) % q;
                if in_odd[diff] {
                    net.add_link(ids[1][m][c], ids[1][m][cp], p.link_speed, 1, false)
                        .expect("exists");
                }
            }
        }
    }
    // Cross edges: (0, x, y) ↔ (1, m, c) iff y = m·x + c.
    for x in 0..q {
        for m in 0..q {
            for c in 0..q {
                let y = (m * x + c) % q;
                net.add_link(ids[0][x][y], ids[1][m][c], p.link_speed, 1, false)
                    .expect("exists");
            }
        }
    }
    finish(net)
}

fn membership(q: usize, set: &[usize]) -> Vec<bool> {
    let mut v = vec![false; q];
    for &s in set {
        v[s % q] = true;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q5_structure() {
        let p = SlimFlyParams::default();
        let n = slimfly(&p).unwrap();
        assert_eq!(n.switch_count(), 50);
        // Degree (3·5−1)/2 = 7 ⇒ 50·7/2 = 175 links.
        assert_eq!(n.link_count(), 175);
        for s in n.switches() {
            assert_eq!(n.degree(s.id), 7, "{}", s.name);
        }
        assert!(n.is_connected());
    }

    #[test]
    fn q5_has_diameter_2() {
        let n = slimfly(&SlimFlyParams::default()).unwrap();
        let d = crate::routing::AllPairs::compute(&n).diameter();
        assert_eq!(d, 2, "MMS graphs are diameter-2 by construction");
    }

    #[test]
    fn q13_structure() {
        let p = SlimFlyParams {
            q: 13,
            ..SlimFlyParams::default()
        };
        let n = slimfly(&p).unwrap();
        assert_eq!(n.switch_count(), 338);
        let deg = (3 * 13 - 1) / 2;
        for s in n.switches() {
            assert_eq!(n.degree(s.id), deg);
        }
        assert_eq!(
            crate::routing::AllPairs::compute(&n).diameter(),
            2
        );
    }

    #[test]
    fn non_prime_or_wrong_residue_rejected() {
        assert!(slimfly(&SlimFlyParams { q: 9, ..Default::default() }).is_err());
        assert!(slimfly(&SlimFlyParams { q: 7, ..Default::default() }).is_err());
        assert!(slimfly(&SlimFlyParams { q: 4, ..Default::default() }).is_err());
    }

    #[test]
    fn primitive_root_properties() {
        for q in [5usize, 13, 17, 29] {
            let g = primitive_root(q);
            // g generates all of GF(q)*.
            let mut seen = std::collections::HashSet::new();
            let mut v = 1;
            for _ in 0..(q - 1) {
                v = v * g % q;
                seen.insert(v);
            }
            assert_eq!(seen.len(), q - 1, "q={q} g={g}");
        }
    }

    #[test]
    fn pow_mod_matches_naive() {
        assert_eq!(pow_mod(3, 4, 7), 81 % 7);
        assert_eq!(pow_mod(2, 0, 5), 1);
        assert_eq!(pow_mod(10, 3, 13), 1000 % 13);
    }
}
