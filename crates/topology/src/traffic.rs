//! Traffic matrices.
//!
//! The paper (§4.1) notes that "inter-rack and inter-block demands are often
//! persistently and highly non-uniform; networks need the flexibility to
//! cope with time-varying non-uniformity." The generators here produce the
//! three canonical shapes the experiments use: uniform all-to-all,
//! random permutation, and skewed hotspot matrices.

use crate::gen::SplitMix64;
use crate::network::{Network, SwitchId};
use pd_geometry::Gbps;
use serde::{Deserialize, Serialize};

/// One demand entry: `gbps` of traffic from servers under `src` to servers
/// under `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// Source switch (a server-bearing switch).
    pub src: SwitchId,
    /// Destination switch.
    pub dst: SwitchId,
    /// Offered load.
    pub gbps: Gbps,
}

/// A set of demands between server-bearing switches.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    demands: Vec<Demand>,
}

impl TrafficMatrix {
    /// An empty matrix.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A single demand.
    pub fn single(src: SwitchId, dst: SwitchId, gbps: Gbps) -> Self {
        Self {
            demands: vec![Demand { src, dst, gbps }],
        }
    }

    /// Builds from raw entries.
    pub fn from_demands(demands: Vec<Demand>) -> Self {
        Self { demands }
    }

    /// Uniform all-to-all between every ordered pair of server-bearing
    /// switches, `per_pair` each.
    pub fn uniform_servers(net: &Network, per_pair: Gbps) -> Self {
        let hosts = server_switches(net);
        let mut demands = Vec::with_capacity(hosts.len() * hosts.len());
        for &s in &hosts {
            for &d in &hosts {
                if s != d {
                    demands.push(Demand {
                        src: s,
                        dst: d,
                        gbps: per_pair,
                    });
                }
            }
        }
        Self { demands }
    }

    /// A random permutation matrix: every server-bearing switch sends
    /// `per_host` to exactly one other (derangement-ish; fixed points are
    /// re-rolled a bounded number of times then skipped).
    pub fn permutation(net: &Network, per_host: Gbps, seed: u64) -> Self {
        let hosts = server_switches(net);
        let mut rng = SplitMix64::new(seed);
        let mut targets = hosts.clone();
        rng.shuffle(&mut targets);
        // Fix any fixed points by swapping with a neighbor.
        for i in 0..targets.len() {
            if targets[i] == hosts[i] {
                let j = (i + 1) % targets.len();
                targets.swap(i, j);
            }
        }
        let demands = hosts
            .iter()
            .zip(&targets)
            .filter(|(s, d)| s != d)
            .map(|(&src, &dst)| Demand {
                src,
                dst,
                gbps: per_host,
            })
            .collect();
        Self { demands }
    }

    /// A hotspot matrix: uniform background of `background` per pair, plus
    /// `hot_factor ×` that rate between the first `hot_count` switches
    /// (pairwise). Models the skewed inter-block demand of §4.1.
    pub fn hotspot(net: &Network, background: Gbps, hot_count: usize, hot_factor: f64) -> Self {
        let hosts = server_switches(net);
        let mut tm = Self::uniform_servers(net, background);
        let hot: Vec<SwitchId> = hosts.into_iter().take(hot_count).collect();
        for &s in &hot {
            for &d in &hot {
                if s != d {
                    tm.demands.push(Demand {
                        src: s,
                        dst: d,
                        gbps: background * (hot_factor - 1.0),
                    });
                }
            }
        }
        tm
    }

    /// The demand entries.
    pub fn demands(&self) -> &[Demand] {
        &self.demands
    }

    /// Total offered load.
    pub fn total(&self) -> Gbps {
        self.demands.iter().map(|d| d.gbps).sum()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// True if there are no demands.
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// Aggregates demands into a block-to-block matrix (indexing follows
    /// `net.blocks()` order) — the input shape for OCS topology engineering.
    pub fn to_block_matrix(&self, net: &Network) -> Vec<Vec<f64>> {
        let blocks = net.blocks();
        let pos = |b| blocks.iter().position(|&x| x == b);
        let mut m = vec![vec![0.0; blocks.len()]; blocks.len()];
        for d in &self.demands {
            let (Some(sb), Some(db)) = (
                net.switch(d.src).and_then(|s| s.block).and_then(pos),
                net.switch(d.dst).and_then(|s| s.block).and_then(pos),
            ) else {
                continue;
            };
            if sb != db {
                m[sb][db] += d.gbps.value();
            }
        }
        m
    }
}

fn server_switches(net: &Network) -> Vec<SwitchId> {
    net.switches()
        .filter(|s| s.server_ports > 0)
        .map(|s| s.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::leaf_spine;

    fn net() -> Network {
        leaf_spine(4, 2, 8, 1, Gbps::new(100.0)).unwrap()
    }

    #[test]
    fn uniform_covers_all_ordered_pairs() {
        let n = net();
        let tm = TrafficMatrix::uniform_servers(&n, Gbps::new(2.0));
        assert_eq!(tm.len(), 4 * 3);
        assert_eq!(tm.total(), Gbps::new(24.0));
    }

    #[test]
    fn permutation_has_no_fixed_points_and_is_deterministic() {
        let n = net();
        let a = TrafficMatrix::permutation(&n, Gbps::new(1.0), 5);
        let b = TrafficMatrix::permutation(&n, Gbps::new(1.0), 5);
        assert_eq!(a, b);
        for d in a.demands() {
            assert_ne!(d.src, d.dst);
        }
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn hotspot_adds_extra_demand_between_hot_pairs() {
        let n = net();
        let tm = TrafficMatrix::hotspot(&n, Gbps::new(1.0), 2, 10.0);
        // Background 12 entries + 2 hot-pair extras.
        assert_eq!(tm.len(), 14);
        assert!((tm.total().value() - (12.0 + 2.0 * 9.0)).abs() < 1e-9);
    }

    #[test]
    fn block_matrix_shape() {
        let n = net();
        let tm = TrafficMatrix::uniform_servers(&n, Gbps::new(1.0));
        let m = tm.to_block_matrix(&n);
        let b = n.blocks().len();
        assert_eq!(m.len(), b);
        // Leaf-spine: spine block has no servers; leaf blocks exchange 1.0 each way.
        let total: f64 = m.iter().flatten().sum();
        assert!((total - 12.0).abs() < 1e-9);
    }
}
