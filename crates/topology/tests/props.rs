//! Property-based tests for topology generators and routing.

use pd_geometry::Gbps;
use pd_topology::gen::{
    fat_tree, fatclique, flattened_butterfly, folded_clos, jellyfish, leaf_spine, xpander,
    ClosParams, FatCliqueParams, FlattenedButterflyParams, JellyfishParams, XpanderParams,
};
use pd_topology::interop::PetgraphView;
use pd_topology::routing::{edge_disjoint_paths, k_shortest_paths, AllPairs, EcmpLoads};
use pd_topology::TrafficMatrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Jellyfish generates a connected r-regular simple graph for any valid
    /// (n, r, seed).
    #[test]
    fn jellyfish_regularity(n in 6usize..40, r in 3usize..6, seed in 0u64..1000) {
        prop_assume!(n > r && (n * r) % 2 == 0);
        let p = JellyfishParams {
            tors: n,
            network_degree: r,
            servers_per_tor: 2,
            link_speed: Gbps::new(100.0),
            seed,
        };
        let net = jellyfish(&p).unwrap();
        prop_assert_eq!(net.link_count(), n * r / 2);
        for s in net.switches() {
            prop_assert_eq!(net.degree(s.id), r);
        }
        prop_assert!(net.is_connected());
        prop_assert_eq!(PetgraphView::build(&net).connected_components(), 1);
    }

    /// Xpander is d-regular with the advertised switch count.
    #[test]
    fn xpander_regularity(d in 3usize..8, lift in 1usize..6, seed in 0u64..100) {
        let p = XpanderParams {
            network_degree: d,
            lift,
            servers_per_tor: 2,
            link_speed: Gbps::new(100.0),
            seed,
        };
        let net = xpander(&p).unwrap();
        prop_assert_eq!(net.switch_count(), (d + 1) * lift);
        for s in net.switches() {
            prop_assert_eq!(net.degree(s.id), d);
        }
        prop_assert!(net.validate().is_ok());
    }

    /// Every fat-tree uses exactly its radix at every switch and has
    /// diameter ≤ 4.
    #[test]
    fn fat_tree_invariants(half in 1usize..5) {
        let k = half * 2;
        let net = fat_tree(k, Gbps::new(100.0)).unwrap();
        prop_assert_eq!(net.switch_count(), 5 * k * k / 4);
        for s in net.switches() {
            prop_assert_eq!(net.ports_used(s.id), u32::from(s.radix));
        }
        let ap = AllPairs::compute(&net);
        prop_assert!(ap.diameter() <= 4);
    }

    /// Folded Clos validates and is connected over a parameter sweep.
    #[test]
    fn folded_clos_validates(pods in 2usize..5, tors in 1usize..5, aggs in 1usize..4, spines in 1usize..6) {
        let p = ClosParams {
            pods,
            tors_per_pod: tors,
            aggs_per_pod: aggs,
            spines,
            ..ClosParams::default()
        };
        let net = folded_clos(&p).unwrap();
        prop_assert!(net.validate().is_ok());
        prop_assert!(net.is_connected());
        prop_assert_eq!(
            net.link_count(),
            pods * tors * aggs + pods * aggs * spines
        );
    }

    /// ECMP flow conservation: total link-load equals sum over demands of
    /// (demand × hop distance).
    #[test]
    fn ecmp_total_load_is_demand_times_hops(leaves in 2usize..6, spines in 1usize..4, seed in 0u64..50) {
        let net = leaf_spine(leaves, spines, 4, 1, Gbps::new(100.0)).unwrap();
        let ap = AllPairs::compute(&net);
        let tm = TrafficMatrix::permutation(&net, Gbps::new(1.0), seed);
        let loads = EcmpLoads::compute(&net, &ap, &tm);
        let expect: f64 = tm
            .demands()
            .iter()
            .map(|d| d.gbps.value() * f64::from(ap.distance(d.src, d.dst).unwrap()))
            .sum();
        let got: f64 = loads.link_load.values().sum();
        prop_assert!((got - expect).abs() < 1e-6, "got {got} expect {expect}");
    }

    /// Edge-disjoint path count between flat ToRs equals the regular degree
    /// on a complete-ish Xpander (Menger: min cut at the endpoints).
    #[test]
    fn disjoint_paths_bounded_by_degree(d in 3usize..6, lift in 2usize..4, seed in 0u64..20) {
        let net = xpander(&XpanderParams {
            network_degree: d,
            lift,
            servers_per_tor: 1,
            link_speed: Gbps::new(100.0),
            seed,
        })
        .unwrap();
        let ids: Vec<_> = net.switches().map(|s| s.id).collect();
        let paths = edge_disjoint_paths(&net, ids[0], ids[1]);
        prop_assert!(paths <= d);
        prop_assert!(paths >= 1);
    }

    /// Yen's k-shortest-paths returns simple paths in nondecreasing order,
    /// with the first equal to the BFS distance.
    #[test]
    fn yen_paths_sound(rows in 2usize..4, cols in 2usize..4, k in 1usize..6) {
        let net = flattened_butterfly(&FlattenedButterflyParams {
            rows,
            cols,
            servers_per_tor: 1,
            link_speed: Gbps::new(100.0),
        })
        .unwrap();
        let ids: Vec<_> = net.switches().map(|s| s.id).collect();
        let (s, t) = (ids[0], ids[ids.len() - 1]);
        let ap = AllPairs::compute(&net);
        let paths = k_shortest_paths(&net, s, t, k);
        prop_assert!(!paths.is_empty());
        prop_assert_eq!(paths[0].hops() as u16, ap.distance(s, t).unwrap());
        let mut prev = 0usize;
        for p in &paths {
            prop_assert!(p.hops() >= prev);
            prev = p.hops();
            let set: std::collections::HashSet<_> = p.0.iter().collect();
            prop_assert_eq!(set.len(), p.0.len());
        }
    }

    /// FatClique port budgets hold across a parameter sweep.
    #[test]
    fn fatclique_ports_within_radix(s in 2usize..4, sc in 2usize..4, c in 2usize..5, links in 1usize..9) {
        let p = FatCliqueParams {
            subclique_size: s,
            subcliques_per_clique: sc,
            cliques: c,
            inter_clique_links: links,
            ..FatCliqueParams::default()
        };
        let net = fatclique(&p).unwrap();
        for sw in net.switches() {
            prop_assert!(net.ports_used(sw.id) <= u32::from(sw.radix));
        }
        prop_assert!(net.is_connected());
    }
}
