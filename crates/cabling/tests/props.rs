//! Property-based tests for the cabling substrate.

use pd_cabling::{BundlingReport, CableCatalog, CablingPlan, CablingPolicy, MediaClass};
use pd_geometry::{Gbps, Meters};
use pd_physical::placement::EquipmentProfile;
use pd_physical::{Hall, HallSpec, Placement, PlacementStrategy};
use pd_topology::gen::{jellyfish, JellyfishParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Media choice always covers the requirement and never exceeds the
    /// (derated) reach, at every supported speed.
    #[test]
    fn media_choice_sound(speed_idx in 0usize..4, len in 0.5f64..150.0, derate in 0.5f64..1.0) {
        let speed = Gbps::new([100.0, 200.0, 400.0, 25.0][speed_idx]);
        let cat = CableCatalog { reach_derating: derate, ..CableCatalog::default() };
        if let Some(c) = cat.choose(speed, Meters::new(len), 0, 0) {
            prop_assert!(c.ordered_length + Meters::new(1e-9) >= Meters::new(len));
            prop_assert!(c.ordered_length <= cat.effective_reach(&c.sku) + Meters::new(1e-9));
            prop_assert!(c.slack >= Meters::ZERO);
            prop_assert!(c.cost.value() > 0.0);
        }
    }

    /// Longer runs never get cheaper: the chosen cost is monotone
    /// nondecreasing in required length (same speed, same elements).
    #[test]
    fn cost_monotone_in_length(len in 1.0f64..80.0, extra in 0.1f64..60.0) {
        let cat = CableCatalog::default();
        let speed = Gbps::new(100.0);
        let a = cat.choose(speed, Meters::new(len), 0, 0);
        let b = cat.choose(speed, Meters::new(len + extra), 0, 0);
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert!(b.cost + pd_geometry::Dollars::new(1e-9) >= a.cost,
                "len {len} cost {} vs len {} cost {}", a.cost, len + extra, b.cost);
        }
    }

    /// A full cabling plan on a random topology: every link either gets runs
    /// or a recorded failure; bundling partitions the runs exactly.
    #[test]
    fn plan_accounts_for_every_link(seed in 0u64..40, tors in 10usize..40) {
        prop_assume!((tors * 6) % 2 == 0);
        let net = jellyfish(&JellyfishParams {
            tors,
            network_degree: 6,
            servers_per_tor: 4,
            link_speed: Gbps::new(100.0),
            seed,
        }).unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(&net, &hall, PlacementStrategy::BlockLocal, &EquipmentProfile::default()).unwrap();
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        let realized: std::collections::HashSet<_> = plan.runs.iter().map(|r| r.link).collect();
        let failed: std::collections::HashSet<_> = plan.failures.iter().map(|(l, _)| *l).collect();
        for l in net.links() {
            prop_assert!(realized.contains(&l.id) || failed.contains(&l.id));
        }
        let rep = BundlingReport::analyze(&plan, 4);
        let total: usize = rep.bundles.iter().map(|b| b.size()).sum();
        prop_assert_eq!(total, plan.runs.len());
    }

    /// Copper never appears on runs longer than its reach.
    #[test]
    fn no_overlong_copper(seed in 0u64..20) {
        let net = jellyfish(&JellyfishParams {
            tors: 24,
            network_degree: 5,
            servers_per_tor: 4,
            link_speed: Gbps::new(100.0),
            seed,
        }).unwrap();
        prop_assume!(24 * 5 % 2 == 0);
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(&net, &hall, PlacementStrategy::Scattered(seed), &EquipmentProfile::default()).unwrap();
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        for r in &plan.runs {
            if r.choice.sku.class == MediaClass::DacCopper {
                prop_assert!(r.choice.ordered_length <= r.choice.sku.max_reach + Meters::new(1e-9));
            }
        }
    }
}
