//! Optical insertion-loss budgets.
//!
//! Fiber links have a power budget: transmitter launch power minus receiver
//! sensitivity. Every mated connector, patch panel, OCS port, and kilometer
//! of glass eats part of it. The paper (§3.1) points out the design tension
//! directly: "viable cable lengths can also be reduced by the insertion
//! losses from patch panels and optical circuit switches (e.g., 0.5 dB to
//! 1.0 dB in Telescent's switches). This conflicts with some of the
//! benefits of inserting patch panels or OCSs."
//!
//! Budgets and penalties here are IEEE-ballpark constants, documented per
//! field; what the experiments rely on is the *relative* structure (an OCS
//! hop can push a marginal MMF channel over budget, forcing SMF).

use crate::media::MediaClass;
use pd_geometry::{Db, Meters};
use serde::{Deserialize, Serialize};

/// Loss contributions of channel elements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossStack {
    /// Loss per mated connector pair (each cable end that lands on a panel,
    /// shelf, or transceiver adds one).
    pub per_connector: Db,
    /// Loss per passive patch panel traversed.
    pub per_patch_panel: Db,
    /// Loss per OCS port traversed (Telescent G4: 0.5–1.0 dB; we use the
    /// midpoint 0.75 dB).
    pub per_ocs: Db,
    /// Multimode fiber attenuation per kilometer (OM4 @ 850 nm ≈ 3 dB/km).
    pub mmf_per_km: Db,
    /// Singlemode fiber attenuation per kilometer (≈ 0.4 dB/km @ 1310 nm).
    pub smf_per_km: Db,
}

impl Default for LossStack {
    fn default() -> Self {
        Self {
            per_connector: Db::new(0.3),
            per_patch_panel: Db::new(0.5),
            per_ocs: Db::new(0.75),
            mmf_per_km: Db::new(3.0),
            smf_per_km: Db::new(0.4),
        }
    }
}

/// The channel budget per media class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossBudget {
    /// Budget for multimode channels (SR4-class ≈ 1.9 dB over OM4).
    pub mmf: Db,
    /// Budget for singlemode channels (DR/FR-class ≈ 4.0–6.3 dB; we use
    /// 4.0, conservative).
    pub smf: Db,
}

impl Default for LossBudget {
    fn default() -> Self {
        Self {
            mmf: Db::new(1.9),
            smf: Db::new(4.0),
        }
    }
}

impl LossStack {
    /// Total channel loss for a fiber path of `length` with the given
    /// intermediate elements. `connectors` counts mated pairs **beyond**
    /// the two transceiver ends (those are inside the budget definition);
    /// each panel and OCS traversal implies its own connectors, so callers
    /// typically pass `panels * 2 + ocs * 2`.
    pub fn channel_loss(
        &self,
        class: MediaClass,
        length: Meters,
        connectors: u32,
        panels: u32,
        ocs: u32,
    ) -> Option<Db> {
        let per_km = match class {
            MediaClass::MultimodeFiber => self.mmf_per_km,
            MediaClass::SinglemodeFiber => self.smf_per_km,
            _ => return None, // electrical media have no optical budget
        };
        Some(
            per_km * length.to_km()
                + self.per_connector * f64::from(connectors)
                + self.per_patch_panel * f64::from(panels)
                + self.per_ocs * f64::from(ocs),
        )
    }

    /// Whether a channel closes (loss within budget).
    pub fn channel_closes(
        &self,
        budget: &LossBudget,
        class: MediaClass,
        length: Meters,
        connectors: u32,
        panels: u32,
        ocs: u32,
    ) -> bool {
        let Some(loss) = self.channel_loss(class, length, connectors, panels, ocs) else {
            return true; // electrical: reach checks are handled elsewhere
        };
        let limit = match class {
            MediaClass::MultimodeFiber => budget.mmf,
            MediaClass::SinglemodeFiber => budget.smf,
            _ => return true,
        };
        loss <= limit
    }

    /// Maximum fiber length (meters) that still closes with the given
    /// element count — the "viable cable lengths reduced by insertion
    /// losses" curve of §3.1.
    pub fn max_length(
        &self,
        budget: &LossBudget,
        class: MediaClass,
        connectors: u32,
        panels: u32,
        ocs: u32,
    ) -> Option<Meters> {
        let (per_km, limit) = match class {
            MediaClass::MultimodeFiber => (self.mmf_per_km, budget.mmf),
            MediaClass::SinglemodeFiber => (self.smf_per_km, budget.smf),
            _ => return None,
        };
        let fixed = self.per_connector * f64::from(connectors)
            + self.per_patch_panel * f64::from(panels)
            + self.per_ocs * f64::from(ocs);
        let remaining = limit - fixed;
        if remaining < Db::ZERO {
            return Some(Meters::ZERO);
        }
        Some(Meters::new(remaining.value() / per_km.value() * 1000.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_mmf_100m_closes() {
        let stack = LossStack::default();
        let budget = LossBudget::default();
        assert!(stack.channel_closes(
            &budget,
            MediaClass::MultimodeFiber,
            Meters::new(100.0),
            2,
            0,
            0
        ));
    }

    #[test]
    fn ocs_hop_kills_marginal_mmf() {
        // §3.1's conflict: a 100 m MMF channel closes direct, but not
        // through an OCS (0.75 dB + 2 extra connectors = 1.35 dB extra).
        let stack = LossStack::default();
        let budget = LossBudget::default();
        assert!(!stack.channel_closes(
            &budget,
            MediaClass::MultimodeFiber,
            Meters::new(100.0),
            4,
            0,
            1
        ));
        // The same channel on singlemode closes fine.
        assert!(stack.channel_closes(
            &budget,
            MediaClass::SinglemodeFiber,
            Meters::new(100.0),
            4,
            0,
            1
        ));
    }

    #[test]
    fn max_length_shrinks_with_elements() {
        let stack = LossStack::default();
        let budget = LossBudget::default();
        let bare = stack
            .max_length(&budget, MediaClass::MultimodeFiber, 2, 0, 0)
            .unwrap();
        let panel = stack
            .max_length(&budget, MediaClass::MultimodeFiber, 4, 1, 0)
            .unwrap();
        let ocs = stack
            .max_length(&budget, MediaClass::MultimodeFiber, 4, 0, 1)
            .unwrap();
        assert!(panel < bare);
        assert!(ocs < panel, "OCS (0.75 dB) worse than panel (0.5 dB)");
        // Bare MMF: (1.9 − 0.6) / 3.0 per km ≈ 433 m.
        assert!((bare.value() - 433.33).abs() < 1.0, "{bare}");
    }

    #[test]
    fn over_budget_fixed_losses_give_zero_length() {
        let stack = LossStack::default();
        let budget = LossBudget::default();
        // Four OCS hops exceed the whole MMF budget.
        let m = stack
            .max_length(&budget, MediaClass::MultimodeFiber, 0, 0, 4)
            .unwrap();
        assert_eq!(m, Meters::ZERO);
    }

    #[test]
    fn electrical_media_have_no_budget() {
        let stack = LossStack::default();
        assert!(stack
            .channel_loss(MediaClass::DacCopper, Meters::new(3.0), 0, 0, 0)
            .is_none());
        assert!(stack.channel_closes(
            &LossBudget::default(),
            MediaClass::ActiveElectrical,
            Meters::new(5.0),
            0,
            0,
            0
        ));
    }
}
