//! Cable media classes and SKU-specific physical parameters.
//!
//! Calibration sources (each constant's provenance):
//!
//! * **AWS re:Invent 2022 \[10\], quoted in paper §3.1**: 2.5 m intra-rack
//!   DACs went from 6.7 mm OD at 100G to 11 mm OD at 400G (2.7× the
//!   cross-sectional area); AWS moved to active electrical cables (AEC),
//!   thinner and "still cheaper and more reliable than optical intra-rack
//!   cabling".
//! * **Telescent G4 \[49\], paper §3.1**: OCS insertion loss 0.5–1.0 dB.
//! * Reach limits follow IEEE 802.3 copper reach (~3 m passive at 400G,
//!   5–7 m AEC) and SR4/DR4 optics (100 m OM4 multimode, 500 m+ single
//!   mode; we cap SMF at 2 km, the DR reach).
//! * Prices are public list-price magnitudes (2023-era): they matter only
//!   *relatively* (copper ≪ AEC < MMF < SMF per end).

use pd_geometry::{Dollars, Gbps, Meters, Millimeters, SquareMillimeters, Watts};
use serde::{Deserialize, Serialize};

/// The four cable families the toolkit models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MediaClass {
    /// Passive direct-attach copper. Cheap, zero-power, thick, short.
    DacCopper,
    /// Active electrical cable (retimed copper). Thinner than DAC at high
    /// speeds, modest power, modest cost, intra-rack to few-meter reach.
    ActiveElectrical,
    /// Multimode fiber with SR-class transceivers. 100 m-class reach,
    /// tight loss budget.
    MultimodeFiber,
    /// Singlemode fiber with DR/FR-class transceivers. Long reach, generous
    /// loss budget, most expensive ends.
    SinglemodeFiber,
}

impl MediaClass {
    /// All classes, cheapest-ends first.
    pub const ALL: [MediaClass; 4] = [
        MediaClass::DacCopper,
        MediaClass::ActiveElectrical,
        MediaClass::MultimodeFiber,
        MediaClass::SinglemodeFiber,
    ];

    /// Short display name.
    pub fn short(&self) -> &'static str {
        match self {
            MediaClass::DacCopper => "DAC",
            MediaClass::ActiveElectrical => "AEC",
            MediaClass::MultimodeFiber => "MMF",
            MediaClass::SinglemodeFiber => "SMF",
        }
    }

    /// True for optical media (subject to loss budgets, can traverse
    /// patch panels / OCS).
    pub fn is_optical(&self) -> bool {
        matches!(
            self,
            MediaClass::MultimodeFiber | MediaClass::SinglemodeFiber
        )
    }
}

impl std::fmt::Display for MediaClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short())
    }
}

/// Physical and commercial parameters of one (class, speed) cable family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CableSku {
    /// Media class.
    pub class: MediaClass,
    /// Line rate.
    pub speed: Gbps,
    /// Outside diameter of the cable.
    pub od: Millimeters,
    /// Minimum bend radius.
    pub bend_radius: Millimeters,
    /// Maximum electrical/optical reach.
    pub max_reach: Meters,
    /// Cable cost per meter (jacket + conductors/fiber).
    pub cost_per_meter: f64,
    /// Cost of the two ends (connectors or transceiver pair).
    pub ends_cost: Dollars,
    /// Power drawn by the two ends combined.
    pub ends_power: Watts,
    /// Failures in time (failures per 10⁹ device-hours) for the whole
    /// assembly; drives the repair simulator.
    pub fit: f64,
}

impl CableSku {
    /// Cross-sectional area (circular model) — what the cable claims in a
    /// tray and at the rack entry.
    pub fn area(&self) -> SquareMillimeters {
        self.od.circle_area()
    }

    /// Total cost of one cable of `length`.
    pub fn cable_cost(&self, length: Meters) -> Dollars {
        Dollars::per_meter(self.cost_per_meter, length) + self.ends_cost
    }

    /// Mean time between failures in hours (∞-safe).
    pub fn mtbf_hours(&self) -> f64 {
        if self.fit <= 0.0 {
            f64::INFINITY
        } else {
            1e9 / self.fit
        }
    }
}

/// The built-in SKU table: per-speed rows for each class.
///
/// Returns `None` if the class does not exist at that speed (e.g. passive
/// DAC above 400G).
pub fn sku(class: MediaClass, speed: Gbps) -> Option<CableSku> {
    let s = speed.value();
    let entry = |od: f64,
                 bend: f64,
                 reach: f64,
                 cpm: f64,
                 ends: f64,
                 power: f64,
                 fit: f64| CableSku {
        class,
        speed,
        od: Millimeters::new(od),
        bend_radius: Millimeters::new(bend),
        max_reach: Meters::new(reach),
        cost_per_meter: cpm,
        ends_cost: Dollars::new(ends),
        ends_power: Watts::new(power),
        fit,
    };
    match class {
        MediaClass::DacCopper => match s as u64 {
            // 100G: the AWS 6.7 mm / 2.5 m cable, reach 3 m.
            10 => Some(entry(4.5, 35.0, 7.0, 6.0, 20.0, 0.1, 50.0)),
            25 => Some(entry(5.0, 40.0, 5.0, 8.0, 30.0, 0.1, 50.0)),
            100 => Some(entry(6.7, 55.0, 3.0, 12.0, 60.0, 0.2, 60.0)),
            200 => Some(entry(8.5, 70.0, 3.0, 18.0, 90.0, 0.3, 70.0)),
            // 400G: the AWS 11 mm cable — 2.7× the 100G cross-section.
            400 => Some(entry(11.0, 90.0, 3.0, 28.0, 140.0, 0.4, 80.0)),
            _ => None,
        },
        MediaClass::ActiveElectrical => match s as u64 {
            // AEC keeps the OD near the 100G DAC's even at 400/800G —
            // the §3.1 reason AWS adopted it.
            100 => Some(entry(5.5, 45.0, 7.0, 20.0, 180.0, 7.0, 120.0)),
            200 => Some(entry(6.0, 50.0, 7.0, 26.0, 260.0, 9.0, 130.0)),
            400 => Some(entry(6.5, 55.0, 7.0, 34.0, 380.0, 12.0, 140.0)),
            800 => Some(entry(7.2, 60.0, 5.0, 48.0, 600.0, 16.0, 160.0)),
            _ => None,
        },
        MediaClass::MultimodeFiber => match s as u64 {
            // OM4 MPO trunks; OD is the jacketed multi-fiber cable.
            10 => Some(entry(3.0, 30.0, 300.0, 1.5, 120.0, 2.0, 180.0)),
            25 => Some(entry(3.0, 30.0, 100.0, 1.8, 160.0, 2.4, 180.0)),
            100 => Some(entry(3.8, 30.0, 100.0, 2.5, 400.0, 5.0, 200.0)),
            200 => Some(entry(3.8, 30.0, 100.0, 3.0, 700.0, 9.0, 210.0)),
            400 => Some(entry(4.5, 30.0, 100.0, 4.0, 1300.0, 14.0, 220.0)),
            800 => Some(entry(4.5, 30.0, 60.0, 5.5, 2600.0, 20.0, 240.0)),
            _ => None,
        },
        MediaClass::SinglemodeFiber => match s as u64 {
            // DR/FR-class duplex or parallel SMF.
            10 => Some(entry(2.9, 30.0, 10_000.0, 1.2, 300.0, 2.5, 180.0)),
            25 => Some(entry(2.9, 30.0, 10_000.0, 1.4, 400.0, 3.0, 180.0)),
            100 => Some(entry(2.9, 30.0, 2_000.0, 1.8, 800.0, 8.0, 200.0)),
            200 => Some(entry(2.9, 30.0, 2_000.0, 2.2, 1400.0, 12.0, 210.0)),
            400 => Some(entry(3.0, 30.0, 2_000.0, 2.8, 2400.0, 18.0, 220.0)),
            800 => Some(entry(3.0, 30.0, 2_000.0, 3.8, 4200.0, 26.0, 240.0)),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aws_diameter_claim_encoded() {
        let dac100 = sku(MediaClass::DacCopper, Gbps::new(100.0)).unwrap();
        let dac400 = sku(MediaClass::DacCopper, Gbps::new(400.0)).unwrap();
        assert_eq!(dac100.od, Millimeters::new(6.7));
        assert_eq!(dac400.od, Millimeters::new(11.0));
        let ratio = dac400.area().ratio(dac100.area());
        assert!((ratio - 2.7).abs() < 0.01, "area ratio {ratio}");
    }

    #[test]
    fn aec_is_thinner_than_dac_at_400g() {
        let dac = sku(MediaClass::DacCopper, Gbps::new(400.0)).unwrap();
        let aec = sku(MediaClass::ActiveElectrical, Gbps::new(400.0)).unwrap();
        assert!(aec.od < dac.od);
        assert!(aec.max_reach > dac.max_reach);
        // …and cheaper per end than optical.
        let mmf = sku(MediaClass::MultimodeFiber, Gbps::new(400.0)).unwrap();
        assert!(aec.ends_cost < mmf.ends_cost);
    }

    #[test]
    fn optics_reach_dominates_copper() {
        for speed in [100.0, 400.0] {
            let s = Gbps::new(speed);
            let dac = sku(MediaClass::DacCopper, s).unwrap();
            let mmf = sku(MediaClass::MultimodeFiber, s).unwrap();
            let smf = sku(MediaClass::SinglemodeFiber, s).unwrap();
            assert!(mmf.max_reach > dac.max_reach);
            assert!(smf.max_reach > mmf.max_reach);
        }
    }

    #[test]
    fn optics_burn_more_end_power() {
        let s = Gbps::new(400.0);
        let dac = sku(MediaClass::DacCopper, s).unwrap();
        let smf = sku(MediaClass::SinglemodeFiber, s).unwrap();
        assert!(smf.ends_power.value() > 10.0 * dac.ends_power.value());
    }

    #[test]
    fn missing_speeds_are_none() {
        assert!(sku(MediaClass::DacCopper, Gbps::new(800.0)).is_none());
        assert!(sku(MediaClass::MultimodeFiber, Gbps::new(1600.0)).is_none());
    }

    #[test]
    fn cable_cost_includes_ends() {
        let s = sku(MediaClass::MultimodeFiber, Gbps::new(100.0)).unwrap();
        let c = s.cable_cost(Meters::new(10.0));
        assert_eq!(c, Dollars::new(2.5 * 10.0 + 400.0));
    }

    #[test]
    fn mtbf_from_fit() {
        let s = sku(MediaClass::DacCopper, Gbps::new(100.0)).unwrap();
        assert!((s.mtbf_hours() - 1e9 / 60.0).abs() < 1.0);
    }

    #[test]
    fn is_optical_classification() {
        assert!(!MediaClass::DacCopper.is_optical());
        assert!(!MediaClass::ActiveElectrical.is_optical());
        assert!(MediaClass::MultimodeFiber.is_optical());
        assert!(MediaClass::SinglemodeFiber.is_optical());
    }
}
