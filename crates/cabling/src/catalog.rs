//! The purchasable catalog: discrete SKU lengths and media selection.
//!
//! Cables are ordered in standard lengths, not cut to fit; the gap between
//! the routed length and the next SKU up is *slack* that coils in the tray
//! or rack (consuming space and technician patience). Media selection picks
//! the cheapest class that satisfies reach, the optical loss budget, and —
//! for pre-planning — availability of the *second-best* vendor part when
//! fungibility is required (paper §3.3: "design a network without depending
//! on the best available parts, but rather the second-best", which we model
//! as a configurable derating of every reach limit).

use crate::loss::{LossBudget, LossStack};
use crate::media::{sku, CableSku, MediaClass};
use pd_geometry::{Dollars, Gbps, Meters};
use serde::{Deserialize, Serialize};

/// The catalog: available lengths plus selection policy knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CableCatalog {
    /// Orderable cable lengths, ascending.
    pub lengths: Vec<Meters>,
    /// Reach derating factor in `(0, 1]` for fungibility: 1.0 trusts the
    /// best part's datasheet; 0.8 designs to the second-best vendor.
    pub reach_derating: f64,
    /// Loss model.
    pub loss: LossStack,
    /// Loss budgets.
    pub budget: LossBudget,
}

impl Default for CableCatalog {
    fn default() -> Self {
        Self {
            lengths: [1.0, 2.0, 3.0, 5.0, 7.0, 10.0, 15.0, 20.0, 30.0, 50.0, 100.0, 150.0]
                .into_iter()
                .map(Meters::new)
                .collect(),
            reach_derating: 1.0,
            loss: LossStack::default(),
            budget: LossBudget::default(),
        }
    }
}

/// A selected cable: the SKU family, the ordered length, and the slack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MediaChoice {
    /// The cable family.
    pub sku: CableSku,
    /// The ordered (SKU) length.
    pub ordered_length: Meters,
    /// Slack: ordered − required.
    pub slack: Meters,
    /// Total cost of this cable.
    pub cost: Dollars,
}

impl CableCatalog {
    /// Smallest orderable length ≥ `required`, or `None` if even the
    /// longest SKU is too short.
    pub fn next_length_up(&self, required: Meters) -> Option<Meters> {
        self.lengths
            .iter()
            .copied()
            .find(|&l| l + Meters::new(1e-9) >= required)
    }

    /// Effective (derated) reach of a SKU.
    pub fn effective_reach(&self, sku: &CableSku) -> Meters {
        sku.max_reach * self.reach_derating
    }

    /// Picks the cheapest media class for a run of `required` length at
    /// `speed`, traversing `panels` patch panels and `ocs` OCS ports.
    ///
    /// Feasibility per class: a SKU exists at this speed, an orderable
    /// length covers the run, the (derated) reach covers the *ordered*
    /// length (slack counts against reach — it is real cable), electrical
    /// media cannot traverse panels/OCS, and optical media must close the
    /// loss budget at the ordered length.
    pub fn choose(
        &self,
        speed: Gbps,
        required: Meters,
        panels: u32,
        ocs: u32,
    ) -> Option<MediaChoice> {
        let mut best: Option<MediaChoice> = None;
        for class in MediaClass::ALL {
            let Some(s) = sku(class, speed) else {
                continue;
            };
            if !class.is_optical() && (panels > 0 || ocs > 0) {
                continue;
            }
            let Some(ordered) = self.next_length_up(required) else {
                continue;
            };
            if ordered > self.effective_reach(&s) {
                continue;
            }
            let connectors = 2 + panels * 2 + ocs * 2;
            if class.is_optical()
                && !self
                    .loss
                    .channel_closes(&self.budget, class, ordered, connectors, panels, ocs)
            {
                continue;
            }
            let cost = s.cable_cost(ordered);
            let cand = MediaChoice {
                sku: s,
                ordered_length: ordered,
                slack: ordered - required,
                cost,
            };
            match &best {
                Some(b) if b.cost <= cost => {}
                _ => best = Some(cand),
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat() -> CableCatalog {
        CableCatalog::default()
    }

    #[test]
    fn next_length_up_rounds_correctly() {
        let c = cat();
        assert_eq!(c.next_length_up(Meters::new(2.4)), Some(Meters::new(3.0)));
        assert_eq!(c.next_length_up(Meters::new(3.0)), Some(Meters::new(3.0)));
        assert_eq!(c.next_length_up(Meters::new(120.0)), Some(Meters::new(150.0)));
        assert_eq!(c.next_length_up(Meters::new(200.0)), None);
    }

    #[test]
    fn short_runs_pick_copper() {
        let choice = cat().choose(Gbps::new(100.0), Meters::new(2.2), 0, 0).unwrap();
        assert_eq!(choice.sku.class, MediaClass::DacCopper);
        assert_eq!(choice.ordered_length, Meters::new(3.0));
        assert!((choice.slack - Meters::new(0.8)).abs() < Meters::new(1e-9));
    }

    #[test]
    fn medium_runs_pick_aec_long_runs_pick_fiber() {
        // 5 m at 400G: DAC reach (3 m) fails, AEC (7 m) wins on price.
        let mid = cat().choose(Gbps::new(400.0), Meters::new(5.0), 0, 0).unwrap();
        assert_eq!(mid.sku.class, MediaClass::ActiveElectrical);
        // 40 m: only fiber reaches; MMF ends are... pricier than SMF? At
        // 400G our SMF ends cost more than MMF, so MMF wins within 100 m.
        let long = cat().choose(Gbps::new(400.0), Meters::new(40.0), 0, 0).unwrap();
        assert_eq!(long.sku.class, MediaClass::MultimodeFiber);
        // 140 m: beyond MMF reach → SMF.
        let vlong = cat().choose(Gbps::new(400.0), Meters::new(140.0), 0, 0).unwrap();
        assert_eq!(vlong.sku.class, MediaClass::SinglemodeFiber);
    }

    #[test]
    fn ocs_traversal_excludes_electrical_and_tight_mmf() {
        let c = cat();
        // 3 m through an OCS: copper ineligible, MMF closes (short length).
        let through = c.choose(Gbps::new(100.0), Meters::new(3.0), 0, 1).unwrap();
        assert!(through.sku.class.is_optical());
        // 100 m through an OCS at 400G: MMF cannot close → SMF.
        let far = c.choose(Gbps::new(400.0), Meters::new(95.0), 0, 1).unwrap();
        assert_eq!(far.sku.class, MediaClass::SinglemodeFiber);
    }

    #[test]
    fn derating_flips_marginal_choices() {
        // 2.5 m at 400G fits DAC (3 m) at full reach but not at 0.8×.
        let full = cat();
        let choice = full.choose(Gbps::new(400.0), Meters::new(2.5), 0, 0).unwrap();
        assert_eq!(choice.sku.class, MediaClass::DacCopper);
        let derated = CableCatalog {
            reach_derating: 0.8,
            ..cat()
        };
        let choice2 = derated.choose(Gbps::new(400.0), Meters::new(2.5), 0, 0).unwrap();
        assert_ne!(
            choice2.sku.class,
            MediaClass::DacCopper,
            "second-best-vendor design must not rely on the 3 m DAC"
        );
    }

    #[test]
    fn impossible_runs_return_none() {
        // 200 m exceeds the longest SKU.
        assert!(cat().choose(Gbps::new(100.0), Meters::new(200.0), 0, 0).is_none());
    }

    #[test]
    fn slack_counts_against_reach() {
        // Required 2.8 m at 400G DAC: ordered length is 3.0 (= reach), OK.
        let ok = cat().choose(Gbps::new(400.0), Meters::new(2.8), 0, 0).unwrap();
        assert_eq!(ok.sku.class, MediaClass::DacCopper);
        // Required 3.2 m: ordered 5 m exceeds DAC reach → AEC.
        let over = cat().choose(Gbps::new(400.0), Meters::new(3.2), 0, 0).unwrap();
        assert_ne!(over.sku.class, MediaClass::DacCopper);
    }
}
