//! Cable bundling: pre-built regular bundles and bundleability metrics.
//!
//! Singh et al. \[44\] (paper §3.1) report savings of "almost 40%
//! (capex + opex) and weeks of delay by using regular, pre-constructed
//! bundles of cables." A bundle is only manufacturable when many cables
//! share the same endpoints and the same length — which is exactly what
//! structured topologies produce and random graphs do not ("Jellyfish's use
//! of regular random graphs makes that 'highly non-trivial'", §4.2).
//!
//! The grouping key is `(from_slot, to_slot, ordered_length)` with slot
//! pairs normalized. The [`BundlingReport`] quantifies bundleability:
//! fraction of cables in bundles of at least `min_bundle_size`, bundle
//! count, and the distinct-bundle-SKU count a supplier would have to build.

use crate::plan::{CableRun, CablingPlan};
use pd_geometry::Meters;
use pd_physical::SlotId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A group of cables with identical endpoints and length — a candidate
/// pre-built bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bundle {
    /// One endpoint slot (the smaller of the normalized pair).
    pub from_slot: SlotId,
    /// The other endpoint slot.
    pub to_slot: SlotId,
    /// Common ordered cable length.
    pub length: Meters,
    /// Indices into [`CablingPlan::runs`] of the member cables.
    pub members: Vec<usize>,
}

impl Bundle {
    /// Number of cables in the bundle.
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// Bundleability analysis of a cabling plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BundlingReport {
    /// All groups (including singletons).
    pub bundles: Vec<Bundle>,
    /// Minimum members for a group to count as a manufacturable bundle.
    pub min_bundle_size: usize,
    /// Total cables considered.
    pub total_cables: usize,
}

impl BundlingReport {
    /// Groups a plan's runs into bundles.
    pub fn analyze(plan: &CablingPlan, min_bundle_size: usize) -> Self {
        // BTreeMap keyed on (slot, slot, length-in-mm) for deterministic
        // ordering of the output.
        let mut groups: BTreeMap<(SlotId, SlotId, u64), Vec<usize>> = BTreeMap::new();
        for (i, run) in plan.runs.iter().enumerate() {
            let (a, b) = normalize(run);
            let key = (a, b, (run.choice.ordered_length.value() * 1000.0) as u64);
            groups.entry(key).or_default().push(i);
        }
        let bundles = groups
            .into_iter()
            .map(|((a, b, len_mm), members)| Bundle {
                from_slot: a,
                to_slot: b,
                length: Meters::new(len_mm as f64 / 1000.0),
                members,
            })
            .collect();
        Self {
            bundles,
            min_bundle_size,
            total_cables: plan.runs.len(),
        }
    }

    /// Groups that qualify as manufacturable bundles.
    pub fn manufacturable(&self) -> impl Iterator<Item = &Bundle> {
        self.bundles
            .iter()
            .filter(move |b| b.size() >= self.min_bundle_size)
    }

    /// Fraction of all cables that ship inside a manufacturable bundle —
    /// the headline bundleability score (1.0 = everything pre-bundled).
    pub fn bundled_fraction(&self) -> f64 {
        if self.total_cables == 0 {
            return 0.0;
        }
        let bundled: usize = self.manufacturable().map(Bundle::size).sum();
        bundled as f64 / self.total_cables as f64
    }

    /// Number of distinct bundle SKUs a supplier must manufacture.
    pub fn bundle_sku_count(&self) -> usize {
        self.manufacturable().count()
    }

    /// Cables that must be pulled individually.
    pub fn loose_cables(&self) -> usize {
        self.total_cables - self.manufacturable().map(Bundle::size).sum::<usize>()
    }

    /// Mean bundle size over manufacturable bundles (0 if none).
    pub fn mean_bundle_size(&self) -> f64 {
        let (sum, n) = self
            .manufacturable()
            .fold((0usize, 0usize), |(s, n), b| (s + b.size(), n + 1));
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }
}

fn normalize(run: &CableRun) -> (SlotId, SlotId) {
    if run.from_slot <= run.to_slot {
        (run.from_slot, run.to_slot)
    } else {
        (run.to_slot, run.from_slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CablingPlan, CablingPolicy};
    use pd_geometry::Gbps;
    use pd_physical::placement::EquipmentProfile;
    use pd_physical::{Hall, HallSpec, Placement, PlacementStrategy};
    use pd_topology::gen::{fat_tree, jellyfish, JellyfishParams};
    use pd_topology::Network;

    fn plan_for(net: &Network, strategy: PlacementStrategy) -> CablingPlan {
        let hall = Hall::new(HallSpec::default());
        let placement =
            Placement::place(net, &hall, strategy, &EquipmentProfile::default()).unwrap();
        CablingPlan::build(net, &hall, &placement, &CablingPolicy::default())
    }

    #[test]
    fn every_cable_in_exactly_one_group() {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let plan = plan_for(&net, PlacementStrategy::BlockLocal);
        let rep = BundlingReport::analyze(&plan, 4);
        let total: usize = rep.bundles.iter().map(Bundle::size).sum();
        assert_eq!(total, plan.runs.len());
        // Each member index appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for b in &rep.bundles {
            for &m in &b.members {
                assert!(seen.insert(m));
            }
        }
    }

    #[test]
    fn clos_bundles_better_than_jellyfish() {
        // The §4.2 discriminator, as a unit test.
        let ft = fat_tree(8, Gbps::new(100.0)).unwrap();
        let jf = jellyfish(&JellyfishParams {
            tors: 80,
            network_degree: 8,
            servers_per_tor: 8,
            link_speed: Gbps::new(100.0),
            seed: 4,
        })
        .unwrap();
        let rep_ft = BundlingReport::analyze(&plan_for(&ft, PlacementStrategy::BlockLocal), 4);
        let rep_jf = BundlingReport::analyze(&plan_for(&jf, PlacementStrategy::BlockLocal), 4);
        assert!(
            rep_ft.bundled_fraction() > rep_jf.bundled_fraction(),
            "fat-tree {:.2} must out-bundle jellyfish {:.2}",
            rep_ft.bundled_fraction(),
            rep_jf.bundled_fraction()
        );
    }

    #[test]
    fn bundle_accounting_consistent() {
        let net = fat_tree(6, Gbps::new(100.0)).unwrap();
        let plan = plan_for(&net, PlacementStrategy::BlockLocal);
        let rep = BundlingReport::analyze(&plan, 4);
        let bundled: usize = rep.manufacturable().map(Bundle::size).sum();
        assert_eq!(rep.loose_cables() + bundled, rep.total_cables);
        assert!(rep.bundled_fraction() >= 0.0 && rep.bundled_fraction() <= 1.0);
        if rep.bundle_sku_count() > 0 {
            assert!(rep.mean_bundle_size() >= rep.min_bundle_size as f64);
        }
    }

    #[test]
    fn min_size_one_bundles_everything() {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let plan = plan_for(&net, PlacementStrategy::BlockLocal);
        let rep = BundlingReport::analyze(&plan, 1);
        assert_eq!(rep.bundled_fraction(), 1.0);
        assert_eq!(rep.loose_cables(), 0);
    }
}

/// A block-pair cable harness: all cables between one pair of deployment
/// blocks, regardless of exact length.
///
/// This is the *weaker* bundleability the Xpander and FatClique papers
/// claim over Jellyfish (paper §4.2): cables between two structured groups
/// share a route and can be pre-built as a harness with staggered breakout
/// lengths, even when individual lengths differ. Jellyfish, whose "blocks"
/// are single ToRs, produces only singleton groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Harness {
    /// One block of the pair (raw id; `u32::MAX` = unblocked).
    pub block_a: u32,
    /// The other block.
    pub block_b: u32,
    /// Indices into the plan's runs.
    pub members: Vec<usize>,
}

/// Harness-level bundleability analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarnessReport {
    /// All block-pair groups (including singletons).
    pub harnesses: Vec<Harness>,
    /// Minimum members for a manufacturable harness.
    pub min_size: usize,
    /// Total cables considered.
    pub total_cables: usize,
}

impl HarnessReport {
    /// Groups a plan's runs by the *block pair* of the realized link.
    pub fn analyze(
        plan: &CablingPlan,
        net: &pd_topology::Network,
        min_size: usize,
    ) -> Self {
        let block_of = |s: pd_topology::SwitchId| -> u32 {
            net.switch(s).and_then(|s| s.block).map(|b| b.0).unwrap_or(u32::MAX)
        };
        let mut groups: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
        for (i, run) in plan.runs.iter().enumerate() {
            let Some(link) = net.link(run.link) else {
                continue;
            };
            let (a, b) = (block_of(link.a), block_of(link.b));
            let key = (a.min(b), a.max(b));
            groups.entry(key).or_default().push(i);
        }
        Self {
            harnesses: groups
                .into_iter()
                .map(|((a, b), members)| Harness {
                    block_a: a,
                    block_b: b,
                    members,
                })
                .collect(),
            min_size,
            total_cables: plan.runs.len(),
        }
    }

    /// Fraction of cables that belong to a harness of at least `min_size`.
    pub fn harness_fraction(&self) -> f64 {
        if self.total_cables == 0 {
            return 0.0;
        }
        let covered: usize = self
            .harnesses
            .iter()
            .filter(|h| h.members.len() >= self.min_size)
            .map(|h| h.members.len())
            .sum();
        covered as f64 / self.total_cables as f64
    }
}

#[cfg(test)]
mod harness_tests {
    use super::*;
    use crate::plan::{CablingPlan, CablingPolicy};
    use pd_geometry::Gbps;
    use pd_physical::placement::EquipmentProfile;
    use pd_physical::{Hall, HallSpec, Placement, PlacementStrategy};
    use pd_topology::gen::{jellyfish, xpander, JellyfishParams, XpanderParams};
    use pd_topology::Network;

    fn plan_for(net: &Network) -> CablingPlan {
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        CablingPlan::build(net, &hall, &placement, &CablingPolicy::default())
    }

    #[test]
    fn xpander_harnesses_but_jellyfish_does_not() {
        // The §4.2 claim: Xpander's metanode structure supports bundling;
        // Jellyfish's per-ToR randomness does not.
        let xp = xpander(&XpanderParams {
            network_degree: 8,
            lift: 8,
            servers_per_tor: 8,
            link_speed: Gbps::new(100.0),
            seed: 3,
        })
        .unwrap();
        let jf = jellyfish(&JellyfishParams {
            tors: 72,
            network_degree: 8,
            servers_per_tor: 8,
            link_speed: Gbps::new(100.0),
            seed: 3,
        })
        .unwrap();
        let hx = HarnessReport::analyze(&plan_for(&xp), &xp, 4);
        let hj = HarnessReport::analyze(&plan_for(&jf), &jf, 4);
        assert!(
            hx.harness_fraction() > 0.9,
            "xpander metanode pairs each hold `lift` cables: {}",
            hx.harness_fraction()
        );
        assert!(
            hj.harness_fraction() < 0.1,
            "jellyfish block pairs are singletons: {}",
            hj.harness_fraction()
        );
    }

    #[test]
    fn harness_partition_is_exact() {
        let xp = xpander(&XpanderParams {
            network_degree: 5,
            lift: 4,
            servers_per_tor: 4,
            link_speed: Gbps::new(100.0),
            seed: 1,
        })
        .unwrap();
        let plan = plan_for(&xp);
        let rep = HarnessReport::analyze(&plan, &xp, 4);
        let total: usize = rep.harnesses.iter().map(|h| h.members.len()).sum();
        assert_eq!(total, plan.runs.len());
    }
}
