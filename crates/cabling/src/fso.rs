//! Free-space optics / wireless links (§3.1).
//!
//! "Some papers have proposed using free-space optics \[23\] or 60GHz
//! wireless links \[57\] within datacenters. While these avoid the physical
//! challenges of cables, these too suffer from real-world issues.
//! Free-space optics require unobstructed paths between racks, which is
//! hard to guarantee; at higher speeds, they also might expose human eyes
//! to damage. 60GHz wireless links probably cannot be packed tightly
//! enough to entirely replace large bundles of fibers."
//!
//! We model a rack-top FSO mesh with exactly those three limits:
//!
//! 1. **Line of sight** — a beam is a straight rack-top segment; any
//!    *obstacle* (cooling unit, column, cable-riser cabinet) within the
//!    beam's clearance radius blocks it.
//! 2. **Eye safety** — launch power is capped, capping per-terminal speed.
//! 3. **Beam packing** — each rack top holds at most `terminals_per_rack`
//!    terminals, and beams crossing the same rack-top airspace closer than
//!    `beam_separation` interfere (the "cannot be packed tightly enough"
//!    constraint): we count, per rack, the beams overflying it and fail
//!    those beyond the packing limit.

use pd_geometry::{Dollars, Gbps, Meters, Point2};
use pd_physical::{Hall, Placement, SlotId};
use pd_topology::{LinkId, Network};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// FSO terminal and beam parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FsoSpec {
    /// Maximum beam range at rated availability.
    pub max_range: Meters,
    /// Per-terminal speed under the eye-safety power cap.
    pub safe_speed: Gbps,
    /// Clearance radius an obstacle must violate to block a beam.
    pub clearance: Meters,
    /// Terminals a rack top can hold (steering mirrors need aperture).
    pub terminals_per_rack: usize,
    /// Beams allowed to overfly one rack before interference/packing fails
    /// additional ones.
    pub overfly_limit: usize,
    /// Cost of a terminal pair (both ends).
    pub terminal_pair_cost: Dollars,
    /// Long-run availability of a beam (dust, vibration, humans walking
    /// through with ladders) — multiplies into capacity accounting.
    pub availability: f64,
}

impl Default for FsoSpec {
    fn default() -> Self {
        Self {
            // FireFly-class parameters: tens of meters of steerable reach.
            max_range: Meters::new(60.0),
            safe_speed: Gbps::new(100.0),
            clearance: Meters::new(0.4),
            terminals_per_rack: 8,
            overfly_limit: 24,
            terminal_pair_cost: Dollars::new(2_200.0),
            availability: 0.995,
        }
    }
}

/// Why a link cannot be carried by FSO.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FsoInfeasible {
    /// An obstacle blocks the line of sight.
    Obstructed {
        /// The blocking obstacle's slot.
        obstacle: SlotId,
    },
    /// The span exceeds beam range.
    OutOfRange {
        /// The required span.
        span: Meters,
    },
    /// The link's speed exceeds the eye-safe rate.
    OverSafeSpeed,
    /// A rack ran out of terminals.
    NoTerminals {
        /// The exhausted rack's slot.
        slot: SlotId,
    },
    /// Too many beams already overfly some rack on the path.
    PackingLimit {
        /// The congested rack's slot.
        slot: SlotId,
    },
    /// An endpoint is not placed.
    Unplaced,
}

/// The FSO feasibility plan for a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FsoPlan {
    /// Links carried by FSO.
    pub feasible: Vec<LinkId>,
    /// Links that cannot be carried, with the reason.
    pub infeasible: Vec<(LinkId, FsoInfeasible)>,
    /// Terminal pairs consumed.
    pub terminal_pairs: usize,
    /// Hardware cost of the FSO layer.
    pub cost: Dollars,
}

impl FsoPlan {
    /// Attempts to carry every network link of a placed design as an FSO
    /// beam. `obstacles` are slots occupied by beam-height obstructions.
    /// Deterministic: links are processed in id order, claiming terminals
    /// and airspace greedily.
    pub fn build(
        net: &Network,
        hall: &Hall,
        placement: &Placement,
        obstacles: &[SlotId],
        spec: &FsoSpec,
    ) -> Self {
        let obstacle_pts: Vec<(SlotId, Point2)> = obstacles
            .iter()
            .filter_map(|&s| hall.slot(s).map(|r| (s, r.center)))
            .collect();
        let mut terminals: HashMap<SlotId, usize> = HashMap::new();
        let mut overfly: HashMap<SlotId, usize> = HashMap::new();
        let mut feasible = Vec::new();
        let mut infeasible = Vec::new();

        let mut links: Vec<&pd_topology::Link> = net.links().collect();
        links.sort_by_key(|l| l.id);
        'links: for link in links {
            let (Some(sa), Some(sb)) = (placement.slot_of(link.a), placement.slot_of(link.b))
            else {
                infeasible.push((link.id, FsoInfeasible::Unplaced));
                continue;
            };
            let (Some(pa), Some(pb)) = (hall.slot(sa), hall.slot(sb)) else {
                infeasible.push((link.id, FsoInfeasible::Unplaced));
                continue;
            };
            if link.speed > spec.safe_speed {
                infeasible.push((link.id, FsoInfeasible::OverSafeSpeed));
                continue;
            }
            let span = pa.center.euclidean(pb.center);
            if span > spec.max_range {
                infeasible.push((link.id, FsoInfeasible::OutOfRange { span }));
                continue;
            }
            for &(slot, p) in &obstacle_pts {
                if slot != sa
                    && slot != sb
                    && p.distance_to_segment(pa.center, pb.center) < spec.clearance
                {
                    infeasible.push((link.id, FsoInfeasible::Obstructed { obstacle: slot }));
                    continue 'links;
                }
            }
            for slot in [sa, sb] {
                if terminals.get(&slot).copied().unwrap_or(0) >= spec.terminals_per_rack {
                    infeasible.push((link.id, FsoInfeasible::NoTerminals { slot }));
                    continue 'links;
                }
            }
            // Airspace packing: every slot whose center lies within the
            // clearance of the beam counts as overflown.
            let overflown: Vec<SlotId> = hall
                .slots()
                .iter()
                .filter(|s| {
                    s.id != sa
                        && s.id != sb
                        && s.center.distance_to_segment(pa.center, pb.center) < spec.clearance
                })
                .map(|s| s.id)
                .collect();
            for &slot in &overflown {
                if overfly.get(&slot).copied().unwrap_or(0) >= spec.overfly_limit {
                    infeasible.push((link.id, FsoInfeasible::PackingLimit { slot }));
                    continue 'links;
                }
            }
            // Claim resources.
            *terminals.entry(sa).or_insert(0) += 1;
            *terminals.entry(sb).or_insert(0) += 1;
            for slot in overflown {
                *overfly.entry(slot).or_insert(0) += 1;
            }
            feasible.push(link.id);
        }

        let terminal_pairs = feasible.len();
        Self {
            feasible,
            infeasible,
            terminal_pairs,
            cost: spec.terminal_pair_cost * terminal_pairs as f64,
        }
    }

    /// Fraction of links carried.
    pub fn coverage(&self) -> f64 {
        let total = self.feasible.len() + self.infeasible.len();
        if total == 0 {
            0.0
        } else {
            self.feasible.len() as f64 / total as f64
        }
    }

    /// Effective capacity multiplier of the FSO layer (coverage ×
    /// availability).
    pub fn effective_capacity(&self, spec: &FsoSpec) -> f64 {
        self.coverage() * spec.availability
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_physical::placement::EquipmentProfile;
    use pd_physical::{HallSpec, PlacementStrategy};
    use pd_topology::gen::{flattened_butterfly, FlattenedButterflyParams};

    fn setup() -> (Network, Hall, Placement) {
        let net = flattened_butterfly(&FlattenedButterflyParams {
            rows: 4,
            cols: 4,
            servers_per_tor: 8,
            link_speed: Gbps::new(100.0),
        })
        .unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        (net, hall, placement)
    }

    #[test]
    fn clear_hall_carries_everything() {
        let (net, hall, placement) = setup();
        let plan = FsoPlan::build(&net, &hall, &placement, &[], &FsoSpec::default());
        assert_eq!(plan.coverage(), 1.0, "{:?}", plan.infeasible);
        assert_eq!(plan.terminal_pairs, net.link_count());
        assert!(plan.cost.value() > 0.0);
    }

    #[test]
    fn obstacles_block_beams() {
        // Scatter the racks so beams criss-cross the hall, then drop
        // obstacles on every free slot: plenty of beams must now intersect
        // one.
        let net = flattened_butterfly(&FlattenedButterflyParams {
            rows: 4,
            cols: 4,
            servers_per_tor: 8,
            link_speed: Gbps::new(100.0),
        })
        .unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::Scattered(5),
            &EquipmentProfile::default(),
        )
        .unwrap();
        let used: std::collections::HashSet<SlotId> =
            placement.racks.iter().map(|r| r.slot).collect();
        let obstacles: Vec<SlotId> = hall
            .slots()
            .iter()
            .map(|s| s.id)
            .filter(|id| !used.contains(id))
            .collect();
        let spec = FsoSpec {
            max_range: Meters::new(200.0), // range never binds here
            ..FsoSpec::default()
        };
        let clear = FsoPlan::build(&net, &hall, &placement, &[], &spec);
        let blocked = FsoPlan::build(&net, &hall, &placement, &obstacles, &spec);
        assert!(blocked.coverage() < clear.coverage());
        assert!(blocked
            .infeasible
            .iter()
            .any(|(_, why)| matches!(why, FsoInfeasible::Obstructed { .. })));
    }

    #[test]
    fn eye_safety_caps_speed() {
        let (net, hall, placement) = setup();
        let strict = FsoSpec {
            safe_speed: Gbps::new(25.0),
            ..FsoSpec::default()
        };
        let plan = FsoPlan::build(&net, &hall, &placement, &[], &strict);
        assert_eq!(plan.coverage(), 0.0);
        assert!(plan
            .infeasible
            .iter()
            .all(|(_, why)| matches!(why, FsoInfeasible::OverSafeSpeed)));
    }

    #[test]
    fn terminal_budget_limits_degree() {
        let (net, hall, placement) = setup();
        let scarce = FsoSpec {
            terminals_per_rack: 3, // flattened butterfly needs degree 6
            ..FsoSpec::default()
        };
        let plan = FsoPlan::build(&net, &hall, &placement, &[], &scarce);
        assert!(plan.coverage() < 1.0);
        assert!(plan
            .infeasible
            .iter()
            .any(|(_, why)| matches!(why, FsoInfeasible::NoTerminals { .. })));
    }

    #[test]
    fn short_range_fails_far_pairs() {
        let (net, hall, placement) = setup();
        let short = FsoSpec {
            max_range: Meters::new(2.0),
            ..FsoSpec::default()
        };
        let plan = FsoPlan::build(&net, &hall, &placement, &[], &short);
        assert!(plan
            .infeasible
            .iter()
            .any(|(_, why)| matches!(why, FsoInfeasible::OutOfRange { .. })));
    }

    #[test]
    fn deterministic() {
        let (net, hall, placement) = setup();
        let a = FsoPlan::build(&net, &hall, &placement, &[], &FsoSpec::default());
        let b = FsoPlan::build(&net, &hall, &placement, &[], &FsoSpec::default());
        assert_eq!(a, b);
    }
}
