//! # pd-cabling — cable media, physical routing, bundling, and optics
//!
//! The paper's §3.1 is a tour of cabling physics: copper is cheap but short
//! and thick (AWS's 400G DACs are 11 mm across — 2.7× the cross-section of
//! their 100G cables), fiber is long but needs expensive, power-hungry
//! transceivers with insertion-loss budgets that patch panels and OCS layers
//! eat into, and everything must fit through trays provisioned for several
//! technology generations. This crate turns those physics into a checkable
//! model:
//!
//! * [`media`] — cable classes (passive DAC, active electrical, multimode
//!   and singlemode fiber) with per-speed reach, diameter, bend radius,
//!   cost, power, and reliability, calibrated to the numbers the paper
//!   cites.
//! * [`catalog`] — discrete SKU lengths and media selection (cheapest
//!   feasible class for a routed length and loss budget).
//! * [`loss`] — optical insertion-loss budgets across connectors, patch
//!   panels, OCS ports, and fiber attenuation.
//! * [`plan`] — routes every logical link of a placed network through the
//!   tray graph, picks media, places indirection (patch-panel / OCS) sites,
//!   and emits the full bill of materials.
//! * [`bundles`] — groups runs into pre-built bundles (Singh et al. \[44\])
//!   and measures how bundleable a design's cabling actually is — the §4.2
//!   discriminator between Clos and Jellyfish.
//! * [`fso`] — §3.1's free-space-optics alternative, with the line-of-sight,
//!   eye-safety, and beam-packing limits the paper lists.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundles;
pub mod catalog;
pub mod fso;
pub mod loss;
pub mod media;
pub mod plan;

pub use bundles::{Bundle, BundlingReport, Harness, HarnessReport};
pub use catalog::{CableCatalog, MediaChoice};
pub use fso::{FsoInfeasible, FsoPlan, FsoSpec};
pub use loss::{LossBudget, LossStack};
pub use media::{CableSku, MediaClass};
pub use plan::{CableRun, CablingError, CablingPlan, CablingPolicy, IndirectionKind, IndirectionSite};
