//! The cabling plan: every logical link realized as physical cable.
//!
//! [`CablingPlan::build`] walks the placed network and, for each link:
//!
//! 1. finds the tray route between the two racks (or an intra-rack length
//!    for same-rack links),
//! 2. for OCS/patch-panel-mediated links ([`pd_topology::Link::via_ocs`]),
//!    routes *two* cables — switch→site and site→switch — through an
//!    [`IndirectionSite`] (paper §4.1's indirection layer),
//! 3. selects the cheapest feasible media (reach, loss budget, discrete SKU
//!    lengths; see [`crate::catalog`]),
//! 4. commits the cable's cross-sectional area to every tray segment it
//!    traverses.
//!
//! Links that cannot be realized (no tray path with capacity, no feasible
//! media) are recorded as [`CablingError`]s, not panics: an infeasible
//! cabling plan is a *result* the deployability report surfaces — it is the
//! paper's "designs that look appealing on paper can turn out to be
//! infeasible" made concrete.

use crate::catalog::{CableCatalog, MediaChoice};
use crate::media::MediaClass;
use pd_geometry::{Dollars, Meters, RouteEdgeId, SquareMillimeters, Watts};
use pd_physical::{Hall, Placement, SlotId, TrayNetwork};
use pd_topology::{LinkId, Network};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// What the indirection layer is made of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndirectionKind {
    /// Passive patch panels (Zhao et al. \[56\]).
    PatchPanel,
    /// Optical circuit switches (Poutievski et al. \[39\]).
    Ocs,
}

impl IndirectionKind {
    /// (panels, ocs) element counts a channel through one site incurs.
    fn elements(&self) -> (u32, u32) {
        match self {
            IndirectionKind::PatchPanel => (1, 0),
            IndirectionKind::Ocs => (0, 1),
        }
    }
}

/// One installed patch-panel or OCS rack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndirectionSite {
    /// Panel or OCS.
    pub kind: IndirectionKind,
    /// The slot the site rack occupies.
    pub slot: SlotId,
    /// Duplex ports available (Telescent G4-class: ~1008).
    pub port_capacity: u32,
    /// Ports consumed so far (each mediated link uses one duplex port).
    pub ports_used: u32,
}

/// Policy knobs for plan construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CablingPolicy {
    /// The purchase catalog and loss model.
    pub catalog: CableCatalog,
    /// Extra cable needed at each end for in-rack dressing (patching from
    /// the rack top down to the switch port).
    pub in_rack_tail: Meters,
    /// Assumed length of a cable between two switches in the same rack.
    pub intra_rack_length: Meters,
    /// What mediates `via_ocs` links.
    pub indirection_kind: IndirectionKind,
    /// Duplex port capacity per indirection site.
    pub site_port_capacity: u32,
}

impl Default for CablingPolicy {
    fn default() -> Self {
        Self {
            catalog: CableCatalog::default(),
            in_rack_tail: Meters::new(1.5),
            intra_rack_length: Meters::new(2.0),
            indirection_kind: IndirectionKind::Ocs,
            site_port_capacity: 1008,
        }
    }
}

/// Why a link could not be physically realized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CablingError {
    /// No tray path with enough residual capacity.
    NoTrayPath(String),
    /// No media class satisfies reach/loss/SKU constraints.
    NoFeasibleMedia {
        /// The length that needed covering.
        required: Meters,
    },
    /// Every indirection site is out of ports.
    NoIndirectionPorts,
    /// An endpoint switch was never placed.
    Unplaced,
}

impl std::fmt::Display for CablingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CablingError::NoTrayPath(m) => write!(f, "no tray path: {m}"),
            CablingError::NoFeasibleMedia { required } => {
                write!(f, "no feasible media for {required}")
            }
            CablingError::NoIndirectionPorts => write!(f, "all indirection sites full"),
            CablingError::Unplaced => write!(f, "endpoint switch not placed"),
        }
    }
}

impl std::error::Error for CablingError {}

/// One physical cable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CableRun {
    /// The logical link this cable realizes (possibly one of a trunk, and
    /// possibly one of the two halves of a mediated channel).
    pub link: LinkId,
    /// Which trunk member (0-based).
    pub trunk_index: u16,
    /// `0` for the direct or switch→site half; `1` for the site→switch half.
    pub half: u8,
    /// Source rack slot.
    pub from_slot: SlotId,
    /// Destination rack slot (an indirection site's slot for half 0 of a
    /// mediated link).
    pub to_slot: SlotId,
    /// Selected media and ordered length.
    pub choice: MediaChoice,
    /// Actual routed length (tray path + tails).
    pub routed_length: Meters,
    /// Tray segments traversed (empty for intra-rack cables).
    pub tray_edges: Vec<RouteEdgeId>,
    /// Index into [`CablingPlan::sites`] if this run lands on an
    /// indirection site.
    pub via_site: Option<usize>,
}

/// The complete cabling plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CablingPlan {
    /// Every physical cable.
    pub runs: Vec<CableRun>,
    /// The tray network with all cable area committed.
    pub tray: TrayNetwork,
    /// Indirection sites installed (empty if the design has no `via_ocs`
    /// links).
    pub sites: Vec<IndirectionSite>,
    /// Links that could not be realized, with the reason.
    pub failures: Vec<(LinkId, CablingError)>,
}

impl CablingPlan {
    /// Builds the full plan for a placed network.
    pub fn build(
        net: &Network,
        hall: &Hall,
        placement: &Placement,
        policy: &CablingPolicy,
    ) -> Self {
        let mut tray = TrayNetwork::build(hall);
        let mut runs = Vec::new();
        let mut failures = Vec::new();

        // Install indirection sites if any link needs them: one site per
        // `site_port_capacity` mediated cables, on free slots nearest the
        // centroid of all placed racks.
        let mediated_cables: u32 = net
            .links()
            .filter(|l| l.via_ocs)
            .map(|l| u32::from(l.trunking))
            .sum();
        let mut sites: Vec<IndirectionSite> = if mediated_cables > 0 {
            let needed = mediated_cables.div_ceil(policy.site_port_capacity) as usize;
            free_central_slots(hall, placement, needed)
                .into_iter()
                .map(|slot| IndirectionSite {
                    kind: policy.indirection_kind,
                    slot,
                    port_capacity: policy.site_port_capacity,
                    ports_used: 0,
                })
                .collect()
        } else {
            Vec::new()
        };

        // Deterministic link order.
        let mut links: Vec<&pd_topology::Link> = net.links().collect();
        links.sort_by_key(|l| l.id);

        for link in links {
            let (Some(sa), Some(sb)) = (placement.slot_of(link.a), placement.slot_of(link.b))
            else {
                failures.push((link.id, CablingError::Unplaced));
                continue;
            };
            for trunk in 0..link.trunking {
                if link.via_ocs {
                    match route_mediated(
                        &mut tray, hall, policy, &mut sites, link, trunk, sa, sb,
                    ) {
                        Ok(mut two) => runs.append(&mut two),
                        Err(e) => failures.push((link.id, e)),
                    }
                } else {
                    match route_direct(&mut tray, policy, link, trunk, sa, sb) {
                        Ok(run) => runs.push(run),
                        Err(e) => failures.push((link.id, e)),
                    }
                }
            }
        }

        Self {
            runs,
            tray,
            sites,
            failures,
        }
    }

    /// Total cable + transceiver cost.
    pub fn total_cable_cost(&self) -> Dollars {
        self.runs.iter().map(|r| r.choice.cost).sum()
    }

    /// Total ordered cable length.
    pub fn total_ordered_length(&self) -> Meters {
        self.runs.iter().map(|r| r.choice.ordered_length).sum()
    }

    /// Total slack (ordered − routed).
    pub fn total_slack(&self) -> Meters {
        self.runs.iter().map(|r| r.choice.slack).sum()
    }

    /// Total transceiver/end power.
    pub fn total_end_power(&self) -> Watts {
        self.runs.iter().map(|r| r.choice.sku.ends_power).sum()
    }

    /// Cable counts per media class.
    pub fn media_histogram(&self) -> BTreeMap<MediaClass, usize> {
        let mut h = BTreeMap::new();
        for r in &self.runs {
            *h.entry(r.choice.sku.class).or_insert(0) += 1;
        }
        h
    }

    /// Fraction of cables that are optical.
    pub fn optical_fraction(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs
            .iter()
            .filter(|r| r.choice.sku.class.is_optical())
            .count() as f64
            / self.runs.len() as f64
    }

    /// Number of distinct (class, speed, ordered-length) SKUs — the
    /// procurement-complexity proxy ("computing the lengths … for
    /// pre-deployed fiber is highly non-trivial", §4.2).
    pub fn distinct_skus(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        for r in &self.runs {
            set.insert((
                r.choice.sku.class,
                r.choice.sku.speed.value() as u64,
                (r.choice.ordered_length.value() * 1000.0) as u64,
            ));
        }
        set.len()
    }

    /// Worst tray fill after all commits.
    pub fn max_tray_fill(&self) -> f64 {
        self.tray.max_fill()
    }

    /// All runs realizing a logical link.
    pub fn runs_of_link(&self, link: LinkId) -> Vec<&CableRun> {
        self.runs.iter().filter(|r| r.link == link).collect()
    }

    /// For SPOF analysis: maps each tray segment to the logical links whose
    /// cables traverse it.
    pub fn links_per_tray_edge(&self) -> HashMap<RouteEdgeId, Vec<LinkId>> {
        let mut m: HashMap<RouteEdgeId, Vec<LinkId>> = HashMap::new();
        for r in &self.runs {
            for &e in &r.tray_edges {
                m.entry(e).or_default().push(r.link);
            }
        }
        m
    }

    /// Mean routed length (0 for an empty plan).
    pub fn mean_routed_length(&self) -> Meters {
        if self.runs.is_empty() {
            return Meters::ZERO;
        }
        self.runs.iter().map(|r| r.routed_length).sum::<Meters>() / self.runs.len() as f64
    }
}

fn route_direct(
    tray: &mut TrayNetwork,
    policy: &CablingPolicy,
    link: &pd_topology::Link,
    trunk: u16,
    sa: SlotId,
    sb: SlotId,
) -> Result<CableRun, CablingError> {
    if sa == sb {
        // Intra-rack cable: no tray involvement.
        let required = policy.intra_rack_length;
        let choice = policy
            .catalog
            .choose(link.speed, required, 0, 0)
            .ok_or(CablingError::NoFeasibleMedia { required })?;
        return Ok(CableRun {
            link: link.id,
            trunk_index: trunk,
            half: 0,
            from_slot: sa,
            to_slot: sb,
            choice,
            routed_length: required,
            tray_edges: Vec::new(),
            via_site: None,
        });
    }
    // Route with a small probe area first (fiber-class), then commit the
    // chosen media's true area. One-pass heuristic: the probe finds the
    // geometric path; overfill from thick copper is *recorded* by the fill
    // metrics rather than silently rerouted — matching how pre-planned
    // routes overflow in reality when cable diameters grow (§3.1).
    let probe = SquareMillimeters::new(7.0);
    let path = tray
        .route_cable(sa, sb, probe)
        .map_err(|e| CablingError::NoTrayPath(e.to_string()))?;
    let required = path.length + policy.in_rack_tail * 2.0;
    let choice = match policy.catalog.choose(link.speed, required, 0, 0) {
        Some(c) => c,
        None => {
            tray.router.release(&path, probe);
            return Err(CablingError::NoFeasibleMedia { required });
        }
    };
    let true_area = choice.sku.area();
    tray.router.release(&path, probe);
    tray.router.commit(&path, true_area);
    Ok(CableRun {
        link: link.id,
        trunk_index: trunk,
        half: 0,
        from_slot: sa,
        to_slot: sb,
        choice,
        routed_length: required,
        tray_edges: path.edges,
        via_site: None,
    })
}

#[allow(clippy::too_many_arguments)]
fn route_mediated(
    tray: &mut TrayNetwork,
    _hall: &Hall,
    policy: &CablingPolicy,
    sites: &mut [IndirectionSite],
    link: &pd_topology::Link,
    trunk: u16,
    sa: SlotId,
    sb: SlotId,
) -> Result<Vec<CableRun>, CablingError> {
    // Pick the first site with a free port (sites are centroid-ordered, so
    // this is also roughly the nearest).
    let site_idx = sites
        .iter()
        .position(|s| s.ports_used < s.port_capacity)
        .ok_or(CablingError::NoIndirectionPorts)?;
    let site_slot = sites[site_idx].slot;
    let (panels, ocs) = sites[site_idx].kind.elements();

    let probe = SquareMillimeters::new(7.0);
    let path_a = tray
        .route_cable(sa, site_slot, probe)
        .map_err(|e| CablingError::NoTrayPath(format!("to site: {e}")))?;
    let path_b = match tray.route_cable(site_slot, sb, probe) {
        Ok(p) => p,
        Err(e) => {
            tray.router.release(&path_a, probe);
            return Err(CablingError::NoTrayPath(format!("from site: {e}")));
        }
    };
    let req_a = path_a.length + policy.in_rack_tail * 2.0;
    let req_b = path_b.length + policy.in_rack_tail * 2.0;

    // The *channel* spans both halves plus the site: media must be optical
    // and must close the loss budget over the combined ordered length.
    let choice_pair = choose_mediated(&policy.catalog, link.speed, req_a, req_b, panels, ocs);
    let (ca, cb) = match choice_pair {
        Some(p) => p,
        None => {
            tray.router.release(&path_a, probe);
            tray.router.release(&path_b, probe);
            return Err(CablingError::NoFeasibleMedia {
                required: req_a + req_b,
            });
        }
    };
    tray.router.release(&path_a, probe);
    tray.router.release(&path_b, probe);
    tray.router.commit(&path_a, ca.sku.area());
    tray.router.commit(&path_b, cb.sku.area());
    sites[site_idx].ports_used += 1;

    Ok(vec![
        CableRun {
            link: link.id,
            trunk_index: trunk,
            half: 0,
            from_slot: sa,
            to_slot: site_slot,
            choice: ca,
            routed_length: req_a,
            tray_edges: path_a.edges,
            via_site: Some(site_idx),
        },
        CableRun {
            link: link.id,
            trunk_index: trunk,
            half: 1,
            from_slot: site_slot,
            to_slot: sb,
            choice: cb,
            routed_length: req_b,
            tray_edges: path_b.edges,
            via_site: Some(site_idx),
        },
    ])
}

/// Chooses optical media for both halves of a mediated channel such that
/// the combined channel closes the loss budget.
fn choose_mediated(
    catalog: &CableCatalog,
    speed: pd_geometry::Gbps,
    req_a: Meters,
    req_b: Meters,
    panels: u32,
    ocs: u32,
) -> Option<(MediaChoice, MediaChoice)> {
    let mut best: Option<(MediaChoice, MediaChoice)> = None;
    for class in [MediaClass::MultimodeFiber, MediaClass::SinglemodeFiber] {
        let Some(s) = crate::media::sku(class, speed) else {
            continue;
        };
        let (Some(la), Some(lb)) = (catalog.next_length_up(req_a), catalog.next_length_up(req_b))
        else {
            continue;
        };
        if la > catalog.effective_reach(&s) || lb > catalog.effective_reach(&s) {
            continue;
        }
        // Transceiver ends (2) + connectors at the site (2 per traversal).
        let connectors = 2 + panels * 2 + ocs * 2;
        if !catalog.loss.channel_closes(
            &catalog.budget,
            class,
            la + lb,
            connectors,
            panels,
            ocs,
        ) {
            continue;
        }
        let make = |len: Meters, req: Meters| MediaChoice {
            sku: s,
            ordered_length: len,
            slack: len - req,
            cost: s.cable_cost(len),
        };
        let cand = (make(la, req_a), make(lb, req_b));
        let cost = cand.0.cost + cand.1.cost;
        match &best {
            Some((a, b)) if a.cost + b.cost <= cost => {}
            _ => best = Some(cand),
        }
    }
    best
}

/// Free slots (no rack placed) nearest the centroid of placed racks.
fn free_central_slots(hall: &Hall, placement: &Placement, n: usize) -> Vec<SlotId> {
    let used: std::collections::HashSet<SlotId> =
        placement.racks.iter().map(|r| r.slot).collect();
    let (mut cx, mut cy, mut count) = (0.0f64, 0.0f64, 0usize);
    for r in &placement.racks {
        if let Some(s) = hall.slot(r.slot) {
            cx += s.center.x.value();
            cy += s.center.y.value();
            count += 1;
        }
    }
    let centroid = if count == 0 {
        pd_geometry::Point2::ORIGIN
    } else {
        pd_geometry::Point2::new(cx / count as f64, cy / count as f64)
    };
    // Distances come straight from the slot structs (no id → slot lookup
    // to unwrap mid-sort): the comparator cannot panic even on a hall
    // whose slot ids are sparse or renumbered.
    let mut free: Vec<(SlotId, f64)> = hall
        .slots()
        .iter()
        .filter(|s| !used.contains(&s.id))
        .map(|s| (s.id, s.center.manhattan(centroid)))
        .collect();
    free.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    free.truncate(n);
    free.into_iter().map(|(id, _)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_geometry::Gbps;
    use pd_physical::placement::EquipmentProfile;
    use pd_physical::{HallSpec, PlacementStrategy};
    use pd_topology::gen::{fat_tree, folded_clos, ClosParams};

    fn setup(
        net: &Network,
        strategy: PlacementStrategy,
    ) -> (Hall, Placement) {
        let hall = Hall::new(HallSpec::default());
        let placement =
            Placement::place(net, &hall, strategy, &EquipmentProfile::default()).unwrap();
        (hall, placement)
    }

    #[test]
    fn fat_tree_plan_realizes_every_link() {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let (hall, placement) = setup(&net, PlacementStrategy::BlockLocal);
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        assert!(plan.failures.is_empty(), "failures: {:?}", plan.failures);
        assert_eq!(plan.runs.len(), net.link_count());
        assert!(plan.total_cable_cost() > Dollars::ZERO);
        assert!(plan.max_tray_fill() > 0.0);
        assert!(plan.sites.is_empty());
    }

    #[test]
    fn slack_is_nonnegative_and_lengths_ordered() {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let (hall, placement) = setup(&net, PlacementStrategy::BlockLocal);
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        for r in &plan.runs {
            assert!(r.choice.slack >= Meters::ZERO);
            assert!(r.choice.ordered_length + Meters::new(1e-9) >= r.routed_length);
        }
        assert!(plan.total_slack() >= Meters::ZERO);
    }

    #[test]
    fn block_local_is_cheaper_than_scattered() {
        let net = fat_tree(6, Gbps::new(100.0)).unwrap();
        let (hall, local) = setup(&net, PlacementStrategy::BlockLocal);
        let scat =
            Placement::place(&net, &hall, PlacementStrategy::Scattered(3), &EquipmentProfile::default())
                .unwrap();
        let policy = CablingPolicy::default();
        let plan_local = CablingPlan::build(&net, &hall, &local, &policy);
        let plan_scat = CablingPlan::build(&net, &hall, &scat, &policy);
        assert!(plan_local.total_cable_cost() < plan_scat.total_cable_cost());
        assert!(plan_local.optical_fraction() <= plan_scat.optical_fraction());
    }

    #[test]
    fn ocs_links_get_two_halves_and_consume_site_ports() {
        let p = ClosParams {
            spine_via_panels: true,
            ..ClosParams::default()
        };
        let net = folded_clos(&p).unwrap();
        let (hall, placement) = setup(&net, PlacementStrategy::BlockLocal);
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        assert!(plan.failures.is_empty(), "failures: {:?}", plan.failures);
        assert!(!plan.sites.is_empty());
        let mediated = net.links().filter(|l| l.via_ocs).count();
        let direct = net.links().filter(|l| !l.via_ocs).count();
        assert_eq!(plan.runs.len(), direct + 2 * mediated);
        let used: u32 = plan.sites.iter().map(|s| s.ports_used).sum();
        assert_eq!(used as usize, mediated);
        // Every mediated half is optical (electrical can't cross an OCS).
        for r in plan.runs.iter().filter(|r| r.via_site.is_some()) {
            assert!(r.choice.sku.class.is_optical());
        }
    }

    #[test]
    fn media_histogram_sums_to_runs() {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let (hall, placement) = setup(&net, PlacementStrategy::BlockLocal);
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        let total: usize = plan.media_histogram().values().sum();
        assert_eq!(total, plan.runs.len());
        assert!(plan.distinct_skus() >= 1);
        assert!(plan.mean_routed_length() > Meters::ZERO);
    }

    #[test]
    fn links_per_tray_edge_covers_all_committed_edges() {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let (hall, placement) = setup(&net, PlacementStrategy::BlockLocal);
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        let per_edge = plan.links_per_tray_edge();
        // Every edge with nonzero fill must appear in the map.
        for e in plan.tray.router.edge_ids() {
            if plan.tray.router.fill_fraction(e) > 0.0 {
                assert!(per_edge.contains_key(&e), "edge {e:?} missing");
            }
        }
    }
}
