//! Property-based tests for the geometry substrate.

use pd_geometry::{CapacityRouter, Meters, Millimeters, Point2, Point3, Polyline, SquareMillimeters};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    -1000.0..1000.0f64
}

fn point2() -> impl Strategy<Value = Point2> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point2::new(x, y))
}

fn point3() -> impl Strategy<Value = Point3> {
    (finite_coord(), finite_coord(), 0.0..10.0f64).prop_map(|(x, y, z)| Point3::new(x, y, z))
}

proptest! {
    /// Triangle inequality for the Euclidean metric.
    #[test]
    fn euclidean_triangle_inequality(a in point2(), b in point2(), c in point2()) {
        let lhs = a.euclidean(c).value();
        let rhs = a.euclidean(b).value() + b.euclidean(c).value();
        prop_assert!(lhs <= rhs + 1e-9);
    }

    /// Manhattan distance always dominates Euclidean distance.
    #[test]
    fn manhattan_dominates_euclidean(a in point3(), b in point3()) {
        prop_assert!(a.manhattan(b).value() + 1e-9 >= a.euclidean(b).value());
    }

    /// Unit arithmetic: (a + b) - b == a up to float error.
    #[test]
    fn unit_add_sub_inverse(a in -1e6..1e6f64, b in -1e6..1e6f64) {
        let r = (Meters::new(a) + Meters::new(b)) - Meters::new(b);
        prop_assert!((r.value() - a).abs() <= 1e-6 * (1.0 + a.abs() + b.abs()));
    }

    /// Polyline length is invariant under vertex-order reversal.
    #[test]
    fn polyline_length_reversal_invariant(pts in prop::collection::vec(point3(), 1..12)) {
        let fwd = Polyline::new(pts.clone()).length();
        let mut rev = pts;
        rev.reverse();
        let bwd = Polyline::new(rev).length();
        prop_assert!((fwd - bwd).abs() <= Meters::new(1e-9));
    }

    /// Polyline length is at least the straight-line distance between its
    /// endpoints (path inequality).
    #[test]
    fn polyline_length_at_least_chord(pts in prop::collection::vec(point3(), 2..12)) {
        let p = Polyline::new(pts);
        prop_assert!(p.length().value() + 1e-9 >= p.start().euclidean(p.end()).value());
    }

    /// Inserting a collinear midpoint never changes length or adds a bend.
    #[test]
    fn collinear_subdivision_is_invisible(a in point3(), b in point3(), t in 0.01..0.99f64) {
        let mid = Point3::new(
            a.x.value() + (b.x.value() - a.x.value()) * t,
            a.y.value() + (b.y.value() - a.y.value()) * t,
            a.z.value() + (b.z.value() - a.z.value()) * t,
        );
        let direct = Polyline::new(vec![a, b]);
        let split = Polyline::new(vec![a, mid, b]);
        prop_assert!((direct.length() - split.length()).abs() <= Meters::new(1e-6));
        // Bend threshold comfortably above numeric noise.
        prop_assert!(split.bends(1e-3).is_empty());
    }

    /// A bigger minimum bend radius never yields fewer violations.
    #[test]
    fn bend_violations_monotone_in_radius(pts in prop::collection::vec(point3(), 3..10), r in 1.0..500.0f64) {
        let p = Polyline::new(pts);
        let small = p.check_bend_radius(Millimeters::new(r)).len();
        let large = p.check_bend_radius(Millimeters::new(r * 2.0)).len();
        prop_assert!(large >= small);
    }
}

/// Builds a random grid-ish routing graph and checks router invariants.
fn grid_router(n: usize) -> (CapacityRouter, Vec<pd_geometry::RouteNodeId>) {
    let mut g = CapacityRouter::new();
    let mut ids = Vec::new();
    for i in 0..n {
        for j in 0..n {
            ids.push(g.add_node(Point3::new(i as f64, j as f64, 0.0)));
        }
    }
    let cap = SquareMillimeters::new(1000.0);
    for i in 0..n {
        for j in 0..n {
            let at = |a: usize, b: usize| ids[a * n + b];
            if i + 1 < n {
                g.add_edge_auto(at(i, j), at(i + 1, j), cap);
            }
            if j + 1 < n {
                g.add_edge_auto(at(i, j), at(i, j + 1), cap);
            }
        }
    }
    (g, ids)
}

proptest! {
    /// Routed path length on a unit grid equals Manhattan distance (Dijkstra
    /// optimality oracle), and the path is well-formed.
    #[test]
    fn grid_route_is_optimal(n in 2usize..6, si in 0usize..25, di in 0usize..25) {
        let (g, ids) = grid_router(n);
        let s = ids[si % ids.len()];
        let d = ids[di % ids.len()];
        let p = g.route(s, d, SquareMillimeters::new(1.0)).unwrap();
        let expect = g.position(s).manhattan(g.position(d));
        prop_assert!((p.length - expect).abs() <= Meters::new(1e-9));
        prop_assert_eq!(p.nodes.first().copied(), Some(s));
        prop_assert_eq!(p.nodes.last().copied(), Some(d));
        prop_assert_eq!(p.edges.len() + 1, p.nodes.len());
    }

    /// Commit then release restores every edge's residual capacity exactly.
    #[test]
    fn commit_release_restores_residuals(n in 2usize..5, si in 0usize..16, di in 0usize..16, demand in 1.0..500.0f64) {
        let (mut g, ids) = grid_router(n);
        let s = ids[si % ids.len()];
        let d = ids[di % ids.len()];
        let before: Vec<_> = g.edge_ids().map(|e| g.residual(e)).collect();
        if let Ok(p) = g.route(s, d, SquareMillimeters::new(demand)) {
            g.commit(&p, SquareMillimeters::new(demand));
            g.release(&p, SquareMillimeters::new(demand));
        }
        let after: Vec<_> = g.edge_ids().map(|e| g.residual(e)).collect();
        prop_assert_eq!(before, after);
    }
}
