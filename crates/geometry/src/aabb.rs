//! Axis-aligned bounding boxes on the floor plan.
//!
//! Used for rack footprints, keep-out zones (columns, CRAC units), and door
//! apertures. Overlap tests are how the placement engine guarantees two racks
//! never claim the same tiles and that service clearances stay clear.

use crate::point::Point2;
use crate::units::Meters;
use serde::{Deserialize, Serialize};

/// A 2D axis-aligned box, `min` inclusive and `max` inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb2 {
    /// Minimum corner (smallest x and y).
    pub min: Point2,
    /// Maximum corner (largest x and y).
    pub max: Point2,
}

impl Aabb2 {
    /// Builds a box from any two opposite corners.
    pub fn from_corners(a: Point2, b: Point2) -> Self {
        Self {
            min: Point2 {
                x: a.x.min(b.x),
                y: a.y.min(b.y),
            },
            max: Point2 {
                x: a.x.max(b.x),
                y: a.y.max(b.y),
            },
        }
    }

    /// Builds a box from an origin corner plus a width (x) and depth (y).
    pub fn from_origin_size(origin: Point2, width: Meters, depth: Meters) -> Self {
        Self::from_corners(
            origin,
            Point2 {
                x: origin.x + width,
                y: origin.y + depth,
            },
        )
    }

    /// Box width along x.
    pub fn width(&self) -> Meters {
        self.max.x - self.min.x
    }

    /// Box depth along y.
    pub fn depth(&self) -> Meters {
        self.max.y - self.min.y
    }

    /// Geometric center.
    pub fn center(&self) -> Point2 {
        self.min.midpoint(self.max)
    }

    /// Floor area of the box in square meters (raw `f64`).
    pub fn area_m2(&self) -> f64 {
        self.width().value() * self.depth().value()
    }

    /// True if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True if the two boxes share any area (touching edges count).
    pub fn intersects(&self, other: &Aabb2) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// True if the two boxes overlap with positive area (touching edges do
    /// *not* count) — the test used for rack-collision checks, where two
    /// racks standing flush against each other is legal.
    pub fn overlaps_strictly(&self, other: &Aabb2) -> bool {
        self.min.x < other.max.x
            && self.max.x > other.min.x
            && self.min.y < other.max.y
            && self.max.y > other.min.y
    }

    /// Grows the box by `margin` on every side (service clearance).
    pub fn expanded(&self, margin: Meters) -> Self {
        Self {
            min: Point2 {
                x: self.min.x - margin,
                y: self.min.y - margin,
            },
            max: Point2 {
                x: self.max.x + margin,
                y: self.max.y + margin,
            },
        }
    }

    /// Smallest box containing both.
    pub fn union(&self, other: &Aabb2) -> Self {
        Self {
            min: Point2 {
                x: self.min.x.min(other.min.x),
                y: self.min.y.min(other.min.y),
            },
            max: Point2 {
                x: self.max.x.max(other.max.x),
                y: self.max.y.max(other.max.y),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(x0: f64, y0: f64, x1: f64, y1: f64) -> Aabb2 {
        Aabb2::from_corners(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    #[test]
    fn corners_normalize() {
        let b = Aabb2::from_corners(Point2::new(3.0, 4.0), Point2::new(1.0, 2.0));
        assert_eq!(b.min, Point2::new(1.0, 2.0));
        assert_eq!(b.max, Point2::new(3.0, 4.0));
    }

    #[test]
    fn size_center_area() {
        let b = Aabb2::from_origin_size(Point2::new(1.0, 1.0), Meters::new(2.0), Meters::new(4.0));
        assert_eq!(b.width(), Meters::new(2.0));
        assert_eq!(b.depth(), Meters::new(4.0));
        assert_eq!(b.center(), Point2::new(2.0, 3.0));
        assert_eq!(b.area_m2(), 8.0);
    }

    #[test]
    fn contains_boundary() {
        let b = boxed(0.0, 0.0, 2.0, 2.0);
        assert!(b.contains(Point2::new(0.0, 0.0)));
        assert!(b.contains(Point2::new(2.0, 2.0)));
        assert!(b.contains(Point2::new(1.0, 1.0)));
        assert!(!b.contains(Point2::new(2.01, 1.0)));
    }

    #[test]
    fn touching_edges_intersect_but_do_not_strictly_overlap() {
        let a = boxed(0.0, 0.0, 1.0, 1.0);
        let b = boxed(1.0, 0.0, 2.0, 1.0); // flush against `a`
        assert!(a.intersects(&b));
        assert!(!a.overlaps_strictly(&b));
    }

    #[test]
    fn disjoint_boxes() {
        let a = boxed(0.0, 0.0, 1.0, 1.0);
        let b = boxed(3.0, 3.0, 4.0, 4.0);
        assert!(!a.intersects(&b));
        assert!(!a.overlaps_strictly(&b));
    }

    #[test]
    fn expanded_adds_margin_all_sides() {
        let b = boxed(1.0, 1.0, 2.0, 2.0).expanded(Meters::new(0.5));
        assert_eq!(b.min, Point2::new(0.5, 0.5));
        assert_eq!(b.max, Point2::new(2.5, 2.5));
    }

    #[test]
    fn union_covers_both() {
        let u = boxed(0.0, 0.0, 1.0, 1.0).union(&boxed(2.0, -1.0, 3.0, 0.5));
        assert_eq!(u.min, Point2::new(0.0, -1.0));
        assert_eq!(u.max, Point2::new(3.0, 1.0));
    }
}
