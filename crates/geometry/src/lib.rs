//! # pd-geometry — spatial substrate for the physnet toolkit
//!
//! Physical deployability is, before anything else, a question of geometry:
//! where things sit on the datacenter floor, how long cable runs are, whether
//! a cable's bend radius survives the path it must take, and whether a tray
//! segment has room left for one more bundle.
//!
//! This crate provides:
//!
//! * strongly-typed physical [`units`] (meters, millimeters, watts, dollars,
//!   hours, …) so that a cable length is never silently added to a cost;
//! * 2D/3D [`point`]s with Euclidean and Manhattan metrics (cables in trays
//!   route rectilinearly, line-of-sight distances are Euclidean);
//! * [`polyline`]s with length, bend-angle extraction, and minimum-bend-radius
//!   feasibility checks (a cable with a 40 mm bend radius cannot turn a sharp
//!   corner in a 30 mm plenum);
//! * a capacity-aware [`route`] graph used to route cables through tray
//!   segments with cross-sectional-area limits.
//!
//! Everything here is deterministic and allocation-light; the crate has no
//! dependencies beyond `serde` (for persisting models).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aabb;
pub mod point;
pub mod polyline;
pub mod route;
pub mod units;

pub use aabb::Aabb2;
pub use point::{Point2, Point3};
pub use polyline::Polyline;
pub use route::{CapacityRouter, EdgeId as RouteEdgeId, NodeId as RouteNodeId, RouteError};
pub use units::{
    Db, Dollars, Gbps, Hours, Kilograms, Meters, Millimeters, SquareMillimeters, Watts,
};
