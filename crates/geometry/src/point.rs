//! 2D and 3D points in datacenter-floor coordinates.
//!
//! Convention: `x` runs along rows, `y` across rows (aisle direction), `z` is
//! height above the raised floor. All coordinates are in [`Meters`].
//!
//! Two metrics matter here. *Euclidean* distance models line-of-sight spans
//! (free-space optics, or the theoretical minimum cable length). *Manhattan*
//! distance models how cables actually travel: along a rack row to a tray
//! drop, along the tray, down into the destination rack — rectilinear by
//! construction.

use crate::units::Meters;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A point on the 2D datacenter floor plan.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Coordinate along rack rows.
    pub x: Meters,
    /// Coordinate across rows (down the aisles).
    pub y: Meters,
}

impl Point2 {
    /// The origin.
    pub const ORIGIN: Self = Self {
        x: Meters::ZERO,
        y: Meters::ZERO,
    };

    /// Creates a point from raw meter values.
    pub const fn new(x: f64, y: f64) -> Self {
        Self {
            x: Meters::new(x),
            y: Meters::new(y),
        }
    }

    /// Straight-line distance to `other`.
    pub fn euclidean(self, other: Self) -> Meters {
        let dx = (self.x - other.x).value();
        let dy = (self.y - other.y).value();
        Meters::new(dx.hypot(dy))
    }

    /// Rectilinear (L1) distance to `other` — how cable actually routes.
    pub fn manhattan(self, other: Self) -> Meters {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Lifts this floor point to a 3D point at height `z`.
    pub fn at_height(self, z: Meters) -> Point3 {
        Point3 {
            x: self.x,
            y: self.y,
            z,
        }
    }

    /// Component-wise midpoint.
    pub fn midpoint(self, other: Self) -> Self {
        Self {
            x: (self.x + other.x) / 2.0,
            y: (self.y + other.y) / 2.0,
        }
    }

    /// Shortest distance from this point to the segment `a`–`b` — the
    /// obstruction test for line-of-sight (free-space optics) paths.
    pub fn distance_to_segment(self, a: Self, b: Self) -> Meters {
        let (ax, ay) = (a.x.value(), a.y.value());
        let (bx, by) = (b.x.value(), b.y.value());
        let (px, py) = (self.x.value(), self.y.value());
        let (dx, dy) = (bx - ax, by - ay);
        let len2 = dx * dx + dy * dy;
        if len2 <= 0.0 {
            return self.euclidean(a);
        }
        let t = (((px - ax) * dx + (py - ay) * dy) / len2).clamp(0.0, 1.0);
        let proj = Point2::new(ax + t * dx, ay + t * dy);
        self.euclidean(proj)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x.value(), self.y.value())
    }
}

/// A point in 3D datacenter space (floor plan plus height).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// Coordinate along rack rows.
    pub x: Meters,
    /// Coordinate across rows.
    pub y: Meters,
    /// Height above the raised floor.
    pub z: Meters,
}

impl Point3 {
    /// The origin.
    pub const ORIGIN: Self = Self {
        x: Meters::ZERO,
        y: Meters::ZERO,
        z: Meters::ZERO,
    };

    /// Creates a point from raw meter values.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self {
            x: Meters::new(x),
            y: Meters::new(y),
            z: Meters::new(z),
        }
    }

    /// Straight-line distance to `other`.
    pub fn euclidean(self, other: Self) -> Meters {
        let dx = (self.x - other.x).value();
        let dy = (self.y - other.y).value();
        let dz = (self.z - other.z).value();
        Meters::new((dx * dx + dy * dy + dz * dz).sqrt())
    }

    /// Rectilinear (L1) distance to `other`.
    pub fn manhattan(self, other: Self) -> Meters {
        (self.x - other.x).abs() + (self.y - other.y).abs() + (self.z - other.z).abs()
    }

    /// Drops the height coordinate.
    pub fn floor(self) -> Point2 {
        Point2 {
            x: self.x,
            y: self.y,
        }
    }

    /// The vector difference `self - other` as raw meter components.
    pub fn delta(self, other: Self) -> [f64; 3] {
        [
            (self.x - other.x).value(),
            (self.y - other.y).value(),
            (self.z - other.z).value(),
        ]
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.2}, {:.2}, {:.2})",
            self.x.value(),
            self.y.value(),
            self.z.value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_345_triangle() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.euclidean(b), Meters::new(5.0));
    }

    #[test]
    fn manhattan_dominates_euclidean_2d() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(4.0, -2.0);
        assert!(a.manhattan(b) >= a.euclidean(b));
        assert_eq!(a.manhattan(b), Meters::new(7.0));
    }

    #[test]
    fn point3_euclidean() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(2.0, 3.0, 6.0);
        assert_eq!(a.euclidean(b), Meters::new(7.0));
    }

    #[test]
    fn at_height_and_floor_round_trip() {
        let p = Point2::new(5.0, 6.0);
        let q = p.at_height(Meters::new(2.5));
        assert_eq!(q.z, Meters::new(2.5));
        assert_eq!(q.floor(), p);
    }

    #[test]
    fn midpoint_is_halfway() {
        let m = Point2::new(0.0, 0.0).midpoint(Point2::new(4.0, 6.0));
        assert_eq!(m, Point2::new(2.0, 3.0));
    }

    #[test]
    fn distance_to_segment_cases() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, 0.0);
        // Perpendicular foot inside the segment.
        assert_eq!(Point2::new(5.0, 3.0).distance_to_segment(a, b), Meters::new(3.0));
        // Beyond an endpoint: distance to the endpoint.
        assert_eq!(Point2::new(13.0, 4.0).distance_to_segment(a, b), Meters::new(5.0));
        // On the segment: zero.
        assert_eq!(Point2::new(2.0, 0.0).distance_to_segment(a, b), Meters::ZERO);
        // Degenerate segment: plain distance.
        assert_eq!(Point2::new(3.0, 4.0).distance_to_segment(a, a), Meters::new(5.0));
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point3::new(1.0, -2.0, 3.0);
        let b = Point3::new(-4.0, 5.0, 0.5);
        assert_eq!(a.euclidean(b), b.euclidean(a));
        assert_eq!(a.manhattan(b), b.manhattan(a));
    }
}
