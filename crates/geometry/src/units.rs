//! Strongly-typed physical quantities.
//!
//! Each unit is a transparent newtype over `f64` with the arithmetic that is
//! dimensionally meaningful: quantities of the same unit add and subtract,
//! any quantity scales by a dimensionless `f64`, and a few cross-unit
//! products that the toolkit actually needs (e.g. `Dollars/Meters × Meters`)
//! are provided as named methods rather than operator overloads, so the
//! dimensional bookkeeping stays visible at call sites.
//!
//! All types are `Copy`, ordered (via [`f64::total_cmp`] wrappers where
//! needed), serializable, and printable with sensible precision.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the shared newtype-quantity boilerplate for one unit type.
///
/// This is deliberately a *simple* macro (field access and operator impls
/// only) — the point is to avoid copy-paste drift between twelve unit types,
/// not to be clever.
macro_rules! quantity {
    ($(#[$doc:meta])* $name:ident, $suffix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new quantity from a raw `f64` value.
            pub const fn new(v: f64) -> Self {
                Self(v)
            }

            /// Returns the raw `f64` value.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps into `[lo, hi]`.
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Dimensionless ratio `self / other`.
            ///
            /// Returns `f64::INFINITY` when dividing a positive quantity by
            /// zero, mirroring IEEE semantics; callers that care should check
            /// `other` first.
            pub fn ratio(self, other: Self) -> f64 {
                self.0 / other.0
            }

            /// True if the value is finite (not NaN or infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Total ordering comparison (NaN-safe, for sorting).
            pub fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{:.2} {}", self.0, $suffix)
                }
            }
        }
    };
}

quantity!(
    /// A length in meters; the native length unit for floor plans and cable runs.
    Meters,
    "m"
);
quantity!(
    /// A length in millimeters; used for cable diameters and bend radii.
    Millimeters,
    "mm"
);
quantity!(
    /// A cross-sectional area in square millimeters; used for tray fill accounting.
    SquareMillimeters,
    "mm²"
);
quantity!(
    /// Electrical power in watts.
    Watts,
    "W"
);
quantity!(
    /// Mass in kilograms; racks and cable bundles have weight limits.
    Kilograms,
    "kg"
);
quantity!(
    /// Link or path bandwidth in gigabits per second.
    Gbps,
    "Gbps"
);
quantity!(
    /// Money in US dollars (capex or opex).
    Dollars,
    "$"
);
quantity!(
    /// Elapsed or labor time in hours.
    Hours,
    "h"
);
quantity!(
    /// Optical power ratio in decibels; used for insertion-loss budgets.
    Db,
    "dB"
);

impl Meters {
    /// Converts to millimeters.
    pub fn to_mm(self) -> Millimeters {
        Millimeters(self.0 * 1000.0)
    }

    /// Converts to kilometers as a raw `f64` (used for per-km attenuation).
    pub fn to_km(self) -> f64 {
        self.0 / 1000.0
    }
}

impl Millimeters {
    /// Converts to meters.
    pub fn to_meters(self) -> Meters {
        Meters(self.0 / 1000.0)
    }

    /// Area of a circle with this diameter; the standard model for cable
    /// cross-section when computing tray fill.
    pub fn circle_area(self) -> SquareMillimeters {
        SquareMillimeters(std::f64::consts::PI * (self.0 / 2.0) * (self.0 / 2.0))
    }
}

impl Hours {
    /// Builds a duration from minutes.
    pub fn from_minutes(min: f64) -> Self {
        Hours(min / 60.0)
    }

    /// The duration expressed in minutes.
    pub fn to_minutes(self) -> f64 {
        self.0 * 60.0
    }

    /// The duration expressed in whole-and-fractional 8-hour work days.
    pub fn to_work_days(self) -> f64 {
        self.0 / 8.0
    }

    /// The duration expressed in 7-day weeks of 8-hour work days (40 h).
    pub fn to_work_weeks(self) -> f64 {
        self.0 / 40.0
    }
}

impl Dollars {
    /// Cost of `len` of something priced per meter.
    pub fn per_meter(rate: f64, len: Meters) -> Self {
        Dollars(rate * len.0)
    }
}

impl Db {
    /// Converts a dB value to a linear power ratio.
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Builds a dB value from a linear power ratio.
    pub fn from_linear(ratio: f64) -> Self {
        Db(10.0 * ratio.log10())
    }
}

impl Watts {
    /// Energy cost of running this draw for `hours` at `usd_per_kwh`.
    pub fn energy_cost(self, hours: Hours, usd_per_kwh: f64) -> Dollars {
        Dollars(self.0 / 1000.0 * hours.0 * usd_per_kwh)
    }
}

impl Gbps {
    /// Converts to terabits per second as a raw `f64`.
    pub fn to_tbps(self) -> f64 {
        self.0 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_same_unit() {
        let a = Meters(3.0) + Meters(4.5);
        assert_eq!(a, Meters(7.5));
        assert_eq!(a - Meters(7.5), Meters::ZERO);
    }

    #[test]
    fn scale_by_dimensionless() {
        assert_eq!(Meters(2.0) * 3.0, Meters(6.0));
        assert_eq!(3.0 * Meters(2.0), Meters(6.0));
        assert_eq!(Meters(6.0) / 3.0, Meters(2.0));
    }

    #[test]
    fn sum_iterator() {
        let total: Dollars = [Dollars(1.0), Dollars(2.5), Dollars(3.5)].into_iter().sum();
        assert_eq!(total, Dollars(7.0));
    }

    #[test]
    fn meters_mm_round_trip() {
        let m = Meters(1.234);
        assert!((m.to_mm().to_meters() - m).abs() < Meters(1e-12));
    }

    #[test]
    fn circle_area_matches_formula() {
        // AWS's 6.7 mm OD 100G DAC (paper §3.1): area ≈ 35.26 mm².
        let a = Millimeters(6.7).circle_area();
        assert!((a.value() - 35.2565).abs() < 1e-3, "got {a}");
    }

    #[test]
    fn aws_od_area_ratio_is_2_7x() {
        // The paper's headline cable claim: 11 mm vs 6.7 mm OD is a 2.7×
        // cross-sectional-area increase.
        let r = Millimeters(11.0)
            .circle_area()
            .ratio(Millimeters(6.7).circle_area());
        assert!((r - 2.695).abs() < 0.01, "ratio {r}");
    }

    #[test]
    fn hours_conversions() {
        assert_eq!(Hours::from_minutes(90.0), Hours(1.5));
        assert_eq!(Hours(80.0).to_work_days(), 10.0);
        assert_eq!(Hours(80.0).to_work_weeks(), 2.0);
        assert_eq!(Hours(2.0).to_minutes(), 120.0);
    }

    #[test]
    fn db_linear_round_trip() {
        let db = Db(3.0);
        let back = Db::from_linear(db.to_linear());
        assert!((back - db).abs() < Db(1e-12));
    }

    #[test]
    fn watts_energy_cost() {
        // 1 kW for 10 h at $0.10/kWh = $1.
        let c = Watts(1000.0).energy_cost(Hours(10.0), 0.10);
        assert!((c - Dollars(1.0)).abs() < Dollars(1e-12));
    }

    #[test]
    fn display_precision() {
        assert_eq!(format!("{}", Meters(1.2345)), "1.23 m");
        assert_eq!(format!("{:.0}", Dollars(99.9)), "100 $");
    }

    #[test]
    fn ratio_and_clamp() {
        assert_eq!(Meters(6.0).ratio(Meters(2.0)), 3.0);
        assert_eq!(Meters(5.0).clamp(Meters(0.0), Meters(3.0)), Meters(3.0));
        assert_eq!(Meters(2.0).max(Meters(3.0)), Meters(3.0));
        assert_eq!(Meters(2.0).min(Meters(3.0)), Meters(2.0));
    }
}
