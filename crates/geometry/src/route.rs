//! Capacity-aware shortest-path routing over a segment graph.
//!
//! The cable-tray network of a datacenter hall is a sparse graph: nodes are
//! tray junctions and rack drop points, edges are tray segments with a
//! cross-sectional area budget (the paper's §2.1 "provision enough space in
//! cable trays for several generations"). Routing a cable means finding the
//! shortest path whose every segment still has room for the cable's
//! cross-section.
//!
//! The router is a plain binary-heap Dijkstra with per-edge residual
//! capacity. It deliberately has no dependency on `petgraph`: the tray graph
//! is small (hundreds of nodes), mutation of residual capacity is the common
//! operation, and a self-contained adjacency list keeps the commit/rollback
//! semantics obvious.

use crate::point::Point3;
use crate::units::{Meters, SquareMillimeters};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Identifier of a node (tray junction or drop point) in a [`CapacityRouter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Identifier of an undirected edge (tray segment) in a [`CapacityRouter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

/// Errors returned by [`CapacityRouter::route`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteError {
    /// No path exists between the endpoints with enough residual capacity.
    ///
    /// Distinguishing "disconnected" from "full" matters operationally: the
    /// first is a design error, the second is the §2.1 tray-generations
    /// problem showing up.
    NoFeasiblePath {
        /// True if a path exists when capacity is ignored — i.e. the failure
        /// is congestion, not disconnection.
        connected_ignoring_capacity: bool,
    },
    /// An endpoint is not a node of this graph.
    UnknownNode(NodeId),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::NoFeasiblePath {
                connected_ignoring_capacity: true,
            } => write!(f, "no feasible path: all candidate tray segments are full"),
            RouteError::NoFeasiblePath {
                connected_ignoring_capacity: false,
            } => write!(f, "no path: endpoints are in disconnected tray networks"),
            RouteError::UnknownNode(n) => write!(f, "unknown tray node {}", n.0),
        }
    }
}

impl std::error::Error for RouteError {}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Edge {
    a: NodeId,
    b: NodeId,
    length: Meters,
    capacity: SquareMillimeters,
    used: SquareMillimeters,
}

/// A routed path: the node sequence, the edges traversed, and total length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedPath {
    /// Node sequence from source to destination (inclusive).
    pub nodes: Vec<NodeId>,
    /// Edge sequence, one per hop.
    pub edges: Vec<EdgeId>,
    /// Sum of edge lengths.
    pub length: Meters,
}

/// An undirected segment graph with per-edge area capacity, supporting
/// shortest-feasible-path queries and capacity commits.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CapacityRouter {
    positions: Vec<Point3>,
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
    edges: Vec<Edge>,
}

impl CapacityRouter {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node at `pos`, returning its id.
    pub fn add_node(&mut self, pos: Point3) -> NodeId {
        let id = NodeId(self.positions.len());
        self.positions.push(pos);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected segment between `a` and `b` with an explicit
    /// length and area capacity, returning its id.
    ///
    /// # Panics
    /// Panics if either node id is out of range.
    pub fn add_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        length: Meters,
        capacity: SquareMillimeters,
    ) -> EdgeId {
        assert!(a.0 < self.positions.len() && b.0 < self.positions.len());
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            a,
            b,
            length,
            capacity,
            used: SquareMillimeters::ZERO,
        });
        self.adjacency[a.0].push((b, id));
        self.adjacency[b.0].push((a, id));
        id
    }

    /// Adds a segment whose length is the Euclidean distance between the
    /// endpoint positions.
    pub fn add_edge_auto(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: SquareMillimeters,
    ) -> EdgeId {
        let len = self.positions[a.0].euclidean(self.positions[b.0]);
        self.add_edge(a, b, len, capacity)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Position of a node.
    pub fn position(&self, n: NodeId) -> Point3 {
        self.positions[n.0]
    }

    /// Length of an edge.
    pub fn edge_length(&self, e: EdgeId) -> Meters {
        self.edges[e.0].length
    }

    /// Residual (unused) capacity of an edge.
    pub fn residual(&self, e: EdgeId) -> SquareMillimeters {
        self.edges[e.0].capacity - self.edges[e.0].used
    }

    /// Installed capacity of an edge.
    pub fn capacity(&self, e: EdgeId) -> SquareMillimeters {
        self.edges[e.0].capacity
    }

    /// Occupied area of an edge.
    pub fn used(&self, e: EdgeId) -> SquareMillimeters {
        self.edges[e.0].used
    }

    /// Fill fraction of an edge in `[0, 1+]`.
    pub fn fill_fraction(&self, e: EdgeId) -> f64 {
        self.edges[e.0].used.ratio(self.edges[e.0].capacity)
    }

    /// Endpoints of an edge.
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        (self.edges[e.0].a, self.edges[e.0].b)
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Finds the shortest path from `src` to `dst` using only edges with at
    /// least `demand` residual capacity. Does **not** commit the capacity;
    /// call [`Self::commit`] with the returned path to occupy it.
    pub fn route(
        &self,
        src: NodeId,
        dst: NodeId,
        demand: SquareMillimeters,
    ) -> Result<RoutedPath, RouteError> {
        if src.0 >= self.positions.len() {
            return Err(RouteError::UnknownNode(src));
        }
        if dst.0 >= self.positions.len() {
            return Err(RouteError::UnknownNode(dst));
        }
        match self.dijkstra(src, dst, Some(demand)) {
            Some(path) => Ok(path),
            None => Err(RouteError::NoFeasiblePath {
                connected_ignoring_capacity: self.dijkstra(src, dst, None).is_some(),
            }),
        }
    }

    /// Occupies `demand` of capacity along every edge of `path`.
    ///
    /// # Panics
    /// Panics if any edge id in the path is out of range. Over-commit is
    /// permitted (fill fraction may exceed 1.0) so that audits can *measure*
    /// overfill on models imported from bad data, rather than crash — the
    /// constraint engine reports it as a violation.
    pub fn commit(&mut self, path: &RoutedPath, demand: SquareMillimeters) {
        for e in &path.edges {
            self.edges[e.0].used += demand;
        }
    }

    /// Releases `demand` of capacity along every edge of `path` (decom).
    pub fn release(&mut self, path: &RoutedPath, demand: SquareMillimeters) {
        for e in &path.edges {
            let ed = &mut self.edges[e.0];
            ed.used = (ed.used - demand).max(SquareMillimeters::ZERO);
        }
    }

    /// Convenience: route and, on success, immediately commit.
    pub fn route_and_commit(
        &mut self,
        src: NodeId,
        dst: NodeId,
        demand: SquareMillimeters,
    ) -> Result<RoutedPath, RouteError> {
        let path = self.route(src, dst, demand)?;
        self.commit(&path, demand);
        Ok(path)
    }

    /// The polyline through the positions of a routed path's nodes.
    pub fn path_polyline(&self, path: &RoutedPath) -> crate::polyline::Polyline {
        crate::polyline::Polyline::new(path.nodes.iter().map(|n| self.positions[n.0]).collect())
    }

    fn dijkstra(
        &self,
        src: NodeId,
        dst: NodeId,
        demand: Option<SquareMillimeters>,
    ) -> Option<RoutedPath> {
        #[derive(PartialEq)]
        struct State {
            dist: f64,
            node: NodeId,
        }
        impl Eq for State {}
        impl Ord for State {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Min-heap on distance; tie-break on node id for determinism.
                other
                    .dist
                    .total_cmp(&self.dist)
                    .then_with(|| other.node.cmp(&self.node))
            }
        }
        impl PartialOrd for State {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let n = self.positions.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src.0] = 0.0;
        heap.push(State {
            dist: 0.0,
            node: src,
        });

        while let Some(State { dist: d, node }) = heap.pop() {
            if d > dist[node.0] {
                continue;
            }
            if node == dst {
                break;
            }
            for &(next, eid) in &self.adjacency[node.0] {
                let edge = &self.edges[eid.0];
                if let Some(need) = demand {
                    if edge.capacity - edge.used < need {
                        continue;
                    }
                }
                let nd = d + edge.length.value();
                if nd < dist[next.0] {
                    dist[next.0] = nd;
                    prev[next.0] = Some((node, eid));
                    heap.push(State {
                        dist: nd,
                        node: next,
                    });
                }
            }
        }

        if !dist[dst.0].is_finite() {
            return None;
        }
        let mut nodes = vec![dst];
        let mut edges = Vec::new();
        let mut cur = dst;
        while let Some((p, e)) = prev[cur.0] {
            nodes.push(p);
            edges.push(e);
            cur = p;
        }
        nodes.reverse();
        edges.reverse();
        Some(RoutedPath {
            nodes,
            edges,
            length: Meters::new(dist[dst.0]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Square graph:  n0 --1m-- n1
    ///                 |          |
    ///                3m         1m
    ///                 |          |
    ///                n3 --1m-- n2
    fn square() -> (CapacityRouter, [NodeId; 4], [EdgeId; 4]) {
        let mut g = CapacityRouter::new();
        let n0 = g.add_node(Point3::new(0.0, 0.0, 0.0));
        let n1 = g.add_node(Point3::new(1.0, 0.0, 0.0));
        let n2 = g.add_node(Point3::new(1.0, 1.0, 0.0));
        let n3 = g.add_node(Point3::new(0.0, 1.0, 0.0));
        let cap = SquareMillimeters::new(100.0);
        let e0 = g.add_edge(n0, n1, Meters::new(1.0), cap);
        let e1 = g.add_edge(n1, n2, Meters::new(1.0), cap);
        let e2 = g.add_edge(n2, n3, Meters::new(1.0), cap);
        let e3 = g.add_edge(n3, n0, Meters::new(3.0), cap);
        (g, [n0, n1, n2, n3], [e0, e1, e2, e3])
    }

    #[test]
    fn shortest_path_taken() {
        let (g, n, _) = square();
        let p = g.route(n[0], n[3], SquareMillimeters::new(10.0)).unwrap();
        // Around via n1,n2 is 3 m; direct edge is also 3 m; Dijkstra should
        // find 3 m either way.
        assert_eq!(p.length, Meters::new(3.0));
        assert_eq!(p.nodes.first(), Some(&n[0]));
        assert_eq!(p.nodes.last(), Some(&n[3]));
    }

    #[test]
    fn capacity_forces_detour() {
        let (mut g, n, e) = square();
        // Fill the two short edges n0-n1, n1-n2 almost completely.
        g.edges[e[0].0].used = SquareMillimeters::new(95.0);
        g.edges[e[1].0].used = SquareMillimeters::new(95.0);
        let p = g.route(n[0], n[2], SquareMillimeters::new(10.0)).unwrap();
        // Must now go the long way: n0-n3 (3 m) + n3-n2 (1 m) = 4 m.
        assert_eq!(p.length, Meters::new(4.0));
        assert_eq!(p.edges, vec![e[3], e[2]]);
    }

    #[test]
    fn full_graph_reports_congestion_not_disconnection() {
        let (mut g, n, e) = square();
        for eid in e {
            g.edges[eid.0].used = SquareMillimeters::new(100.0);
        }
        let err = g.route(n[0], n[2], SquareMillimeters::new(1.0)).unwrap_err();
        assert_eq!(
            err,
            RouteError::NoFeasiblePath {
                connected_ignoring_capacity: true
            }
        );
    }

    #[test]
    fn disconnected_graph_reported_as_such() {
        let mut g = CapacityRouter::new();
        let a = g.add_node(Point3::ORIGIN);
        let b = g.add_node(Point3::new(1.0, 0.0, 0.0));
        let err = g.route(a, b, SquareMillimeters::new(1.0)).unwrap_err();
        assert_eq!(
            err,
            RouteError::NoFeasiblePath {
                connected_ignoring_capacity: false
            }
        );
    }

    #[test]
    fn commit_and_release_round_trip() {
        let (mut g, n, _) = square();
        let d = SquareMillimeters::new(60.0);
        let p = g.route_and_commit(n[0], n[2], d).unwrap();
        // The same demand no longer fits on that path...
        let p2 = g.route(n[0], n[2], d).unwrap();
        assert_ne!(p2.edges, p.edges, "second route must avoid committed path");
        // ...until released.
        g.release(&p, d);
        let p3 = g.route(n[0], n[2], d).unwrap();
        assert_eq!(p3.length, p.length);
    }

    #[test]
    fn unknown_node_errors() {
        let (g, _, _) = square();
        let err = g
            .route(NodeId(99), NodeId(0), SquareMillimeters::ZERO)
            .unwrap_err();
        assert_eq!(err, RouteError::UnknownNode(NodeId(99)));
    }

    #[test]
    fn auto_edge_uses_euclidean_length() {
        let mut g = CapacityRouter::new();
        let a = g.add_node(Point3::new(0.0, 0.0, 0.0));
        let b = g.add_node(Point3::new(3.0, 4.0, 0.0));
        let e = g.add_edge_auto(a, b, SquareMillimeters::new(1.0));
        assert_eq!(g.edge_length(e), Meters::new(5.0));
    }

    #[test]
    fn path_polyline_matches_nodes() {
        let (g, n, _) = square();
        let p = g.route(n[0], n[2], SquareMillimeters::new(1.0)).unwrap();
        let poly = g.path_polyline(&p);
        assert_eq!(poly.vertices().len(), p.nodes.len());
        assert!((poly.length() - p.length).abs() < Meters::new(1e-12));
    }

    #[test]
    fn fill_fraction_tracks_commit() {
        let (mut g, n, _) = square();
        let p = g.route(n[0], n[1], SquareMillimeters::new(25.0)).unwrap();
        g.commit(&p, SquareMillimeters::new(25.0));
        assert_eq!(g.fill_fraction(p.edges[0]), 0.25);
        assert_eq!(g.residual(p.edges[0]), SquareMillimeters::new(75.0));
    }
}
