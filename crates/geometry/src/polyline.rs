//! Polylines — the geometry of an individual cable run.
//!
//! A cable run is modeled as a 3D polyline: down from the switch port,
//! along the rack, up into the tray, along tray segments, and back down.
//! Two physical questions matter (paper §3.1 and §5.3):
//!
//! 1. **Length** — determines which media can carry the signal (copper reach
//!    limits), which SKU to order, and how much slack the discrete SKU
//!    lengths leave in the tray.
//! 2. **Bends** — every direction change must respect the cable's minimum
//!    bend radius. The paper specifically calls out automation failing to
//!    notice "a space that is just a little too small to accommodate the safe
//!    bending radius of the cable"; [`Polyline::check_bend_radius`] is the
//!    check that a digital twin runs to catch that early.

use crate::point::Point3;
use crate::units::{Meters, Millimeters};
use serde::{Deserialize, Serialize};

/// An open 3D polyline with at least one vertex.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    vertices: Vec<Point3>,
}

/// One direction change along a polyline, with the clearance available to
/// make the turn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bend {
    /// Index of the interior vertex where the bend occurs.
    pub vertex: usize,
    /// Turn angle in radians: 0 = straight through, π = full reversal.
    pub angle_rad: f64,
    /// Clearance available for the arc: the shorter of the two adjacent
    /// segments. A 90° bend of radius `r` needs `r` of run-in on both sides.
    pub clearance: Meters,
}

/// A bend that violates a cable's minimum bend radius.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BendViolation {
    /// The offending bend.
    pub bend: Bend,
    /// Clearance the cable would need at this bend.
    pub required: Meters,
}

impl Polyline {
    /// Creates a polyline from vertices.
    ///
    /// # Panics
    /// Panics if `vertices` is empty; a cable run always has at least its
    /// start point.
    pub fn new(vertices: Vec<Point3>) -> Self {
        assert!(!vertices.is_empty(), "polyline needs at least one vertex");
        Self { vertices }
    }

    /// The vertices in order.
    pub fn vertices(&self) -> &[Point3] {
        &self.vertices
    }

    /// First vertex.
    pub fn start(&self) -> Point3 {
        self.vertices[0]
    }

    /// Last vertex.
    pub fn end(&self) -> Point3 {
        *self.vertices.last().expect("non-empty by construction")
    }

    /// Appends a vertex.
    pub fn push(&mut self, p: Point3) {
        self.vertices.push(p);
    }

    /// Total arc length.
    pub fn length(&self) -> Meters {
        self.vertices
            .windows(2)
            .map(|w| w[0].euclidean(w[1]))
            .sum()
    }

    /// Number of segments (edges) in the polyline.
    pub fn segment_count(&self) -> usize {
        self.vertices.len().saturating_sub(1)
    }

    /// Extracts every bend (direction change above `min_angle_rad`) along the
    /// polyline. Collinear interior vertices produce no bend.
    pub fn bends(&self, min_angle_rad: f64) -> Vec<Bend> {
        let mut out = Vec::new();
        for i in 1..self.vertices.len().saturating_sub(1) {
            let a = self.vertices[i - 1];
            let b = self.vertices[i];
            let c = self.vertices[i + 1];
            let u = b.delta(a);
            let v = c.delta(b);
            let nu = (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]).sqrt();
            let nv = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
            if nu == 0.0 || nv == 0.0 {
                continue; // degenerate duplicate vertex: no defined direction
            }
            let dot = (u[0] * v[0] + u[1] * v[1] + u[2] * v[2]) / (nu * nv);
            let angle = dot.clamp(-1.0, 1.0).acos();
            if angle > min_angle_rad {
                out.push(Bend {
                    vertex: i,
                    angle_rad: angle,
                    clearance: Meters::new(nu.min(nv)),
                });
            }
        }
        out
    }

    /// Checks every bend against a cable's minimum bend radius.
    ///
    /// The feasibility model: turning through angle `θ` with bend radius `r`
    /// consumes `r · tan(θ/2)` of straight run-in on each side of the vertex
    /// (the tangent-length of the inscribed arc), so each adjacent segment
    /// must be at least that long. A full reversal (θ = π) is never feasible
    /// for a rigid-radius cable and is always reported.
    pub fn check_bend_radius(&self, min_radius: Millimeters) -> Vec<BendViolation> {
        let r = min_radius.to_meters();
        self.bends(1e-6)
            .into_iter()
            .filter_map(|bend| {
                let half = bend.angle_rad / 2.0;
                // tan(π/2) → ∞ for a full reversal; treat anything near a
                // reversal as requiring infinite clearance.
                let required = if bend.angle_rad > std::f64::consts::PI - 1e-9 {
                    Meters::new(f64::INFINITY)
                } else {
                    Meters::new(r.value() * half.tan())
                };
                (bend.clearance < required).then_some(BendViolation { bend, required })
            })
            .collect()
    }

    /// A straight two-point polyline.
    pub fn straight(a: Point3, b: Point3) -> Self {
        Self::new(vec![a, b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polyline {
        // 2 m east, then 3 m north: one 90° bend.
        Polyline::new(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(2.0, 0.0, 0.0),
            Point3::new(2.0, 3.0, 0.0),
        ])
    }

    #[test]
    fn length_sums_segments() {
        assert_eq!(l_shape().length(), Meters::new(5.0));
        assert_eq!(l_shape().segment_count(), 2);
    }

    #[test]
    fn straight_line_has_no_bends() {
        let p = Polyline::new(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(5.0, 0.0, 0.0),
        ]);
        assert!(p.bends(1e-6).is_empty());
    }

    #[test]
    fn right_angle_bend_detected() {
        let bends = l_shape().bends(1e-6);
        assert_eq!(bends.len(), 1);
        let b = bends[0];
        assert_eq!(b.vertex, 1);
        assert!((b.angle_rad - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        assert_eq!(b.clearance, Meters::new(2.0)); // min(2 m, 3 m)
    }

    #[test]
    fn generous_clearance_passes_radius_check() {
        // 40 mm bend radius needs 40·tan(45°) = 40 mm run-in; we have 2 m.
        assert!(l_shape().check_bend_radius(Millimeters::new(40.0)).is_empty());
    }

    #[test]
    fn tight_corner_fails_radius_check() {
        // Segments of 30 mm, bend radius 40 mm: required 40 mm > 30 mm.
        let p = Polyline::new(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(0.03, 0.0, 0.0),
            Point3::new(0.03, 0.03, 0.0),
        ]);
        let v = p.check_bend_radius(Millimeters::new(40.0));
        assert_eq!(v.len(), 1);
        assert!((v[0].required.value() - 0.04).abs() < 1e-9);
    }

    #[test]
    fn full_reversal_is_always_infeasible() {
        let p = Polyline::new(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(10.0, 0.0, 0.0),
            Point3::new(0.0, 0.0, 0.0),
        ]);
        let v = p.check_bend_radius(Millimeters::new(1.0));
        assert_eq!(v.len(), 1);
        assert!(v[0].required.value().is_infinite());
    }

    #[test]
    fn duplicate_vertices_do_not_panic() {
        let p = Polyline::new(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
        ]);
        assert!(p.bends(1e-6).is_empty());
        assert_eq!(p.length(), Meters::new(1.0));
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn empty_polyline_panics() {
        let _ = Polyline::new(vec![]);
    }
}
