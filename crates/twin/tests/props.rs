//! Property-based tests for the digital twin.

use pd_twin::dryrun::{dry_run, Op};
use pd_twin::model::{AttrValue, EntityKind, RelationKind, TwinModel};
use pd_twin::{ModelDiff, Schema};
use pd_geometry::Gbps;
use pd_topology::gen::{jellyfish, JellyfishParams, SplitMix64};
use pd_topology::LinkId;
use proptest::prelude::*;

fn random_model(seed: u64, entities: usize) -> TwinModel {
    let mut rng = SplitMix64::new(seed);
    let mut m = TwinModel::new();
    let mut ids = Vec::new();
    for i in 0..entities {
        let id = m.add_entity(
            format!("e{i}"),
            EntityKind::Rack,
            [
                ("slot", AttrValue::Num(i as f64)),
                ("x", AttrValue::Num(rng.below(100) as f64)),
                ("y", AttrValue::Num(rng.below(100) as f64)),
            ],
        );
        ids.push(id);
    }
    // Random containment relations between racks are schema-invalid but
    // structurally fine; diff tests only need structure.
    for _ in 0..entities {
        let a = &ids[rng.below(ids.len())];
        let b = &ids[rng.below(ids.len())];
        if a != b {
            m.relate(RelationKind::Contains, a, b);
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Diff laws: diff(m, m) is empty; diff counts added entities exactly;
    /// applying "remove what was added" logic symmetric in direction.
    #[test]
    fn diff_laws(seed in 0u64..100, n in 1usize..20, extra in 1usize..8) {
        let base = random_model(seed, n);
        prop_assert!(ModelDiff::between(&base, &base.clone()).is_empty());

        let mut grown = base.clone();
        for i in 0..extra {
            grown.add_entity(
                format!("new{i}"),
                EntityKind::Switch,
                [("radix", AttrValue::Num(32.0))],
            );
        }
        let fwd = ModelDiff::between(&base, &grown);
        prop_assert_eq!(fwd.added_entities.len(), extra);
        prop_assert!(fwd.removed_entities.is_empty());
        let bwd = ModelDiff::between(&grown, &base);
        prop_assert_eq!(bwd.removed_entities.len(), extra);
        prop_assert!(bwd.added_entities.is_empty());
        prop_assert_eq!(fwd.change_count(), bwd.change_count());
    }

    /// Schema validation is sound on models the base schema defines, and
    /// every unknown attribute is reported exactly once.
    #[test]
    fn schema_reports_each_unknown_attr_once(n_attrs in 1usize..6) {
        let mut m = TwinModel::new();
        let mut attrs: Vec<(&'static str, AttrValue)> = vec![
            ("slot", AttrValue::Num(0.0)),
            ("x", AttrValue::Num(0.0)),
            ("y", AttrValue::Num(0.0)),
        ];
        let names: [&'static str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];
        for name in names.iter().take(n_attrs) {
            attrs.push((name, AttrValue::Num(1.0)));
        }
        m.add_entity("rack0", EntityKind::Rack, attrs);
        let v = Schema::base().validate(&m);
        prop_assert_eq!(v.len(), n_attrs);
    }

    /// Dry-run conservation: applied + issues == total ops, and removed
    /// links are a subset of drained ones.
    #[test]
    fn dry_run_conservation(seed in 0u64..50, drain_n in 0usize..20, remove_n in 0usize..28) {
        let net = jellyfish(&JellyfishParams {
            tors: 14,
            network_degree: 4,
            servers_per_tor: 2,
            link_speed: Gbps::new(100.0),
            seed,
        })
        .unwrap();
        let links: Vec<LinkId> = net.links().map(|l| l.id).collect();
        let mut ops: Vec<Op> = Vec::new();
        let drained: Vec<LinkId> = links.iter().take(drain_n.min(links.len())).copied().collect();
        ops.extend(drained.iter().map(|&l| Op::Drain(l)));
        ops.extend(links.iter().take(remove_n.min(links.len())).map(|&l| Op::Remove(l)));
        let rep = dry_run(&net, None, &ops);
        prop_assert_eq!(rep.applied + rep.issues.len(), ops.len());
        for r in &rep.removed {
            prop_assert!(drained.contains(r), "removed undrained link {r}");
        }
    }

    /// Dry runs never mutate the input network (pure rehearsal).
    #[test]
    fn dry_run_is_pure(seed in 0u64..20) {
        let net = jellyfish(&JellyfishParams {
            tors: 12,
            network_degree: 4,
            servers_per_tor: 2,
            link_speed: Gbps::new(100.0),
            seed,
        })
        .unwrap();
        let before = net.link_count();
        let links: Vec<LinkId> = net.links().map(|l| l.id).collect();
        let ops: Vec<Op> = links
            .iter()
            .flat_map(|&l| [Op::Drain(l), Op::Remove(l)])
            .collect();
        let rep = dry_run(&net, None, &ops);
        prop_assert_eq!(net.link_count(), before);
        prop_assert_eq!(rep.removed.len(), links.len());
    }
}
