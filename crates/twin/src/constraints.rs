//! The physical-constraint engine.
//!
//! "Our goal … is to be able to rapidly test whether an abstract design
//! violates physical-world constraints" (§5.3). [`check_design`] runs every
//! check the substrate can express and returns a ranked violation list;
//! each violation carries an order-of-magnitude *late-remediation* cost —
//! what it costs to fix after the hardware is on the floor — which is what
//! experiment E10 compares against catching it in the twin.

use pd_cabling::CablingPlan;
use pd_geometry::Dollars;
use pd_physical::{Hall, Placement};
use pd_topology::{Network, SwitchId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Violation severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Design cannot be deployed as-is.
    Error,
    /// Deployable but operationally risky or wasteful.
    Warning,
}

/// What went wrong.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationCode {
    /// Rack assembly does not fit through the door.
    DoorClearance,
    /// A tray segment is over its installed capacity.
    TrayOverfill,
    /// A tray segment exceeds its per-generation share (future expansions
    /// will not fit — the §2.1 rule).
    TrayGenerationBudget,
    /// A link could not be physically realized at all.
    UnrealizableLink,
    /// A cable's bend radius cannot survive its routed path.
    BendRadius,
    /// Power feed would overload if its redundant partner failed.
    PowerFailureHeadroom,
    /// All of a switch's network cables traverse one tray segment: a
    /// physical single point of failure behind logical path diversity.
    TraySpof,
    /// Conjoined racks split across non-adjacent slots (the pre-cabled
    /// assembly cannot actually be delivered as one unit).
    ConjoinedSplit,
    /// A row holds an even number of racks where the floor plan requires
    /// odd (§3.1's floor-space constraint), stranding a slot.
    EvenRowOccupancy,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Severity.
    pub severity: Severity,
    /// Category.
    pub code: ViolationCode,
    /// Human-readable description with the offending object.
    pub message: String,
    /// Order-of-magnitude cost to remediate *after* deployment (the §5.3
    /// "costs to remediate mistakes increase dramatically" number).
    pub late_remediation: Dollars,
}

/// Runs every constraint check.
pub fn check_design(
    net: &Network,
    hall: &Hall,
    placement: &Placement,
    plan: &CablingPlan,
) -> Vec<Violation> {
    let mut out = Vec::new();
    check_door(hall, placement, &mut out);
    check_conjoined(hall, placement, &mut out);
    check_row_parity(hall, placement, &mut out);
    check_tray(hall, plan, &mut out);
    check_unrealizable(plan, &mut out);
    check_bend_radius(plan, &mut out);
    check_power(placement, &mut out);
    check_tray_spof(net, plan, &mut out);
    out.sort_by(|a, b| a.severity.cmp(&b.severity));
    out
}

fn check_door(hall: &Hall, placement: &Placement, out: &mut Vec<Violation>) {
    let door = &hall.spec.door;
    for rack in &placement.racks {
        let n = if rack.conjoined_with.is_some() { 2 } else { 1 };
        let fits = if n == 1 {
            rack.spec.fits_through(door)
        } else {
            rack.spec.conjoined_fits_through(n, door)
        };
        if !fits {
            out.push(Violation {
                severity: Severity::Error,
                code: ViolationCode::DoorClearance,
                message: format!(
                    "{} ({}-wide assembly) cannot pass the {:.2} m door",
                    rack.id,
                    n,
                    door.width.value()
                ),
                // Disassemble, re-cable on the floor, re-test: dominated by
                // redoing the pre-cabling labor.
                late_remediation: Dollars::new(25_000.0),
            });
        }
    }
}

fn check_conjoined(hall: &Hall, placement: &Placement, out: &mut Vec<Violation>) {
    for rack in &placement.racks {
        let Some(partner_id) = rack.conjoined_with else {
            continue;
        };
        let Some(partner) = placement.racks.get(partner_id.0 as usize) else {
            continue;
        };
        let adjacent = hall
            .slot(rack.slot)
            .zip(hall.slot(partner.slot))
            .map(|(a, b)| a.row == b.row && a.index.abs_diff(b.index) == 1)
            .unwrap_or(false);
        if !adjacent {
            out.push(Violation {
                severity: Severity::Error,
                code: ViolationCode::ConjoinedSplit,
                message: format!(
                    "{} is pre-cabled with {} but they are not adjacent ({} vs {})",
                    rack.id, partner.id, rack.slot, partner.slot
                ),
                // The conjoined assembly must be split and re-cabled loose.
                late_remediation: Dollars::new(18_000.0),
            });
        }
    }
}

fn check_row_parity(hall: &Hall, placement: &Placement, out: &mut Vec<Violation>) {
    if !hall.spec.odd_slots_per_row {
        return;
    }
    let mut per_row: std::collections::BTreeMap<usize, usize> = Default::default();
    for rack in &placement.racks {
        if let Some(slot) = hall.slot(rack.slot) {
            *per_row.entry(slot.row).or_insert(0) += 1;
        }
    }
    for (row, count) in per_row {
        if count % 2 == 0 {
            out.push(Violation {
                severity: Severity::Warning,
                code: ViolationCode::EvenRowOccupancy,
                message: format!(
                    "row {row} holds {count} racks; this floor requires odd counts                      per row, stranding a slot (§3.1)"
                ),
                // One slot's worth of floor value.
                late_remediation: Dollars::new(4_000.0),
            });
        }
    }
}

fn check_tray(hall: &Hall, plan: &CablingPlan, out: &mut Vec<Violation>) {
    let per_gen = hall.spec.tray_capacity_per_generation.value();
    for e in plan.tray.router.edge_ids() {
        let fill = plan.tray.router.fill_fraction(e);
        let used = plan.tray.router.used(e).value();
        if fill > 1.0 {
            out.push(Violation {
                severity: Severity::Error,
                code: ViolationCode::TrayOverfill,
                message: format!(
                    "tray segment {} at {:.0}% of installed capacity",
                    e.0,
                    fill * 100.0
                ),
                // Add a parallel tray run on a live floor.
                late_remediation: Dollars::new(40_000.0),
            });
        } else if used > per_gen {
            out.push(Violation {
                severity: Severity::Warning,
                code: ViolationCode::TrayGenerationBudget,
                message: format!(
                    "tray segment {} uses {:.0} mm² of its {:.0} mm² single-generation share",
                    e.0, used, per_gen
                ),
                // Next generation must re-plan routes; engineering time.
                late_remediation: Dollars::new(8_000.0),
            });
        }
    }
}

fn check_unrealizable(plan: &CablingPlan, out: &mut Vec<Violation>) {
    for (link, err) in &plan.failures {
        out.push(Violation {
            severity: Severity::Error,
            code: ViolationCode::UnrealizableLink,
            message: format!("{link}: {err}"),
            // Redesign + possible switch moves after gear is installed.
            late_remediation: Dollars::new(60_000.0),
        });
    }
}

fn check_bend_radius(plan: &CablingPlan, out: &mut Vec<Violation>) {
    // The routed polyline for each run: rack-top → tray → rack-top. We
    // reconstruct it from the tray path nodes; the in-rack tails are
    // dressed by hand and assumed compliant.
    for (i, run) in plan.runs.iter().enumerate() {
        if run.tray_edges.is_empty() {
            continue;
        }
        // Build node path from edges.
        let mut nodes = Vec::with_capacity(run.tray_edges.len() + 1);
        for (j, &e) in run.tray_edges.iter().enumerate() {
            let (a, b) = plan.tray.router.edge_endpoints(e);
            if j == 0 {
                // Orient using the next edge if any.
                if let Some(&e2) = run.tray_edges.get(1) {
                    let (c, d) = plan.tray.router.edge_endpoints(e2);
                    if a == c || a == d {
                        nodes.push(b);
                        nodes.push(a);
                    } else {
                        nodes.push(a);
                        nodes.push(b);
                    }
                } else {
                    nodes.push(a);
                    nodes.push(b);
                }
            } else {
                let last = *nodes.last().expect("seeded above");
                nodes.push(if a == last { b } else { a });
            }
        }
        let poly = pd_geometry::Polyline::new(
            nodes
                .into_iter()
                .map(|n| plan.tray.router.position(n))
                .collect(),
        );
        let violations = poly.check_bend_radius(run.choice.sku.bend_radius);
        if !violations.is_empty() {
            out.push(Violation {
                severity: Severity::Error,
                code: ViolationCode::BendRadius,
                message: format!(
                    "cable {i} ({}, bend radius {:.0} mm) cannot make {} bend(s) on its route",
                    run.choice.sku.class,
                    run.choice.sku.bend_radius.value(),
                    violations.len()
                ),
                // Re-route/replace a pulled cable.
                late_remediation: Dollars::new(1_500.0),
            });
        }
    }
}

fn check_power(placement: &Placement, out: &mut Vec<Violation>) {
    for f in 0..placement.power.feed_count() {
        let feed = pd_physical::FeedId(f as u32);
        let (worst, cap) = placement.power.headroom_under_failure(feed);
        if worst > cap {
            out.push(Violation {
                severity: Severity::Error,
                code: ViolationCode::PowerFailureHeadroom,
                message: format!(
                    "losing {feed} overloads a surviving feed: {worst} > {cap}"
                ),
                // New busway on a live floor.
                late_remediation: Dollars::new(120_000.0),
            });
        }
    }
}

fn check_tray_spof(net: &Network, plan: &CablingPlan, out: &mut Vec<Violation>) {
    // For each switch with ≥2 network links, check whether EVERY one of its
    // cables traverses some common tray segment.
    let mut runs_per_switch: HashMap<SwitchId, Vec<usize>> = HashMap::new();
    for (i, run) in plan.runs.iter().enumerate() {
        if let Some(link) = net.link(run.link) {
            runs_per_switch.entry(link.a).or_default().push(i);
            runs_per_switch.entry(link.b).or_default().push(i);
        }
    }
    let mut switches: Vec<_> = runs_per_switch.into_iter().collect();
    switches.sort_by_key(|(s, _)| *s);
    for (switch, runs) in switches {
        if runs.len() < 2 {
            continue;
        }
        // Intersect *intermediate* tray segments: the first and last edge
        // of a run are the endpoint rack drops, which trivially shared by a
        // rack's own cables (a rack has one cable entry — that is rack
        // redundancy, not tray routing). The SPOF of interest is a shared
        // mid-route segment that one cut (or small fire, §3.1) severs.
        let interior = |r: usize| -> &[pd_geometry::RouteEdgeId] {
            let edges = &plan.runs[r].tray_edges;
            if edges.len() <= 2 {
                &[]
            } else {
                &edges[1..edges.len() - 1]
            }
        };
        let mut iter = runs.iter();
        let first = interior(*iter.next().expect("len ≥ 2"));
        if first.is_empty() {
            continue;
        }
        let mut common: std::collections::HashSet<_> = first.iter().copied().collect();
        let mut all_trayed = true;
        for &r in iter {
            let mid = interior(r);
            if mid.is_empty() {
                all_trayed = false;
                break;
            }
            let set: std::collections::HashSet<_> = mid.iter().copied().collect();
            common.retain(|e| set.contains(e));
            if common.is_empty() {
                break;
            }
        }
        if all_trayed && !common.is_empty() {
            out.push(Violation {
                severity: Severity::Warning,
                code: ViolationCode::TraySpof,
                message: format!(
                    "{switch}: all {} network cables share tray segment(s) {:?} — one cut isolates it",
                    runs.len(),
                    common.iter().map(|e| e.0).take(3).collect::<Vec<_>>()
                ),
                // Re-route half the uplinks via a diverse tray path.
                late_remediation: Dollars::new(5_000.0),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_cabling::CablingPolicy;
    use pd_geometry::{Gbps, SquareMillimeters, Watts};
    use pd_physical::placement::EquipmentProfile;
    use pd_physical::{HallSpec, PlacementStrategy};
    use pd_topology::gen::fat_tree;

    fn build(spec: HallSpec) -> (Network, Hall, Placement, CablingPlan) {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let hall = Hall::new(spec);
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        (net, hall, placement, plan)
    }

    #[test]
    fn clean_design_has_no_errors() {
        let (net, hall, placement, plan) = build(HallSpec::default());
        let v = check_design(&net, &hall, &placement, &plan);
        assert!(
            v.iter().all(|x| x.severity != Severity::Error),
            "unexpected errors: {:?}",
            v.iter().filter(|x| x.severity == Severity::Error).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tiny_trays_trigger_overfill_or_unrealizable() {
        let spec = HallSpec {
            tray_capacity_per_generation: SquareMillimeters::new(30.0),
            tray_generations: 1,
            ..HallSpec::default()
        };
        let (net, hall, placement, plan) = build(spec);
        let v = check_design(&net, &hall, &placement, &plan);
        assert!(
            v.iter().any(|x| matches!(
                x.code,
                ViolationCode::TrayOverfill | ViolationCode::UnrealizableLink
            )),
            "{v:?}"
        );
    }

    #[test]
    fn generation_budget_warns_before_overfill() {
        // Capacity generous, but single-generation share small.
        let spec = HallSpec {
            tray_capacity_per_generation: SquareMillimeters::new(60.0),
            tray_generations: 12,
            ..HallSpec::default()
        };
        let (net, hall, placement, plan) = build(spec);
        let v = check_design(&net, &hall, &placement, &plan);
        assert!(v
            .iter()
            .any(|x| x.code == ViolationCode::TrayGenerationBudget));
        assert!(!v.iter().any(|x| x.code == ViolationCode::TrayOverfill));
    }

    #[test]
    fn weak_feeds_fail_headroom_check() {
        let spec = HallSpec {
            feed_capacity: Watts::new(3_000.0),
            ..HallSpec::default()
        };
        let (net, hall, placement, plan) = build(spec);
        let v = check_design(&net, &hall, &placement, &plan);
        assert!(v
            .iter()
            .any(|x| x.code == ViolationCode::PowerFailureHeadroom));
    }

    #[test]
    fn conjoined_split_detected() {
        let (net, hall, mut placement, plan) = build(HallSpec::default());
        // Mark two racks as a conjoined pair and teleport one far away.
        let far_slot = hall.slots().last().unwrap().id;
        let a = placement.racks[0].id;
        let b = placement.racks[1].id;
        placement.racks[0].conjoined_with = Some(b);
        placement.racks[1].conjoined_with = Some(a);
        placement.racks[1].slot = far_slot;
        let v = check_design(&net, &hall, &placement, &plan);
        assert!(v.iter().any(|x| x.code == ViolationCode::ConjoinedSplit), "{v:?}");
    }

    #[test]
    fn even_row_occupancy_warns_when_required_odd() {
        let spec = HallSpec {
            odd_slots_per_row: true,
            ..HallSpec::default()
        };
        let (net, hall, placement, plan) = build(spec);
        let v = check_design(&net, &hall, &placement, &plan);
        // Row-major fill of full 20-slot rows guarantees at least one even
        // row count.
        assert!(
            v.iter().any(|x| x.code == ViolationCode::EvenRowOccupancy),
            "{v:?}"
        );
        // And it is only a warning.
        assert!(v
            .iter()
            .filter(|x| x.code == ViolationCode::EvenRowOccupancy)
            .all(|x| x.severity == Severity::Warning));
    }

    #[test]
    fn violations_sorted_errors_first() {
        let spec = HallSpec {
            tray_capacity_per_generation: SquareMillimeters::new(30.0),
            tray_generations: 1,
            feed_capacity: Watts::new(3_000.0),
            ..HallSpec::default()
        };
        let (net, hall, placement, plan) = build(spec);
        let v = check_design(&net, &hall, &placement, &plan);
        let first_warning = v.iter().position(|x| x.severity == Severity::Warning);
        let last_error = v.iter().rposition(|x| x.severity == Severity::Error);
        if let (Some(w), Some(e)) = (first_warning, last_error) {
            assert!(e < w, "errors must sort before warnings");
        }
    }
}
