//! Schema validation: the §5.2 out-of-envelope detector.
//!
//! The base schema encodes what the (simulated) automation stack can
//! represent. Validating a model against it yields
//! [`SchemaViolation`]s for unknown kinds, unknown or missing attributes,
//! wrong attribute types, and relations between kinds the schema does not
//! allow — the early warning the paper describes: "we had no existing way
//! to model them. We made these discoveries much earlier than if we had
//! had to study our (imperative) software."

use crate::model::{AttrValue, EntityKind, RelationKind, TwinModel};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Expected attribute type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrType {
    /// String attribute.
    Str,
    /// Numeric attribute.
    Num,
    /// Boolean attribute.
    Bool,
}

impl AttrType {
    fn matches(&self, v: &AttrValue) -> bool {
        matches!(
            (self, v),
            (AttrType::Str, AttrValue::Str(_))
                | (AttrType::Num, AttrValue::Num(_))
                | (AttrType::Bool, AttrValue::Bool(_))
        )
    }
}

/// Per-kind attribute spec.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KindSpec {
    /// Required attributes and their types.
    pub required: BTreeMap<String, AttrType>,
    /// Optional attributes and their types.
    pub optional: BTreeMap<String, AttrType>,
}

/// The schema: known kinds and allowed relations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Known entity kinds.
    pub kinds: BTreeMap<EntityKind, KindSpec>,
    /// Allowed (relation, from-kind, to-kind) triples.
    pub relations: BTreeSet<(RelationKind, EntityKind, EntityKind)>,
}

/// A representation failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchemaViolation {
    /// The model uses a kind the schema does not know.
    UnknownKind {
        /// Offending entity.
        entity: String,
        /// Its kind.
        kind: String,
    },
    /// Required attribute missing.
    MissingAttr {
        /// Offending entity.
        entity: String,
        /// Missing attribute name.
        attr: String,
    },
    /// Attribute not in the schema for this kind.
    UnknownAttr {
        /// Offending entity.
        entity: String,
        /// Unknown attribute name.
        attr: String,
    },
    /// Attribute has the wrong type.
    WrongType {
        /// Offending entity.
        entity: String,
        /// Attribute name.
        attr: String,
    },
    /// Relation between kinds the schema does not allow.
    DisallowedRelation {
        /// Relation kind.
        relation: String,
        /// From kind.
        from: String,
        /// To kind.
        to: String,
    },
}

impl Schema {
    /// The base schema the toolkit's own lowering produces.
    pub fn base() -> Self {
        use AttrType::*;
        use EntityKind as K;
        use RelationKind as R;
        let mut kinds: BTreeMap<EntityKind, KindSpec> = BTreeMap::new();
        let mut spec = |k: K, req: &[(&str, AttrType)], opt: &[(&str, AttrType)]| {
            kinds.insert(
                k,
                KindSpec {
                    required: req.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
                    optional: opt.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
                },
            );
        };
        spec(K::Hall, &[("rows", Num), ("slots_per_row", Num)], &[]);
        spec(K::Row, &[("index", Num)], &[]);
        spec(
            K::Rack,
            &[("slot", Num), ("x", Num), ("y", Num)],
            &[("conjoined_with", Str)],
        );
        spec(
            K::Switch,
            &[("radix", Num), ("speed_g", Num), ("layer", Num)],
            &[("block", Num), ("role", Str)],
        );
        spec(
            K::Cable,
            &[("media", Str), ("speed_g", Num), ("length_m", Num)],
            &[("slack_m", Num), ("od_mm", Num)],
        );
        spec(K::Bundle, &[("members", Num), ("length_m", Num)], &[]);
        spec(
            K::TraySegment,
            &[("capacity_mm2", Num), ("used_mm2", Num)],
            &[],
        );
        spec(
            K::IndirectionSite,
            &[("kind", Str), ("ports", Num), ("ports_used", Num)],
            &[],
        );
        spec(K::PowerFeed, &[("capacity_w", Num)], &[]);

        let mut relations = BTreeSet::new();
        for (r, f, t) in [
            (R::Contains, K::Hall, K::Row),
            (R::Contains, K::Row, K::Rack),
            (R::Contains, K::Rack, K::Switch),
            (R::Contains, K::Rack, K::IndirectionSite),
            (R::Contains, K::Bundle, K::Cable),
            (R::ConnectsTo, K::Cable, K::Switch),
            (R::ConnectsTo, K::Cable, K::IndirectionSite),
            (R::RoutesThrough, K::Cable, K::TraySegment),
            (R::FedBy, K::Rack, K::PowerFeed),
        ] {
            relations.insert((r, f, t));
        }
        Self { kinds, relations }
    }

    /// Validates a model, returning all representation failures.
    pub fn validate(&self, model: &TwinModel) -> Vec<SchemaViolation> {
        let mut out = Vec::new();
        for e in model.entities.values() {
            let Some(spec) = self.kinds.get(&e.kind) else {
                out.push(SchemaViolation::UnknownKind {
                    entity: e.id.0.clone(),
                    kind: e.kind.to_string(),
                });
                continue;
            };
            for (name, ty) in &spec.required {
                match e.attrs.get(name) {
                    None => out.push(SchemaViolation::MissingAttr {
                        entity: e.id.0.clone(),
                        attr: name.clone(),
                    }),
                    Some(v) if !ty.matches(v) => out.push(SchemaViolation::WrongType {
                        entity: e.id.0.clone(),
                        attr: name.clone(),
                    }),
                    _ => {}
                }
            }
            for (name, v) in &e.attrs {
                match (spec.required.get(name), spec.optional.get(name)) {
                    (None, None) => out.push(SchemaViolation::UnknownAttr {
                        entity: e.id.0.clone(),
                        attr: name.clone(),
                    }),
                    (_, Some(ty)) if !ty.matches(v) => {
                        out.push(SchemaViolation::WrongType {
                            entity: e.id.0.clone(),
                            attr: name.clone(),
                        })
                    }
                    _ => {}
                }
            }
        }
        for r in &model.relations {
            let (Some(f), Some(t)) = (model.entity(&r.from), model.entity(&r.to)) else {
                continue; // dangling handled by the model itself
            };
            let triple = (r.kind.clone(), f.kind.clone(), t.kind.clone());
            if !self.relations.contains(&triple) {
                out.push(SchemaViolation::DisallowedRelation {
                    relation: format!("{:?}", r.kind),
                    from: f.kind.to_string(),
                    to: t.kind.to_string(),
                });
            }
        }
        out
    }

    /// Extends the schema with a new kind (the "schema change" a novel
    /// design forces — explicit and reviewable, per §5.2).
    pub fn add_kind(&mut self, kind: EntityKind, spec: KindSpec) {
        self.kinds.insert(kind, spec);
    }

    /// Allows a new relation triple.
    pub fn allow_relation(&mut self, kind: RelationKind, from: EntityKind, to: EntityKind) {
        self.relations.insert((kind, from, to));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AttrValue, TwinModel};

    fn n(v: f64) -> AttrValue {
        AttrValue::Num(v)
    }

    #[test]
    fn well_formed_model_validates() {
        let mut m = TwinModel::new();
        let rack = m.add_entity(
            "rack0",
            EntityKind::Rack,
            [("slot", n(0.0)), ("x", n(0.3)), ("y", n(1.2))],
        );
        let sw = m.add_entity(
            "sw0",
            EntityKind::Switch,
            [("radix", n(32.0)), ("speed_g", n(100.0)), ("layer", n(0.0))],
        );
        m.relate(RelationKind::Contains, &rack, &sw);
        assert!(Schema::base().validate(&m).is_empty());
    }

    #[test]
    fn novel_kind_is_caught() {
        let mut m = TwinModel::new();
        m.add_entity(
            "fso0",
            EntityKind::Custom("FreeSpaceOptic".into()),
            [("power_mw", n(5.0))],
        );
        let v = Schema::base().validate(&m);
        assert!(matches!(v.as_slice(), [SchemaViolation::UnknownKind { .. }]));
    }

    #[test]
    fn missing_and_unknown_attrs_caught() {
        let mut m = TwinModel::new();
        m.add_entity("sw0", EntityKind::Switch, [("radix", n(32.0)), ("color", n(1.0))]);
        let v = Schema::base().validate(&m);
        assert_eq!(v.len(), 3); // missing speed_g, missing layer, unknown color
        assert!(v.iter().any(|x| matches!(x, SchemaViolation::MissingAttr { attr, .. } if attr == "speed_g")));
        assert!(v.iter().any(|x| matches!(x, SchemaViolation::UnknownAttr { attr, .. } if attr == "color")));
    }

    #[test]
    fn wrong_type_caught() {
        let mut m = TwinModel::new();
        m.add_entity(
            "sw0",
            EntityKind::Switch,
            [
                ("radix", AttrValue::Str("thirty-two".into())),
                ("speed_g", n(100.0)),
                ("layer", n(0.0)),
            ],
        );
        let v = Schema::base().validate(&m);
        assert!(matches!(v.as_slice(), [SchemaViolation::WrongType { attr, .. }] if attr == "radix"));
    }

    #[test]
    fn disallowed_relation_caught() {
        let mut m = TwinModel::new();
        let a = m.add_entity(
            "sw0",
            EntityKind::Switch,
            [("radix", n(32.0)), ("speed_g", n(100.0)), ("layer", n(0.0))],
        );
        let b = m.add_entity(
            "sw1",
            EntityKind::Switch,
            [("radix", n(32.0)), ("speed_g", n(100.0)), ("layer", n(0.0))],
        );
        // Switch "contains" switch: not a thing.
        m.relate(RelationKind::Contains, &a, &b);
        let v = Schema::base().validate(&m);
        assert!(matches!(
            v.as_slice(),
            [SchemaViolation::DisallowedRelation { .. }]
        ));
    }

    #[test]
    fn schema_extension_fixes_novel_kind() {
        let mut m = TwinModel::new();
        m.add_entity(
            "fso0",
            EntityKind::Custom("FreeSpaceOptic".into()),
            [("power_mw", n(5.0))],
        );
        let mut schema = Schema::base();
        let mut spec = KindSpec::default();
        spec.required.insert("power_mw".into(), AttrType::Num);
        schema.add_kind(EntityKind::Custom("FreeSpaceOptic".into()), spec);
        assert!(schema.validate(&m).is_empty());
    }
}
