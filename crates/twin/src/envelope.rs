//! Capability envelopes (§5.2, §5.4).
//!
//! "We initially hoped to be able to define a multi-dimensional 'capability
//! envelope,' representing the variability that our automation software
//! could handle without changes." This module implements that idea for the
//! dimensions the toolkit *can* quantify — and, faithfully to the paper,
//! the [`DesignFacts`] extractor also reports the dimensions it cannot
//! (novel media, unknown site kinds), which fall back to the schema
//! mechanism.

use pd_cabling::{CablingPlan, MediaClass};
use pd_topology::Network;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A numeric range with **both endpoints inclusive**: `[min, max]`.
///
/// The closed-interval semantics are load-bearing for envelope-boundary
/// detection (`pd-search`'s envelope mapper): a design sitting *exactly at*
/// a capability limit — a radix-64 switch against a `radix ≤ 64` envelope,
/// a 150 m run against a 150 m reach — is **inside** the envelope; the
/// first value strictly beyond an endpoint is outside. Boundary walks may
/// therefore report the endpoint itself as feasible and only the next
/// swept value as the break.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Range {
    /// Lower bound (inclusive).
    pub min: f64,
    /// Upper bound (inclusive).
    pub max: f64,
}

impl Range {
    /// Builds a range.
    pub fn new(min: f64, max: f64) -> Self {
        Self { min, max }
    }

    /// True iff `min ≤ v ≤ max` — both endpoints contained.
    ///
    /// `NaN` is never contained (every comparison with it is false), and an
    /// inverted range (`min > max`) contains nothing; neither is an error,
    /// so envelope checks degrade to "outside" rather than panicking on
    /// degenerate inputs.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.min && v <= self.max
    }

    /// True iff the range contains nothing (`min > max`, or a `NaN` bound).
    pub fn is_empty(&self) -> bool {
        !(self.min <= self.max)
    }
}

/// What the automation (simulated) can handle without changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapabilityEnvelope {
    /// Supported switch radix range.
    pub radix: Range,
    /// Supported link speeds (Gbps).
    pub speeds: BTreeSet<u64>,
    /// Supported media classes.
    pub media: BTreeSet<MediaClass>,
    /// Supported ordered cable length range (m).
    pub cable_length_m: Range,
    /// Maximum distinct radixes in one network (diversity support, §5.4).
    pub max_distinct_radixes: usize,
    /// Maximum distinct speeds in one network.
    pub max_distinct_speeds: usize,
    /// Maximum cables landing on one rack.
    pub max_cables_per_rack: usize,
}

impl Default for CapabilityEnvelope {
    fn default() -> Self {
        Self {
            radix: Range::new(4.0, 64.0),
            speeds: [10, 25, 100, 200, 400].into_iter().collect(),
            media: [
                MediaClass::DacCopper,
                MediaClass::ActiveElectrical,
                MediaClass::MultimodeFiber,
                MediaClass::SinglemodeFiber,
            ]
            .into_iter()
            .collect(),
            cable_length_m: Range::new(1.0, 150.0),
            max_distinct_radixes: 3,
            max_distinct_speeds: 2,
            max_cables_per_rack: 256,
        }
    }
}

/// Dimension values extracted from a concrete design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignFacts {
    /// Radixes present.
    pub radixes: BTreeSet<u16>,
    /// Speeds present (Gbps, rounded).
    pub speeds: BTreeSet<u64>,
    /// Media classes used.
    pub media: BTreeSet<MediaClass>,
    /// Shortest and longest ordered cable.
    pub cable_length_m: Option<Range>,
    /// Max cables landing on any single rack slot.
    pub max_cables_per_rack: usize,
}

impl DesignFacts {
    /// Extracts facts from a network + cabling plan.
    pub fn extract(net: &Network, plan: &CablingPlan) -> Self {
        let radixes = net.switches().map(|s| s.radix).collect();
        let speeds = net
            .links()
            .map(|l| l.speed.value().round() as u64)
            .collect();
        let media = plan.runs.iter().map(|r| r.choice.sku.class).collect();
        let cable_length_m = plan
            .runs
            .iter()
            .map(|r| r.choice.ordered_length.value())
            .fold(None, |acc: Option<Range>, v| {
                Some(match acc {
                    None => Range::new(v, v),
                    Some(r) => Range::new(r.min.min(v), r.max.max(v)),
                })
            });
        let mut per_slot: std::collections::HashMap<pd_physical::SlotId, usize> =
            Default::default();
        for r in &plan.runs {
            *per_slot.entry(r.from_slot).or_default() += 1;
            *per_slot.entry(r.to_slot).or_default() += 1;
        }
        Self {
            radixes,
            speeds,
            media,
            cable_length_m,
            max_cables_per_rack: per_slot.values().copied().max().unwrap_or(0),
        }
    }
}

/// One out-of-envelope finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvelopeCheck {
    /// Dimension name.
    pub dimension: &'static str,
    /// Why the design falls outside.
    pub detail: String,
}

impl CapabilityEnvelope {
    /// Checks a design's facts; empty result = inside the envelope.
    pub fn check(&self, facts: &DesignFacts) -> Vec<EnvelopeCheck> {
        let mut out = Vec::new();
        for &r in &facts.radixes {
            if !self.radix.contains(f64::from(r)) {
                out.push(EnvelopeCheck {
                    dimension: "radix",
                    detail: format!("radix {r} outside [{}, {}]", self.radix.min, self.radix.max),
                });
            }
        }
        for &s in &facts.speeds {
            if !self.speeds.contains(&s) {
                out.push(EnvelopeCheck {
                    dimension: "speed",
                    detail: format!("{s} Gbps not supported"),
                });
            }
        }
        for m in &facts.media {
            if !self.media.contains(m) {
                out.push(EnvelopeCheck {
                    dimension: "media",
                    detail: format!("{m} not supported"),
                });
            }
        }
        if let Some(r) = facts.cable_length_m {
            if r.min < self.cable_length_m.min || r.max > self.cable_length_m.max {
                out.push(EnvelopeCheck {
                    dimension: "cable_length",
                    detail: format!(
                        "lengths [{:.1}, {:.1}] m outside [{:.1}, {:.1}] m",
                        r.min, r.max, self.cable_length_m.min, self.cable_length_m.max
                    ),
                });
            }
        }
        if facts.radixes.len() > self.max_distinct_radixes {
            out.push(EnvelopeCheck {
                dimension: "radix_diversity",
                detail: format!(
                    "{} distinct radixes > {} supported",
                    facts.radixes.len(),
                    self.max_distinct_radixes
                ),
            });
        }
        if facts.speeds.len() > self.max_distinct_speeds {
            out.push(EnvelopeCheck {
                dimension: "speed_diversity",
                detail: format!(
                    "{} distinct speeds > {} supported",
                    facts.speeds.len(),
                    self.max_distinct_speeds
                ),
            });
        }
        if facts.max_cables_per_rack > self.max_cables_per_rack {
            out.push(EnvelopeCheck {
                dimension: "cables_per_rack",
                detail: format!(
                    "{} cables on one rack > {} supported",
                    facts.max_cables_per_rack, self.max_cables_per_rack
                ),
            });
        }
        out
    }

    /// Dimensions where `other` exceeds `self` — the schema/automation work
    /// a new design generation would require.
    pub fn diff(&self, other: &CapabilityEnvelope) -> Vec<&'static str> {
        let mut out = Vec::new();
        if other.radix.min < self.radix.min || other.radix.max > self.radix.max {
            out.push("radix");
        }
        if !other.speeds.is_subset(&self.speeds) {
            out.push("speeds");
        }
        if !other.media.is_subset(&self.media) {
            out.push("media");
        }
        if other.cable_length_m.min < self.cable_length_m.min
            || other.cable_length_m.max > self.cable_length_m.max
        {
            out.push("cable_length");
        }
        if other.max_distinct_radixes > self.max_distinct_radixes {
            out.push("radix_diversity");
        }
        if other.max_distinct_speeds > self.max_distinct_speeds {
            out.push("speed_diversity");
        }
        if other.max_cables_per_rack > self.max_cables_per_rack {
            out.push("cables_per_rack");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_cabling::CablingPolicy;
    use pd_geometry::Gbps;
    use pd_physical::placement::EquipmentProfile;
    use pd_physical::{Hall, HallSpec, Placement, PlacementStrategy};
    use pd_topology::gen::fat_tree;

    fn facts() -> DesignFacts {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        DesignFacts::extract(&net, &plan)
    }

    #[test]
    fn range_endpoints_are_inclusive() {
        let r = Range::new(4.0, 64.0);
        // Exactly at a limit is *inside* — the envelope-mapper contract.
        assert!(r.contains(4.0));
        assert!(r.contains(64.0));
        assert!(!r.contains(4.0 - f64::EPSILON * 8.0));
        assert!(!r.contains(64.0 + f64::EPSILON * 128.0));
        assert!(!r.is_empty());
        // A design at the exact radix limit produces no envelope check.
        let mut f = facts();
        f.radixes.insert(64);
        let checks = CapabilityEnvelope::default().check(&f);
        assert!(
            !checks.iter().any(|c| c.dimension == "radix"),
            "radix 64 is on the inclusive boundary: {checks:?}"
        );
    }

    #[test]
    fn range_degenerate_inputs_are_outside_not_panics() {
        let r = Range::new(1.0, 10.0);
        assert!(!r.contains(f64::NAN));
        let inverted = Range::new(10.0, 1.0);
        assert!(inverted.is_empty());
        assert!(!inverted.contains(5.0));
        assert!(Range::new(f64::NAN, 1.0).is_empty());
        // A single-point range contains exactly its value.
        let point = Range::new(3.0, 3.0);
        assert!(point.contains(3.0) && !point.contains(3.1) && !point.is_empty());
    }

    #[test]
    fn standard_fat_tree_is_inside_default_envelope() {
        let checks = CapabilityEnvelope::default().check(&facts());
        assert!(checks.is_empty(), "{checks:?}");
    }

    #[test]
    fn exotic_radix_detected() {
        let mut f = facts();
        f.radixes.insert(512);
        let checks = CapabilityEnvelope::default().check(&f);
        assert!(checks.iter().any(|c| c.dimension == "radix"));
    }

    #[test]
    fn diversity_limits_detected() {
        let mut f = facts();
        f.radixes.extend([16, 24, 48, 64]);
        f.speeds.extend([200, 400]);
        let checks = CapabilityEnvelope::default().check(&f);
        assert!(checks.iter().any(|c| c.dimension == "radix_diversity"));
        assert!(checks.iter().any(|c| c.dimension == "speed_diversity"));
    }

    #[test]
    fn envelope_diff_lists_expansion_dimensions() {
        let base = CapabilityEnvelope::default();
        let next_gen = CapabilityEnvelope {
            speeds: [10, 25, 100, 200, 400, 800].into_iter().collect(),
            max_cables_per_rack: 512,
            ..base.clone()
        };
        let d = base.diff(&next_gen);
        assert!(d.contains(&"speeds"));
        assert!(d.contains(&"cables_per_rack"));
        assert!(!d.contains(&"radix"));
        assert!(base.diff(&base).is_empty());
    }
}
