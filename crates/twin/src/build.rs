//! Lowering a physicalized design into a twin model.
//!
//! `lower()` produces a [`TwinModel`] that validates against
//! [`crate::schema::Schema::base`] by construction — the round-trip tests
//! pin that invariant, so a schema violation after lowering always means
//! the *design* used something novel.

use crate::model::{AttrValue, EntityId, EntityKind, RelationKind, TwinModel};
use pd_cabling::CablingPlan;
use pd_physical::{Hall, Placement};
use pd_topology::Network;

fn num(v: f64) -> AttrValue {
    AttrValue::Num(v)
}

fn s(v: impl Into<String>) -> AttrValue {
    AttrValue::Str(v.into())
}

/// Lowers the quadruple into a declarative model.
pub fn lower(
    net: &Network,
    hall: &Hall,
    placement: &Placement,
    plan: &CablingPlan,
) -> TwinModel {
    let mut m = TwinModel::new();

    let hall_id = m.add_entity(
        "hall",
        EntityKind::Hall,
        [
            ("rows", num(hall.spec.rows as f64)),
            ("slots_per_row", num(hall.spec.slots_per_row as f64)),
        ],
    );
    let mut row_ids = Vec::new();
    for r in 0..hall.spec.rows {
        let row = m.add_entity(format!("row{r}"), EntityKind::Row, [("index", num(r as f64))]);
        m.relate(RelationKind::Contains, &hall_id, &row);
        row_ids.push(row);
    }

    // Power feeds.
    let mut feed_ids = Vec::new();
    for f in 0..placement.power.feed_count() {
        let feed = m.add_entity(
            format!("feed{f}"),
            EntityKind::PowerFeed,
            [("capacity_w", num(placement.power.feed_capacity.value()))],
        );
        feed_ids.push(feed);
    }

    // Racks.
    for rack in &placement.racks {
        let slot = hall.slot(rack.slot).expect("placed rack has a slot");
        let rid = m.add_entity(
            format!("{}", rack.id),
            EntityKind::Rack,
            [
                ("slot", num(rack.slot.0 as f64)),
                ("x", num(slot.center.x.value())),
                ("y", num(slot.center.y.value())),
            ],
        );
        m.relate(RelationKind::Contains, &row_ids[slot.row], &rid);
        if let Some((a, b)) = placement.power.feeds_of(rack.slot) {
            m.relate(RelationKind::FedBy, &rid, &feed_ids[a.0 as usize % feed_ids.len()]);
            m.relate(RelationKind::FedBy, &rid, &feed_ids[b.0 as usize % feed_ids.len()]);
        }
    }

    // Switches.
    for sw in net.switches() {
        let sid = m.add_entity(
            format!("{}", sw.id),
            EntityKind::Switch,
            [
                ("radix", num(f64::from(sw.radix))),
                ("speed_g", num(sw.port_speed.value())),
                ("layer", num(f64::from(sw.layer))),
                ("role", s(sw.role.short())),
            ],
        );
        if let Some(rack) = placement.rack_of(sw.id) {
            let rid = EntityId::new(format!("{}", rack.id));
            m.relate(RelationKind::Contains, &rid, &sid);
        }
    }

    // Indirection sites (hosted in their own implicit racks).
    for (i, site) in plan.sites.iter().enumerate() {
        let slot = hall.slot(site.slot).expect("site slot exists");
        let rack_id = m.add_entity(
            format!("site-rack{i}"),
            EntityKind::Rack,
            [
                ("slot", num(site.slot.0 as f64)),
                ("x", num(slot.center.x.value())),
                ("y", num(slot.center.y.value())),
            ],
        );
        m.relate(RelationKind::Contains, &row_ids[slot.row], &rack_id);
        let site_id = m.add_entity(
            format!("site{i}"),
            EntityKind::IndirectionSite,
            [
                (
                    "kind",
                    s(match site.kind {
                        pd_cabling::IndirectionKind::PatchPanel => "panel",
                        pd_cabling::IndirectionKind::Ocs => "ocs",
                    }),
                ),
                ("ports", num(f64::from(site.port_capacity))),
                ("ports_used", num(f64::from(site.ports_used))),
            ],
        );
        m.relate(RelationKind::Contains, &rack_id, &site_id);
    }

    // Tray segments.
    for e in plan.tray.router.edge_ids() {
        m.add_entity(
            format!("tray{}", e.0),
            EntityKind::TraySegment,
            [
                ("capacity_mm2", num(plan.tray.router.capacity(e).value())),
                ("used_mm2", num(plan.tray.router.used(e).value())),
            ],
        );
    }

    // Cables.
    for (i, run) in plan.runs.iter().enumerate() {
        let cid = m.add_entity(
            format!("cable{i}"),
            EntityKind::Cable,
            [
                ("media", s(run.choice.sku.class.short())),
                ("speed_g", num(run.choice.sku.speed.value())),
                ("length_m", num(run.choice.ordered_length.value())),
                ("slack_m", num(run.choice.slack.value())),
                ("od_mm", num(run.choice.sku.od.value())),
            ],
        );
        if let Some(link) = net.link(run.link) {
            for end in [link.a, link.b] {
                let sid = EntityId::new(format!("{end}"));
                m.relate(RelationKind::ConnectsTo, &cid, &sid);
            }
        }
        if let Some(site) = run.via_site {
            let sid = EntityId::new(format!("site{site}"));
            m.relate(RelationKind::ConnectsTo, &cid, &sid);
        }
        for e in &run.tray_edges {
            let tid = EntityId::new(format!("tray{}", e.0));
            m.relate(RelationKind::RoutesThrough, &cid, &tid);
        }
    }

    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use pd_cabling::CablingPolicy;
    use pd_physical::placement::EquipmentProfile;
    use pd_physical::{HallSpec, PlacementStrategy};
    use pd_topology::gen::{folded_clos, ClosParams};

    fn lowered(via_panels: bool) -> TwinModel {
        let p = ClosParams {
            spine_via_panels: via_panels,
            ..ClosParams::default()
        };
        let net = folded_clos(&p).unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        lower(&net, &hall, &placement, &plan)
    }

    #[test]
    fn lowered_model_validates_against_base_schema() {
        let m = lowered(false);
        let violations = Schema::base().validate(&m);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(m.dangling_relations().is_empty());
    }

    #[test]
    fn lowered_model_with_sites_validates() {
        let m = lowered(true);
        assert!(Schema::base().validate(&m).is_empty());
        assert_eq!(m.of_kind(&EntityKind::IndirectionSite).count(), 1);
    }

    #[test]
    fn entity_counts_match_inputs() {
        let m = lowered(false);
        // 40 switches in the default folded Clos.
        assert_eq!(m.of_kind(&EntityKind::Switch).count(), 40);
        // Every cable run became a cable entity: 192 links.
        assert_eq!(m.of_kind(&EntityKind::Cable).count(), 192);
        assert!(m.of_kind(&EntityKind::Rack).count() >= 16);
    }

    #[test]
    fn cables_connect_to_their_switches() {
        let m = lowered(false);
        for cable in m.of_kind(&EntityKind::Cable) {
            let conns = m
                .relations_from(&cable.id, Some(&RelationKind::ConnectsTo))
                .count();
            assert_eq!(conns, 2, "cable {} has {conns} ends", cable.id);
        }
    }
}
