//! # pd-twin — the digital twin: declarative models, constraints, dry runs
//!
//! §5.3 of the paper: "Our goal … is to be able to rapidly test whether an
//! abstract design violates physical-world constraints", because "the costs
//! to remediate mistakes increase dramatically if we only discover them
//! late." This crate is that capability:
//!
//! * [`model`] — a MALT-style \[36\] declarative entity-relation model of a
//!   physicalized network (racks, switches, cables, trays, feeds, sites).
//! * [`schema`] — typed kind/attribute/relation definitions; §5.2's
//!   mechanism that out-of-envelope designs fail *representation* ("we can
//!   at least detect out-of-envelope designs because we cannot represent
//!   them without schema changes").
//! * [`build`] — lowering a (network, hall, placement, cabling) quadruple
//!   into a twin model.
//! * [`constraints`] — the physical-constraint engine: doors, tray fill,
//!   bend radius, media feasibility, rack budgets, power-failure headroom,
//!   tray-level physical SPOFs behind logically-diverse paths.
//! * [`envelope`] — §5.2/§5.4 capability envelopes: the multi-dimensional
//!   region of designs the (simulated) automation can handle.
//! * [`dryrun`] — executing decom and conversion plans against the twin
//!   before reality: every §5.3 postmortem that "could have been averted
//!   if we could do multi-layer digital-twin dry runs".
//! * [`diff`] — model diffs for change management \[2\].
//! * [`audit`] — as-built-versus-model error injection: §5.3's "existing
//!   data is often incomplete or wrong" (e.g., a rack recorded in the
//!   wrong position), and what that does to pre-cut cable lengths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod build;
pub mod constraints;
pub mod diff;
pub mod dryrun;
pub mod envelope;
pub mod model;
pub mod schema;

pub use build::lower;
pub use constraints::{check_design, Severity, Violation, ViolationCode};
pub use diff::ModelDiff;
pub use envelope::{CapabilityEnvelope, DesignFacts, EnvelopeCheck};
pub use model::{AttrValue, Entity, EntityId, EntityKind, Relation, RelationKind, TwinModel};
pub use schema::{Schema, SchemaViolation};
