//! As-built auditing: when the model and the world disagree.
//!
//! §5.3: "existing data is often incomplete or wrong … recording the wrong
//! position for a rack (which means that another rack might not fit where
//! it is intended); that will require better techniques for measuring the
//! physical world." This module simulates exactly that failure mode:
//! inject seeded position errors into the "as-built" world, audit it
//! against the twin, and compute the concrete downstream damage — pre-cut
//! cables that are now too short for the real distance.

use pd_cabling::CablingPlan;
use pd_geometry::Meters;
use pd_physical::{Hall, SlotId};
use pd_topology::gen::SplitMix64;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Injected/observed position error for one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PositionError {
    /// The slot whose recorded position is wrong.
    pub slot: SlotId,
    /// Manhattan magnitude of the error.
    pub error: Meters,
}

/// Generates seeded as-built position errors: each slot is independently
/// misrecorded with probability `rate`, by a Manhattan offset uniform in
/// `(0, max_error]`.
pub fn inject_position_errors(
    hall: &Hall,
    rate: f64,
    max_error: Meters,
    seed: u64,
) -> Vec<PositionError> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::new();
    for slot in hall.slots() {
        let u = rng.next_u64() as f64 / u64::MAX as f64;
        if u < rate {
            let mag = (rng.next_u64() as f64 / u64::MAX as f64) * max_error.value();
            out.push(PositionError {
                slot: slot.id,
                error: Meters::new(mag.max(1e-6)),
            });
        }
    }
    out
}

/// An audit finding: a slot whose as-built position differs from the model
/// by more than the tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuditFinding {
    /// The slot.
    pub slot: SlotId,
    /// The discrepancy.
    pub error: Meters,
}

/// Audits as-built errors against a tolerance: errors below tolerance are
/// invisible to measurement (and to the audit), which is the residual risk
/// §5.3 warns about.
pub fn audit(errors: &[PositionError], tolerance: Meters) -> Vec<AuditFinding> {
    errors
        .iter()
        .filter(|e| e.error > tolerance)
        .map(|e| AuditFinding {
            slot: e.slot,
            error: e.error,
        })
        .collect()
}

/// A cable whose ordered length no longer covers the as-built distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CableShortfall {
    /// Index into the plan's runs.
    pub run: usize,
    /// How much length is missing.
    pub shortfall: Meters,
}

/// Computes which pre-cut cables come up short given as-built position
/// errors: each endpoint's error adds (worst-case) its full magnitude to
/// the required run length; a run fails when the extra exceeds its slack.
pub fn cable_shortfalls(plan: &CablingPlan, errors: &[PositionError]) -> Vec<CableShortfall> {
    let err_of: HashMap<SlotId, Meters> =
        errors.iter().map(|e| (e.slot, e.error)).collect();
    let mut out = Vec::new();
    for (i, run) in plan.runs.iter().enumerate() {
        let extra = err_of.get(&run.from_slot).copied().unwrap_or(Meters::ZERO)
            + err_of.get(&run.to_slot).copied().unwrap_or(Meters::ZERO);
        if extra > run.choice.slack {
            out.push(CableShortfall {
                run: i,
                shortfall: extra - run.choice.slack,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_cabling::CablingPolicy;
    use pd_geometry::Gbps;
    use pd_physical::placement::EquipmentProfile;
    use pd_physical::{HallSpec, Placement, PlacementStrategy};
    use pd_topology::gen::fat_tree;

    fn setup() -> (Hall, CablingPlan) {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        (hall, plan)
    }

    #[test]
    fn injection_rate_roughly_respected_and_deterministic() {
        let (hall, _) = setup();
        let a = inject_position_errors(&hall, 0.2, Meters::new(1.0), 42);
        let b = inject_position_errors(&hall, 0.2, Meters::new(1.0), 42);
        assert_eq!(a, b);
        // 200 slots at 20%: expect ~40, allow broad band.
        assert!(a.len() > 15 && a.len() < 70, "{}", a.len());
        for e in &a {
            assert!(e.error > Meters::ZERO && e.error <= Meters::new(1.0));
        }
    }

    #[test]
    fn audit_tolerance_filters_small_errors() {
        let errors = vec![
            PositionError {
                slot: SlotId(0),
                error: Meters::new(0.05),
            },
            PositionError {
                slot: SlotId(1),
                error: Meters::new(0.8),
            },
        ];
        let findings = audit(&errors, Meters::new(0.1));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].slot, SlotId(1));
    }

    #[test]
    fn big_errors_cause_shortfalls_small_ones_absorbed_by_slack() {
        let (_, plan) = setup();
        // Tiny error: slack (≥ 0 up to meters from SKU rounding) absorbs it
        // for most cables.
        let tiny = vec![PositionError {
            slot: plan.runs[0].from_slot,
            error: Meters::new(0.01),
        }];
        let small = cable_shortfalls(&plan, &tiny);
        // Huge error: every cable touching the slot that lacks that much
        // slack fails.
        let huge = vec![PositionError {
            slot: plan.runs[0].from_slot,
            error: Meters::new(50.0),
        }];
        let big = cable_shortfalls(&plan, &huge);
        assert!(big.len() >= small.len());
        assert!(!big.is_empty());
        for s in &big {
            assert!(s.shortfall > Meters::ZERO);
        }
    }

    #[test]
    fn no_errors_no_shortfalls() {
        let (_, plan) = setup();
        assert!(cable_shortfalls(&plan, &[]).is_empty());
    }
}
