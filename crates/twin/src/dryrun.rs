//! Dry-running operational plans against the twin.
//!
//! §5.3: "Testing a decom process on a real deployment is especially
//! challenging, because of this risk. Testing on a twin, while it cannot
//! provide perfect coverage, would be much safer and cheaper." A dry run
//! executes an ordered operation list against twin state and reports every
//! step that would have gone wrong on the real floor — without touching it.

use pd_topology::{LinkId, Network, TrafficMatrix};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One operation in a work plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Drain a link (move traffic off it).
    Drain(LinkId),
    /// Return a drained link to service.
    Undrain(LinkId),
    /// Mark a link as reserved by a pending work order.
    Plan(LinkId),
    /// Physically remove a link's cable.
    Remove(LinkId),
}

/// Per-link service state during the dry run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum LinkState {
    InService,
    Drained,
    Planned,
    Removed,
}

/// A problem the dry run caught.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DryRunIssue {
    /// Removing a link that is still in service — an outage on the floor.
    RemoveInService {
        /// Step index.
        step: usize,
        /// The link.
        link: LinkId,
    },
    /// Removing a link a pending work order still needs.
    RemovePlanned {
        /// Step index.
        step: usize,
        /// The link.
        link: LinkId,
    },
    /// Operating on a link that does not exist (stale data, §5.3).
    UnknownLink {
        /// Step index.
        step: usize,
        /// The link.
        link: LinkId,
    },
    /// After this removal, some traffic demand has no path at all.
    DisconnectsTraffic {
        /// Step index.
        step: usize,
        /// The link whose removal disconnects traffic.
        link: LinkId,
    },
    /// Draining a link that is already drained or removed (double-issue
    /// work orders — §2.3's coordination failures).
    RedundantDrain {
        /// Step index.
        step: usize,
        /// The link.
        link: LinkId,
    },
}

/// The dry-run result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DryRunReport {
    /// Everything that would have gone wrong.
    pub issues: Vec<DryRunIssue>,
    /// Steps whose effects were applied (problem steps are *skipped*, as a
    /// careful operator would).
    pub applied: usize,
    /// Links removed by the end.
    pub removed: Vec<LinkId>,
}

impl DryRunReport {
    /// True if the plan executes cleanly.
    pub fn clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Executes `ops` against a copy of `net`. If `tm` is given, every removal
/// is additionally checked for traffic disconnection (the expensive check a
/// twin makes affordable).
pub fn dry_run(net: &Network, tm: Option<&TrafficMatrix>, ops: &[Op]) -> DryRunReport {
    let mut state: HashMap<LinkId, LinkState> = net
        .links()
        .map(|l| (l.id, LinkState::InService))
        .collect();
    let mut sim = net.clone();
    let mut issues = Vec::new();
    let mut applied = 0usize;
    let mut removed = Vec::new();

    for (step, &op) in ops.iter().enumerate() {
        let link = match op {
            Op::Drain(l) | Op::Undrain(l) | Op::Plan(l) | Op::Remove(l) => l,
        };
        let Some(&st) = state.get(&link) else {
            issues.push(DryRunIssue::UnknownLink { step, link });
            continue;
        };
        match op {
            Op::Drain(_) => {
                if st == LinkState::InService || st == LinkState::Planned {
                    state.insert(link, LinkState::Drained);
                    applied += 1;
                } else {
                    issues.push(DryRunIssue::RedundantDrain { step, link });
                }
            }
            Op::Undrain(_) => {
                if st == LinkState::Drained {
                    state.insert(link, LinkState::InService);
                    applied += 1;
                }
            }
            Op::Plan(_) => {
                if st != LinkState::Removed {
                    state.insert(link, LinkState::Planned);
                    applied += 1;
                }
            }
            Op::Remove(_) => match st {
                LinkState::InService => {
                    issues.push(DryRunIssue::RemoveInService { step, link });
                }
                LinkState::Planned => {
                    issues.push(DryRunIssue::RemovePlanned { step, link });
                }
                LinkState::Removed => {
                    issues.push(DryRunIssue::UnknownLink { step, link });
                }
                LinkState::Drained => {
                    // Check traffic connectivity post-removal.
                    if let Some(tm) = tm {
                        let mut probe = sim.clone();
                        let _ = probe.remove_link(link);
                        let ap = pd_topology::routing::AllPairs::compute(&probe);
                        let disconnects = tm
                            .demands()
                            .iter()
                            .any(|d| ap.distance(d.src, d.dst).is_none());
                        if disconnects {
                            issues.push(DryRunIssue::DisconnectsTraffic { step, link });
                            continue;
                        }
                    }
                    let _ = sim.remove_link(link);
                    state.insert(link, LinkState::Removed);
                    removed.push(link);
                    applied += 1;
                }
            },
        }
    }
    DryRunReport {
        issues,
        applied,
        removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_geometry::Gbps;
    use pd_topology::gen::leaf_spine;

    fn net() -> Network {
        leaf_spine(3, 2, 4, 1, Gbps::new(100.0)).unwrap()
    }

    #[test]
    fn clean_drain_then_remove() {
        let n = net();
        let l = n.links().next().unwrap().id;
        let rep = dry_run(&n, None, &[Op::Drain(l), Op::Remove(l)]);
        assert!(rep.clean());
        assert_eq!(rep.applied, 2);
        assert_eq!(rep.removed, vec![l]);
    }

    #[test]
    fn remove_without_drain_is_caught() {
        let n = net();
        let l = n.links().next().unwrap().id;
        let rep = dry_run(&n, None, &[Op::Remove(l)]);
        assert_eq!(
            rep.issues,
            vec![DryRunIssue::RemoveInService { step: 0, link: l }]
        );
        assert!(rep.removed.is_empty());
    }

    #[test]
    fn planned_link_blocks_removal() {
        let n = net();
        let l = n.links().next().unwrap().id;
        let rep = dry_run(&n, None, &[Op::Drain(l), Op::Plan(l), Op::Remove(l)]);
        assert_eq!(
            rep.issues,
            vec![DryRunIssue::RemovePlanned { step: 2, link: l }]
        );
    }

    #[test]
    fn disconnection_caught_with_traffic_matrix() {
        // 1 spine × 2 leaves: removing either uplink cuts a leaf off.
        let n = leaf_spine(2, 1, 4, 1, Gbps::new(100.0)).unwrap();
        let tm = TrafficMatrix::uniform_servers(&n, Gbps::new(1.0));
        let links: Vec<LinkId> = n.links().map(|l| l.id).collect();
        let rep = dry_run(
            &n,
            Some(&tm),
            &[Op::Drain(links[0]), Op::Remove(links[0])],
        );
        assert_eq!(
            rep.issues,
            vec![DryRunIssue::DisconnectsTraffic {
                step: 1,
                link: links[0]
            }]
        );
        // Without the traffic matrix, the same plan looks clean: the twin's
        // value is exactly this extra check.
        let blind = dry_run(&n, None, &[Op::Drain(links[0]), Op::Remove(links[0])]);
        assert!(blind.clean());
    }

    #[test]
    fn unknown_and_double_operations() {
        let n = net();
        let l = n.links().next().unwrap().id;
        let ghost = LinkId(999);
        let rep = dry_run(
            &n,
            None,
            &[
                Op::Drain(ghost),
                Op::Drain(l),
                Op::Drain(l),
                Op::Remove(l),
                Op::Remove(l),
            ],
        );
        assert_eq!(rep.issues.len(), 3);
        assert!(matches!(rep.issues[0], DryRunIssue::UnknownLink { .. }));
        assert!(matches!(rep.issues[1], DryRunIssue::RedundantDrain { .. }));
        assert!(matches!(rep.issues[2], DryRunIssue::UnknownLink { .. }));
    }

    #[test]
    fn undrain_restores_service_protection() {
        let n = net();
        let l = n.links().next().unwrap().id;
        let rep = dry_run(
            &n,
            None,
            &[Op::Drain(l), Op::Undrain(l), Op::Remove(l)],
        );
        assert_eq!(
            rep.issues,
            vec![DryRunIssue::RemoveInService { step: 2, link: l }]
        );
    }
}
