//! The declarative entity-relation model.
//!
//! Modeled on MALT \[36\]: entities have a *kind*, a stable string id, and a
//! bag of typed attributes; relations are typed edges between entities.
//! Everything is data — no behavior — which is §5.2's point: "by moving
//! knowledge about a design out of automation code, and into a declarative
//! data representation", unsupported designs surface as representation
//! failures instead of buried code assumptions.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Entity kinds. `Custom` exists so *novel* designs can try to represent
/// themselves — and be caught by schema validation, which is the detection
/// mechanism the paper describes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EntityKind {
    /// The hall itself.
    Hall,
    /// A rack row.
    Row,
    /// A rack.
    Rack,
    /// A network switch.
    Switch,
    /// A physical cable.
    Cable,
    /// A pre-built cable bundle.
    Bundle,
    /// A tray segment.
    TraySegment,
    /// A patch panel or OCS.
    IndirectionSite,
    /// A power feed.
    PowerFeed,
    /// A kind the base schema does not know (novel hardware, new layer).
    Custom(String),
}

impl std::fmt::Display for EntityKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntityKind::Custom(s) => write!(f, "custom:{s}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// Relation kinds.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RelationKind {
    /// Spatial containment (hall→row→rack→switch).
    Contains,
    /// A cable connects to a switch or site.
    ConnectsTo,
    /// A cable routes through a tray segment.
    RoutesThrough,
    /// A rack is fed by a power feed.
    FedBy,
    /// A custom relation (same detection role as [`EntityKind::Custom`]).
    Custom(String),
}

/// Attribute values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// A string.
    Str(String),
    /// A number (all physical quantities are stored as raw f64 in the
    /// twin; units live in the schema docs).
    Num(f64),
    /// A boolean.
    Bool(bool),
}

impl AttrValue {
    /// Numeric accessor.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            AttrValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Stable entity identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub String);

impl EntityId {
    /// Builds an id from any displayable value.
    pub fn new(s: impl Into<String>) -> Self {
        Self(s.into())
    }
}

impl std::fmt::Display for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// One entity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entity {
    /// Stable id.
    pub id: EntityId,
    /// Kind.
    pub kind: EntityKind,
    /// Attributes (ordered for deterministic diffs).
    pub attrs: BTreeMap<String, AttrValue>,
}

/// One relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Relation {
    /// Kind.
    pub kind: RelationKind,
    /// Source entity.
    pub from: EntityId,
    /// Target entity.
    pub to: EntityId,
}

/// The whole model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TwinModel {
    /// Entities by id (ordered).
    pub entities: BTreeMap<EntityId, Entity>,
    /// Relations (ordered, deduplicated).
    pub relations: Vec<Relation>,
}

impl TwinModel {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an entity (replacing any previous one with the same id).
    pub fn add_entity(
        &mut self,
        id: impl Into<String>,
        kind: EntityKind,
        attrs: impl IntoIterator<Item = (&'static str, AttrValue)>,
    ) -> EntityId {
        let id = EntityId::new(id);
        self.entities.insert(
            id.clone(),
            Entity {
                id: id.clone(),
                kind,
                attrs: attrs
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            },
        );
        id
    }

    /// Adds a relation if both endpoints exist; returns whether it was
    /// added.
    pub fn relate(&mut self, kind: RelationKind, from: &EntityId, to: &EntityId) -> bool {
        if !self.entities.contains_key(from) || !self.entities.contains_key(to) {
            return false;
        }
        let r = Relation {
            kind,
            from: from.clone(),
            to: to.clone(),
        };
        if !self.relations.contains(&r) {
            self.relations.push(r);
        }
        true
    }

    /// Entity lookup.
    pub fn entity(&self, id: &EntityId) -> Option<&Entity> {
        self.entities.get(id)
    }

    /// All entities of a kind.
    pub fn of_kind<'a>(&'a self, kind: &'a EntityKind) -> impl Iterator<Item = &'a Entity> {
        self.entities.values().filter(move |e| &e.kind == kind)
    }

    /// Outgoing relations of an entity, optionally filtered by kind.
    pub fn relations_from<'a>(
        &'a self,
        id: &'a EntityId,
        kind: Option<&'a RelationKind>,
    ) -> impl Iterator<Item = &'a Relation> {
        self.relations
            .iter()
            .filter(move |r| &r.from == id && kind.map(|k| &r.kind == k).unwrap_or(true))
    }

    /// Incoming relations of an entity, optionally filtered by kind.
    pub fn relations_to<'a>(
        &'a self,
        id: &'a EntityId,
        kind: Option<&'a RelationKind>,
    ) -> impl Iterator<Item = &'a Relation> {
        self.relations
            .iter()
            .filter(move |r| &r.to == id && kind.map(|k| &r.kind == k).unwrap_or(true))
    }

    /// Relations with dangling endpoints (should be none; diff/audit use
    /// this as a corruption check).
    pub fn dangling_relations(&self) -> Vec<&Relation> {
        self.relations
            .iter()
            .filter(|r| {
                !self.entities.contains_key(&r.from) || !self.entities.contains_key(&r.to)
            })
            .collect()
    }

    /// Counts.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Relation count.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: f64) -> AttrValue {
        AttrValue::Num(v)
    }

    #[test]
    fn build_and_query() {
        let mut m = TwinModel::new();
        let rack = m.add_entity("rack0", EntityKind::Rack, [("slot", n(0.0))]);
        let sw = m.add_entity("sw0", EntityKind::Switch, [("radix", n(32.0))]);
        assert!(m.relate(RelationKind::Contains, &rack, &sw));
        assert_eq!(m.entity_count(), 2);
        assert_eq!(m.relation_count(), 1);
        assert_eq!(m.of_kind(&EntityKind::Switch).count(), 1);
        assert_eq!(
            m.relations_from(&rack, Some(&RelationKind::Contains)).count(),
            1
        );
        assert_eq!(m.relations_to(&sw, None).count(), 1);
        assert_eq!(
            m.entity(&sw).unwrap().attrs["radix"].as_num(),
            Some(32.0)
        );
    }

    #[test]
    fn relate_requires_endpoints() {
        let mut m = TwinModel::new();
        let a = m.add_entity("a", EntityKind::Rack, []);
        let ghost = EntityId::new("ghost");
        assert!(!m.relate(RelationKind::Contains, &a, &ghost));
        assert_eq!(m.relation_count(), 0);
        assert!(m.dangling_relations().is_empty());
    }

    #[test]
    fn duplicate_relations_collapse() {
        let mut m = TwinModel::new();
        let a = m.add_entity("a", EntityKind::Rack, []);
        let b = m.add_entity("b", EntityKind::Switch, []);
        assert!(m.relate(RelationKind::Contains, &a, &b));
        assert!(m.relate(RelationKind::Contains, &a, &b));
        assert_eq!(m.relation_count(), 1);
    }

    #[test]
    fn custom_kinds_representable() {
        let mut m = TwinModel::new();
        let e = m.add_entity(
            "fso0",
            EntityKind::Custom("FreeSpaceOptic".into()),
            [("power_mw", n(5.0))],
        );
        assert_eq!(
            m.entity(&e).unwrap().kind,
            EntityKind::Custom("FreeSpaceOptic".into())
        );
    }

    #[test]
    fn serde_round_trip() {
        let mut m = TwinModel::new();
        let a = m.add_entity("a", EntityKind::Rack, [("x", n(1.5))]);
        let b = m.add_entity("b", EntityKind::Switch, []);
        m.relate(RelationKind::Contains, &a, &b);
        let json = serde_json::to_string(&m).unwrap();
        let back: TwinModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
