//! Model diffs for change management.
//!
//! Al-Fares et al. \[2\] (cited in §5.2) manage physical network lifecycles
//! as reviewed *changes* to declarative models. [`ModelDiff::between`]
//! computes the structural change set between two twin snapshots — what a
//! change-review tool would display and what the automation would turn
//! into work orders.

use crate::model::{AttrValue, EntityId, Relation, TwinModel};
use serde::{Deserialize, Serialize};

/// One attribute change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrChange {
    /// Entity affected.
    pub entity: EntityId,
    /// Attribute name.
    pub attr: String,
    /// Old value (`None` = newly added attribute).
    pub before: Option<AttrValue>,
    /// New value (`None` = removed attribute).
    pub after: Option<AttrValue>,
}

/// The structural difference between two models.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelDiff {
    /// Entities present only in the new model.
    pub added_entities: Vec<EntityId>,
    /// Entities present only in the old model.
    pub removed_entities: Vec<EntityId>,
    /// Attribute-level changes on entities present in both.
    pub changed: Vec<AttrChange>,
    /// Relations present only in the new model.
    pub added_relations: Vec<Relation>,
    /// Relations present only in the old model.
    pub removed_relations: Vec<Relation>,
}

impl ModelDiff {
    /// Computes `new − old`.
    pub fn between(old: &TwinModel, new: &TwinModel) -> Self {
        let mut diff = ModelDiff::default();
        for id in new.entities.keys() {
            if !old.entities.contains_key(id) {
                diff.added_entities.push(id.clone());
            }
        }
        for (id, e_old) in &old.entities {
            let Some(e_new) = new.entities.get(id) else {
                diff.removed_entities.push(id.clone());
                continue;
            };
            for (k, v_new) in &e_new.attrs {
                match e_old.attrs.get(k) {
                    Some(v_old) if v_old == v_new => {}
                    before => diff.changed.push(AttrChange {
                        entity: id.clone(),
                        attr: k.clone(),
                        before: before.cloned(),
                        after: Some(v_new.clone()),
                    }),
                }
            }
            for (k, v_old) in &e_old.attrs {
                if !e_new.attrs.contains_key(k) {
                    diff.changed.push(AttrChange {
                        entity: id.clone(),
                        attr: k.clone(),
                        before: Some(v_old.clone()),
                        after: None,
                    });
                }
            }
        }
        for r in &new.relations {
            if !old.relations.contains(r) {
                diff.added_relations.push(r.clone());
            }
        }
        for r in &old.relations {
            if !new.relations.contains(r) {
                diff.removed_relations.push(r.clone());
            }
        }
        diff
    }

    /// True if the models are identical.
    pub fn is_empty(&self) -> bool {
        self.added_entities.is_empty()
            && self.removed_entities.is_empty()
            && self.changed.is_empty()
            && self.added_relations.is_empty()
            && self.removed_relations.is_empty()
    }

    /// Total change count (the review-size metric).
    pub fn change_count(&self) -> usize {
        self.added_entities.len()
            + self.removed_entities.len()
            + self.changed.len()
            + self.added_relations.len()
            + self.removed_relations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{EntityKind, RelationKind};

    fn n(v: f64) -> AttrValue {
        AttrValue::Num(v)
    }

    fn base() -> TwinModel {
        let mut m = TwinModel::new();
        let a = m.add_entity("rack0", EntityKind::Rack, [("slot", n(0.0))]);
        let b = m.add_entity("sw0", EntityKind::Switch, [("radix", n(32.0))]);
        m.relate(RelationKind::Contains, &a, &b);
        m
    }

    #[test]
    fn identical_models_diff_empty() {
        let m = base();
        let d = ModelDiff::between(&m, &m.clone());
        assert!(d.is_empty());
        assert_eq!(d.change_count(), 0);
    }

    #[test]
    fn added_and_removed_entities() {
        let old = base();
        let mut new = base();
        new.add_entity("sw1", EntityKind::Switch, [("radix", n(64.0))]);
        let mut removed = base();
        removed.entities.remove(&EntityId::new("sw0"));
        removed.relations.clear();

        let d_add = ModelDiff::between(&old, &new);
        assert_eq!(d_add.added_entities, vec![EntityId::new("sw1")]);
        assert!(d_add.removed_entities.is_empty());

        let d_rm = ModelDiff::between(&old, &removed);
        assert_eq!(d_rm.removed_entities, vec![EntityId::new("sw0")]);
        assert_eq!(d_rm.removed_relations.len(), 1);
    }

    #[test]
    fn attribute_changes_tracked() {
        let old = base();
        let mut new = base();
        new.add_entity("sw0", EntityKind::Switch, [("radix", n(64.0))]);
        let d = ModelDiff::between(&old, &new);
        assert_eq!(d.changed.len(), 1);
        let c = &d.changed[0];
        assert_eq!(c.attr, "radix");
        assert_eq!(c.before, Some(n(32.0)));
        assert_eq!(c.after, Some(n(64.0)));
    }

    #[test]
    fn relation_changes_tracked() {
        let old = base();
        let mut new = base();
        let c = new.add_entity("sw1", EntityKind::Switch, [("radix", n(32.0))]);
        let rack = EntityId::new("rack0");
        new.relate(RelationKind::Contains, &rack, &c);
        let d = ModelDiff::between(&old, &new);
        assert_eq!(d.added_relations.len(), 1);
        assert_eq!(d.change_count(), 2); // +entity, +relation
    }
}
