//! Property-based tests for lifecycle planners.

use pd_geometry::{Gbps, Hours};
use pd_lifecycle::expansion::{
    clos_add_pods, flat_add_tor, ClosExpansionParams, FlatExpansionParams, IndirectionLevel,
};
use pd_cabling::{BundlingReport, CablingPlan, CablingPolicy};
use pd_costing::calib::LaborCalibration;
use pd_lifecycle::phased::{simulate, BuildStrategy, PhasedParams};
use pd_lifecycle::{DecomChecker, FaultDomain, FaultScenario, Injector, PortState, RepairSimParams};
use pd_physical::placement::EquipmentProfile;
use pd_physical::{Hall, HallSpec, Placement, PlacementStrategy, SlotId};
use pd_topology::gen::{fat_tree, jellyfish, JellyfishParams};
use pd_topology::{LinkId, Network};
use proptest::prelude::*;

/// A deployed fat-tree design for fault-injection properties.
struct Deployed {
    net: Network,
    hall: Hall,
    placement: Placement,
    plan: CablingPlan,
    bundling: BundlingReport,
    calib: LaborCalibration,
    repair: RepairSimParams,
}

fn deployed() -> Deployed {
    let net = fat_tree(4, Gbps::new(100.0)).unwrap();
    let hall = Hall::new(HallSpec::default());
    let placement = Placement::place(
        &net,
        &hall,
        PlacementStrategy::BlockLocal,
        &EquipmentProfile::default(),
    )
    .unwrap();
    let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
    let bundling = BundlingReport::analyze(&plan, 4);
    Deployed {
        net,
        hall,
        placement,
        plan,
        bundling,
        calib: LaborCalibration::default(),
        repair: RepairSimParams::default(),
    }
}

impl Deployed {
    fn injector(&self) -> Injector<'_> {
        Injector::new(
            &self.net,
            &self.hall,
            &self.placement,
            &self.plan,
            &self.bundling,
            &self.calib,
            &self.repair,
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Clos expansion move count matches the closed-form formula whenever
    /// the expansion is feasible, and indirection never changes it.
    #[test]
    fn clos_expansion_formula(old in 2usize..6, extra in 1usize..6, aggs in 1usize..4, spines in 1usize..6) {
        let new = old + extra;
        let spine_ports = 64usize;
        let params = |ind| ClosExpansionParams {
            old_pods: old,
            new_pods: new,
            aggs_per_pod: aggs,
            spines,
            spine_ports,
            indirection: ind,
            panel_slots: (0..4).map(SlotId).collect(),
            pod_slots: (10..30).map(SlotId).collect(),
            new_pod_slots: (30..60).map(SlotId).collect(),
        };
        let t_old = spine_ports / (old * aggs);
        let t_new = spine_ports / (new * aggs);
        let plan = clos_add_pods(&params(IndirectionLevel::None));
        if t_new == 0 {
            prop_assert_eq!(plan.len(), 0);
        } else {
            let expect = spines * old * aggs * (t_old - t_new);
            prop_assert_eq!(plan.len(), expect);
            let panel = clos_add_pods(&params(IndirectionLevel::PatchPanel));
            let ocs = clos_add_pods(&params(IndirectionLevel::Ocs));
            prop_assert_eq!(panel.len(), expect);
            prop_assert_eq!(ocs.len(), expect);
            prop_assert_eq!(plan.new_cables, extra * aggs * spines * t_new);
        }
    }

    /// Repeated flat ToR additions always preserve network validity and
    /// connectivity, and each addition rewires exactly ⌈d/2⌉ links.
    #[test]
    fn flat_growth_preserves_invariants(seed in 0u64..30, adds in 1usize..6) {
        let degree = 6usize;
        let mut net = jellyfish(&JellyfishParams {
            tors: 20,
            network_degree: degree,
            servers_per_tor: 4,
            link_speed: Gbps::new(100.0),
            seed,
        })
        .unwrap();
        for i in 0..adds {
            let (tor, plan) = flat_add_tor(
                &mut net,
                |_| Some(SlotId(0)),
                &FlatExpansionParams {
                    degree,
                    seed: seed.wrapping_add(i as u64 + 1),
                    servers_per_tor: 4,
                },
            );
            prop_assert_eq!(plan.len(), degree.div_ceil(2));
            prop_assert_eq!(net.degree(tor), degree);
            prop_assert!(net.validate().is_ok());
            prop_assert!(net.is_connected());
        }
        prop_assert_eq!(net.switch_count(), 20 + adds);
    }

    /// Decom safety: a checked removal sequence never removes a link that
    /// was in service or planned at removal time.
    #[test]
    fn decom_never_cuts_live_links(seed in 0u64..30, drain_n in 0usize..20) {
        let mut net = jellyfish(&JellyfishParams {
            tors: 14,
            network_degree: 4,
            servers_per_tor: 2,
            link_speed: Gbps::new(100.0),
            seed,
        })
        .unwrap();
        let links: Vec<LinkId> = net.links().map(|l| l.id).collect();
        let mut checker = DecomChecker::all_in_service(&net);
        for l in links.iter().take(drain_n.min(links.len())) {
            checker.drain_link(&net, *l);
        }
        let mut removed = 0usize;
        for &l in &links {
            if checker.remove(&mut net, l).is_ok() {
                removed += 1;
            }
        }
        prop_assert_eq!(removed, drain_n.min(links.len()));
        prop_assert_eq!(checker.removed().len(), removed);
    }

    /// Port-state transitions: planning after draining blocks removal;
    /// freeing re-allows it.
    #[test]
    fn decom_state_machine(seed in 0u64..20) {
        let mut net = jellyfish(&JellyfishParams {
            tors: 10,
            network_degree: 4,
            servers_per_tor: 2,
            link_speed: Gbps::new(100.0),
            seed,
        })
        .unwrap();
        let l = net.links().next().unwrap().clone();
        let mut checker = DecomChecker::all_in_service(&net);
        checker.drain_link(&net, l.id);
        prop_assert!(checker.can_remove(&net, l.id).is_ok());
        checker.plan_link(&net, l.id);
        prop_assert!(checker.can_remove(&net, l.id).is_err());
        checker.set_state(l.id, l.a, PortState::Free);
        checker.set_state(l.id, l.b, PortState::Free);
        prop_assert!(checker.remove(&mut net, l.id).is_ok());
    }

    /// Phased deployment: cost components are nonnegative and the ledger is
    /// internally consistent for any parameters.
    #[test]
    fn phased_ledger_consistent(seed in 0u64..50, growth in 0.0f64..0.3, err in 0.0f64..0.3, lead in 0usize..5) {
        let p = PhasedParams {
            growth,
            forecast_error: err,
            lead_periods: lead,
            seed,
            ..PhasedParams::default()
        };
        for strat in [BuildStrategy::AllUpFront, BuildStrategy::ChaseForecast { headroom_pct: 10 }] {
            let o = simulate(&p, strat);
            prop_assert_eq!(o.periods.len(), p.periods);
            prop_assert!(o.total_capex.value() >= 0.0);
            prop_assert!(o.total_idle_cost.value() >= 0.0);
            prop_assert!(o.total_shortfall_cost.value() >= 0.0);
            for q in &o.periods {
                // Exactly one of idle/shortfall is nonzero (or both zero).
                prop_assert!(q.idle == 0.0 || q.shortfall == 0.0);
                prop_assert!((q.capacity - q.demand - q.idle + q.shortfall).abs() < 1e-6);
            }
        }
    }

    /// Rewire-plan complexity is consistent: steps = hand moves + software
    /// moves, and labor is zero iff nothing is hand-touched.
    #[test]
    fn complexity_accounting(ind_kind in 0usize..3, moves in 1usize..40) {
        use pd_lifecycle::{RewirePlan, RewireSite};
        let hall = Hall::new(HallSpec::small());
        let mut plan = RewirePlan::default();
        let site = match ind_kind {
            0 => RewireSite::SwitchRacks { a: SlotId(0), b: SlotId(5) },
            1 => RewireSite::Panel { slot: SlotId(3), software_only: false },
            _ => RewireSite::Panel { slot: SlotId(3), software_only: true },
        };
        for i in 0..moves {
            plan.push(site, format!("move {i}"));
        }
        let c = plan.complexity(&hall, Hours::new(0.1), Hours::new(0.5));
        prop_assert_eq!(c.rewiring_steps, moves);
        if ind_kind == 2 {
            prop_assert_eq!(c.software_steps, moves);
            prop_assert_eq!(c.labor, Hours::ZERO);
        } else {
            prop_assert_eq!(c.software_steps, 0);
            prop_assert!(c.labor > Hours::ZERO);
        }
    }
}

proptest! {
    // Fault-injection properties rebuild a full deployed design per case,
    // so keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Identical (scenario, seed) always yields byte-identical
    /// `DegradedState` JSON — the sweep determinism contract.
    #[test]
    fn fault_injection_is_byte_deterministic(seed in 0u64..1000, index in 0usize..50, max_domains in 1usize..4) {
        let d = deployed();
        let inj = d.injector();
        let scenario = FaultScenario::random(seed, index, max_domains);
        let a = serde_json::to_vec(&inj.inject(&scenario)).unwrap();
        let b = serde_json::to_vec(&inj.inject(&scenario)).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Capacity retention is monotonically non-increasing as fault domains
    /// are appended to a scenario: the failed set only grows.
    #[test]
    fn capacity_retention_monotone_in_domains(seed in 0u64..1000, picks in prop::collection::vec(0usize..4, 1..5)) {
        let d = deployed();
        let inj = d.injector();
        let domains: Vec<FaultDomain> = picks
            .iter()
            .enumerate()
            .map(|(i, &k)| match k {
                0 => FaultDomain::PowerFeedPair { pair: (seed % 4) as u32 },
                1 => FaultDomain::TraySegments { count: 1 + i },
                2 => FaultDomain::BundleCut { count: 1 + i },
                _ => FaultDomain::LinecardBatch {
                    fraction: 0.1 + 0.1 * i as f64,
                    seed: seed.wrapping_add(i as u64),
                },
            })
            .collect();
        let mut prev = 1.0f64;
        for k in 1..=domains.len() {
            let state = inj.inject(&FaultScenario {
                name: format!("prefix-{k}"),
                domains: domains[..k].to_vec(),
            });
            prop_assert!(
                state.capacity_retention <= prev + 1e-12,
                "retention rose from {} to {} at domain {}",
                prev,
                state.capacity_retention,
                k
            );
            prev = state.capacity_retention;
        }
    }
}
