//! Phased (incremental) deployment under demand uncertainty.
//!
//! §3.5: "One result is the desire to deploy the network incrementally, to
//! avoid paying depreciation on unused capital equipment, to defer
//! decisions about how much capacity is needed, and to allow that capacity
//! demand to be fulfilled by faster, cheaper technology as it becomes
//! available." And §2.3: "Slow deployment also makes network capacity
//! planning harder, because demand forecasts become inaccurate over
//! relatively short timescales. If we install too little capacity, machines
//! are stranded; if we install too much, it wastes money."
//!
//! The planner simulates a multi-period build-out: each period, actual
//! demand deviates from the forecast by a seeded noise term; the operator
//! chooses how much capacity to have ready (pre-building `lead_periods`
//! ahead, because deployment takes time). Costs accrue on both sides of
//! the miss: idle capacity depreciates; shortfall strands would-be revenue.

use pd_geometry::Dollars;
use pd_topology::gen::SplitMix64;
use serde::{Deserialize, Serialize};

/// Build-out strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BuildStrategy {
    /// Build everything on day 1 (classic full pre-build).
    AllUpFront,
    /// Each period, build to the forecast `lead` periods ahead plus a
    /// fixed headroom fraction (in percent).
    ChaseForecast {
        /// Headroom percentage on top of the forecast.
        headroom_pct: u8,
    },
}

/// Scenario parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedParams {
    /// Planning periods (e.g. quarters).
    pub periods: usize,
    /// Demand at period 0, in capacity units (e.g. server slots).
    pub initial_demand: f64,
    /// Forecast demand growth per period (fractional, e.g. 0.15).
    pub growth: f64,
    /// Standard-deviation-like forecast error per period (fraction of
    /// demand; realized as seeded uniform ±2×).
    pub forecast_error: f64,
    /// Deployment lead time in periods (capacity ordered now arrives then).
    pub lead_periods: usize,
    /// Capital cost per capacity unit.
    pub unit_capex: Dollars,
    /// Depreciation per idle unit per period (wasted money, §2.3).
    pub idle_cost_per_period: Dollars,
    /// Lost value per unit of unserved demand per period (stranded
    /// machines waiting for network).
    pub shortfall_cost_per_period: Dollars,
    /// Price decline of capacity per period (§3.5: deferring lets demand
    /// "be fulfilled by faster, cheaper technology"), as a fraction.
    pub price_decline: f64,
    /// RNG seed for demand noise.
    pub seed: u64,
}

impl Default for PhasedParams {
    fn default() -> Self {
        Self {
            periods: 12,
            initial_demand: 1_000.0,
            growth: 0.12,
            forecast_error: 0.10,
            lead_periods: 2,
            unit_capex: Dollars::new(500.0),
            idle_cost_per_period: Dollars::new(12.0),
            shortfall_cost_per_period: Dollars::new(45.0),
            price_decline: 0.04,
            seed: 1,
        }
    }
}

/// One period's ledger entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodOutcome {
    /// Realized demand.
    pub demand: f64,
    /// Installed capacity.
    pub capacity: f64,
    /// Idle units (capacity − demand, ≥0).
    pub idle: f64,
    /// Unserved demand (demand − capacity, ≥0).
    pub shortfall: f64,
    /// Capex spent this period.
    pub capex: Dollars,
}

/// The simulated build-out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedOutcome {
    /// Per-period ledger.
    pub periods: Vec<PeriodOutcome>,
    /// Total capital spent.
    pub total_capex: Dollars,
    /// Total idle-capacity cost.
    pub total_idle_cost: Dollars,
    /// Total shortfall cost.
    pub total_shortfall_cost: Dollars,
}

impl PhasedOutcome {
    /// Grand total cost.
    pub fn total(&self) -> Dollars {
        self.total_capex + self.total_idle_cost + self.total_shortfall_cost
    }
}

/// Simulates a strategy against one demand trajectory.
pub fn simulate(params: &PhasedParams, strategy: BuildStrategy) -> PhasedOutcome {
    let mut rng = SplitMix64::new(params.seed);
    // Realized demand trajectory (shared noise stream for fair strategy
    // comparison under the same seed).
    let mut demands = Vec::with_capacity(params.periods);
    let mut d = params.initial_demand;
    for _ in 0..params.periods {
        let noise = (rng.next_u64() as f64 / u64::MAX as f64 - 0.5) * 4.0; // ±2
        let realized = d * (1.0 + params.forecast_error * noise);
        demands.push(realized.max(0.0));
        d *= 1.0 + params.growth;
    }
    // Final forecast demand (what AllUpFront builds for).
    let final_forecast = params.initial_demand * (1.0 + params.growth).powi(params.periods as i32);

    let mut capacity = 0.0f64;
    // Orders in flight: arrives_at_period -> units.
    let mut pipeline: Vec<(usize, f64)> = Vec::new();
    let mut periods = Vec::with_capacity(params.periods);
    let mut total_capex = Dollars::ZERO;
    let mut total_idle = Dollars::ZERO;
    let mut total_short = Dollars::ZERO;

    for t in 0..params.periods {
        // Arrivals.
        capacity += pipeline
            .iter()
            .filter(|(at, _)| *at == t)
            .map(|(_, u)| *u)
            .sum::<f64>();
        pipeline.retain(|(at, _)| *at != t);

        // Ordering decision.
        let unit_price = params.unit_capex * (1.0 - params.price_decline).powi(t as i32);
        let mut capex = Dollars::ZERO;
        match strategy {
            BuildStrategy::AllUpFront => {
                if t == 0 {
                    // Everything lands immediately (built before service).
                    capacity = final_forecast;
                    capex = params.unit_capex * final_forecast;
                }
            }
            BuildStrategy::ChaseForecast { headroom_pct } => {
                let horizon = t + params.lead_periods;
                let forecast = params.initial_demand
                    * (1.0 + params.growth).powi(horizon as i32)
                    * (1.0 + f64::from(headroom_pct) / 100.0);
                let committed: f64 = capacity + pipeline.iter().map(|(_, u)| *u).sum::<f64>();
                let order = (forecast - committed).max(0.0);
                if order > 0.0 {
                    pipeline.push((t + params.lead_periods, order));
                    capex = unit_price * order;
                }
            }
        }
        total_capex += capex;

        let demand = demands[t];
        let idle = (capacity - demand).max(0.0);
        let shortfall = (demand - capacity).max(0.0);
        total_idle += params.idle_cost_per_period * idle;
        total_short += params.shortfall_cost_per_period * shortfall;
        periods.push(PeriodOutcome {
            demand,
            capacity,
            idle,
            shortfall,
            capex,
        });
    }

    PhasedOutcome {
        periods,
        total_capex,
        total_idle_cost: total_idle,
        total_shortfall_cost: total_short,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_up_front_never_shorts_but_idles_heavily() {
        let p = PhasedParams::default();
        let out = simulate(&p, BuildStrategy::AllUpFront);
        assert_eq!(out.total_shortfall_cost, Dollars::ZERO);
        assert!(out.total_idle_cost.value() > 0.0);
        // Capacity is flat at the final forecast.
        let caps: Vec<f64> = out.periods.iter().map(|q| q.capacity).collect();
        assert!(caps.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9));
    }

    #[test]
    fn chasing_cuts_idle_at_some_shortfall_risk() {
        let p = PhasedParams::default();
        let upfront = simulate(&p, BuildStrategy::AllUpFront);
        let chase = simulate(&p, BuildStrategy::ChaseForecast { headroom_pct: 10 });
        assert!(chase.total_idle_cost < upfront.total_idle_cost);
        // All-in, deferral wins: the idle savings plus the price decline
        // outweigh the headroom premium (§3.5's argument for incremental
        // deployment).
        assert!(
            chase.total() < upfront.total(),
            "chase {} upfront {}",
            chase.total(),
            upfront.total()
        );
    }

    #[test]
    fn headroom_trades_idle_for_shortfall() {
        let p = PhasedParams {
            forecast_error: 0.25,
            ..PhasedParams::default()
        };
        let tight = simulate(&p, BuildStrategy::ChaseForecast { headroom_pct: 0 });
        let padded = simulate(&p, BuildStrategy::ChaseForecast { headroom_pct: 30 });
        assert!(padded.total_shortfall_cost <= tight.total_shortfall_cost);
        assert!(padded.total_idle_cost >= tight.total_idle_cost);
    }

    #[test]
    fn longer_lead_times_hurt_chasers() {
        // §2.3: slow deployment makes planning harder. More lead = ordering
        // against an older forecast = more combined miss cost.
        let fast = simulate(
            &PhasedParams {
                lead_periods: 1,
                forecast_error: 0.2,
                ..PhasedParams::default()
            },
            BuildStrategy::ChaseForecast { headroom_pct: 10 },
        );
        let slow = simulate(
            &PhasedParams {
                lead_periods: 4,
                forecast_error: 0.2,
                ..PhasedParams::default()
            },
            BuildStrategy::ChaseForecast { headroom_pct: 10 },
        );
        let miss = |o: &PhasedOutcome| o.total_idle_cost + o.total_shortfall_cost;
        assert!(
            miss(&slow) > miss(&fast),
            "slow {} fast {}",
            miss(&slow),
            miss(&fast)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = PhasedParams::default();
        let a = simulate(&p, BuildStrategy::ChaseForecast { headroom_pct: 10 });
        let b = simulate(&p, BuildStrategy::ChaseForecast { headroom_pct: 10 });
        assert_eq!(a, b);
    }
}
