//! Lifecycle-complexity vocabulary: rewire plans and their metrics.
//!
//! Zhang et al. \[55\] defined "lifecycle management complexity" metrics —
//! number of re-wiring steps, re-wired links per patch panel — and the
//! paper (§5.4) proposes adding locality metrics (panels touched, and we
//! add racks touched and technician walking distance). A [`RewirePlan`] is
//! the common output of every expansion/conversion planner; its
//! [`LifecycleComplexity`] summary is what the deployability report quotes.

use pd_geometry::{Hours, Meters};
use pd_physical::{Hall, SlotId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Where a single rewiring action physically happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewireSite {
    /// At a patch panel / OCS rack: disconnect and reconnect a jumper in
    /// one place (or, for an OCS, a software reconfiguration).
    Panel {
        /// The panel's rack slot.
        slot: SlotId,
        /// True if the "move" is purely an OCS reconfiguration (no touch).
        software_only: bool,
    },
    /// At switch racks: the cable itself must be removed and a new one run
    /// between two (possibly distant) racks.
    SwitchRacks {
        /// One end.
        a: SlotId,
        /// Other end.
        b: SlotId,
    },
}

/// One rewiring action: move a link's endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewireMove {
    /// Where the action happens.
    pub site: RewireSite,
    /// Human-readable description (for work orders).
    pub what: String,
}

/// A complete rewiring plan.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RewirePlan {
    /// The moves, in execution order.
    pub moves: Vec<RewireMove>,
    /// New cables that must be pulled (additions beyond moves).
    pub new_cables: usize,
    /// Cables abandoned in place (the §2.1 "we seldom remove old ones").
    pub abandoned_cables: usize,
}

/// Summary metrics of a rewire plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleComplexity {
    /// Total rewiring steps (each move = one step).
    pub rewiring_steps: usize,
    /// Steps that are software-only OCS reconfigurations.
    pub software_steps: usize,
    /// Distinct patch panels touched by hand.
    pub panels_touched: usize,
    /// Maximum hand-moves at any single panel.
    pub max_links_per_panel: usize,
    /// Distinct switch racks touched.
    pub racks_touched: usize,
    /// New cables pulled.
    pub new_cables: usize,
    /// Technician walking distance to visit every touched location once,
    /// nearest-neighbor order (a locality proxy).
    pub walking: Meters,
    /// Estimated hands-on labor (moves × per-move time + pulls).
    pub labor: Hours,
}

impl RewirePlan {
    /// Appends a move.
    pub fn push(&mut self, site: RewireSite, what: impl Into<String>) {
        self.moves.push(RewireMove {
            site,
            what: what.into(),
        });
    }

    /// Computes the complexity summary.
    ///
    /// `per_move` is the hands-on time for one physical move (panel jumper
    /// or cable re-termination); `per_pull` the time to pull one new cable.
    pub fn complexity(
        &self,
        hall: &Hall,
        per_move: Hours,
        per_pull: Hours,
    ) -> LifecycleComplexity {
        let mut panels: std::collections::BTreeMap<SlotId, usize> = Default::default();
        let mut racks: BTreeSet<SlotId> = Default::default();
        let mut software = 0usize;
        for m in &self.moves {
            match m.site {
                RewireSite::Panel {
                    slot,
                    software_only,
                } => {
                    if software_only {
                        software += 1;
                    } else {
                        *panels.entry(slot).or_insert(0) += 1;
                    }
                }
                RewireSite::SwitchRacks { a, b } => {
                    racks.insert(a);
                    racks.insert(b);
                }
            }
        }
        // Walking: nearest-neighbor tour over every hand-touched location,
        // starting from slot 0 (the floor entrance).
        let mut to_visit: Vec<SlotId> = panels
            .keys()
            .copied()
            .chain(racks.iter().copied())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut walking = Meters::ZERO;
        let mut here = SlotId(0);
        while !to_visit.is_empty() {
            let (idx, dist) = to_visit
                .iter()
                .enumerate()
                .map(|(i, &s)| (i, hall.slot_distance(here, s).unwrap_or(Meters::ZERO)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            walking += dist;
            here = to_visit.swap_remove(idx);
        }

        let hand_moves = self.moves.len() - software;
        LifecycleComplexity {
            rewiring_steps: self.moves.len(),
            software_steps: software,
            panels_touched: panels.len(),
            max_links_per_panel: panels.values().copied().max().unwrap_or(0),
            racks_touched: racks.len(),
            new_cables: self.new_cables,
            walking,
            labor: per_move * hand_moves as f64 + per_pull * self.new_cables as f64,
        }
    }

    /// Total moves.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// True if the plan does nothing.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty() && self.new_cables == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_physical::HallSpec;

    fn hall() -> Hall {
        Hall::new(HallSpec::small())
    }

    #[test]
    fn complexity_counts_sites() {
        let mut plan = RewirePlan::default();
        plan.push(
            RewireSite::Panel {
                slot: SlotId(3),
                software_only: false,
            },
            "move jumper 1",
        );
        plan.push(
            RewireSite::Panel {
                slot: SlotId(3),
                software_only: false,
            },
            "move jumper 2",
        );
        plan.push(
            RewireSite::Panel {
                slot: SlotId(4),
                software_only: true,
            },
            "ocs reconfig",
        );
        plan.push(
            RewireSite::SwitchRacks {
                a: SlotId(0),
                b: SlotId(9),
            },
            "re-run cable",
        );
        plan.new_cables = 2;
        let c = plan.complexity(&hall(), Hours::new(0.1), Hours::new(0.5));
        assert_eq!(c.rewiring_steps, 4);
        assert_eq!(c.software_steps, 1);
        assert_eq!(c.panels_touched, 1);
        assert_eq!(c.max_links_per_panel, 2);
        assert_eq!(c.racks_touched, 2);
        assert_eq!(c.new_cables, 2);
        // Labor: 3 hand moves × 0.1 + 2 pulls × 0.5 = 1.3 h.
        assert!((c.labor - Hours::new(1.3)).abs() < Hours::new(1e-9));
        assert!(c.walking > Meters::ZERO);
    }

    #[test]
    fn software_only_plan_has_no_walking() {
        let mut plan = RewirePlan::default();
        for i in 0..10 {
            plan.push(
                RewireSite::Panel {
                    slot: SlotId(i),
                    software_only: true,
                },
                "reconfig",
            );
        }
        let c = plan.complexity(&hall(), Hours::new(0.1), Hours::new(0.5));
        assert_eq!(c.software_steps, 10);
        assert_eq!(c.panels_touched, 0);
        assert_eq!(c.walking, Meters::ZERO);
        assert_eq!(c.labor, Hours::ZERO);
    }

    #[test]
    fn empty_plan() {
        let plan = RewirePlan::default();
        assert!(plan.is_empty());
        let c = plan.complexity(&hall(), Hours::new(0.1), Hours::new(0.5));
        assert_eq!(c.rewiring_steps, 0);
        assert_eq!(c.walking, Meters::ZERO);
    }
}
