//! # pd-lifecycle — expansion, repair, drain, decommissioning, conversion
//!
//! The paper's §2.1 names the processes "closely tied to physical
//! deployments": repairs, expansion, and decom; §4.3 adds in-place design
//! conversion of a live network. This crate simulates all four against the
//! physical substrate:
//!
//! * [`expansion`] — incremental growth planners: Clos pod addition with
//!   and without a patch-panel/OCS indirection layer (Zhao et al. \[56\]),
//!   and Jellyfish/Xpander random-graph ToR addition with its d/2 rewires
//!   (§4.2), all reporting Zhang-style lifecycle-complexity metrics \[55\].
//! * [`metrics`] — the shared [`metrics::RewirePlan`] /
//!   [`metrics::LifecycleComplexity`] vocabulary: rewiring steps, links
//!   per panel, panels/racks touched, walking distance, labor hours.
//! * [`drain`] — capacity impact of taking racks/switches out of service,
//!   and the largest safe concurrent drain (§4.3's low-impact chunks).
//! * [`faults`] — correlated fault injection (§3.3): physically-derived
//!   fault domains (power-feed pairs, tray segments, bundles, linecard
//!   batches) applied to a deployed design, degraded-mode evaluation, and
//!   seeded sweep ensembles measuring the physical-vs-logical resilience
//!   gap.
//! * [`repair`] — Monte-Carlo failure/repair simulation: FIT-driven
//!   failures, detect → dispatch → drain → replace → validate → undrain,
//!   MTTR and capacity-availability, and the §3.3 unit-of-repair analysis
//!   (one bad port drains a whole linecard).
//! * [`decom`] — the §2.1 decom safety rule: a cable/bundle may be removed
//!   only when no affected port is in service or planned for service.
//! * [`phased`] — §3.5 incremental build-out under forecast error: idle
//!   capital vs stranded demand, and how deployment lead time hurts.
//! * [`convert`] — the §4.3 case study: converting a live spine Clos to
//!   the direct-connect design by moving fibers at OCS racks in drained
//!   windows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod decom;
pub mod drain;
pub mod expansion;
pub mod faults;
pub mod metrics;
pub mod phased;
pub mod repair;

pub use convert::{ConversionParams, ConversionPlan};
pub use decom::{DecomChecker, DecomError, PortState};
pub use drain::{capacity_after_drain, max_safe_concurrent_drains, DrainImpact};
pub use expansion::{clos_add_pods, flat_add_tor, ClosExpansionParams, FlatExpansionParams};
pub use faults::{
    DegradedState, FaultDomain, FaultScenario, FaultSweepParams, FaultSweepReport, Injector,
};
pub use metrics::{LifecycleComplexity, RewireMove, RewirePlan, RewireSite};
pub use phased::{simulate as simulate_phased, BuildStrategy, PhasedOutcome, PhasedParams};
pub use repair::{ConcurrencyStats, RepairSimParams, RepairSimReport};

/// Hands-on time for one careful fiber move at a dense panel/OCS shelf
/// (shared by the conversion planner and work-order vocabulary).
pub fn repair_move_fiber_time(calib: &pd_costing::calib::LaborCalibration) -> pd_geometry::Hours {
    pd_costing::labor::WorkKind::MoveFiber.duration(calib)
}
