//! Drain planning: the capacity cost of taking things out of service.
//!
//! Every repair, expansion step, or conversion window (§4.3) begins by
//! draining traffic away from the hardware about to be touched. The drain
//! planner answers two questions the paper's SDN-coordination discussion
//! raises: *how much capacity does draining X cost right now*, and *how
//! many drains can proceed concurrently before the network can no longer
//! carry its traffic*.

use pd_topology::routing::{AllPairs, EcmpLoads};
use pd_topology::{Network, SwitchId, TrafficMatrix};
use serde::{Deserialize, Serialize};

/// The capacity impact of a drain set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DrainImpact {
    /// ECMP throughput scale (α) before the drain.
    pub scale_before: f64,
    /// Throughput scale with the drained switches' links removed.
    pub scale_after: f64,
    /// True if some demand became entirely unroutable.
    pub disconnected: bool,
}

impl DrainImpact {
    /// Fractional capacity lost, in `[0, 1]`.
    pub fn capacity_loss(&self) -> f64 {
        if self.disconnected {
            return 1.0;
        }
        if !self.scale_before.is_finite() || self.scale_before <= 0.0 {
            return 0.0;
        }
        (1.0 - self.scale_after / self.scale_before).max(0.0)
    }

    /// True if the drained network still carries the full matrix at α ≥ 1.
    pub fn still_feasible(&self) -> bool {
        !self.disconnected && self.scale_after >= 1.0
    }
}

/// Computes the throughput impact of draining `drained` switches under
/// traffic matrix `tm`. The drained switches' links are removed; demands
/// sourced at or destined to a drained host switch are dropped (their
/// servers are being serviced too).
pub fn capacity_after_drain(
    net: &Network,
    tm: &TrafficMatrix,
    drained: &[SwitchId],
) -> DrainImpact {
    let ap0 = AllPairs::compute(net);
    let loads0 = EcmpLoads::compute(net, &ap0, tm);
    let scale_before = loads0.throughput_scale(net);

    let mut copy = net.clone();
    for &s in drained {
        // Remove links but keep the switch (it is drained, not decommed).
        for l in copy.incident_links(s).to_vec() {
            let _ = copy.remove_link(l);
        }
    }
    let drained_set: std::collections::HashSet<SwitchId> = drained.iter().copied().collect();
    let demands: Vec<_> = tm
        .demands()
        .iter()
        .filter(|d| !drained_set.contains(&d.src) && !drained_set.contains(&d.dst))
        .copied()
        .collect();
    let tm2 = TrafficMatrix::from_demands(demands);

    let ap = AllPairs::compute(&copy);
    // Disconnection check: any surviving demand with no path.
    let disconnected = tm2
        .demands()
        .iter()
        .any(|d| ap.distance(d.src, d.dst).is_none());
    let loads = EcmpLoads::compute(&copy, &ap, &tm2);
    let scale_after = if disconnected {
        0.0
    } else {
        loads.throughput_scale(&copy)
    };
    DrainImpact {
        scale_before,
        scale_after,
        disconnected,
    }
}

/// Largest `k` such that draining the first `k` groups of `groups`
/// concurrently keeps the network feasible (α ≥ `min_scale`). Groups model
/// §4.3's "manual operations segmented into low-impact chunks" — e.g. one
/// OCS rack's switches per group.
pub fn max_safe_concurrent_drains(
    net: &Network,
    tm: &TrafficMatrix,
    groups: &[Vec<SwitchId>],
    min_scale: f64,
) -> usize {
    let mut best = 0;
    for k in 1..=groups.len() {
        let drained: Vec<SwitchId> = groups[..k].iter().flatten().copied().collect();
        let impact = capacity_after_drain(net, tm, &drained);
        if !impact.disconnected && impact.scale_after >= min_scale {
            best = k;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_geometry::Gbps;
    use pd_topology::gen::{fat_tree, leaf_spine};
    use pd_topology::SwitchRole;

    #[test]
    fn draining_one_spine_costs_capacity_but_not_connectivity() {
        let net = leaf_spine(4, 4, 8, 1, Gbps::new(100.0)).unwrap();
        let tm = TrafficMatrix::uniform_servers(&net, Gbps::new(1.0));
        let spine = net
            .switches()
            .find(|s| s.role == SwitchRole::Spine)
            .unwrap()
            .id;
        let impact = capacity_after_drain(&net, &tm, &[spine]);
        assert!(!impact.disconnected);
        // Losing 1 of 4 spines costs ~25% of capacity.
        let loss = impact.capacity_loss();
        assert!((loss - 0.25).abs() < 0.05, "loss {loss}");
    }

    #[test]
    fn draining_all_spines_disconnects() {
        let net = leaf_spine(4, 2, 8, 1, Gbps::new(100.0)).unwrap();
        let tm = TrafficMatrix::uniform_servers(&net, Gbps::new(1.0));
        let spines: Vec<_> = net
            .switches()
            .filter(|s| s.role == SwitchRole::Spine)
            .map(|s| s.id)
            .collect();
        let impact = capacity_after_drain(&net, &tm, &spines);
        assert!(impact.disconnected);
        assert_eq!(impact.capacity_loss(), 1.0);
        assert!(!impact.still_feasible());
    }

    #[test]
    fn draining_a_host_switch_drops_its_demands() {
        let net = leaf_spine(4, 4, 8, 1, Gbps::new(100.0)).unwrap();
        let tm = TrafficMatrix::uniform_servers(&net, Gbps::new(1.0));
        let leaf = net
            .switches()
            .find(|s| s.role == SwitchRole::Tor)
            .unwrap()
            .id;
        let impact = capacity_after_drain(&net, &tm, &[leaf]);
        assert!(!impact.disconnected);
        // Remaining 3 leaves now share 4 spines: more headroom per demand,
        // so the drained network is still feasible.
        assert!(impact.scale_after > 0.0);
    }

    #[test]
    fn concurrent_drain_budget_monotone() {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let tm = TrafficMatrix::uniform_servers(&net, Gbps::new(10.0));
        // Groups: one core switch each.
        let groups: Vec<Vec<SwitchId>> = net
            .switches()
            .filter(|s| s.role == SwitchRole::Spine)
            .map(|s| vec![s.id])
            .collect();
        let strict = max_safe_concurrent_drains(&net, &tm, &groups, 1.0);
        let lax = max_safe_concurrent_drains(&net, &tm, &groups, 0.1);
        assert!(lax >= strict);
        // Draining all 4 cores disconnects pods; can never be all groups.
        assert!(lax < groups.len());
    }
}
