//! Monte-Carlo repair simulation: MTTR, availability, unit-of-repair.
//!
//! §3.3: "network availability depends on mean time to repair (MTTR), an
//! inherently physical problem." The simulator builds the failable
//! component population (switch chassis, linecards, transceiver ends,
//! cables) from the physicalized design, samples failures from FIT rates
//! over a horizon, and walks each failure through the paper's repair
//! pipeline: detect → dispatch (a technician physically walks there) →
//! drain → replace → validate → undrain.
//!
//! The **unit of repair** is modeled directly: a failed port/transceiver
//! on a multi-port linecard drains the whole card ("the whole card needs
//! to be replaced, requiring all of the other ports on the card to be
//! drained", §2.1); a failed chassis drains the whole switch.

use pd_cabling::CablingPlan;
use pd_costing::calib::LaborCalibration;
use pd_geometry::Hours;
use pd_physical::{Hall, Placement, SlotId};
use pd_topology::gen::SplitMix64;
use pd_topology::Network;
use serde::{Deserialize, Serialize};

/// Component classes in the failure model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ComponentClass {
    /// Switch chassis (PSU, fans, fabric).
    SwitchChassis,
    /// One linecard.
    Linecard,
    /// One transceiver/cable-end (optical or active-electrical end).
    Transceiver,
    /// One cable assembly.
    Cable,
}

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairSimParams {
    /// Simulated horizon (default: one year).
    pub horizon: Hours,
    /// Monte-Carlo trials.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Ports per linecard (the unit-of-repair knob; fixed-config 1-RU
    /// boxes are modeled as one card holding every port).
    pub ports_per_linecard: u16,
    /// FIT of a switch chassis.
    pub chassis_fit: f64,
    /// FIT of one linecard.
    pub linecard_fit: f64,
    /// Detection latency before dispatch.
    pub detect: Hours,
    /// Drain + undrain overhead per repair.
    pub drain_overhead: Hours,
    /// Replacement hands-on time per class (chassis, linecard,
    /// transceiver, cable-fixed; cable adds per-meter pull time).
    pub replace_chassis: Hours,
    /// Linecard swap time.
    pub replace_linecard: Hours,
    /// Transceiver swap time.
    pub replace_transceiver: Hours,
    /// Validation + firmware + undrain checks.
    pub validate: Hours,
}

impl Default for RepairSimParams {
    fn default() -> Self {
        Self {
            horizon: Hours::new(24.0 * 365.0),
            trials: 50,
            seed: 1,
            ports_per_linecard: 16,
            chassis_fit: 3_000.0,
            linecard_fit: 1_500.0,
            detect: Hours::new(0.1),
            drain_overhead: Hours::new(0.5),
            replace_chassis: Hours::new(2.0),
            replace_linecard: Hours::new(1.0),
            replace_transceiver: Hours::new(0.25),
            validate: Hours::new(0.5),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Component {
    class: ComponentClass,
    slot: SlotId,
    /// Ports taken out of service while this component is repaired — the
    /// unit of repair.
    drained_ports: u32,
    fit: f64,
    /// Cable length for pull-time computation (cables only).
    cable_length: pd_geometry::Meters,
}

/// Aggregated simulation results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairSimReport {
    /// Mean repairs per trial (≈ per horizon).
    pub repairs_per_horizon: f64,
    /// Mean time to repair across all repairs.
    pub mean_mttr: Hours,
    /// Mean technician hands-on hours per horizon.
    pub tech_hours_per_horizon: f64,
    /// Mean drained port-hours per horizon.
    pub drained_port_hours: f64,
    /// Port availability: 1 − drained-port-hours / total port-hours.
    pub port_availability: f64,
    /// Repairs per horizon by class.
    pub by_class: Vec<(ComponentClass, f64)>,
    /// Total components simulated.
    pub components: usize,
}

/// The §3.3 unit-of-repair figure: ports drained when one port fails, as a
/// function of switch radix and linecard size.
pub fn unit_of_repair_ports(radix: u16, ports_per_linecard: u16) -> u32 {
    u32::from(ports_per_linecard.min(radix).max(1))
}

/// Concurrent-failure statistics: §3.3 warns that "mitigation techniques
/// generally cannot tolerate large numbers of concurrent failures", which
/// makes the *overlap* of repair windows — not just their count — a design
/// metric. Longer MTTRs widen every window and superlinearly increase the
/// chance that `k` failures are open at once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcurrencyStats {
    /// Mean number of simultaneously-open repairs, time-averaged.
    pub mean_open_repairs: f64,
    /// Fraction of the horizon with ≥1 repair open.
    pub frac_time_ge1: f64,
    /// Fraction of the horizon with ≥2 repairs open concurrently.
    pub frac_time_ge2: f64,
    /// Maximum overlap observed across all trials.
    pub max_concurrent: usize,
    /// Probability (over trials) that the horizon sees ≥2 concurrent
    /// repairs at least once.
    pub p_any_double: f64,
}

impl ConcurrencyStats {
    /// Runs a dedicated Monte Carlo over the same component population as
    /// [`RepairSimReport::simulate`], tracking repair-window overlap.
    /// `mttr` is the (deterministic) repair duration applied to every
    /// failure; callers typically pass `RepairSimReport::mean_mttr`.
    pub fn simulate(
        net: &Network,
        plan: &CablingPlan,
        params: &RepairSimParams,
        mttr: Hours,
    ) -> Self {
        // Component FIT population (matching the main simulator's classes,
        // minus per-slot detail — only failure times matter here).
        let mut fits: Vec<f64> = Vec::new();
        for s in net.switches() {
            fits.push(params.chassis_fit);
            let cards =
                u32::from(s.radix).div_ceil(u32::from(params.ports_per_linecard.max(1)));
            for _ in 0..cards {
                fits.push(params.linecard_fit);
            }
        }
        for run in &plan.runs {
            fits.push(run.choice.sku.fit);
            if run.choice.sku.ends_power.value() > 1.0 {
                fits.push(800.0);
                fits.push(800.0);
            }
        }

        let horizon = params.horizon.value();
        let window = mttr.value().max(1e-6);
        let trials = params.trials.max(1);

        let mut overlap_time_sum = 0.0; // ∫ open(t) dt, summed over trials
        let mut ge1_time = 0.0;
        let mut ge2_time = 0.0;
        let mut max_concurrent = 0usize;
        let mut doubles = 0usize;

        for trial in 0..trials {
            let mut rng = SplitMix64::new(
                params.seed ^ 0xC0FFEE ^ (trial as u64).wrapping_mul(0x2545F4914F6CDD1D),
            );
            // Sample failure instants.
            let mut events: Vec<f64> = Vec::new();
            for &fit in &fits {
                let lambda = fit / 1e9;
                if lambda <= 0.0 {
                    continue;
                }
                let u = (rng.next_u64() as f64 + 1.0) / (u64::MAX as f64 + 2.0);
                let t = -u.ln() / lambda;
                if t < horizon {
                    events.push(t);
                }
            }
            events.sort_by(f64::total_cmp);
            // Sweep: +1 at t, −1 at t+window.
            let mut boundary: Vec<(f64, i32)> = Vec::with_capacity(events.len() * 2);
            for &t in &events {
                boundary.push((t, 1));
                boundary.push((t + window, -1));
            }
            boundary.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
            let mut open = 0i32;
            let mut last_t = 0.0f64;
            let mut saw_double = false;
            for (t, d) in boundary {
                let span = (t.min(horizon) - last_t).max(0.0);
                overlap_time_sum += span * f64::from(open);
                if open >= 1 {
                    ge1_time += span;
                }
                if open >= 2 {
                    ge2_time += span;
                    saw_double = true;
                }
                open += d;
                max_concurrent = max_concurrent.max(open.max(0) as usize);
                last_t = t.min(horizon);
                if last_t >= horizon {
                    break;
                }
            }
            if saw_double {
                doubles += 1;
            }
        }

        let t = trials as f64;
        Self {
            mean_open_repairs: overlap_time_sum / (t * horizon),
            frac_time_ge1: ge1_time / (t * horizon),
            frac_time_ge2: ge2_time / (t * horizon),
            max_concurrent,
            p_any_double: doubles as f64 / t,
        }
    }
}

impl RepairSimReport {
    /// Runs the simulation for a physicalized design.
    pub fn simulate(
        net: &Network,
        hall: &Hall,
        placement: &Placement,
        plan: &CablingPlan,
        calib: &LaborCalibration,
        params: &RepairSimParams,
    ) -> Self {
        // Build the component population.
        let mut comps: Vec<Component> = Vec::new();
        for s in net.switches() {
            let slot = placement.slot_of(s.id).unwrap_or(SlotId(0));
            comps.push(Component {
                class: ComponentClass::SwitchChassis,
                slot,
                drained_ports: u32::from(s.radix),
                fit: params.chassis_fit,
                cable_length: pd_geometry::Meters::ZERO,
            });
            let cards = u32::from(s.radix).div_ceil(u32::from(params.ports_per_linecard.max(1)));
            for _ in 0..cards {
                comps.push(Component {
                    class: ComponentClass::Linecard,
                    slot,
                    drained_ports: unit_of_repair_ports(s.radix, params.ports_per_linecard),
                    fit: params.linecard_fit,
                    cable_length: pd_geometry::Meters::ZERO,
                });
            }
        }
        for run in &plan.runs {
            comps.push(Component {
                class: ComponentClass::Cable,
                slot: run.from_slot,
                drained_ports: 2,
                fit: run.choice.sku.fit,
                cable_length: run.routed_length,
            });
            // Two transceiver ends for powered media.
            if run.choice.sku.ends_power.value() > 1.0 {
                for slot in [run.from_slot, run.to_slot] {
                    comps.push(Component {
                        class: ComponentClass::Transceiver,
                        slot,
                        drained_ports: unit_of_repair_ports(
                            net.link(run.link)
                                .and_then(|l| net.switch(l.a))
                                .map(|s| s.radix)
                                .unwrap_or(32),
                            params.ports_per_linecard,
                        ),
                        fit: 800.0, // optical transceiver FIT, vendor-datasheet magnitude
                        cable_length: pd_geometry::Meters::ZERO,
                    });
                }
            }
        }

        let total_ports: f64 = net.switches().map(|s| f64::from(s.radix)).sum();
        let depot = SlotId(0);
        let trials = params.trials.max(1);

        let mut repairs_sum = 0.0;
        let mut mttr_sum = Hours::ZERO;
        let mut mttr_count = 0usize;
        let mut tech_sum = 0.0;
        let mut drained_sum = 0.0;
        let mut by_class: std::collections::BTreeMap<ComponentClass, f64> = Default::default();

        for trial in 0..trials {
            let mut rng = SplitMix64::new(
                params.seed ^ (trial as u64).wrapping_mul(0xA24BAED4963EE407),
            );
            for c in &comps {
                // First-failure sampling (components are rare-failure; the
                // chance of two failures of one part in a horizon is
                // negligible at realistic FITs).
                let lambda = c.fit / 1e9;
                if lambda <= 0.0 {
                    continue;
                }
                let u = (rng.next_u64() as f64 + 1.0) / (u64::MAX as f64 + 2.0);
                let t_fail = -u.ln() / lambda;
                if t_fail >= params.horizon.value() {
                    continue;
                }
                // Repair pipeline.
                let walk = calib.walk_time(
                    hall.slot_distance(depot, c.slot)
                        .unwrap_or(pd_geometry::Meters::ZERO),
                );
                let replace = match c.class {
                    ComponentClass::SwitchChassis => params.replace_chassis,
                    ComponentClass::Linecard => params.replace_linecard,
                    ComponentClass::Transceiver => params.replace_transceiver,
                    ComponentClass::Cable => calib.loose_cable_time(c.cable_length),
                };
                let mttr =
                    params.detect + walk + params.drain_overhead + replace + params.validate;
                repairs_sum += 1.0;
                mttr_sum += mttr;
                mttr_count += 1;
                tech_sum += (walk + replace + params.validate).value();
                drained_sum += mttr.value() * f64::from(c.drained_ports);
                *by_class.entry(c.class).or_insert(0.0) += 1.0;
            }
        }

        let t = trials as f64;
        let drained_port_hours = drained_sum / t;
        let total_port_hours = total_ports * params.horizon.value();
        Self {
            repairs_per_horizon: repairs_sum / t,
            mean_mttr: if mttr_count == 0 {
                Hours::ZERO
            } else {
                mttr_sum / mttr_count as f64
            },
            tech_hours_per_horizon: tech_sum / t,
            drained_port_hours,
            port_availability: if total_port_hours > 0.0 {
                1.0 - drained_port_hours / total_port_hours
            } else {
                1.0
            },
            by_class: by_class.into_iter().map(|(k, v)| (k, v / t)).collect(),
            components: comps.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_cabling::CablingPolicy;
    use pd_geometry::Gbps;
    use pd_physical::placement::EquipmentProfile;
    use pd_physical::{HallSpec, PlacementStrategy};
    use pd_topology::gen::fat_tree;

    fn setup() -> (Network, Hall, Placement, CablingPlan) {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        (net, hall, placement, plan)
    }

    #[test]
    fn unit_of_repair_math() {
        assert_eq!(unit_of_repair_ports(64, 16), 16);
        assert_eq!(unit_of_repair_ports(8, 16), 8);
        assert_eq!(unit_of_repair_ports(64, 64), 64);
        assert_eq!(unit_of_repair_ports(4, 0), 1);
    }

    #[test]
    fn simulation_produces_sane_availability() {
        let (net, hall, placement, plan) = setup();
        let rep = RepairSimReport::simulate(
            &net,
            &hall,
            &placement,
            &plan,
            &LaborCalibration::default(),
            &RepairSimParams::default(),
        );
        assert!(rep.components > 0);
        assert!(rep.repairs_per_horizon > 0.0, "a year should see failures");
        assert!(rep.mean_mttr > Hours::new(0.5));
        assert!(rep.mean_mttr < Hours::new(24.0));
        assert!(rep.port_availability > 0.999, "{}", rep.port_availability);
        assert!(rep.port_availability < 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let (net, hall, placement, plan) = setup();
        let c = LaborCalibration::default();
        let p = RepairSimParams {
            trials: 10,
            ..RepairSimParams::default()
        };
        let a = RepairSimReport::simulate(&net, &hall, &placement, &plan, &c, &p);
        let b = RepairSimReport::simulate(&net, &hall, &placement, &plan, &c, &p);
        assert_eq!(a.repairs_per_horizon, b.repairs_per_horizon);
        assert_eq!(a.mean_mttr, b.mean_mttr);
    }

    #[test]
    fn bigger_linecards_drain_more_ports() {
        // Needs high-radix switches: on a radix-4 fat-tree the card size is
        // capped at the radix and the comparison degenerates.
        let net = pd_topology::gen::leaf_spine(8, 4, 44, 1, Gbps::new(100.0)).unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        let c = LaborCalibration::default();
        let small = RepairSimParams {
            ports_per_linecard: 4,
            trials: 30,
            ..RepairSimParams::default()
        };
        let big = RepairSimParams {
            ports_per_linecard: 64,
            trials: 30,
            ..RepairSimParams::default()
        };
        let rs = RepairSimReport::simulate(&net, &hall, &placement, &plan, &c, &small);
        let rb = RepairSimReport::simulate(&net, &hall, &placement, &plan, &c, &big);
        // Same failure processes, but the unit of repair is larger, so more
        // port-hours drain. (Fewer linecards partially offsets; transceiver
        // repairs dominate the difference.)
        assert!(
            rb.drained_port_hours / rb.repairs_per_horizon
                > rs.drained_port_hours / rs.repairs_per_horizon,
            "per-repair drain must grow with card size"
        );
    }

    #[test]
    fn concurrency_grows_with_mttr() {
        let (net, _, _, plan) = setup();
        let p = RepairSimParams {
            trials: 40,
            ..RepairSimParams::default()
        };
        let short = ConcurrencyStats::simulate(&net, &plan, &p, Hours::new(2.0));
        let long = ConcurrencyStats::simulate(&net, &plan, &p, Hours::new(48.0));
        assert!(long.mean_open_repairs > short.mean_open_repairs);
        assert!(long.frac_time_ge2 >= short.frac_time_ge2);
        assert!(long.p_any_double >= short.p_any_double);
        assert!(short.frac_time_ge1 >= short.frac_time_ge2);
        assert!(short.mean_open_repairs >= 0.0);
    }

    #[test]
    fn concurrency_deterministic() {
        let (net, _, _, plan) = setup();
        let p = RepairSimParams {
            trials: 10,
            ..RepairSimParams::default()
        };
        let a = ConcurrencyStats::simulate(&net, &plan, &p, Hours::new(4.0));
        let b = ConcurrencyStats::simulate(&net, &plan, &p, Hours::new(4.0));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_fit_components_never_fail() {
        let (net, hall, placement, plan) = setup();
        let c = LaborCalibration::default();
        let p = RepairSimParams {
            chassis_fit: 0.0,
            linecard_fit: 0.0,
            trials: 5,
            ..RepairSimParams::default()
        };
        let rep = RepairSimReport::simulate(&net, &hall, &placement, &plan, &c, &p);
        // Only cable/transceiver failures remain.
        for (class, rate) in &rep.by_class {
            if matches!(
                class,
                ComponentClass::SwitchChassis | ComponentClass::Linecard
            ) {
                assert_eq!(*rate, 0.0);
            }
            let _ = rate;
        }
    }
}
