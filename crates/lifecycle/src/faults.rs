//! Correlated fault injection and degraded-mode evaluation.
//!
//! §3.3: "a network design that abstracts too many physical details
//! conceals physical-world failure domains (e.g., shared power feeds)" and
//! mitigation techniques "generally cannot tolerate large numbers of
//! concurrent failures." Abstract resilience analysis samples *independent*
//! link failures; real outages are correlated by the physical substrate —
//! every cable in a tray segment, every run in a bundle, every rack on a
//! feed pair, every linecard from a bad manufacturing batch.
//!
//! This module makes those domains first-class and injectable:
//!
//! * [`FaultDomain`] — one physically-derived failure domain, resolved
//!   against the deployed design (placement power plan, cabling tray map,
//!   bundling report, linecard layout).
//! * [`FaultScenario`] — a named composition of domains, including seeded
//!   random compositions ([`FaultScenario::random`]).
//! * [`Injector`] — applies a scenario to a `Network` + `CablingPlan` and
//!   produces a [`DegradedState`]: what is down, how much capacity and
//!   throughput survive, how many servers are cut off, and what the
//!   recovery costs in technician hours (via the repair calibration).
//! * [`Injector::sweep`] — retention distributions over a seeded scenario
//!   ensemble, plus the *physical-vs-logical resilience gap*: how much
//!   worse correlated physical faults are than the equal-magnitude random
//!   link failures that abstract analyses assume.
//!
//! Everything is deterministic given the scenario and seeds; identical
//! inputs produce byte-identical [`DegradedState`] JSON.
//!
//! In the staged pipeline (`pd_core::stages`) the sweep is its own named
//! stage, `Faults`, ordered **before** the `Expansion` stage: the
//! expansion probe mutates the network for flat-ToR growth, and injection
//! must always measure the as-built design.

use crate::repair::RepairSimParams;
use pd_cabling::{BundlingReport, CablingPlan};
use pd_costing::calib::LaborCalibration;
use pd_geometry::{Gbps, Hours, Meters, RouteEdgeId};
use pd_physical::{FeedId, Hall, Placement, SlotId};
use pd_topology::csr::{self, CsrNet, IndexedDemands, Masks};
use pd_topology::gen::SplitMix64;
use pd_topology::{LinkId, Network, SwitchId, TrafficMatrix};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One physically-derived failure domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultDomain {
    /// A single power feed trips. Slots whose surviving partner feed would
    /// be pushed past capacity by the failover brown out (all switches in
    /// racks there go down); with headroom, the redundancy holds and
    /// nothing fails — which is itself a measurement.
    PowerFeed {
        /// The feed that trips (taken modulo the plan's feed count).
        feed: u32,
    },
    /// A whole A/B feed pair is lost — maintenance on one busway plus a
    /// fault on its partner, the classic correlated datacenter outage.
    /// Every slot fed by that pair goes dark unconditionally.
    PowerFeedPair {
        /// Pair index `p`, denoting feeds `(2p, 2p+1) mod feeds` — the
        /// pair the hall's row striping assigns.
        pair: u32,
    },
    /// The `count` most heavily loaded tray segments are cut (collapse,
    /// fire, a careless lift truck): every link with a cable routed
    /// through them goes down together.
    TraySegments {
        /// Segments cut, in decreasing cables-carried order.
        count: usize,
    },
    /// The `count` largest cable bundles are severed; a bundle fails as a
    /// unit ("damage to a cable bundle" takes every member run).
    BundleCut {
        /// Bundles severed, in decreasing size order.
        count: usize,
    },
    /// A bad linecard manufacturing batch: each linecard in the fleet is
    /// in the batch with probability `fraction` (seeded, deterministic),
    /// and every in-batch card fails at once, downing the links whose
    /// ports it carries.
    LinecardBatch {
        /// Probability a given card is from the bad batch.
        fraction: f64,
        /// Seed for the batch-membership draw.
        seed: u64,
    },
    /// Uncorrelated random link failures — the logical-diversity
    /// assumption abstract metrics rest on; the baseline the physical
    /// domains are measured against.
    RandomLinks {
        /// Fraction of links failed (rounded to a count).
        fraction: f64,
        /// Seed for the selection.
        seed: u64,
    },
}

/// A named composition of fault domains, applied simultaneously.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// Display name (carried into the [`DegradedState`]).
    pub name: String,
    /// The domains that fail together.
    pub domains: Vec<FaultDomain>,
}

impl FaultScenario {
    /// A scenario with a single domain.
    pub fn single(name: impl Into<String>, domain: FaultDomain) -> Self {
        Self {
            name: name.into(),
            domains: vec![domain],
        }
    }

    /// A seeded random composition of 1..=`max_domains` physical domains
    /// (power pair, tray cut, bundle cut, linecard batch). Deterministic in
    /// `(seed, index, max_domains)`; `index` varies the draw across an
    /// ensemble.
    pub fn random(seed: u64, index: usize, max_domains: usize) -> Self {
        let mut rng = SplitMix64::new(
            seed ^ 0xFA017D04_u64 ^ (index as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );
        let n = 1 + rng.below(max_domains.max(1));
        let domains = (0..n)
            .map(|_| match rng.below(4) {
                0 => FaultDomain::PowerFeedPair {
                    pair: (rng.next_u64() % 16) as u32,
                },
                1 => FaultDomain::TraySegments {
                    count: 1 + rng.below(3),
                },
                2 => FaultDomain::BundleCut {
                    count: 1 + rng.below(3),
                },
                _ => FaultDomain::LinecardBatch {
                    fraction: 0.05 + rng.below(3) as f64 * 0.05,
                    seed: rng.next_u64(),
                },
            })
            .collect();
        Self {
            name: format!("random-{index}"),
            domains,
        }
    }
}

/// What survives a fault scenario, and what recovery costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedState {
    /// The scenario that produced this state.
    pub scenario: String,
    /// Switches down (sorted, deduplicated).
    pub switches_down: Vec<SwitchId>,
    /// Links down, including links incident to downed switches (sorted).
    pub links_down: Vec<LinkId>,
    /// Linecards lost to a bad-batch domain.
    pub failed_linecards: usize,
    /// Surviving link capacity as a fraction of the healthy total. This is
    /// monotone: adding fault domains to a scenario can only grow the
    /// failed set, so it never increases.
    pub capacity_retention: f64,
    /// Degraded-mode ECMP throughput as a fraction of healthy: the scale
    /// factor still-routable uniform traffic sustains, weighted by the
    /// fraction of server pairs that remain connected.
    pub throughput_retention: f64,
    /// Server ports outside the largest surviving connected component
    /// (servers on downed switches count as disconnected).
    pub disconnected_servers: u32,
    /// Repair actions in the recovery plan (chassis swaps, card swaps,
    /// cable re-pulls).
    pub recovery_repairs: usize,
    /// Serial hands-on technician hours to restore the design, from the
    /// repair calibration: walk + replace + validate per action.
    pub recovery_hours: Hours,
}

/// Sweep settings: how many seeded scenarios, how complex, which seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepParams {
    /// Scenarios in the ensemble (0 disables the sweep).
    pub scenarios: usize,
    /// Maximum domains composed per scenario.
    pub max_domains: usize,
    /// Ensemble seed.
    pub seed: u64,
}

impl Default for FaultSweepParams {
    fn default() -> Self {
        Self {
            scenarios: 0,
            max_domains: 2,
            seed: 1,
        }
    }
}

/// Retention distribution over a seeded scenario ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepReport {
    /// Scenarios injected.
    pub scenarios: usize,
    /// Mean surviving-capacity fraction.
    pub mean_capacity_retention: f64,
    /// Worst surviving-capacity fraction.
    pub worst_capacity_retention: f64,
    /// Mean degraded-mode throughput retention.
    pub mean_throughput_retention: f64,
    /// Worst degraded-mode throughput retention.
    pub worst_throughput_retention: f64,
    /// Mean disconnected servers per scenario.
    pub mean_disconnected_servers: f64,
    /// Worst disconnected-server count.
    pub worst_disconnected_servers: u32,
    /// Mean recovery labor per scenario.
    pub mean_recovery_hours: Hours,
    /// Physical-vs-logical resilience gap: mean throughput retention under
    /// *random* link failures of equal magnitude minus under the correlated
    /// physical scenarios. Positive = the physical correlation hurts more
    /// than the logical-diversity assumption predicts (the §3.3 claim).
    pub resilience_gap: f64,
}

/// Accumulated failures while a scenario's domains resolve.
#[derive(Default)]
struct FaultSet {
    switches: BTreeSet<SwitchId>,
    /// Links whose physical cable path was cut (these need re-pulls).
    cut_links: BTreeSet<LinkId>,
    /// Links lost to failed linecards (card swap, no re-pull).
    card_links: BTreeSet<LinkId>,
    /// One entry per failed linecard: the slot a technician walks to.
    card_sites: Vec<SlotId>,
}

/// The injection engine: resolves fault domains against one deployed
/// design and evaluates degraded states.
///
/// Construction precomputes the healthy baseline (uniform traffic matrix,
/// ECMP throughput scale, total capacity), a dense [`CsrNet`] view of the
/// network, and the deterministic domain orderings (tray segments by load,
/// bundles by size), so repeated [`Injector::inject`] calls — the sweep's
/// hot path — pay only for the degraded-state evaluation, which runs as
/// masked kernels on the shared view instead of cloning and mutating the
/// `Network`.
pub struct Injector<'a> {
    net: &'a Network,
    hall: &'a Hall,
    placement: &'a Placement,
    plan: &'a CablingPlan,
    calib: &'a LaborCalibration,
    repair: &'a RepairSimParams,
    /// Dense view of `net`, shareable with the executor's other stages.
    csr: Arc<CsrNet>,
    /// The uniform traffic matrix lowered onto `csr`'s index space.
    demands: IndexedDemands,
    tm: TrafficMatrix,
    healthy_scale: f64,
    total_capacity: f64,
    /// Tray segments in decreasing cables-carried order.
    tray_order: Vec<(RouteEdgeId, Vec<LinkId>)>,
    /// Bundle link groups in decreasing size order.
    bundle_order: Vec<Vec<LinkId>>,
}

impl<'a> Injector<'a> {
    /// Builds an injector over a deployed design.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        net: &'a Network,
        hall: &'a Hall,
        placement: &'a Placement,
        plan: &'a CablingPlan,
        bundling: &'a BundlingReport,
        calib: &'a LaborCalibration,
        repair: &'a RepairSimParams,
    ) -> Self {
        let view = Arc::new(CsrNet::build(net));
        Self::with_shared_csr(net, hall, placement, plan, bundling, calib, repair, view)
    }

    /// As [`Injector::new`], reusing a dense view the caller already built
    /// for `net` (the staged executor threads one [`CsrNet`] through the
    /// Goodness and Faults stages).
    #[allow(clippy::too_many_arguments)]
    pub fn with_shared_csr(
        net: &'a Network,
        hall: &'a Hall,
        placement: &'a Placement,
        plan: &'a CablingPlan,
        bundling: &'a BundlingReport,
        calib: &'a LaborCalibration,
        repair: &'a RepairSimParams,
        view: Arc<CsrNet>,
    ) -> Self {
        debug_assert_eq!(
            view.switch_count(),
            net.switch_count(),
            "shared CsrNet must be built from the same network"
        );
        let tm = TrafficMatrix::uniform_servers(net, Gbps::new(1.0));
        let demands = IndexedDemands::build(&view, &tm);
        let healthy_scale = csr::with_scratch(|scratch| {
            csr::ecmp_evaluate(&view, &demands, None, scratch).throughput_scale()
        });
        let total_capacity = net.links().map(|l| l.capacity().value()).sum();

        let mut tray_order: Vec<(RouteEdgeId, Vec<LinkId>)> =
            plan.links_per_tray_edge().into_iter().collect();
        for (_, links) in &mut tray_order {
            links.sort_unstable();
            links.dedup();
        }
        tray_order.sort_by_key(|(edge, links)| (std::cmp::Reverse(links.len()), *edge));

        let mut bundle_order: Vec<Vec<LinkId>> = {
            let mut groups: Vec<&pd_cabling::Bundle> = bundling.bundles.iter().collect();
            groups.sort_by_key(|b| {
                (std::cmp::Reverse(b.members.len()), b.from_slot.0, b.to_slot.0)
            });
            groups
                .into_iter()
                .map(|b| {
                    let mut links: Vec<LinkId> = b
                        .members
                        .iter()
                        .filter_map(|&m| plan.runs.get(m).map(|r| r.link))
                        .collect();
                    links.sort_unstable();
                    links.dedup();
                    links
                })
                .collect()
        };
        bundle_order.retain(|g| !g.is_empty());

        Self {
            net,
            hall,
            placement,
            plan,
            calib,
            repair,
            csr: view,
            demands,
            tm,
            healthy_scale,
            total_capacity,
            tray_order,
            bundle_order,
        }
    }

    /// Resolves one domain into concrete switch/link/card failures.
    fn apply_domain(&self, domain: &FaultDomain, out: &mut FaultSet) {
        match domain {
            FaultDomain::PowerFeed { feed } => {
                let feeds = self.placement.power.feed_count().max(1) as u32;
                let dark: BTreeSet<SlotId> = self
                    .placement
                    .power
                    .failover_dark_slots(FeedId(feed % feeds))
                    .into_iter()
                    .collect();
                self.down_racks_in(&dark, out);
            }
            FaultDomain::PowerFeedPair { pair } => {
                let feeds = self.placement.power.feed_count().max(1) as u32;
                let a = FeedId((2 * pair) % feeds);
                let b = FeedId((2 * pair + 1) % feeds);
                let dark: BTreeSet<SlotId> = self
                    .hall
                    .slots()
                    .iter()
                    .filter(|s| {
                        matches!(
                            self.placement.power.feeds_of(s.id),
                            Some((x, y)) if (x == a && y == b) || (x == b && y == a)
                        )
                    })
                    .map(|s| s.id)
                    .collect();
                self.down_racks_in(&dark, out);
            }
            FaultDomain::TraySegments { count } => {
                for (_, links) in self.tray_order.iter().take(*count) {
                    out.cut_links.extend(links.iter().copied());
                }
            }
            FaultDomain::BundleCut { count } => {
                for links in self.bundle_order.iter().take(*count) {
                    out.cut_links.extend(links.iter().copied());
                }
            }
            FaultDomain::LinecardBatch { fraction, seed } => {
                let ppl = u32::from(self.repair.ports_per_linecard.max(1));
                let mut rng = SplitMix64::new(seed ^ 0x11EC0DE5_u64);
                for s in self.net.switches() {
                    let cards = u32::from(s.radix).div_ceil(ppl);
                    let failed: Vec<u32> = (0..cards)
                        .filter(|_| {
                            (rng.next_u64() as f64 / u64::MAX as f64) < *fraction
                        })
                        .collect();
                    if failed.is_empty() {
                        continue;
                    }
                    let site = self.placement.slot_of(s.id).unwrap_or(SlotId(0));
                    out.card_sites.extend(failed.iter().map(|_| site));
                    // Ports 0..server_ports are server downlinks; network
                    // links occupy the following ports, trunking each, in
                    // link-id order. A link fails if any of its ports sit
                    // on a failed card.
                    let mut incident: Vec<LinkId> =
                        self.net.incident_links(s.id).to_vec();
                    incident.sort_unstable();
                    let mut cursor = u32::from(s.server_ports);
                    for l in incident {
                        let t = self
                            .net
                            .link(l)
                            .map(|l| u32::from(l.trunking))
                            .unwrap_or(0);
                        let hit = failed.iter().any(|&k| {
                            let (lo, hi) = (k * ppl, (k + 1) * ppl);
                            cursor < hi && cursor + t > lo
                        });
                        if hit {
                            out.card_links.insert(l);
                        }
                        cursor += t;
                    }
                }
            }
            FaultDomain::RandomLinks { fraction, seed } => {
                let mut ids: Vec<LinkId> = self.net.links().map(|l| l.id).collect();
                let count = ((ids.len() as f64) * fraction.clamp(0.0, 1.0)).round()
                    as usize;
                let mut rng = SplitMix64::new(seed ^ 0x5EED4A11_u64);
                rng.shuffle(&mut ids);
                out.cut_links.extend(ids.into_iter().take(count.min(
                    self.net.link_count(),
                )));
            }
        }
    }

    /// Marks every switch racked at one of `dark` slots as down.
    fn down_racks_in(&self, dark: &BTreeSet<SlotId>, out: &mut FaultSet) {
        for rack in &self.placement.racks {
            if dark.contains(&rack.slot) {
                out.switches
                    .extend(rack.switch_ids().into_iter().map(SwitchId));
            }
        }
    }

    /// Applies a scenario and evaluates the degraded design.
    pub fn inject(&self, scenario: &FaultScenario) -> DegradedState {
        let mut set = FaultSet::default();
        for d in &scenario.domains {
            self.apply_domain(d, &mut set);
        }

        // The full downed-link set: direct cuts, card losses, and every
        // link incident to a downed switch.
        let mut links_down: BTreeSet<LinkId> = &set.cut_links | &set.card_links;
        for &s in &set.switches {
            links_down.extend(self.net.incident_links(s).iter().copied());
        }
        links_down.retain(|l| self.net.link(*l).is_some());

        let down_capacity: f64 = links_down
            .iter()
            .filter_map(|&l| self.net.link(l))
            .map(|l| l.capacity().value())
            .sum();
        let capacity_retention = if self.total_capacity > 0.0 {
            (1.0 - down_capacity / self.total_capacity).max(0.0)
        } else {
            1.0
        };

        // Degraded evaluation: mask the failed elements on the shared dense
        // view — no Network clone, no element removal. One masked ECMP
        // kernel yields both the routable-demand count and the degraded
        // throughput scale; the largest-component sweep reuses the same
        // masks and scratch.
        let mut masks = Masks::healthy(&self.csr);
        for &s in &set.switches {
            if let Some(i) = self.csr.switch_idx(s) {
                masks.switch_alive[i as usize] = false;
            }
        }
        for &l in &links_down {
            if let Some(i) = self.csr.link_idx(l) {
                masks.link_alive[i as usize] = false;
            }
        }
        let (throughput_retention, disconnected_servers) = csr::with_scratch(|scratch| {
            let outcome = csr::ecmp_evaluate(&self.csr, &self.demands, Some(&masks), scratch);
            let total_pairs = self.demands.total;
            let healthy_ok = self.healthy_scale.is_finite() && self.healthy_scale > 0.0;
            let throughput_retention = if total_pairs == 0 || !healthy_ok {
                // No server traffic to degrade: fall back to the capacity view.
                capacity_retention
            } else if outcome.routable == 0 {
                0.0
            } else {
                let scale = outcome.throughput_scale();
                let per_pair = if scale.is_finite() {
                    (scale / self.healthy_scale).min(1.0)
                } else {
                    1.0
                };
                per_pair * (outcome.routable as f64 / total_pairs as f64)
            };
            let disconnected = self.net.server_count().saturating_sub(
                csr::largest_component_servers(&self.csr, Some(&masks), scratch),
            );
            (throughput_retention, disconnected)
        });

        // Recovery plan, priced by the repair calibration: a chassis swap
        // per downed switch, a card swap per failed linecard, a cable
        // re-pull per physically-cut run.
        let depot = SlotId(0);
        let walk = |slot: SlotId| {
            self.calib
                .walk_time(self.hall.slot_distance(depot, slot).unwrap_or(Meters::ZERO))
        };
        let mut recovery_hours = Hours::ZERO;
        let mut recovery_repairs = 0usize;
        for &s in &set.switches {
            let slot = self.placement.slot_of(s).unwrap_or(depot);
            recovery_hours += walk(slot) + self.repair.replace_chassis + self.repair.validate;
            recovery_repairs += 1;
        }
        for &site in &set.card_sites {
            recovery_hours += walk(site) + self.repair.replace_linecard + self.repair.validate;
            recovery_repairs += 1;
        }
        for &l in &set.cut_links {
            for run in self.plan.runs_of_link(l) {
                recovery_hours += walk(run.from_slot)
                    + self.calib.loose_cable_time(run.routed_length)
                    + self.repair.validate;
                recovery_repairs += 1;
            }
        }

        DegradedState {
            scenario: scenario.name.clone(),
            switches_down: set.switches.into_iter().collect(),
            links_down: links_down.into_iter().collect(),
            failed_linecards: set.card_sites.len(),
            capacity_retention,
            throughput_retention,
            disconnected_servers,
            recovery_repairs,
            recovery_hours,
        }
    }

    /// Injects a seeded scenario ensemble and aggregates the retention
    /// distribution; each physical scenario is paired with a random-link
    /// scenario of equal failed-link count to measure the
    /// physical-vs-logical resilience gap.
    ///
    /// Scenarios are independent, so they fan out over
    /// [`csr::kernel_jobs`] worker threads in contiguous index chunks
    /// (each worker reuses its thread-local [`csr`] scratch); every
    /// scenario writes its own result slot and the statistics are then
    /// accumulated serially in scenario order, so the report is
    /// byte-identical at any `--kernel-jobs` setting.
    pub fn sweep(&self, params: &FaultSweepParams) -> FaultSweepReport {
        self.sweep_with_jobs(params, csr::kernel_jobs())
    }

    /// [`Injector::sweep`] with an explicit worker count (tests pin the
    /// jobs-independence contract with this).
    fn sweep_with_jobs(&self, params: &FaultSweepParams, jobs: usize) -> FaultSweepReport {
        let started = std::time::Instant::now();
        let n = params.scenarios.max(1);
        let links_total = self.net.link_count().max(1);

        // Scenario i → (degraded state, equal-magnitude logical baseline
        // throughput retention).
        let eval_one = |i: usize| -> (DegradedState, f64) {
            let scenario = FaultScenario::random(params.seed, i, params.max_domains);
            let d = self.inject(&scenario);
            // Equal-magnitude logical baseline: the same number of failed
            // links, chosen uniformly at random.
            let fraction = d.links_down.len() as f64 / links_total as f64;
            let baseline = self.inject(&FaultScenario::single(
                format!("logical-{i}"),
                FaultDomain::RandomLinks {
                    fraction,
                    seed: params.seed ^ 0xBA5E11AE ^ (i as u64),
                },
            ));
            (d, baseline.throughput_retention)
        };

        let jobs = jobs.clamp(1, n);
        let results: Vec<(DegradedState, f64)> = if jobs <= 1 {
            (0..n).map(eval_one).collect()
        } else {
            let mut slots: Vec<Option<(DegradedState, f64)>> = Vec::new();
            slots.resize_with(n, || None);
            let chunk = n.div_ceil(jobs);
            std::thread::scope(|s| {
                for (ci, out) in slots.chunks_mut(chunk).enumerate() {
                    let eval_one = &eval_one;
                    s.spawn(move || {
                        for (k, slot) in out.iter_mut().enumerate() {
                            *slot = Some(eval_one(ci * chunk + k));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("every scenario slot filled"))
                .collect()
        };

        let mut cap_sum = 0.0;
        let mut cap_worst = 1.0f64;
        let mut tput_sum = 0.0;
        let mut tput_worst = 1.0f64;
        let mut disc_sum = 0.0;
        let mut disc_worst = 0u32;
        let mut hours_sum = Hours::ZERO;
        let mut gap_sum = 0.0;
        for (d, baseline_tput) in &results {
            cap_sum += d.capacity_retention;
            cap_worst = cap_worst.min(d.capacity_retention);
            tput_sum += d.throughput_retention;
            tput_worst = tput_worst.min(d.throughput_retention);
            disc_sum += f64::from(d.disconnected_servers);
            disc_worst = disc_worst.max(d.disconnected_servers);
            hours_sum += d.recovery_hours;
            gap_sum += baseline_tput - d.throughput_retention;
        }

        let metrics = sweep_metrics();
        metrics.runs.incr();
        metrics.scenarios.add(n as u64);
        metrics.wall_ns.add(started.elapsed().as_nanos() as u64);

        let nf = n as f64;
        FaultSweepReport {
            scenarios: n,
            mean_capacity_retention: cap_sum / nf,
            worst_capacity_retention: cap_worst,
            mean_throughput_retention: tput_sum / nf,
            worst_throughput_retention: tput_worst,
            mean_disconnected_servers: disc_sum / nf,
            worst_disconnected_servers: disc_worst,
            mean_recovery_hours: hours_sum / nf,
            resilience_gap: gap_sum / nf,
        }
    }
}

/// Registry handles for fault-sweep metrics, resolved once. Run and
/// scenario counts are deterministic; wall time is diagnostic (see
/// `docs/OBSERVABILITY.md`).
struct SweepMetrics {
    runs: std::sync::Arc<pd_metrics::Counter>,
    scenarios: std::sync::Arc<pd_metrics::Counter>,
    wall_ns: std::sync::Arc<pd_metrics::Counter>,
}

fn sweep_metrics() -> &'static SweepMetrics {
    static CELLS: std::sync::OnceLock<SweepMetrics> = std::sync::OnceLock::new();
    CELLS.get_or_init(|| {
        let reg = pd_metrics::global();
        SweepMetrics {
            runs: reg.counter("faults.sweep.runs"),
            scenarios: reg.counter("faults.sweep.scenarios"),
            wall_ns: reg.diagnostic_counter("faults.sweep.wall_ns"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_cabling::CablingPolicy;
    use pd_physical::placement::EquipmentProfile;
    use pd_physical::{HallSpec, PlacementStrategy};
    use pd_topology::gen::fat_tree;

    struct Fixture {
        net: Network,
        hall: Hall,
        placement: Placement,
        plan: CablingPlan,
        bundling: BundlingReport,
        calib: LaborCalibration,
        repair: RepairSimParams,
    }

    fn fixture() -> Fixture {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        let bundling = BundlingReport::analyze(&plan, 4);
        Fixture {
            net,
            hall,
            placement,
            plan,
            bundling,
            calib: LaborCalibration::default(),
            repair: RepairSimParams::default(),
        }
    }

    impl Fixture {
        fn injector(&self) -> Injector<'_> {
            Injector::new(
                &self.net,
                &self.hall,
                &self.placement,
                &self.plan,
                &self.bundling,
                &self.calib,
                &self.repair,
            )
        }
    }

    #[test]
    fn empty_scenario_degrades_nothing() {
        let f = fixture();
        let d = f.injector().inject(&FaultScenario {
            name: "nothing".into(),
            domains: vec![],
        });
        assert!(d.switches_down.is_empty());
        assert!(d.links_down.is_empty());
        assert_eq!(d.capacity_retention, 1.0);
        assert!((d.throughput_retention - 1.0).abs() < 1e-9);
        assert_eq!(d.disconnected_servers, 0);
        assert_eq!(d.recovery_repairs, 0);
    }

    #[test]
    fn feed_pair_outage_downs_racked_rows() {
        let f = fixture();
        let inj = f.injector();
        let d = inj.inject(&FaultScenario::single(
            "pair0",
            FaultDomain::PowerFeedPair { pair: 0 },
        ));
        // Default hall: 4 feeds, pair 0 covers the even rows, where the
        // block-local placement put racks — switches must go down.
        assert!(!d.switches_down.is_empty());
        assert!(d.capacity_retention < 1.0);
        assert!(d.throughput_retention < 1.0);
        assert!(d.recovery_hours > Hours::ZERO);
    }

    #[test]
    fn single_feed_outage_with_headroom_is_survived() {
        let f = fixture();
        let d = f.injector().inject(&FaultScenario::single(
            "feed0",
            FaultDomain::PowerFeed { feed: 0 },
        ));
        // A tiny fat-tree draws far below feed capacity: failover holds.
        assert!(d.switches_down.is_empty());
        assert_eq!(d.capacity_retention, 1.0);
    }

    #[test]
    fn tray_cut_downs_the_loaded_segment() {
        let f = fixture();
        let inj = f.injector();
        let d = inj.inject(&FaultScenario::single(
            "tray1",
            FaultDomain::TraySegments { count: 1 },
        ));
        assert!(!d.links_down.is_empty());
        assert!(d.capacity_retention < 1.0);
        // Cut cables need re-pulls: at least one repair per downed link.
        assert!(d.recovery_repairs >= d.links_down.len());
    }

    #[test]
    fn bundle_cut_severs_every_member() {
        let f = fixture();
        let inj = f.injector();
        let d = inj.inject(&FaultScenario::single(
            "bundle1",
            FaultDomain::BundleCut { count: 1 },
        ));
        let largest = inj.bundle_order.first().map(Vec::len).unwrap_or(0);
        assert!(largest > 0, "fat-tree cabling must form bundles");
        assert_eq!(d.links_down.len(), largest);
    }

    #[test]
    fn linecard_batch_downs_links_and_counts_cards() {
        let f = fixture();
        let d = f.injector().inject(&FaultScenario::single(
            "batch",
            FaultDomain::LinecardBatch {
                fraction: 1.0,
                seed: 9,
            },
        ));
        // fraction 1.0: every card fails, so every network link is down.
        assert_eq!(d.links_down.len(), f.net.link_count());
        assert!(d.failed_linecards >= f.net.switch_count());
        assert_eq!(d.capacity_retention, 0.0);
        assert_eq!(d.throughput_retention, 0.0);
    }

    #[test]
    fn injection_is_deterministic() {
        let f = fixture();
        let inj = f.injector();
        let sc = FaultScenario::random(42, 3, 3);
        let a = inj.inject(&sc);
        let b = inj.inject(&sc);
        assert_eq!(a, b);
    }

    #[test]
    fn adding_domains_never_raises_capacity_retention() {
        let f = fixture();
        let inj = f.injector();
        let domains = [
            FaultDomain::TraySegments { count: 1 },
            FaultDomain::PowerFeedPair { pair: 0 },
            FaultDomain::BundleCut { count: 2 },
            FaultDomain::LinecardBatch {
                fraction: 0.2,
                seed: 5,
            },
        ];
        let mut prev = 1.0f64;
        for k in 1..=domains.len() {
            let d = inj.inject(&FaultScenario {
                name: format!("compose-{k}"),
                domains: domains[..k].to_vec(),
            });
            assert!(
                d.capacity_retention <= prev + 1e-12,
                "retention rose when domain {k} was added: {} > {prev}",
                d.capacity_retention
            );
            prev = d.capacity_retention;
        }
    }

    #[test]
    fn sweep_is_deterministic_and_bounded() {
        let f = fixture();
        let inj = f.injector();
        let params = FaultSweepParams {
            scenarios: 6,
            max_domains: 2,
            seed: 7,
        };
        let a = inj.sweep(&params);
        let b = inj.sweep(&params);
        assert_eq!(a, b);
        assert_eq!(a.scenarios, 6);
        assert!(a.worst_capacity_retention <= a.mean_capacity_retention);
        assert!(a.worst_throughput_retention <= a.mean_throughput_retention);
        assert!((0.0..=1.0).contains(&a.mean_capacity_retention));
        assert!((0.0..=1.0).contains(&a.mean_throughput_retention));
        assert!(a.resilience_gap.abs() <= 1.0);
    }

    #[test]
    fn sweep_is_byte_identical_at_any_job_count() {
        let f = fixture();
        let inj = f.injector();
        let params = FaultSweepParams {
            scenarios: 5,
            max_domains: 2,
            seed: 13,
        };
        let serial = inj.sweep_with_jobs(&params, 1);
        for jobs in [2, 4, 9] {
            let parallel = inj.sweep_with_jobs(&params, jobs);
            assert_eq!(
                serde_json::to_string(&serial).unwrap(),
                serde_json::to_string(&parallel).unwrap(),
                "sweep diverged at jobs={jobs}"
            );
        }
    }
}
