//! Decommissioning safety: "it can be hard to know for sure what cannot be
//! removed" (§2.1).
//!
//! The checker keeps per-port service state — in service, drained, or
//! planned for future service — and enforces the paper's rule verbatim:
//! "we can only remove a cable bundle once none of the affected ports are
//! still in service, and none are planned to be in service soon."
//!
//! [`DecomChecker::naive_removal_outages`] quantifies what happens without
//! the rule: how many removals in a random decom order would have cut
//! live or planned-live ports.

use pd_topology::{LinkId, Network, SwitchId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Service state of one switch's ports on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortState {
    /// Carrying (or ready to carry) traffic.
    InService,
    /// Drained: traffic moved away, hardware still connected.
    Drained,
    /// Not in service now, but a pending work order will use it.
    Planned,
    /// Free: no current or planned use.
    Free,
}

/// Why a removal was refused.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecomError {
    /// A port on the link is in service.
    PortInService {
        /// The switch whose port blocks removal.
        switch: SwitchId,
    },
    /// A port on the link is planned for service.
    PortPlanned {
        /// The switch whose planned port blocks removal.
        switch: SwitchId,
    },
    /// Unknown link.
    UnknownLink(LinkId),
}

impl std::fmt::Display for DecomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecomError::PortInService { switch } => {
                write!(f, "port on {switch} still in service")
            }
            DecomError::PortPlanned { switch } => {
                write!(f, "port on {switch} planned for service")
            }
            DecomError::UnknownLink(l) => write!(f, "unknown link {l}"),
        }
    }
}

impl std::error::Error for DecomError {}

/// Tracks per-(link, end) service state and authorizes removals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecomChecker {
    /// State per (link, endpoint switch).
    states: HashMap<(LinkId, SwitchId), PortState>,
    /// Links already removed.
    removed: Vec<LinkId>,
}

impl DecomChecker {
    /// Initializes with every link end in service.
    pub fn all_in_service(net: &Network) -> Self {
        let mut states = HashMap::new();
        for l in net.links() {
            states.insert((l.id, l.a), PortState::InService);
            states.insert((l.id, l.b), PortState::InService);
        }
        Self {
            states,
            removed: Vec::new(),
        }
    }

    /// Sets the state of one link end.
    pub fn set_state(&mut self, link: LinkId, end: SwitchId, state: PortState) {
        self.states.insert((link, end), state);
    }

    /// Drains both ends of a link.
    pub fn drain_link(&mut self, net: &Network, link: LinkId) {
        if let Some(l) = net.link(link) {
            self.set_state(link, l.a, PortState::Drained);
            self.set_state(link, l.b, PortState::Drained);
        }
    }

    /// Marks both ends of a link as planned-for-service (a pending work
    /// order — the §2.1 subtlety naive tooling misses).
    pub fn plan_link(&mut self, net: &Network, link: LinkId) {
        if let Some(l) = net.link(link) {
            self.set_state(link, l.a, PortState::Planned);
            self.set_state(link, l.b, PortState::Planned);
        }
    }

    /// The paper's removal rule. `Ok(())` iff **no** affected port is in
    /// service or planned.
    pub fn can_remove(&self, net: &Network, link: LinkId) -> Result<(), DecomError> {
        let l = net.link(link).ok_or(DecomError::UnknownLink(link))?;
        for end in [l.a, l.b] {
            match self.states.get(&(link, end)).copied().unwrap_or(PortState::Free) {
                PortState::InService => return Err(DecomError::PortInService { switch: end }),
                PortState::Planned => return Err(DecomError::PortPlanned { switch: end }),
                PortState::Drained | PortState::Free => {}
            }
        }
        Ok(())
    }

    /// Checked removal: verifies the rule, then removes from the network.
    pub fn remove(&mut self, net: &mut Network, link: LinkId) -> Result<(), DecomError> {
        self.can_remove(net, link)?;
        net.remove_link(link).map_err(|_| DecomError::UnknownLink(link))?;
        self.removed.push(link);
        Ok(())
    }

    /// Links removed so far.
    pub fn removed(&self) -> &[LinkId] {
        &self.removed
    }

    /// Counts how many of `order`'s removals would have cut an in-service
    /// or planned port if executed blindly — the outage count a naive decom
    /// procedure risks.
    pub fn naive_removal_outages(&self, net: &Network, order: &[LinkId]) -> usize {
        order
            .iter()
            .filter(|&&l| self.can_remove(net, l).is_err())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_geometry::Gbps;
    use pd_topology::gen::leaf_spine;

    fn net() -> Network {
        leaf_spine(3, 2, 4, 1, Gbps::new(100.0)).unwrap()
    }

    #[test]
    fn in_service_links_refuse_removal() {
        let mut n = net();
        let mut checker = DecomChecker::all_in_service(&n);
        let link = n.links().next().unwrap().id;
        assert!(matches!(
            checker.can_remove(&n, link),
            Err(DecomError::PortInService { .. })
        ));
        assert!(checker.remove(&mut n, link).is_err());
        assert_eq!(n.link_count(), 6);
    }

    #[test]
    fn drained_links_can_be_removed() {
        let mut n = net();
        let mut checker = DecomChecker::all_in_service(&n);
        let link = n.links().next().unwrap().id;
        checker.drain_link(&n, link);
        assert!(checker.remove(&mut n, link).is_ok());
        assert_eq!(n.link_count(), 5);
        assert_eq!(checker.removed(), &[link]);
    }

    #[test]
    fn planned_ports_block_removal() {
        let n = net();
        let mut checker = DecomChecker::all_in_service(&n);
        let link = n.links().next().unwrap().id;
        checker.drain_link(&n, link);
        checker.plan_link(&n, link); // a pending work order re-uses it
        assert!(matches!(
            checker.can_remove(&n, link),
            Err(DecomError::PortPlanned { .. })
        ));
    }

    #[test]
    fn one_drained_end_is_not_enough() {
        let n = net();
        let mut checker = DecomChecker::all_in_service(&n);
        let l = n.links().next().unwrap().clone();
        checker.set_state(l.id, l.a, PortState::Drained);
        // l.b still in service.
        assert!(matches!(
            checker.can_remove(&n, l.id),
            Err(DecomError::PortInService { switch }) if switch == l.b
        ));
    }

    #[test]
    fn naive_order_counts_outages() {
        let n = net();
        let mut checker = DecomChecker::all_in_service(&n);
        let links: Vec<LinkId> = n.links().map(|l| l.id).collect();
        // Drain half of them.
        for l in links.iter().take(3) {
            checker.drain_link(&n, *l);
        }
        let outages = checker.naive_removal_outages(&n, &links);
        assert_eq!(outages, 3, "the 3 undrained links would have caused outages");
    }

    #[test]
    fn unknown_link_error() {
        let n = net();
        let checker = DecomChecker::all_in_service(&n);
        assert_eq!(
            checker.can_remove(&n, LinkId(999)),
            Err(DecomError::UnknownLink(LinkId(999)))
        );
    }
}
