//! Live design conversion: the paper's §4.3 case study.
//!
//! Google converted deployed Jupiter fabrics from fat-trees to the
//! direct-connect design by re-patching fibers at the OCS layer: "we
//! temporarily drain traffic from each OCS rack, then technicians perform
//! the complex task of moving a lot of fibers …, and then we un-drain the
//! rack. This process takes multiple hours of human labor per rack, across
//! many racks."
//!
//! [`ConversionPlan::plan`] reproduces that process against a cabling plan
//! whose spine links run through indirection sites: one drained window per
//! site, fiber moves counted from the actual cables landed on that site,
//! and the §4.3 lesson quantified — *because* the fabric was built with an
//! indirection layer, the conversion never touches a switch rack or pulls
//! a new cable.

use crate::metrics::{RewirePlan, RewireSite};
use pd_cabling::CablingPlan;
use pd_costing::calib::LaborCalibration;
use pd_geometry::Hours;
use pd_physical::SlotId;
use serde::{Deserialize, Serialize};

/// Conversion parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConversionParams {
    /// Sites whose windows may be drained concurrently (1 = fully serial,
    /// the conservative §4.3 process).
    pub concurrent_windows: usize,
    /// Per-window fixed overhead: drain, coordination, validation, undrain.
    pub window_overhead: Hours,
    /// Fraction of each site's fibers that must move (converting fat-tree
    /// to direct-connect re-homes the spine-facing half of each circuit;
    /// 0.5 is the §4.3 geometry).
    pub move_fraction: f64,
}

impl Default for ConversionParams {
    fn default() -> Self {
        Self {
            concurrent_windows: 1,
            window_overhead: Hours::new(1.0),
            move_fraction: 0.5,
        }
    }
}

/// One drained maintenance window at one indirection site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConversionWindow {
    /// Which site (index into the cabling plan's sites).
    pub site: usize,
    /// The site's rack slot.
    pub slot: SlotId,
    /// Fibers moved during the window.
    pub fibers_moved: usize,
    /// Window duration (overhead + moves).
    pub duration: Hours,
    /// Fraction of OCS-layer capacity offline during the window.
    pub capacity_offline: f64,
}

/// The complete conversion plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConversionPlan {
    /// Every window, in execution order.
    pub windows: Vec<ConversionWindow>,
    /// The equivalent rewire plan (for lifecycle-complexity metrics).
    pub rewires: RewirePlan,
    /// Total hands-on technician hours.
    pub tech_hours: Hours,
    /// Wall-clock duration given the concurrency limit.
    pub wall_clock: Hours,
}

impl ConversionPlan {
    /// Plans the fat-tree → direct-connect conversion for a cabling plan
    /// with indirection sites.
    ///
    /// Returns `None` if the plan has no indirection sites — a network
    /// cabled switch-to-switch cannot be converted this way at all, which
    /// is the §4.3 lesson ("indirection made it much easier to 'redesign'
    /// a live network"): the caller should surface that as *infeasible
    /// without a full re-cable*.
    pub fn plan(
        plan: &CablingPlan,
        calib: &LaborCalibration,
        params: &ConversionParams,
    ) -> Option<Self> {
        if plan.sites.is_empty() {
            return None;
        }
        // Count cables landed on each site (half-runs with via_site).
        let mut per_site = vec![0usize; plan.sites.len()];
        for run in &plan.runs {
            if let Some(s) = run.via_site {
                if run.half == 0 {
                    per_site[s] += 1;
                }
            }
        }
        let move_time = crate::repair_move_fiber_time(calib);
        let mut windows = Vec::new();
        let mut rewires = RewirePlan::default();
        let total_sites = plan.sites.len().max(1);
        for (i, site) in plan.sites.iter().enumerate() {
            let fibers = (per_site[i] as f64 * params.move_fraction).ceil() as usize;
            if fibers == 0 {
                continue;
            }
            let duration = params.window_overhead + move_time * fibers as f64;
            windows.push(ConversionWindow {
                site: i,
                slot: site.slot,
                fibers_moved: fibers,
                duration,
                capacity_offline: 1.0 / total_sites as f64,
            });
            for k in 0..fibers {
                rewires.push(
                    RewireSite::Panel {
                        slot: site.slot,
                        software_only: false,
                    },
                    format!("site {i}: re-patch fiber {k} from spine to aggregation"),
                );
            }
        }
        let tech_hours: Hours = windows.iter().map(|w| w.duration).sum();
        // Wall clock: windows scheduled round-robin over the concurrency
        // budget (equal-length bins approximation: serial chains of
        // ceil(n/k) windows).
        let k = params.concurrent_windows.max(1);
        let mut lanes = vec![Hours::ZERO; k];
        for w in &windows {
            // Assign to the least-loaded lane.
            let lane = lanes
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            lanes[lane] += w.duration;
        }
        let wall_clock = lanes.into_iter().fold(Hours::ZERO, Hours::max);
        Some(Self {
            windows,
            rewires,
            tech_hours,
            wall_clock,
        })
    }

    /// Worst capacity loss at any instant (with serial windows: one site's
    /// share; with k concurrent: k sites' share).
    pub fn peak_capacity_loss(&self, concurrent: usize) -> f64 {
        let per = self
            .windows
            .first()
            .map(|w| w.capacity_offline)
            .unwrap_or(0.0);
        (per * concurrent.max(1) as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_cabling::CablingPolicy;
    use pd_physical::placement::EquipmentProfile;
    use pd_physical::{Hall, HallSpec, Placement, PlacementStrategy};
    use pd_topology::gen::{folded_clos, ClosParams};

    fn ocs_plan() -> CablingPlan {
        let p = ClosParams {
            spine_via_panels: true,
            ..ClosParams::default()
        };
        let net = folded_clos(&p).unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default())
    }

    #[test]
    fn conversion_plans_one_window_per_site() {
        let plan = ocs_plan();
        let conv =
            ConversionPlan::plan(&plan, &LaborCalibration::default(), &ConversionParams::default())
                .unwrap();
        assert_eq!(conv.windows.len(), plan.sites.len());
        // 128 mediated links land on the site; half must move.
        let moved: usize = conv.windows.iter().map(|w| w.fibers_moved).sum();
        assert_eq!(moved, 64);
        // The paper's observation: multiple hours of labor per rack.
        for w in &conv.windows {
            assert!(w.duration > Hours::new(2.0), "window {}", w.duration);
        }
        assert_eq!(conv.rewires.len(), moved);
        assert_eq!(conv.rewires.new_cables, 0, "no new cables — that's the point");
    }

    #[test]
    fn concurrency_shortens_wall_clock_not_labor() {
        let plan = ocs_plan();
        let c = LaborCalibration::default();
        let serial =
            ConversionPlan::plan(&plan, &c, &ConversionParams::default()).unwrap();
        let parallel = ConversionPlan::plan(
            &plan,
            &c,
            &ConversionParams {
                concurrent_windows: 4,
                ..ConversionParams::default()
            },
        )
        .unwrap();
        assert_eq!(serial.tech_hours, parallel.tech_hours);
        assert!(parallel.wall_clock <= serial.wall_clock);
        assert!(
            parallel.peak_capacity_loss(4) >= serial.peak_capacity_loss(1),
            "parallelism trades capacity for speed"
        );
    }

    #[test]
    fn direct_cabled_network_cannot_convert() {
        let p = ClosParams::default(); // spine_via_panels = false
        let net = folded_clos(&p).unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        assert!(ConversionPlan::plan(
            &plan,
            &LaborCalibration::default(),
            &ConversionParams::default()
        )
        .is_none());
    }
}
