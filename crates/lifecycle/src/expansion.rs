//! Incremental expansion planners.
//!
//! Two families, mirroring the paper's §4.1/§4.2 contrast:
//!
//! * **Clos pod addition** ([`clos_add_pods`]): the spine's ports must be
//!   redistributed from the old pods to include the new ones. *Without*
//!   indirection, every moved link is a physical cable re-run between two
//!   racks. *With* a patch-panel layer, the same logical rewiring is a
//!   jumper move at a panel (Zhao et al. \[56\]); with an OCS it is a
//!   software reconfiguration (Poutievski et al. \[39\]). The logical move
//!   count is identical — indirection changes *where and how* the moves
//!   happen, which is exactly the deployability difference.
//! * **Flat/random ToR addition** ([`flat_add_tor`]): Jellyfish-style
//!   incremental growth breaks ⌈d/2⌉ random existing links and splices the
//!   new ToR in (the "d/2 links to be rewired each time a d-port ToR is
//!   added" of §4.2). Every one of those is a physical re-run between
//!   switch racks — random graphs have no panel layer to hide behind.

use crate::metrics::{RewirePlan, RewireSite};
use pd_physical::{Placement, SlotId};
use pd_topology::gen::SplitMix64;
use pd_topology::{Network, SwitchId, SwitchRole};
use serde::{Deserialize, Serialize};

/// How agg↔spine rewiring physically happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndirectionLevel {
    /// Cables run switch-to-switch; every move is a re-run.
    None,
    /// A passive patch-panel layer; moves are jumper moves at panels.
    PatchPanel,
    /// An OCS layer; moves are software reconfigurations.
    Ocs,
}

/// Parameters for Clos pod expansion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosExpansionParams {
    /// Pods before expansion.
    pub old_pods: usize,
    /// Pods after expansion.
    pub new_pods: usize,
    /// Aggregation switches per pod.
    pub aggs_per_pod: usize,
    /// Spine switches.
    pub spines: usize,
    /// Ports each spine devotes to the aggregation layer.
    pub spine_ports: usize,
    /// What mediates the agg↔spine layer.
    pub indirection: IndirectionLevel,
    /// Slot of the panel/OCS rack serving each spine (panel mode); spine
    /// `i` uses entry `i % len`. Ignored for [`IndirectionLevel::None`].
    pub panel_slots: Vec<SlotId>,
    /// Representative slots for old-pod agg racks (move endpoints without
    /// indirection). Entry `i % len` serves pod `i`.
    pub pod_slots: Vec<SlotId>,
    /// Slots of the new pods' agg racks.
    pub new_pod_slots: Vec<SlotId>,
}

/// Plans a Clos expansion from `old_pods` to `new_pods`.
///
/// The balanced-striping model (Zhao \[56\]'s setting): each spine spreads
/// its `spine_ports` evenly over all pod aggs. With `P` pods × `A` aggs,
/// each (agg, spine) pair carries `floor(spine_ports / (P·A))` links (the
/// remainder is ignored — real designs choose divisible counts). Moving
/// from `P` to `P'` pods shrinks per-pair trunking from `t` to `t'`; each
/// spine must hand `(t − t') × P·A` link-ends from old aggs to new ones.
pub fn clos_add_pods(p: &ClosExpansionParams) -> RewirePlan {
    assert!(p.new_pods > p.old_pods, "expansion must add pods");
    assert!(p.old_pods > 0 && p.aggs_per_pod > 0 && p.spines > 0);
    let old_pairs = p.old_pods * p.aggs_per_pod;
    let new_pairs = p.new_pods * p.aggs_per_pod;
    let t_old = p.spine_ports / old_pairs;
    let t_new = p.spine_ports / new_pairs;
    let mut plan = RewirePlan::default();
    if t_new == 0 {
        // The spine cannot reach that many pods; the plan is infeasible and
        // reported as an empty plan with everything "new" (the caller can
        // detect t_new == 0 themselves via radix math).
        return plan;
    }

    for spine in 0..p.spines {
        // Each old (agg, spine) pair gives up (t_old − t_new) links.
        let moves_per_pair = t_old - t_new;
        for pod in 0..p.old_pods {
            for agg in 0..p.aggs_per_pod {
                for k in 0..moves_per_pair {
                    let what = format!(
                        "spine{spine}: move link {k} of p{pod}-agg{agg} to a new pod"
                    );
                    let site = match p.indirection {
                        IndirectionLevel::None => RewireSite::SwitchRacks {
                            a: p.pod_slots[pod % p.pod_slots.len().max(1)],
                            b: p.new_pod_slots
                                [(pod * p.aggs_per_pod + agg) % p.new_pod_slots.len().max(1)],
                        },
                        IndirectionLevel::PatchPanel => RewireSite::Panel {
                            slot: p.panel_slots[spine % p.panel_slots.len().max(1)],
                            software_only: false,
                        },
                        IndirectionLevel::Ocs => RewireSite::Panel {
                            slot: p.panel_slots[spine % p.panel_slots.len().max(1)],
                            software_only: true,
                        },
                    };
                    plan.push(site, what);
                }
            }
        }
    }
    // New pods also need entirely new cables: each new (agg, spine) pair
    // gets t_new links, plus the moved ones terminate there. New pulls =
    // new pods' aggs × spines × t_new (switch→panel or switch→switch runs).
    let added_pods = p.new_pods - p.old_pods;
    plan.new_cables = added_pods * p.aggs_per_pod * p.spines * t_new;
    plan
}

/// Parameters for flat/random-graph ToR addition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatExpansionParams {
    /// Network degree of the new ToR.
    pub degree: usize,
    /// RNG seed for link selection.
    pub seed: u64,
    /// Server downlinks on the new ToR.
    pub servers_per_tor: u16,
}

/// Adds one ToR to a flat random network (Jellyfish incremental growth):
/// select ⌈d/2⌉ existing links at random, break each (u,v), and connect
/// u→new and v→new. Mutates `net` and returns the physical rewire plan.
///
/// Every break-and-splice is a switch-rack-to-switch-rack operation; the
/// returned plan's sites use the placement's slots so locality metrics are
/// honest about the floor distances involved.
pub fn flat_add_tor(
    net: &mut Network,
    placement_slots: impl Fn(SwitchId) -> Option<SlotId>,
    p: &FlatExpansionParams,
) -> (SwitchId, RewirePlan) {
    let mut rng = SplitMix64::new(p.seed);
    let degree = p.degree;
    let splices = degree.div_ceil(2);

    let speed = net
        .links()
        .next()
        .map(|l| l.speed)
        .unwrap_or(pd_geometry::Gbps::new(100.0));
    let block = net.new_block();
    let idx = net.switch_count();
    let new_tor = net.add_switch(
        format!("jf-added-{idx}"),
        SwitchRole::FlatTor,
        0,
        degree as u16 + p.servers_per_tor,
        speed,
        p.servers_per_tor,
        Some(block),
    );

    let mut plan = RewirePlan::default();
    for s in 0..splices {
        // Pick a random link not already incident to the new ToR.
        let candidates: Vec<_> = net
            .links()
            .filter(|l| l.a != new_tor && l.b != new_tor)
            .map(|l| l.id)
            .collect();
        if candidates.is_empty() {
            break;
        }
        let victim_id = candidates[rng.below(candidates.len())];
        let victim = net.remove_link(victim_id).expect("picked from list");
        net.add_link(victim.a, new_tor, speed, 1, false)
            .expect("new tor has free ports");
        // The second splice may exceed degree if d is odd and this is the
        // last round; only attach if ports remain.
        if net.ports_free(new_tor) > 0 {
            net.add_link(victim.b, new_tor, speed, 1, false)
                .expect("checked free ports");
        }
        let slot_a = placement_slots(victim.a).unwrap_or(SlotId(0));
        let slot_b = placement_slots(victim.b).unwrap_or(SlotId(0));
        plan.push(
            RewireSite::SwitchRacks {
                a: slot_a,
                b: slot_b,
            },
            format!("splice {s}: break {}–{} and re-home both ends", victim.a, victim.b),
        );
        // One broken link yields two new cables to the new ToR; the old
        // cable is abandoned in place (§2.1).
        plan.new_cables += 2;
        plan.abandoned_cables += 1;
    }
    (new_tor, plan)
}

/// Convenience: panel/pod slot lists from a placement, for building
/// [`ClosExpansionParams`] against a real placed network.
pub fn pod_slots_of(net: &Network, placement: &Placement) -> Vec<SlotId> {
    let mut slots: Vec<SlotId> = Vec::new();
    for b in net.blocks() {
        if let Some(first) = net
            .block_members(b)
            .into_iter()
            .find(|&s| net.switch(s).map(|s| s.layer < 2).unwrap_or(false))
        {
            if let Some(slot) = placement.slot_of(first) {
                slots.push(slot);
            }
        }
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_geometry::Gbps;
    use pd_physical::{Hall, HallSpec};
    use pd_topology::gen::{jellyfish, JellyfishParams};

    fn params(indirection: IndirectionLevel) -> ClosExpansionParams {
        ClosExpansionParams {
            old_pods: 4,
            new_pods: 8,
            aggs_per_pod: 4,
            spines: 8,
            spine_ports: 64,
            indirection,
            panel_slots: (0..4).map(SlotId).collect(),
            pod_slots: (10..18).map(SlotId).collect(),
            new_pod_slots: (20..36).map(SlotId).collect(),
        }
    }

    #[test]
    fn clos_expansion_move_count_matches_formula() {
        // t_old = 64/16 = 4, t_new = 64/32 = 2 ⇒ each spine moves
        // (4−2)×16 = 32 link-ends; ×8 spines = 256 moves.
        let plan = clos_add_pods(&params(IndirectionLevel::None));
        assert_eq!(plan.len(), 256);
        // New cables: 4 added pods × 4 aggs × 8 spines × t_new 2 = 256.
        assert_eq!(plan.new_cables, 256);
    }

    #[test]
    fn indirection_changes_where_not_how_many() {
        let hall = Hall::new(HallSpec::default());
        let none = clos_add_pods(&params(IndirectionLevel::None));
        let panel = clos_add_pods(&params(IndirectionLevel::PatchPanel));
        let ocs = clos_add_pods(&params(IndirectionLevel::Ocs));
        assert_eq!(none.len(), panel.len());
        assert_eq!(panel.len(), ocs.len());

        let per_move = pd_geometry::Hours::from_minutes(4.0);
        let per_pull = pd_geometry::Hours::from_minutes(20.0);
        let c_none = none.complexity(&hall, per_move, per_pull);
        let c_panel = panel.complexity(&hall, per_move, per_pull);
        let c_ocs = ocs.complexity(&hall, per_move, per_pull);
        // No indirection: moves touch pod racks scattered on the floor.
        assert!(c_none.racks_touched > 0);
        assert_eq!(c_none.panels_touched, 0);
        // Panels: all moves concentrated at 4 panels.
        assert_eq!(c_panel.panels_touched, 4);
        assert_eq!(c_panel.racks_touched, 0);
        assert_eq!(c_panel.max_links_per_panel, 64);
        // OCS: no human touches at all for the moves.
        assert_eq!(c_ocs.software_steps, 256);
        assert_eq!(c_ocs.panels_touched, 0);
        assert!(c_ocs.labor < c_panel.labor);
        assert!(c_panel.walking < c_none.walking);
    }

    #[test]
    fn infeasible_expansion_returns_empty_moves() {
        let mut p = params(IndirectionLevel::None);
        p.new_pods = 40; // 40×4 = 160 pairs > 64 spine ports
        let plan = clos_add_pods(&p);
        assert_eq!(plan.len(), 0);
    }

    #[test]
    fn flat_add_tor_rewires_half_degree() {
        let mut net = jellyfish(&JellyfishParams {
            tors: 30,
            network_degree: 6,
            servers_per_tor: 4,
            link_speed: Gbps::new(100.0),
            seed: 7,
        })
        .unwrap();
        let links_before = net.link_count();
        let (new_tor, plan) = flat_add_tor(
            &mut net,
            |_| Some(SlotId(0)),
            &FlatExpansionParams {
                degree: 6,
                seed: 11,
                servers_per_tor: 4,
            },
        );
        // d/2 = 3 splices; each removes 1 link and adds 2.
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.new_cables, 6);
        assert_eq!(plan.abandoned_cables, 3);
        assert_eq!(net.link_count(), links_before + 3);
        assert_eq!(net.degree(new_tor), 6);
        assert!(net.validate().is_ok());
        assert!(net.is_connected());
    }

    #[test]
    fn flat_add_tor_odd_degree() {
        let mut net = jellyfish(&JellyfishParams {
            tors: 20,
            network_degree: 5,
            servers_per_tor: 2,
            link_speed: Gbps::new(100.0),
            seed: 3,
        })
        .unwrap();
        let (new_tor, plan) = flat_add_tor(
            &mut net,
            |_| Some(SlotId(0)),
            &FlatExpansionParams {
                degree: 5,
                seed: 4,
                servers_per_tor: 2,
            },
        );
        // ⌈5/2⌉ = 3 splices, but the last only attaches one end.
        assert_eq!(plan.len(), 3);
        assert_eq!(net.degree(new_tor), 5);
        assert!(net.validate().is_ok());
    }

    #[test]
    fn flat_add_tor_deterministic() {
        let mk = || {
            let mut net = jellyfish(&JellyfishParams {
                tors: 20,
                network_degree: 4,
                servers_per_tor: 2,
                link_speed: Gbps::new(100.0),
                seed: 5,
            })
            .unwrap();
            let (_, plan) = flat_add_tor(
                &mut net,
                |_| Some(SlotId(0)),
                &FlatExpansionParams {
                    degree: 4,
                    seed: 9,
                    servers_per_tor: 2,
                },
            );
            (
                plan.moves.iter().map(|m| m.what.clone()).collect::<Vec<_>>(),
                net.link_count(),
            )
        };
        assert_eq!(mk(), mk());
    }
}
