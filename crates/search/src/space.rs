//! The explorable parameter space and its enumeration strategies.
//!
//! A [`ParamSpace`] is the Cartesian product of the design knobs the paper's
//! research agenda asks to sweep (§5.2/§5.4): topology family, target
//! server count, link speed, construction seed, hall geometry, cabling
//! media policy, and the fault-scenario ensemble size. A [`Point`] is one
//! coordinate in that product; [`Point::spec`] materializes it into the
//! [`DesignSpec`] the pipeline evaluates, and [`Point::key`] gives the
//! stable FNV-1a identity the checkpoint file dedups on.
//!
//! A [`Strategy`] turns the space into an ordered candidate list: full
//! [`Strategy::Grid`] enumeration, seeded [`Strategy::Random`] subsampling,
//! or [`Strategy::Adaptive`] successive halving (cheap generation +
//! placement proxies first, full pipeline only for promoted survivors —
//! see `runner`). All three are pure functions of their parameters, so a
//! plan is byte-identical across runs, job counts, and resumes.

use pd_core::compare;
use pd_core::design::{DesignSpec, TopologySpec};
use pd_geometry::Gbps;
use pd_physical::HallSpec;
use pd_topology::gen::{cache_key, SplitMix64};
use serde::{Deserialize, Serialize};

/// A topology family the search can instantiate, in `pd_core::compare`'s
/// presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Family {
    /// Canonical k-ary fat-tree.
    FatTree,
    /// Parameterized folded Clos.
    FoldedClos,
    /// Two-tier leaf-spine.
    LeafSpine,
    /// Jellyfish random regular graph.
    Jellyfish,
    /// Xpander k-lift.
    Xpander,
    /// Slim Fly MMS graph.
    SlimFly,
    /// 2D flattened butterfly.
    FlattenedButterfly,
    /// FatClique hierarchical cliques.
    FatClique,
    /// Direct-connect blocks over an OCS layer.
    DirectConnect,
}

impl Family {
    /// Every family, in presentation order (the order envelope summaries
    /// and frontier tables list them in).
    pub const ALL: [Family; 9] = [
        Family::FatTree,
        Family::FoldedClos,
        Family::LeafSpine,
        Family::Jellyfish,
        Family::Xpander,
        Family::SlimFly,
        Family::FlattenedButterfly,
        Family::FatClique,
        Family::DirectConnect,
    ];

    /// The short report name (matches [`TopologySpec::family`]).
    pub fn name(self) -> &'static str {
        match self {
            Family::FatTree => "fat-tree",
            Family::FoldedClos => "folded-clos",
            Family::LeafSpine => "leaf-spine",
            Family::Jellyfish => "jellyfish",
            Family::Xpander => "xpander",
            Family::SlimFly => "slimfly",
            Family::FlattenedButterfly => "flat-bf",
            Family::FatClique => "fatclique",
            Family::DirectConnect => "direct-connect",
        }
    }

    /// Parses the short report name back to a family — the inverse of
    /// [`Family::name`], used by wire protocols (pd-serve) and CLI flags.
    /// `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Builds the size-normalized topology sub-spec for this family (the
    /// `pd_core::compare` constructors; `seed` only matters to the
    /// randomized families).
    pub fn topology(self, target_servers: usize, speed: Gbps, seed: u64) -> TopologySpec {
        match self {
            Family::FatTree => compare::fat_tree_near(target_servers, speed),
            Family::FoldedClos => compare::folded_clos_near(target_servers, speed),
            Family::LeafSpine => compare::leaf_spine_near(target_servers, speed),
            Family::Jellyfish => compare::jellyfish_near(target_servers, speed, seed),
            Family::Xpander => compare::xpander_near(target_servers, speed, seed),
            Family::SlimFly => compare::slimfly_near(target_servers, speed),
            Family::FlattenedButterfly => {
                compare::flattened_butterfly_near(target_servers, speed)
            }
            Family::FatClique => compare::fatclique_near(target_servers, speed),
            Family::DirectConnect => compare::direct_connect_near(target_servers, speed),
        }
    }
}

/// Named hall geometries the space can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HallVariant {
    /// The workspace default hall (10 rows × 20 slots).
    Standard,
    /// A floor-constrained hall (8 rows × 14 slots): placement pressure —
    /// the knob that drives families into their feasibility boundary.
    Dense,
    /// A long, narrow hall (4 rows × 50 slots): the same slot count as
    /// `Standard` but stretched, stressing cable reach and tray runs.
    Long,
}

impl HallVariant {
    /// Every variant, in declaration order.
    pub const ALL: [HallVariant; 3] =
        [HallVariant::Standard, HallVariant::Dense, HallVariant::Long];

    /// Parses a variant name — either the canonical [`HallVariant::name`]
    /// (`"hall-std"`) or its unprefixed tail (`"std"`). `None` for unknown
    /// names.
    pub fn from_name(name: &str) -> Option<HallVariant> {
        HallVariant::ALL
            .into_iter()
            .find(|h| h.name() == name || h.name().strip_prefix("hall-") == Some(name))
    }

    /// Display name (used in point labels and JSONL records).
    pub fn name(self) -> &'static str {
        match self {
            HallVariant::Standard => "hall-std",
            HallVariant::Dense => "hall-dense",
            HallVariant::Long => "hall-long",
        }
    }

    /// The concrete hall specification.
    pub fn spec(self) -> HallSpec {
        match self {
            HallVariant::Standard => HallSpec::default(),
            HallVariant::Dense => HallSpec {
                rows: 8,
                slots_per_row: 14,
                ..HallSpec::default()
            },
            HallVariant::Long => HallSpec {
                rows: 4,
                slots_per_row: 50,
                ..HallSpec::default()
            },
        }
    }
}

/// Named cabling-media policies the space can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MediaPolicy {
    /// The default catalog, OCS indirection.
    Standard,
    /// Reach derated to 0.8 — designing to the second-best vendor's part
    /// (§2.2 fungibility), which pushes marginal runs to pricier media.
    DeratedReach,
    /// Indirection through passive patch panels instead of OCS.
    PatchPanel,
}

impl MediaPolicy {
    /// Every policy, in declaration order.
    pub const ALL: [MediaPolicy; 3] = [
        MediaPolicy::Standard,
        MediaPolicy::DeratedReach,
        MediaPolicy::PatchPanel,
    ];

    /// Parses a policy name — either the canonical [`MediaPolicy::name`]
    /// (`"media-std"`) or its unprefixed tail (`"std"`). `None` for
    /// unknown names.
    pub fn from_name(name: &str) -> Option<MediaPolicy> {
        MediaPolicy::ALL
            .into_iter()
            .find(|m| m.name() == name || m.name().strip_prefix("media-") == Some(name))
    }

    /// Display name (used in point labels and JSONL records).
    pub fn name(self) -> &'static str {
        match self {
            MediaPolicy::Standard => "media-std",
            MediaPolicy::DeratedReach => "media-derated",
            MediaPolicy::PatchPanel => "media-panel",
        }
    }

    /// The concrete cabling policy.
    pub fn policy(self) -> pd_cabling::CablingPolicy {
        let mut p = pd_cabling::CablingPolicy::default();
        match self {
            MediaPolicy::Standard => {}
            MediaPolicy::DeratedReach => p.catalog.reach_derating = 0.8,
            MediaPolicy::PatchPanel => {
                p.indirection_kind = pd_cabling::IndirectionKind::PatchPanel
            }
        }
        p
    }
}

/// How many Monte-Carlo trials each evaluated point runs. Search sweeps
/// default to a lighter profile than single-design evaluation: points are
/// compared against each other under identical settings, so the absolute
/// confidence of any one estimate matters less than covering the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialProfile {
    /// Yield-simulation trials per point.
    pub yield_trials: usize,
    /// Repair-simulation trials per point.
    pub repair_trials: usize,
}

impl Default for TrialProfile {
    fn default() -> Self {
        Self {
            yield_trials: 10,
            repair_trials: 3,
        }
    }
}

/// One coordinate in the design space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Topology family.
    pub family: Family,
    /// Target server count (families round up per their granularity).
    pub servers: usize,
    /// Link speed in Gbps.
    pub speed_gbps: f64,
    /// Construction + sampling seed.
    pub seed: u64,
    /// Hall geometry.
    pub hall: HallVariant,
    /// Cabling media policy.
    pub media: MediaPolicy,
    /// Fault-sweep ensemble size (0 = sweep off).
    pub fault_scenarios: usize,
}

impl Point {
    /// Human-readable label; also the canonical encoding [`Point::key`]
    /// hashes and the `name` the materialized [`DesignSpec`] carries.
    pub fn label(&self) -> String {
        format!(
            "{}/s{}/g{}/x{}/{}/{}/f{}",
            self.family.name(),
            self.servers,
            // Speeds are catalog values (10/25/100/…): render integers
            // without a trailing ".0" so labels stay stable and readable.
            if self.speed_gbps.fract() == 0.0 {
                format!("{}", self.speed_gbps as u64)
            } else {
                format!("{}", self.speed_gbps)
            },
            self.seed,
            self.hall.name(),
            self.media.name(),
            self.fault_scenarios,
        )
    }

    /// The stable identity of this point's evaluation: an FNV-1a hash of
    /// the canonical label plus the trial profile (the full effective
    /// spec). Checkpoint resume dedups completed work on this key, and two
    /// runs of the same space always agree on it.
    pub fn key(&self, trials: &TrialProfile) -> u64 {
        cache_key(
            format!(
                "{}|y{}|r{}",
                self.label(),
                trials.yield_trials,
                trials.repair_trials
            )
            .as_bytes(),
        )
    }

    /// Materializes the full design specification for this point.
    pub fn spec(&self, trials: &TrialProfile) -> DesignSpec {
        let speed = Gbps::new(self.speed_gbps);
        let mut s = DesignSpec::new(
            self.label(),
            self.family.topology(self.servers, speed, self.seed),
        );
        s.hall = self.hall.spec();
        s.cabling = self.media.policy();
        s.seed = self.seed;
        s.yields.trials = trials.yield_trials;
        s.repair.trials = trials.repair_trials;
        if self.fault_scenarios > 0 {
            s.fault_scenarios = pd_lifecycle::FaultSweepParams {
                scenarios: self.fault_scenarios,
                max_domains: 2,
                seed: self.seed,
            };
        }
        s
    }
}

/// The Cartesian design space: one `Vec` per knob. Empty knob lists make
/// the space empty (len 0), never a panic.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpace {
    /// Families to explore.
    pub families: Vec<Family>,
    /// Target server counts, conventionally ascending (the envelope mapper
    /// walks them in sorted order regardless).
    pub servers: Vec<usize>,
    /// Link speeds (Gbps).
    pub speeds: Vec<f64>,
    /// Construction seeds.
    pub seeds: Vec<u64>,
    /// Hall geometries.
    pub halls: Vec<HallVariant>,
    /// Cabling media policies.
    pub media: Vec<MediaPolicy>,
    /// Fault-scenario ensemble sizes (0 = off).
    pub fault_scenarios: Vec<usize>,
    /// Monte-Carlo trial profile applied to every point.
    pub trials: TrialProfile,
}

impl Default for ParamSpace {
    /// Every family at the two E6-bracketing sizes, default knobs
    /// otherwise, with a small fault ensemble so the fault-retention axis
    /// is populated.
    fn default() -> Self {
        Self {
            families: Family::ALL.to_vec(),
            servers: vec![256, 512],
            speeds: vec![100.0],
            seeds: vec![11],
            halls: vec![HallVariant::Standard],
            media: vec![MediaPolicy::Standard],
            fault_scenarios: vec![2],
            trials: TrialProfile::default(),
        }
    }
}

impl ParamSpace {
    /// Total points in the full grid.
    pub fn len(&self) -> usize {
        self.families.len()
            * self.servers.len()
            * self.speeds.len()
            * self.seeds.len()
            * self.halls.len()
            * self.media.len()
            * self.fault_scenarios.len()
    }

    /// Whether the grid is empty (any knob list empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes grid index `i` (mixed-radix, family slowest / fault count
    /// fastest). Panics if `i ≥ len()`.
    pub fn point(&self, i: usize) -> Point {
        assert!(i < self.len(), "point index {i} out of range");
        let mut rest = i;
        let mut take = |n: usize| {
            let idx = rest % n;
            rest /= n;
            idx
        };
        // Fastest-varying knob first (innermost loop of the enumeration).
        let faults = take(self.fault_scenarios.len());
        let media = take(self.media.len());
        let hall = take(self.halls.len());
        let seed = take(self.seeds.len());
        let speed = take(self.speeds.len());
        let servers = take(self.servers.len());
        let family = take(self.families.len());
        Point {
            family: self.families[family],
            servers: self.servers[servers],
            speed_gbps: self.speeds[speed],
            seed: self.seeds[seed],
            hall: self.halls[hall],
            media: self.media[media],
            fault_scenarios: self.fault_scenarios[faults],
        }
    }

    /// Iterates the full grid in index order.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        (0..self.len()).map(|i| self.point(i))
    }
}

/// How to pick candidate points out of the space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// Full grid enumeration in index order, optionally truncated to the
    /// first `budget` points.
    Grid {
        /// Maximum points to evaluate (`None` = whole grid).
        budget: Option<usize>,
    },
    /// A seeded subsample of `samples` distinct grid points, in draw order
    /// (a deterministic partial Fisher–Yates over the index range).
    Random {
        /// Points to draw (clamped to the grid size).
        samples: usize,
        /// Draw seed.
        seed: u64,
    },
    /// Successive halving over the whole grid: every candidate passes
    /// through cheap proxies first — topology generation, then placement
    /// feasibility — with the survivor pool cut to `budget × eta` after
    /// generation and to `budget` after placement (ranked by how closely
    /// the built size matches the target, ties broken by grid order). Only
    /// the final survivors get the full pipeline.
    Adaptive {
        /// Full-pipeline evaluations to spend.
        budget: usize,
        /// Halving factor (≥ 2; how much wider the placement-proxy pool is
        /// than the final budget).
        eta: usize,
    },
}

impl Strategy {
    /// The ordered candidate list this strategy draws from `space`.
    /// (For [`Strategy::Adaptive`] this is the *pre-proxy* candidate set —
    /// the whole grid; the runner prunes it.)
    pub fn plan(&self, space: &ParamSpace) -> Vec<Point> {
        let n = space.len();
        match self {
            Strategy::Grid { budget } => (0..n.min(budget.unwrap_or(n)))
                .map(|i| space.point(i))
                .collect(),
            Strategy::Random { samples, seed } => {
                // Partial Fisher–Yates: draw min(samples, n) distinct
                // indices in a seed-determined order.
                let take = (*samples).min(n);
                let mut indices: Vec<usize> = (0..n).collect();
                let mut rng = SplitMix64::new(*seed);
                for drawn in 0..take {
                    let j = drawn + rng.below(n - drawn);
                    indices.swap(drawn, j);
                }
                indices[..take].iter().map(|&i| space.point(i)).collect()
            }
            Strategy::Adaptive { .. } => space.points().collect(),
        }
    }

    /// Short display name for progress output.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Grid { .. } => "grid",
            Strategy::Random { .. } => "random",
            Strategy::Adaptive { .. } => "adaptive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_space() -> ParamSpace {
        ParamSpace {
            families: vec![Family::FatTree, Family::Jellyfish],
            servers: vec![64, 128],
            speeds: vec![100.0],
            seeds: vec![7],
            halls: vec![HallVariant::Standard],
            media: vec![MediaPolicy::Standard],
            fault_scenarios: vec![0],
            trials: TrialProfile::default(),
        }
    }

    #[test]
    fn names_round_trip_through_from_name() {
        for f in Family::ALL {
            assert_eq!(Family::from_name(f.name()), Some(f));
        }
        for h in HallVariant::ALL {
            assert_eq!(HallVariant::from_name(h.name()), Some(h));
        }
        for m in MediaPolicy::ALL {
            assert_eq!(MediaPolicy::from_name(m.name()), Some(m));
        }
        // Unprefixed aliases and unknowns.
        assert_eq!(HallVariant::from_name("dense"), Some(HallVariant::Dense));
        assert_eq!(MediaPolicy::from_name("panel"), Some(MediaPolicy::PatchPanel));
        assert_eq!(Family::from_name("hypercube"), None);
        assert_eq!(HallVariant::from_name("hall-tiny"), None);
        assert_eq!(MediaPolicy::from_name(""), None);
    }

    #[test]
    fn grid_indexing_is_a_bijection() {
        let space = tiny_space();
        assert_eq!(space.len(), 4);
        let labels: Vec<String> = space.points().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "{labels:?}");
        // Family is the slowest-varying knob.
        assert!(labels[0].starts_with("fat-tree/s64"));
        assert!(labels[1].starts_with("fat-tree/s128"));
        assert!(labels[2].starts_with("jellyfish/s64"));
    }

    #[test]
    fn point_keys_are_stable_and_distinct() {
        let space = tiny_space();
        let t = space.trials;
        let a = space.point(0).key(&t);
        assert_eq!(a, space.point(0).key(&t), "same point, same key");
        let keys: Vec<u64> = space.points().map(|p| p.key(&t)).collect();
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
        // The trial profile is part of the identity.
        let heavier = TrialProfile {
            yield_trials: 60,
            repair_trials: 20,
        };
        assert_ne!(a, space.point(0).key(&heavier));
    }

    #[test]
    fn every_family_materializes_a_buildable_spec() {
        for family in Family::ALL {
            let p = Point {
                family,
                servers: 128,
                speed_gbps: 100.0,
                seed: 7,
                hall: HallVariant::Standard,
                media: MediaPolicy::Standard,
                fault_scenarios: 0,
            };
            let spec = p.spec(&TrialProfile::default());
            let net = spec
                .topology
                .build()
                .unwrap_or_else(|e| panic!("{}: {e}", family.name()));
            assert!(net.server_count() >= 128, "{}", family.name());
            assert_eq!(spec.topology.family(), family.name());
        }
    }

    #[test]
    fn fault_scenarios_knob_reaches_the_spec() {
        let mut p = Point {
            family: Family::FatTree,
            servers: 64,
            speed_gbps: 100.0,
            seed: 3,
            hall: HallVariant::Dense,
            media: MediaPolicy::PatchPanel,
            fault_scenarios: 4,
        };
        let spec = p.spec(&TrialProfile::default());
        assert_eq!(spec.fault_scenarios.scenarios, 4);
        assert_eq!(spec.hall.rows, 8);
        assert_eq!(
            spec.cabling.indirection_kind,
            pd_cabling::IndirectionKind::PatchPanel
        );
        p.fault_scenarios = 0;
        assert_eq!(p.spec(&TrialProfile::default()).fault_scenarios.scenarios, 0);
    }

    #[test]
    fn strategies_plan_deterministically() {
        let space = tiny_space();
        let grid = Strategy::Grid { budget: Some(3) };
        assert_eq!(grid.plan(&space).len(), 3);
        assert_eq!(grid.plan(&space), grid.plan(&space));

        let random = Strategy::Random {
            samples: 3,
            seed: 9,
        };
        let a = random.plan(&space);
        assert_eq!(a.len(), 3);
        assert_eq!(a, random.plan(&space), "same seed, same draw");
        let mut labels: Vec<String> = a.iter().map(|p| p.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 3, "sampling is without replacement");
        // Oversampling clamps to the grid.
        let all = Strategy::Random {
            samples: 99,
            seed: 9,
        }
        .plan(&space);
        assert_eq!(all.len(), space.len());

        let adaptive = Strategy::Adaptive { budget: 2, eta: 2 };
        assert_eq!(adaptive.plan(&space).len(), space.len());
    }

    #[test]
    fn empty_knob_makes_empty_space() {
        let mut space = tiny_space();
        space.seeds.clear();
        assert!(space.is_empty());
        assert_eq!(Strategy::Grid { budget: None }.plan(&space).len(), 0);
        assert_eq!(
            Strategy::Random {
                samples: 5,
                seed: 1
            }
            .plan(&space)
            .len(),
            0
        );
    }
}
