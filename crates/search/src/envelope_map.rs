//! Per-family feasibility-envelope mapping.
//!
//! The paper's envelope idea (§5.2) asks: across how much of the design
//! space does the automation keep working without changes? This module
//! answers the sweep-shaped version of that question: given the search's
//! records, where — walking the target-server axis upward — does each
//! topology family first stop being fully feasible (pipeline `Err`,
//! undeployable report, or a [`pd_twin::envelope::CapabilityEnvelope`]
//! break)?
//!
//! A target size counts as feasible for a family if **any** record at that
//! size is fully feasible ([`PointRecord::feasible`]) — the family can be
//! deployed there under at least one hall/media/seed choice. The boundary
//! is the smallest swept size with records but no feasible one.

use std::collections::BTreeMap;

use crate::record::PointRecord;

/// One family's feasibility boundary along the target-server axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyEnvelope {
    /// Family name.
    pub family: String,
    /// Largest swept target size with a fully feasible point (`None` =
    /// the family was never feasible in this sweep).
    pub max_feasible_servers: Option<usize>,
    /// Smallest swept target size where no point was feasible (`None` =
    /// feasible at every swept size).
    pub first_infeasible_servers: Option<usize>,
    /// A representative reason from the boundary size (first record's
    /// [`PointRecord::infeasibility`] there).
    pub boundary_reason: Option<String>,
}

impl FamilyEnvelope {
    /// True if the sweep never saw this family fail.
    pub fn unbounded_in_sweep(&self) -> bool {
        self.first_infeasible_servers.is_none()
    }
}

/// Maps every family present in `records` to its feasibility boundary.
/// Families come back in first-appearance order (the order the space
/// listed them in).
pub fn map_envelopes(records: &[PointRecord]) -> Vec<FamilyEnvelope> {
    let mut families: Vec<String> = Vec::new();
    for r in records {
        if !families.contains(&r.family) {
            families.push(r.family.clone());
        }
    }
    families
        .into_iter()
        .map(|family| {
            // target size → (any feasible, first infeasibility reason).
            let mut sizes: BTreeMap<usize, (bool, Option<String>)> = BTreeMap::new();
            for r in records.iter().filter(|r| r.family == family) {
                let entry = sizes.entry(r.target_servers).or_insert((false, None));
                if r.feasible() {
                    entry.0 = true;
                } else if entry.1.is_none() {
                    entry.1 = r.infeasibility();
                }
            }
            let max_feasible_servers =
                sizes.iter().rev().find(|(_, v)| v.0).map(|(&s, _)| s);
            let boundary = sizes.iter().find(|(_, v)| !v.0);
            FamilyEnvelope {
                family,
                max_feasible_servers,
                first_infeasible_servers: boundary.map(|(&s, _)| s),
                boundary_reason: boundary.and_then(|(_, v)| v.1.clone()),
            }
        })
        .collect()
}

/// Renders the envelope map as a markdown table.
pub fn render_envelopes(envelopes: &[FamilyEnvelope]) -> String {
    let mut out = String::new();
    out.push_str("| family | max feasible | first break | why |\n|---|---|---|---|\n");
    for e in envelopes {
        let max = e
            .max_feasible_servers
            .map_or("—".to_string(), |s| s.to_string());
        let brk = e
            .first_infeasible_servers
            .map_or("none in sweep".to_string(), |s| s.to_string());
        let why = e.boundary_reason.clone().unwrap_or_else(|| "—".to_string());
        out.push_str(&format!("| {} | {} | {} | {} |\n", e.family, max, brk, why));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PointMetrics, PointRecord, PointStatus};
    use crate::space::{Family, HallVariant, MediaPolicy, Point, TrialProfile};

    fn rec(family: Family, servers: usize, seed: u64, feasible: bool) -> PointRecord {
        let p = Point {
            family,
            servers,
            speed_gbps: 100.0,
            seed,
            hall: HallVariant::Standard,
            media: MediaPolicy::Standard,
            fault_scenarios: 0,
        };
        let mut r = PointRecord::pruned(&p, &TrialProfile::default(), "placeholder");
        r.status = PointStatus::Ok;
        r.metrics = Some(PointMetrics {
            servers_built: servers as u32,
            cost_per_server: 1000.0,
            tco_per_server: 2000.0,
            bisection: 1.0,
            throughput_per_server: 90.0,
            time_to_deploy_h: 40.0,
            fault_mean_retention: None,
            deployable: feasible,
            envelope_breaks: 0,
        });
        r
    }

    #[test]
    fn boundary_is_first_size_with_no_feasible_point() {
        let records = vec![
            rec(Family::FatTree, 128, 1, true),
            rec(Family::FatTree, 256, 1, true),
            // 512: two seeds, both infeasible → the boundary.
            rec(Family::FatTree, 512, 1, false),
            rec(Family::FatTree, 512, 2, false),
            // 1024 feasible again (non-monotone sweeps still report the
            // *first* break).
            rec(Family::FatTree, 1024, 1, true),
        ];
        let envs = map_envelopes(&records);
        assert_eq!(envs.len(), 1);
        let e = &envs[0];
        assert_eq!(e.family, "fat-tree");
        assert_eq!(e.max_feasible_servers, Some(1024));
        assert_eq!(e.first_infeasible_servers, Some(512));
        assert!(e.boundary_reason.as_deref().unwrap().contains("undeployable"));
        assert!(!e.unbounded_in_sweep());
    }

    #[test]
    fn any_feasible_point_at_a_size_keeps_it_inside() {
        let records = vec![
            rec(Family::Jellyfish, 256, 1, false),
            rec(Family::Jellyfish, 256, 2, true), // one good seed suffices
        ];
        let envs = map_envelopes(&records);
        assert_eq!(envs[0].max_feasible_servers, Some(256));
        assert!(envs[0].unbounded_in_sweep());
    }

    #[test]
    fn pruned_and_errored_records_count_as_infeasible() {
        let p = Point {
            family: Family::SlimFly,
            servers: 4096,
            speed_gbps: 100.0,
            seed: 1,
            hall: HallVariant::Standard,
            media: MediaPolicy::Standard,
            fault_scenarios: 0,
        };
        let pruned = PointRecord::pruned(
            &p,
            &TrialProfile::default(),
            "placement: hall capacity exceeded",
        );
        let envs = map_envelopes(&[rec(Family::SlimFly, 512, 1, true), pruned]);
        let e = &envs[0];
        assert_eq!(e.max_feasible_servers, Some(512));
        assert_eq!(e.first_infeasible_servers, Some(4096));
        assert!(e.boundary_reason.as_deref().unwrap().starts_with("placement:"));
    }

    #[test]
    fn families_report_independently_and_render() {
        let records = vec![
            rec(Family::FatTree, 256, 1, true),
            rec(Family::Xpander, 256, 1, false),
        ];
        let envs = map_envelopes(&records);
        assert_eq!(envs.len(), 2);
        assert!(envs[0].unbounded_in_sweep());
        assert_eq!(envs[1].max_feasible_servers, None);
        let table = render_envelopes(&envs);
        assert!(table.contains("| fat-tree | 256 | none in sweep |"), "{table}");
        assert!(table.contains("| xpander | — | 256 |"), "{table}");
    }
}
