//! The search executor: plan → (optionally) prune → evaluate → record.
//!
//! All full-pipeline work goes through
//! [`pd_core::batch::evaluate_many_controlled`], inheriting the batch
//! engine's determinism contract: records are byte-identical at any
//! `jobs` count. Points are processed in plan order in fixed-size waves;
//! after each wave the records are handed to the sink (the JSONL file),
//! so a killed run leaves a clean prefix the next run resumes from.
//!
//! The run can also *end itself* gracefully: an external
//! [`CancelToken`] ([`SearchConfig::cancel`]), a global batch deadline
//! (`pd_core::resilience::set_global_deadline`), or a deterministic
//! [`SearchConfig::eval_budget`] all stop the walk at a wave edge. Every
//! completed record is flushed; interrupted points are *dropped* — never
//! written — so a later run re-evaluates exactly those and the resumed
//! file is byte-identical to an uninterrupted one.
//!
//! The adaptive strategy's rungs are partial runs of the real pipeline:
//! [`StageState::run_to`] stopped after `Generate` (rung A) and `Place`
//! (rung B) through the shared [`ArtifactCache`] — not a
//! reimplementation — so the proxies and full evaluation cannot drift
//! apart. Because rung B *stores* each survivor's Place-tier snapshot,
//! the promoted points' full evaluations adopt that prefix instead of
//! re-placing from scratch.
//!
//! Resume reuses full-evaluation results by [`PointRecord::key`] and
//! re-derives everything cheap (pruning decisions, pruned records) from
//! scratch — proxy decisions are pure functions of the configuration, so
//! a resumed run and an uninterrupted run write the same bytes.
//!
//! Cache statistics (generation `hits`/`misses`) are reported in progress
//! output and in [`SearchOutcome`], but deliberately **not** in the JSONL:
//! under a bounded cache they can vary with thread scheduling, and the
//! output file must not.

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use pd_core::batch::{evaluate_many_controlled, ArtifactCache, BatchControl, BatchOptions};
use pd_core::design::DesignSpec;
use pd_core::resilience::CancelToken;
use pd_core::stages::{Stage, StageState};

use crate::record::{parse_jsonl, PointRecord, PointStatus};
use crate::space::{ParamSpace, Point, Strategy};

/// Everything a search run needs.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// The space to explore.
    pub space: ParamSpace,
    /// How to draw candidates from it.
    pub strategy: Strategy,
    /// Worker threads for full evaluations (0 = all cores, as
    /// [`BatchOptions`]).
    pub jobs: usize,
    /// Points per checkpoint wave (clamped ≥ 1). Smaller waves checkpoint
    /// more often; the wave size never changes the output bytes.
    pub wave: usize,
    /// Bound the run-owned artifact cache to this many entries per tier
    /// (`None` = unbounded). Ignored when [`SearchConfig::cache`] supplies
    /// a caller-owned cache, which arrives already bounded.
    pub cache_capacity: Option<usize>,
    /// Share a caller-owned [`ArtifactCache`] (the serve daemon passes its
    /// process-wide session cache here, so searches warm — and are warmed
    /// by — evaluate/batch traffic). `None` = the run builds a private
    /// cache sized by [`SearchConfig::cache_capacity`]. Never changes the
    /// records: cached prefixes are byte-identical to recomputation.
    pub cache: Option<Arc<ArtifactCache>>,
    /// Emit per-wave progress lines on stderr.
    pub progress: bool,
    /// External cancellation: when this token fires, the run stops at the
    /// next stage boundary / wave edge, flushes the completed records, and
    /// returns with [`SearchOutcome::interrupted`] set. `None` = a private
    /// never-fired token.
    pub cancel: Option<CancelToken>,
    /// Stop (gracefully, like cancellation) before starting a wave that
    /// would push the number of full evaluations past this budget.
    /// Deterministic — unlike wall-clock deadlines, equal configs stop at
    /// the same point.
    pub eval_budget: Option<usize>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            space: ParamSpace::default(),
            strategy: Strategy::Grid { budget: None },
            jobs: 0,
            wave: 8,
            cache_capacity: None,
            cache: None,
            progress: false,
            cancel: None,
            eval_budget: None,
        }
    }
}

/// What a run did, beyond the records themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// One record per planned point, in plan order — the JSONL contents.
    /// On an interrupted run, points that did not complete are *omitted*
    /// (never written as records): an interruption says nothing about the
    /// design, and a resume must re-evaluate it.
    pub records: Vec<PointRecord>,
    /// Full-pipeline evaluations executed this run (completed ones —
    /// interrupted attempts don't count).
    pub evaluated: usize,
    /// Records reused from the checkpoint instead of re-evaluating.
    pub reused: usize,
    /// Points an adaptive rung pruned.
    pub pruned: usize,
    /// Generation-cache hits across proxies and full evaluations.
    pub cache_hits: usize,
    /// Generation-cache misses.
    pub cache_misses: usize,
    /// Whether the run stopped early (cancellation, deadline, or
    /// evaluation budget) instead of exhausting the plan. The flushed
    /// records are still a valid checkpoint: rerunning resumes from them.
    pub interrupted: bool,
}

/// A planned point with the disposition the strategy already decided for
/// it (`Some(reason)` = pruned before full evaluation).
struct Planned {
    point: Point,
    prune: Option<String>,
}

/// Applies the strategy, running the adaptive proxies when asked.
fn plan(cfg: &SearchConfig, cache: &ArtifactCache) -> Vec<Planned> {
    let points = cfg.strategy.plan(&cfg.space);
    let (budget, eta) = match cfg.strategy {
        Strategy::Adaptive { budget, eta } => (budget, eta.max(2)),
        _ => {
            return points
                .into_iter()
                .map(|point| Planned { point, prune: None })
                .collect()
        }
    };

    // The rungs are partial runs of the *real* pipeline —
    // `StageState::run_to` through the shared cache — so the cheap proxies
    // can never drift from what full evaluation does, and promoted
    // survivors regenerate for free in the full pipeline.
    //
    // Rung A: stop after `Stage::Generate`. A survivor's rank is how
    // closely its built size matches the target — the cheap signal for
    // "this family's granularity actually fits here".
    let trials = cfg.space.trials;
    let specs: Vec<DesignSpec> = points.iter().map(|p| p.spec(&trials)).collect();
    let mut prune: Vec<Option<String>> = vec![None; points.len()];
    let mut survivors: Vec<(usize, f64)> = Vec::new(); // (plan idx, closeness)
    let mut states: Vec<Option<StageState>> = Vec::with_capacity(points.len());
    for (i, (p, spec)) in points.iter().zip(&specs).enumerate() {
        let mut state = StageState::new(spec).with_artifacts(cache);
        match state.run_to(Stage::Generate) {
            Ok(()) => {
                let net = state.network().expect("generate stage completed");
                let built = f64::from(net.server_count());
                let target = p.servers.max(1) as f64;
                survivors.push((i, (built - target).abs() / target));
                states.push(Some(state));
            }
            Err(e) => {
                prune[i] = Some(e.to_string());
                states.push(None);
            }
        }
    }
    let cut = |survivors: &mut Vec<(usize, f64)>,
               keep: usize,
               prune: &mut Vec<Option<String>>,
               rung: &str| {
        survivors.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
        for &(i, _) in survivors.iter().skip(keep) {
            prune[i] = Some(format!("not promoted past {rung} rung (budget)"));
        }
        survivors.truncate(keep);
        // Back to plan order so the next rung walks deterministically.
        survivors.sort_by_key(|&(i, _)| i);
    };
    cut(&mut survivors, budget.saturating_mul(eta).max(1), &mut prune, "generation");

    // Rung B: resume each survivor to `Stage::Place` — the cheapest
    // physical test. A design that cannot even be racked into its hall is
    // pruned with the real placement error, which the envelope mapper
    // reads as a hard break.
    let mut placed: Vec<(usize, f64)> = Vec::new();
    for (i, closeness) in survivors {
        let state = states[i].as_mut().expect("rung-A survivor kept its state");
        match state.run_to(Stage::Place) {
            Ok(()) => placed.push((i, closeness)),
            Err(e) => prune[i] = Some(e.to_string()),
        }
    }
    cut(&mut placed, budget.max(1), &mut prune, "placement");

    points
        .into_iter()
        .zip(prune)
        .map(|(point, prune)| Planned { point, prune })
        .collect()
}

/// Runs the search entirely in memory (no checkpoint file).
pub fn run_search(cfg: &SearchConfig) -> SearchOutcome {
    run_search_with(cfg, &HashMap::new(), |_| Ok(()))
        .expect("in-memory sink cannot fail")
}

/// Runs the search with `path` as streaming JSONL output *and* checkpoint.
///
/// If `path` already exists, its parseable lines are loaded first and any
/// full-evaluation record matching a planned point's key is reused without
/// re-running the pipeline. Output is crash-safe: the run streams waves to
/// `path` + `.tmp` and renames it over `path` only once the run ends
/// (including a graceful interruption), so `path` is always either the
/// previous complete checkpoint or the new one — never a torn mix. If a
/// prior run was *killed* mid-wave, its leftover `.tmp` holds newer
/// complete lines than `path`; those are overlaid into the reuse map so no
/// finished evaluation is ever repeated.
pub fn run_search_to_path(cfg: &SearchConfig, path: &Path) -> std::io::Result<SearchOutcome> {
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);

    let mut reuse: HashMap<u64, PointRecord> = match std::fs::read_to_string(path) {
        Ok(text) => parse_jsonl(&text).into_iter().map(|r| (r.key, r)).collect(),
        Err(_) => HashMap::new(),
    };
    if let Ok(text) = std::fs::read_to_string(&tmp) {
        for r in parse_jsonl(&text) {
            reuse.insert(r.key, r);
        }
    }

    let mut file = std::fs::File::create(&tmp)?;
    let outcome = run_search_with(cfg, &reuse, |recs| {
        for r in recs {
            writeln!(file, "{}", r.to_json_line())?;
        }
        file.flush()
    })?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    Ok(outcome)
}

/// The engine behind both entry points: plans, then walks the plan in
/// waves, reusing checkpointed full evaluations and batch-evaluating the
/// rest, handing each completed wave's records (in plan order) to `sink`.
/// Registry handles for search metrics, resolved once. All of these are
/// deterministic counts: planning and pruning are pure functions of the
/// configuration (see `docs/OBSERVABILITY.md`).
struct SearchMetrics {
    points: std::sync::Arc<pd_metrics::Counter>,
    rung_a_pruned: std::sync::Arc<pd_metrics::Counter>,
    rung_b_pruned: std::sync::Arc<pd_metrics::Counter>,
    promoted: std::sync::Arc<pd_metrics::Counter>,
    evaluated: std::sync::Arc<pd_metrics::Counter>,
    reused: std::sync::Arc<pd_metrics::Counter>,
}

fn search_metrics() -> &'static SearchMetrics {
    static CELLS: std::sync::OnceLock<SearchMetrics> = std::sync::OnceLock::new();
    CELLS.get_or_init(|| {
        let reg = pd_metrics::global();
        SearchMetrics {
            points: reg.counter("search.points"),
            rung_a_pruned: reg.counter("search.rung_a.pruned"),
            rung_b_pruned: reg.counter("search.rung_b.pruned"),
            promoted: reg.counter("search.promoted"),
            evaluated: reg.counter("search.evaluated"),
            reused: reg.counter("search.reused"),
        }
    })
}

/// Attributes a prune reason to the adaptive rung that produced it. Rung A
/// stops after `Generate` (errors display as `generation: …`, budget cuts
/// as `… generation rung (budget)`); rung B stops after `Place`.
fn is_rung_a_prune(reason: &str) -> bool {
    reason.starts_with("generation:") || reason.contains("generation rung")
}

pub fn run_search_with(
    cfg: &SearchConfig,
    reuse: &HashMap<u64, PointRecord>,
    mut sink: impl FnMut(&[PointRecord]) -> std::io::Result<()>,
) -> std::io::Result<SearchOutcome> {
    let owned;
    let cache: &ArtifactCache = match &cfg.cache {
        Some(shared) => shared,
        None => {
            owned = match cfg.cache_capacity {
                Some(cap) => ArtifactCache::with_capacity(cap),
                None => ArtifactCache::new(),
            };
            &owned
        }
    };
    let planned = plan(cfg, cache);
    let trials = cfg.space.trials;
    let opts = BatchOptions::jobs(cfg.jobs);
    let wave_len = cfg.wave.max(1);
    let total = planned.len();

    // One shared cancellation root per run: the caller's token if given,
    // else a private never-fired one. Per-spec timeouts, batch deadline,
    // and retry policy come from the process-wide knobs (the CLI flags),
    // exactly as `evaluate_many` would resolve them.
    let cancel = cfg.cancel.clone().unwrap_or_default();
    let control = BatchControl {
        cancel: cancel.clone(),
        ..BatchControl::from_globals()
    };

    let mut records: Vec<PointRecord> = Vec::with_capacity(total);
    let (mut evaluated, mut reused, mut pruned) = (0usize, 0usize, 0usize);
    let mut interrupted = false;

    // A checkpoint record worth trusting: a completed full evaluation.
    // Pruned records get re-derived (another strategy may have cut the
    // point), and interrupted records — which this runner never writes,
    // but a foreign file could contain — describe a run, not the design.
    let trusted = |r: &&PointRecord| {
        !matches!(r.status, PointStatus::Pruned(_)) && !r.status.is_interrupted()
    };

    for (w, wave) in planned.chunks(wave_len).enumerate() {
        // Stop at the wave edge if the run has been cancelled or its
        // global deadline has passed — completed waves are already sunk.
        if cancel.is_cancelled() || control.batch_deadline.is_some_and(|d| d.expired()) {
            interrupted = true;
            break;
        }
        // Deterministic graceful shutdown: refuse to start a wave that
        // would push past the evaluation budget. (Checked against the
        // whole wave, before any of its slots are tallied, so stopping is
        // order-stable and the sunk records stay a clean plan-order
        // subset.)
        if let Some(budget) = cfg.eval_budget {
            let wave_todo = wave
                .iter()
                .filter(|p| {
                    p.prune.is_none()
                        && reuse.get(&p.point.key(&trials)).filter(trusted).is_none()
                })
                .count();
            if wave_todo > 0 && evaluated + wave_todo > budget {
                interrupted = true;
                break;
            }
        }
        // Wave slots: either a ready record or a spec to evaluate.
        let mut slots: Vec<Option<PointRecord>> = Vec::with_capacity(wave.len());
        let mut todo: Vec<(usize, &Point, DesignSpec)> = Vec::new();
        for (s, p) in wave.iter().enumerate() {
            if let Some(reason) = &p.prune {
                // Pruned records are cheap and pure — always re-derive, so
                // a checkpoint written under another strategy can't leak a
                // stale disposition in.
                pruned += 1;
                if is_rung_a_prune(reason) {
                    search_metrics().rung_a_pruned.incr();
                } else {
                    search_metrics().rung_b_pruned.incr();
                }
                slots.push(Some(PointRecord::pruned(&p.point, &trials, reason.clone())));
                continue;
            }
            let key = p.point.key(&trials);
            match reuse.get(&key).filter(trusted) {
                Some(r) => {
                    reused += 1;
                    slots.push(Some(r.clone()));
                }
                None => {
                    todo.push((s, &p.point, p.point.spec(&trials)));
                    slots.push(None);
                }
            }
        }
        let specs: Vec<DesignSpec> = todo.iter().map(|(_, _, spec)| spec.clone()).collect();
        let results = evaluate_many_controlled(&specs, &opts, cache, None, &control);
        for ((s, point, _), result) in todo.into_iter().zip(results) {
            slots[s] = match result {
                Ok(ev) => {
                    evaluated += 1;
                    Some(PointRecord::from_evaluation(point, &trials, &ev))
                }
                // Interrupted points leave their slot empty: the record
                // would describe the run, not the design, and writing it
                // would poison the checkpoint (a resume must re-run it).
                Err(e) if e.is_interruption() => {
                    interrupted = true;
                    None
                }
                Err(e) => {
                    evaluated += 1;
                    Some(PointRecord::from_error(point, &trials, &e))
                }
            };
        }
        let wave_records: Vec<PointRecord> = slots.into_iter().flatten().collect();
        sink(&wave_records)?;
        records.extend(wave_records);
        if cfg.progress {
            eprintln!(
                "[search] wave {}/{}: {done}/{total} points ({evaluated} evaluated, {reused} reused, {pruned} pruned; gen-cache {hits} hits / {misses} misses)",
                w + 1,
                total.div_ceil(wave_len),
                done = records.len(),
                hits = cache.generate().hits(),
                misses = cache.generate().misses(),
            );
        }
        if interrupted {
            break;
        }
    }

    let metrics = search_metrics();
    metrics.points.add(total as u64);
    metrics.evaluated.add(evaluated as u64);
    metrics.reused.add(reused as u64);
    if matches!(cfg.strategy, Strategy::Adaptive { .. }) {
        metrics.promoted.add((total - pruned) as u64);
    }

    Ok(SearchOutcome {
        records,
        evaluated,
        reused,
        pruned,
        cache_hits: cache.generate().hits(),
        cache_misses: cache.generate().misses(),
        interrupted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Family, HallVariant, MediaPolicy, TrialProfile};

    fn small_cfg() -> SearchConfig {
        SearchConfig {
            space: ParamSpace {
                families: vec![Family::FatTree, Family::LeafSpine, Family::Jellyfish],
                servers: vec![64, 128],
                speeds: vec![100.0],
                seeds: vec![7],
                halls: vec![HallVariant::Standard],
                media: vec![MediaPolicy::Standard],
                fault_scenarios: vec![0],
                trials: TrialProfile {
                    yield_trials: 3,
                    repair_trials: 2,
                },
            },
            strategy: Strategy::Grid { budget: None },
            jobs: 2,
            wave: 4,
            cache_capacity: None,
            cache: None,
            progress: false,
            cancel: None,
            eval_budget: None,
        }
    }

    #[test]
    fn grid_run_records_every_point_in_plan_order() {
        let cfg = small_cfg();
        let out = run_search(&cfg);
        assert_eq!(out.records.len(), cfg.space.len());
        assert_eq!(out.evaluated, cfg.space.len());
        assert_eq!(out.reused, 0);
        assert_eq!(out.pruned, 0);
        let labels: Vec<&str> = out.records.iter().map(|r| r.label.as_str()).collect();
        let expected: Vec<String> = cfg.space.points().map(|p| p.label()).collect();
        assert_eq!(labels, expected.iter().map(String::as_str).collect::<Vec<_>>());
        assert!(out.records.iter().all(|r| r.feasible()), "{labels:?}");
        // The two sizes share nothing, but seeds within a family would; at
        // minimum every generation missed exactly once.
        assert!(out.cache_misses >= 1);
    }

    #[test]
    fn job_count_does_not_change_records() {
        let mut cfg = small_cfg();
        cfg.jobs = 1;
        let serial = run_search(&cfg);
        cfg.jobs = 8;
        cfg.wave = 2; // different wave size must not matter either
        let parallel = run_search(&cfg);
        assert_eq!(serial.records, parallel.records);
    }

    #[test]
    fn adaptive_prunes_to_budget_and_records_reasons() {
        let mut cfg = small_cfg();
        cfg.strategy = Strategy::Adaptive { budget: 2, eta: 2 };
        let out = run_search(&cfg);
        assert_eq!(out.records.len(), cfg.space.len());
        let ok = out
            .records
            .iter()
            .filter(|r| matches!(r.status, PointStatus::Ok))
            .count();
        assert!(ok <= 2, "budget bounds full evaluations: {ok}");
        assert_eq!(out.pruned, cfg.space.len() - ok);
        for r in &out.records {
            if let PointStatus::Pruned(reason) = &r.status {
                assert!(
                    reason.starts_with("generation:")
                        || reason.starts_with("placement:")
                        || reason.starts_with("not promoted"),
                    "{reason}"
                );
            }
        }
        // Determinism: same config, same dispositions.
        let again = run_search(&cfg);
        assert_eq!(out.records, again.records);
    }

    #[test]
    fn checkpoint_reuse_skips_completed_evaluations() {
        let cfg = small_cfg();
        let full = run_search(&cfg);
        // Pretend the first 4 points were checkpointed.
        let reuse: HashMap<u64, PointRecord> = full
            .records
            .iter()
            .take(4)
            .map(|r| (r.key, r.clone()))
            .collect();
        let resumed = run_search_with(&cfg, &reuse, |_| Ok(())).unwrap();
        assert_eq!(resumed.records, full.records, "resume is invisible in output");
        assert_eq!(resumed.reused, 4);
        assert_eq!(resumed.evaluated, full.records.len() - 4);
    }

    #[test]
    fn eval_budget_stops_gracefully_and_resume_completes_the_run() {
        let full = run_search(&small_cfg());

        // Budget smaller than the plan: the run must stop at a wave edge
        // with a clean plan-order prefix and the interrupted flag set.
        let mut cfg = small_cfg();
        cfg.eval_budget = Some(4); // wave = 4, plan = 6 → exactly one wave
        let first = run_search(&cfg);
        assert!(first.interrupted);
        assert_eq!(first.evaluated, 4);
        assert_eq!(first.records, full.records[..4].to_vec());

        // Determinism: the budget cut lands at the same point every time.
        assert_eq!(run_search(&cfg).records, first.records);

        // Resume from the flushed records without a budget: only the
        // remainder is evaluated and the output is byte-identical to an
        // uninterrupted run.
        let reuse: HashMap<u64, PointRecord> =
            first.records.iter().map(|r| (r.key, r.clone())).collect();
        let resumed = run_search_with(&small_cfg(), &reuse, |_| Ok(())).unwrap();
        assert!(!resumed.interrupted);
        assert_eq!(resumed.reused, first.records.len());
        assert_eq!(resumed.evaluated, full.records.len() - first.records.len());
        assert_eq!(resumed.records, full.records);
    }

    #[test]
    fn pre_cancelled_run_flushes_nothing_and_reports_interrupted() {
        let mut cfg = small_cfg();
        let token = pd_core::CancelToken::new();
        token.cancel();
        cfg.cancel = Some(token);
        let out = run_search(&cfg);
        assert!(out.interrupted);
        assert!(out.records.is_empty());
        assert_eq!(out.evaluated, 0);
    }

    #[test]
    fn interrupted_checkpoint_records_are_not_reused() {
        let cfg = small_cfg();
        let full = run_search(&cfg);
        // A foreign checkpoint claiming a point was cancelled must be
        // re-evaluated, not parroted back.
        let mut poisoned = full.records[0].clone();
        poisoned.status = PointStatus::Error("cancelled: evaluation stopped".into());
        poisoned.metrics = None;
        let reuse: HashMap<u64, PointRecord> =
            std::iter::once((poisoned.key, poisoned)).collect();
        let out = run_search_with(&cfg, &reuse, |_| Ok(())).unwrap();
        assert_eq!(out.reused, 0);
        assert_eq!(out.records, full.records);
    }

    #[test]
    fn bounded_cache_changes_stats_not_records() {
        let mut cfg = small_cfg();
        let unbounded = run_search(&cfg);
        cfg.cache_capacity = Some(1);
        let bounded = run_search(&cfg);
        assert_eq!(unbounded.records, bounded.records);
    }
}
