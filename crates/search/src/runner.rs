//! The search executor: plan → (optionally) prune → evaluate → record.
//!
//! All full-pipeline work goes through
//! [`pd_core::batch::evaluate_many_with_cache`], inheriting the batch
//! engine's determinism contract: records are byte-identical at any
//! `jobs` count. Points are processed in plan order in fixed-size waves;
//! after each wave the records are handed to the sink (the JSONL file),
//! so a killed run leaves a clean prefix the next run resumes from.
//!
//! The adaptive strategy's rungs are partial runs of the real pipeline:
//! [`StageState::run_to`] stopped after `Generate` (rung A) and `Place`
//! (rung B) through the shared [`GenCache`] — not a reimplementation — so
//! the proxies and full evaluation cannot drift apart.
//!
//! Resume reuses full-evaluation results by [`PointRecord::key`] and
//! re-derives everything cheap (pruning decisions, pruned records) from
//! scratch — proxy decisions are pure functions of the configuration, so
//! a resumed run and an uninterrupted run write the same bytes.
//!
//! Generation-cache statistics (`hits`/`misses`) are reported in progress
//! output and in [`SearchOutcome`], but deliberately **not** in the JSONL:
//! under a bounded cache they can vary with thread scheduling, and the
//! output file must not.

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

use pd_core::batch::{evaluate_many_with_cache, BatchOptions, GenCache};
use pd_core::design::DesignSpec;
use pd_core::stages::{Stage, StageState};

use crate::record::{parse_jsonl, PointRecord, PointStatus};
use crate::space::{ParamSpace, Point, Strategy};

/// Everything a search run needs.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// The space to explore.
    pub space: ParamSpace,
    /// How to draw candidates from it.
    pub strategy: Strategy,
    /// Worker threads for full evaluations (0 = all cores, as
    /// [`BatchOptions`]).
    pub jobs: usize,
    /// Points per checkpoint wave (clamped ≥ 1). Smaller waves checkpoint
    /// more often; the wave size never changes the output bytes.
    pub wave: usize,
    /// Bound the shared generation cache to this many networks
    /// (`None` = unbounded).
    pub cache_capacity: Option<usize>,
    /// Emit per-wave progress lines on stderr.
    pub progress: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            space: ParamSpace::default(),
            strategy: Strategy::Grid { budget: None },
            jobs: 0,
            wave: 8,
            cache_capacity: None,
            progress: false,
        }
    }
}

/// What a run did, beyond the records themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// One record per planned point, in plan order — the JSONL contents.
    pub records: Vec<PointRecord>,
    /// Full-pipeline evaluations executed this run.
    pub evaluated: usize,
    /// Records reused from the checkpoint instead of re-evaluating.
    pub reused: usize,
    /// Points an adaptive rung pruned.
    pub pruned: usize,
    /// Generation-cache hits across proxies and full evaluations.
    pub cache_hits: usize,
    /// Generation-cache misses.
    pub cache_misses: usize,
}

/// A planned point with the disposition the strategy already decided for
/// it (`Some(reason)` = pruned before full evaluation).
struct Planned {
    point: Point,
    prune: Option<String>,
}

/// Applies the strategy, running the adaptive proxies when asked.
fn plan(cfg: &SearchConfig, cache: &GenCache) -> Vec<Planned> {
    let points = cfg.strategy.plan(&cfg.space);
    let (budget, eta) = match cfg.strategy {
        Strategy::Adaptive { budget, eta } => (budget, eta.max(2)),
        _ => {
            return points
                .into_iter()
                .map(|point| Planned { point, prune: None })
                .collect()
        }
    };

    // The rungs are partial runs of the *real* pipeline —
    // `StageState::run_to` through the shared cache — so the cheap proxies
    // can never drift from what full evaluation does, and promoted
    // survivors regenerate for free in the full pipeline.
    //
    // Rung A: stop after `Stage::Generate`. A survivor's rank is how
    // closely its built size matches the target — the cheap signal for
    // "this family's granularity actually fits here".
    let trials = cfg.space.trials;
    let specs: Vec<DesignSpec> = points.iter().map(|p| p.spec(&trials)).collect();
    let mut prune: Vec<Option<String>> = vec![None; points.len()];
    let mut survivors: Vec<(usize, f64)> = Vec::new(); // (plan idx, closeness)
    let mut states: Vec<Option<StageState>> = Vec::with_capacity(points.len());
    for (i, (p, spec)) in points.iter().zip(&specs).enumerate() {
        let mut state = StageState::new(spec).with_gen_cache(cache);
        match state.run_to(Stage::Generate) {
            Ok(()) => {
                let net = state.network().expect("generate stage completed");
                let built = f64::from(net.server_count());
                let target = p.servers.max(1) as f64;
                survivors.push((i, (built - target).abs() / target));
                states.push(Some(state));
            }
            Err(e) => {
                prune[i] = Some(e.to_string());
                states.push(None);
            }
        }
    }
    let cut = |survivors: &mut Vec<(usize, f64)>,
               keep: usize,
               prune: &mut Vec<Option<String>>,
               rung: &str| {
        survivors.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
        for &(i, _) in survivors.iter().skip(keep) {
            prune[i] = Some(format!("not promoted past {rung} rung (budget)"));
        }
        survivors.truncate(keep);
        // Back to plan order so the next rung walks deterministically.
        survivors.sort_by_key(|&(i, _)| i);
    };
    cut(&mut survivors, budget.saturating_mul(eta).max(1), &mut prune, "generation");

    // Rung B: resume each survivor to `Stage::Place` — the cheapest
    // physical test. A design that cannot even be racked into its hall is
    // pruned with the real placement error, which the envelope mapper
    // reads as a hard break.
    let mut placed: Vec<(usize, f64)> = Vec::new();
    for (i, closeness) in survivors {
        let state = states[i].as_mut().expect("rung-A survivor kept its state");
        match state.run_to(Stage::Place) {
            Ok(()) => placed.push((i, closeness)),
            Err(e) => prune[i] = Some(e.to_string()),
        }
    }
    cut(&mut placed, budget.max(1), &mut prune, "placement");

    points
        .into_iter()
        .zip(prune)
        .map(|(point, prune)| Planned { point, prune })
        .collect()
}

/// Runs the search entirely in memory (no checkpoint file).
pub fn run_search(cfg: &SearchConfig) -> SearchOutcome {
    run_search_with(cfg, &HashMap::new(), |_| Ok(()))
        .expect("in-memory sink cannot fail")
}

/// Runs the search with `path` as streaming JSONL output *and* checkpoint.
///
/// If `path` already exists, its parseable lines are loaded first and any
/// full-evaluation record matching a planned point's key is reused without
/// re-running the pipeline; the file is then rewritten from the start,
/// wave by wave, so it always holds a clean prefix of the final output.
pub fn run_search_to_path(cfg: &SearchConfig, path: &Path) -> std::io::Result<SearchOutcome> {
    let reuse: HashMap<u64, PointRecord> = match std::fs::read_to_string(path) {
        Ok(text) => parse_jsonl(&text).into_iter().map(|r| (r.key, r)).collect(),
        Err(_) => HashMap::new(),
    };
    let mut file = std::fs::File::create(path)?;
    let outcome = run_search_with(cfg, &reuse, |recs| {
        for r in recs {
            writeln!(file, "{}", r.to_json_line())?;
        }
        file.flush()
    })?;
    Ok(outcome)
}

/// The engine behind both entry points: plans, then walks the plan in
/// waves, reusing checkpointed full evaluations and batch-evaluating the
/// rest, handing each completed wave's records (in plan order) to `sink`.
/// Registry handles for search metrics, resolved once. All of these are
/// deterministic counts: planning and pruning are pure functions of the
/// configuration (see `docs/OBSERVABILITY.md`).
struct SearchMetrics {
    points: std::sync::Arc<pd_metrics::Counter>,
    rung_a_pruned: std::sync::Arc<pd_metrics::Counter>,
    rung_b_pruned: std::sync::Arc<pd_metrics::Counter>,
    promoted: std::sync::Arc<pd_metrics::Counter>,
    evaluated: std::sync::Arc<pd_metrics::Counter>,
    reused: std::sync::Arc<pd_metrics::Counter>,
}

fn search_metrics() -> &'static SearchMetrics {
    static CELLS: std::sync::OnceLock<SearchMetrics> = std::sync::OnceLock::new();
    CELLS.get_or_init(|| {
        let reg = pd_metrics::global();
        SearchMetrics {
            points: reg.counter("search.points"),
            rung_a_pruned: reg.counter("search.rung_a.pruned"),
            rung_b_pruned: reg.counter("search.rung_b.pruned"),
            promoted: reg.counter("search.promoted"),
            evaluated: reg.counter("search.evaluated"),
            reused: reg.counter("search.reused"),
        }
    })
}

/// Attributes a prune reason to the adaptive rung that produced it. Rung A
/// stops after `Generate` (errors display as `generation: …`, budget cuts
/// as `… generation rung (budget)`); rung B stops after `Place`.
fn is_rung_a_prune(reason: &str) -> bool {
    reason.starts_with("generation:") || reason.contains("generation rung")
}

pub fn run_search_with(
    cfg: &SearchConfig,
    reuse: &HashMap<u64, PointRecord>,
    mut sink: impl FnMut(&[PointRecord]) -> std::io::Result<()>,
) -> std::io::Result<SearchOutcome> {
    let cache = match cfg.cache_capacity {
        Some(cap) => GenCache::with_capacity(cap),
        None => GenCache::new(),
    };
    let planned = plan(cfg, &cache);
    let trials = cfg.space.trials;
    let opts = BatchOptions::jobs(cfg.jobs);
    let wave_len = cfg.wave.max(1);
    let total = planned.len();

    let mut records: Vec<PointRecord> = Vec::with_capacity(total);
    let (mut evaluated, mut reused, mut pruned) = (0usize, 0usize, 0usize);

    for (w, wave) in planned.chunks(wave_len).enumerate() {
        // Wave slots: either a ready record or a spec to evaluate.
        let mut slots: Vec<Option<PointRecord>> = Vec::with_capacity(wave.len());
        let mut todo: Vec<(usize, &Point, DesignSpec)> = Vec::new();
        for (s, p) in wave.iter().enumerate() {
            if let Some(reason) = &p.prune {
                // Pruned records are cheap and pure — always re-derive, so
                // a checkpoint written under another strategy can't leak a
                // stale disposition in.
                pruned += 1;
                if is_rung_a_prune(reason) {
                    search_metrics().rung_a_pruned.incr();
                } else {
                    search_metrics().rung_b_pruned.incr();
                }
                slots.push(Some(PointRecord::pruned(&p.point, &trials, reason.clone())));
                continue;
            }
            let key = p.point.key(&trials);
            match reuse.get(&key) {
                // Only full-evaluation results are trusted from the
                // checkpoint; a Pruned record under this key means the
                // prior run's strategy cut it, and this run wants it run.
                Some(r) if !matches!(r.status, PointStatus::Pruned(_)) => {
                    reused += 1;
                    slots.push(Some(r.clone()));
                }
                _ => {
                    todo.push((s, &p.point, p.point.spec(&trials)));
                    slots.push(None);
                }
            }
        }
        let specs: Vec<DesignSpec> = todo.iter().map(|(_, _, spec)| spec.clone()).collect();
        let results = evaluate_many_with_cache(&specs, &opts, &cache);
        evaluated += results.len();
        for ((s, point, _), result) in todo.into_iter().zip(results) {
            slots[s] = Some(match result {
                Ok(ev) => PointRecord::from_evaluation(point, &trials, &ev),
                Err(e) => PointRecord::from_error(point, &trials, &e),
            });
        }
        let wave_records: Vec<PointRecord> =
            slots.into_iter().map(|s| s.expect("slot filled")).collect();
        sink(&wave_records)?;
        records.extend(wave_records);
        if cfg.progress {
            eprintln!(
                "[search] wave {}/{}: {done}/{total} points ({evaluated} evaluated, {reused} reused, {pruned} pruned; gen-cache {hits} hits / {misses} misses)",
                w + 1,
                total.div_ceil(wave_len),
                done = records.len(),
                hits = cache.hits(),
                misses = cache.misses(),
            );
        }
    }

    let metrics = search_metrics();
    metrics.points.add(total as u64);
    metrics.evaluated.add(evaluated as u64);
    metrics.reused.add(reused as u64);
    if matches!(cfg.strategy, Strategy::Adaptive { .. }) {
        metrics.promoted.add((total - pruned) as u64);
    }

    Ok(SearchOutcome {
        records,
        evaluated,
        reused,
        pruned,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Family, HallVariant, MediaPolicy, TrialProfile};

    fn small_cfg() -> SearchConfig {
        SearchConfig {
            space: ParamSpace {
                families: vec![Family::FatTree, Family::LeafSpine, Family::Jellyfish],
                servers: vec![64, 128],
                speeds: vec![100.0],
                seeds: vec![7],
                halls: vec![HallVariant::Standard],
                media: vec![MediaPolicy::Standard],
                fault_scenarios: vec![0],
                trials: TrialProfile {
                    yield_trials: 3,
                    repair_trials: 2,
                },
            },
            strategy: Strategy::Grid { budget: None },
            jobs: 2,
            wave: 4,
            cache_capacity: None,
            progress: false,
        }
    }

    #[test]
    fn grid_run_records_every_point_in_plan_order() {
        let cfg = small_cfg();
        let out = run_search(&cfg);
        assert_eq!(out.records.len(), cfg.space.len());
        assert_eq!(out.evaluated, cfg.space.len());
        assert_eq!(out.reused, 0);
        assert_eq!(out.pruned, 0);
        let labels: Vec<&str> = out.records.iter().map(|r| r.label.as_str()).collect();
        let expected: Vec<String> = cfg.space.points().map(|p| p.label()).collect();
        assert_eq!(labels, expected.iter().map(String::as_str).collect::<Vec<_>>());
        assert!(out.records.iter().all(|r| r.feasible()), "{labels:?}");
        // The two sizes share nothing, but seeds within a family would; at
        // minimum every generation missed exactly once.
        assert!(out.cache_misses >= 1);
    }

    #[test]
    fn job_count_does_not_change_records() {
        let mut cfg = small_cfg();
        cfg.jobs = 1;
        let serial = run_search(&cfg);
        cfg.jobs = 8;
        cfg.wave = 2; // different wave size must not matter either
        let parallel = run_search(&cfg);
        assert_eq!(serial.records, parallel.records);
    }

    #[test]
    fn adaptive_prunes_to_budget_and_records_reasons() {
        let mut cfg = small_cfg();
        cfg.strategy = Strategy::Adaptive { budget: 2, eta: 2 };
        let out = run_search(&cfg);
        assert_eq!(out.records.len(), cfg.space.len());
        let ok = out
            .records
            .iter()
            .filter(|r| matches!(r.status, PointStatus::Ok))
            .count();
        assert!(ok <= 2, "budget bounds full evaluations: {ok}");
        assert_eq!(out.pruned, cfg.space.len() - ok);
        for r in &out.records {
            if let PointStatus::Pruned(reason) = &r.status {
                assert!(
                    reason.starts_with("generation:")
                        || reason.starts_with("placement:")
                        || reason.starts_with("not promoted"),
                    "{reason}"
                );
            }
        }
        // Determinism: same config, same dispositions.
        let again = run_search(&cfg);
        assert_eq!(out.records, again.records);
    }

    #[test]
    fn checkpoint_reuse_skips_completed_evaluations() {
        let cfg = small_cfg();
        let full = run_search(&cfg);
        // Pretend the first 4 points were checkpointed.
        let reuse: HashMap<u64, PointRecord> = full
            .records
            .iter()
            .take(4)
            .map(|r| (r.key, r.clone()))
            .collect();
        let resumed = run_search_with(&cfg, &reuse, |_| Ok(())).unwrap();
        assert_eq!(resumed.records, full.records, "resume is invisible in output");
        assert_eq!(resumed.reused, 4);
        assert_eq!(resumed.evaluated, full.records.len() - 4);
    }

    #[test]
    fn bounded_cache_changes_stats_not_records() {
        let mut cfg = small_cfg();
        let unbounded = run_search(&cfg);
        cfg.cache_capacity = Some(1);
        let bounded = run_search(&cfg);
        assert_eq!(unbounded.records, bounded.records);
    }
}
