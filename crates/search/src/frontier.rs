//! Pareto frontiers over search records, with configurable axes.
//!
//! §5.4's position is that no single score captures deployability, so the
//! search's headline output is a frontier, not a ranking: the set of
//! evaluated points no other point beats on every axis at once. The
//! dominance engine is [`pd_core::score::pareto_front_points`] — the same
//! NaN/∞-hardened core `pareto_front` uses — driven here by named
//! [`Axis`] extractors over [`PointRecord`]s.
//!
//! Points that never produced metrics (pruned, errored) or whose value on
//! some axis is absent (fault sweep off → no retention) extract to `NaN`
//! and are therefore excluded by the engine: they neither appear on the
//! frontier nor dominate anything.

use pd_core::score::pareto_front_points;

use crate::record::PointRecord;

/// One frontier axis: a name, a direction, and how to read it off a
/// record. Extraction returns `None` when the record has no value on the
/// axis, which excludes the record from dominance entirely.
#[derive(Clone, Copy)]
pub struct Axis {
    /// Display name (also the CLI selector).
    pub name: &'static str,
    /// True if larger values are better.
    pub higher_better: bool,
    /// Reads the axis value off a record.
    pub extract: fn(&PointRecord) -> Option<f64>,
}

impl std::fmt::Debug for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Axis({} {})",
            self.name,
            if self.higher_better { "↑" } else { "↓" }
        )
    }
}

fn metric(r: &PointRecord, f: fn(&crate::record::PointMetrics) -> f64) -> Option<f64> {
    r.metrics.as_ref().map(f)
}

/// The axis catalog. Names are the CLI's `--axes` vocabulary.
pub fn all_axes() -> Vec<Axis> {
    vec![
        Axis {
            name: "cost",
            higher_better: false,
            extract: |r| metric(r, |m| m.cost_per_server),
        },
        Axis {
            name: "tco",
            higher_better: false,
            extract: |r| metric(r, |m| m.tco_per_server),
        },
        Axis {
            name: "bisection",
            higher_better: true,
            extract: |r| metric(r, |m| m.bisection),
        },
        Axis {
            name: "fault",
            higher_better: true,
            extract: |r| r.metrics.as_ref().and_then(|m| m.fault_mean_retention),
        },
        Axis {
            name: "throughput",
            higher_better: true,
            extract: |r| metric(r, |m| m.throughput_per_server),
        },
        Axis {
            name: "deploy-time",
            higher_better: false,
            extract: |r| metric(r, |m| m.time_to_deploy_h),
        },
    ]
}

/// The default frontier: day-1 cost/server ↓, fault retention ↑,
/// TCO/server ↓, bisection ↑ — the issue's four headline axes.
pub fn default_axes() -> Vec<Axis> {
    axes_by_name(&["cost", "fault", "tco", "bisection"]).expect("catalog covers defaults")
}

/// Looks axes up by catalog name; `None` if any name is unknown.
pub fn axes_by_name(names: &[&str]) -> Option<Vec<Axis>> {
    let catalog = all_axes();
    names
        .iter()
        .map(|n| catalog.iter().find(|a| a.name == *n).copied())
        .collect()
}

/// Indices (into `records`) of the Pareto-optimal records under `axes`.
///
/// Only [`PointRecord::feasible`] records compete: an undeployable or
/// out-of-envelope design has no business on a deployability frontier,
/// however cheap it prices. Records missing an axis value are likewise
/// excluded (see module docs).
pub fn frontier(records: &[PointRecord], axes: &[Axis]) -> Vec<usize> {
    let points: Vec<Vec<f64>> = records
        .iter()
        .map(|r| {
            axes.iter()
                .map(|a| {
                    if r.feasible() {
                        (a.extract)(r).unwrap_or(f64::NAN)
                    } else {
                        f64::NAN
                    }
                })
                .collect()
        })
        .collect();
    let dirs: Vec<bool> = axes.iter().map(|a| a.higher_better).collect();
    pareto_front_points(&points, &dirs)
}

/// Per-family frontiers: `(family, indices into records)`, families in
/// first-appearance order. Each family's frontier is computed over its own
/// records only, so a strong family does not erase the others' tradeoff
/// structure.
pub fn frontier_by_family(records: &[PointRecord], axes: &[Axis]) -> Vec<(String, Vec<usize>)> {
    let mut families: Vec<String> = Vec::new();
    for r in records {
        if !families.contains(&r.family) {
            families.push(r.family.clone());
        }
    }
    families
        .into_iter()
        .map(|fam| {
            let idx: Vec<usize> = (0..records.len())
                .filter(|&i| records[i].family == fam)
                .collect();
            let subset: Vec<PointRecord> = idx.iter().map(|&i| records[i].clone()).collect();
            let front = frontier(&subset, axes).into_iter().map(|i| idx[i]).collect();
            (fam, front)
        })
        .collect()
}

/// Renders a frontier as a markdown table (one row per frontier point).
pub fn render_frontier(records: &[PointRecord], front: &[usize], axes: &[Axis]) -> String {
    let mut out = String::new();
    out.push_str("| point |");
    for a in axes {
        out.push_str(&format!(" {} {} |", a.name, if a.higher_better { "↑" } else { "↓" }));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in axes {
        out.push_str("---|");
    }
    out.push('\n');
    for &i in front {
        let r = &records[i];
        out.push_str(&format!("| {} |", r.label));
        for a in axes {
            match (a.extract)(r) {
                Some(v) => out.push_str(&format!(" {v:.3} |")),
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    if front.is_empty() {
        out.push_str("| (no feasible points) |");
        for _ in axes {
            out.push_str(" — |");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PointMetrics, PointStatus};
    use crate::space::{Family, HallVariant, MediaPolicy, Point, TrialProfile};

    fn rec(family: Family, cost: f64, fault: f64, tco: f64, bisection: f64) -> PointRecord {
        let p = Point {
            family,
            servers: 128,
            speed_gbps: 100.0,
            seed: (cost * 10.0) as u64, // distinct labels/keys per fixture
            hall: HallVariant::Standard,
            media: MediaPolicy::Standard,
            fault_scenarios: 2,
        };
        let mut r = PointRecord::pruned(&p, &TrialProfile::default(), "x");
        r.status = PointStatus::Ok;
        r.metrics = Some(PointMetrics {
            servers_built: 128,
            cost_per_server: cost,
            tco_per_server: tco,
            bisection,
            throughput_per_server: 90.0,
            time_to_deploy_h: 40.0,
            fault_mean_retention: Some(fault),
            deployable: true,
            envelope_breaks: 0,
        });
        r
    }

    #[test]
    fn dominated_and_infeasible_points_stay_off_the_front() {
        let axes = default_axes();
        let good = rec(Family::FatTree, 1000.0, 0.95, 2000.0, 1.0);
        let dominated = rec(Family::FatTree, 1200.0, 0.90, 2400.0, 0.9);
        let tradeoff = rec(Family::FatTree, 1500.0, 0.99, 2500.0, 1.1);
        let mut cheap_but_broken = rec(Family::FatTree, 1.0, 1.0, 1.0, 9.0);
        cheap_but_broken.metrics.as_mut().unwrap().deployable = false;
        let records = vec![good, dominated, tradeoff, cheap_but_broken];
        let front = frontier(&records, &axes);
        assert_eq!(front, vec![0, 2], "{front:?}");
    }

    #[test]
    fn missing_axis_value_excludes_the_record() {
        let axes = default_axes();
        let with_fault = rec(Family::FatTree, 1000.0, 0.95, 2000.0, 1.0);
        let mut no_fault = rec(Family::FatTree, 1.0, 0.0, 1.0, 9.0);
        no_fault.metrics.as_mut().unwrap().fault_mean_retention = None;
        let front = frontier(&[with_fault, no_fault], &axes);
        assert_eq!(front, vec![0]);
        // Drop the fault axis and the same record competes (and wins).
        let axes = axes_by_name(&["cost", "tco", "bisection"]).unwrap();
        let with_fault = rec(Family::FatTree, 1000.0, 0.95, 2000.0, 1.0);
        let mut no_fault = rec(Family::FatTree, 1.0, 0.0, 1.0, 9.0);
        no_fault.metrics.as_mut().unwrap().fault_mean_retention = None;
        let front = frontier(&[with_fault, no_fault], &axes);
        assert_eq!(front, vec![1]);
    }

    #[test]
    fn per_family_frontiers_are_independent() {
        let axes = default_axes();
        // Jellyfish strictly dominates the fat-tree point globally, but the
        // fat-tree still owns its family frontier.
        let ft = rec(Family::FatTree, 2000.0, 0.80, 4000.0, 0.8);
        let jf = rec(Family::Jellyfish, 1000.0, 0.95, 2000.0, 1.2);
        let records = vec![ft, jf];
        assert_eq!(frontier(&records, &axes), vec![1]);
        let per = frontier_by_family(&records, &axes);
        assert_eq!(per.len(), 2);
        assert_eq!(per[0], ("fat-tree".to_string(), vec![0]));
        assert_eq!(per[1], ("jellyfish".to_string(), vec![1]));
    }

    #[test]
    fn axis_lookup_and_rendering() {
        assert!(axes_by_name(&["cost", "nope"]).is_none());
        let axes = default_axes();
        let records = vec![rec(Family::FatTree, 1000.0, 0.95, 2000.0, 1.0)];
        let table = render_frontier(&records, &[0], &axes);
        assert!(table.contains("cost ↓"), "{table}");
        assert!(table.contains("fat-tree/s128"), "{table}");
        let empty = render_frontier(&records, &[], &axes);
        assert!(empty.contains("no feasible points"));
    }
}
