//! # pd-search — deterministic design-space exploration
//!
//! The paper's closing argument (§5.4, §6) is that deployability should be
//! something you can *map*, not just assert: sweep candidate designs
//! through the evaluation pipeline, see where each family's automation
//! envelope ends, and present what's left as a tradeoff frontier rather
//! than a winner. This crate is that sweep engine:
//!
//! * [`space`] — the knob product ([`ParamSpace`]): family × target
//!   servers × link speed × seed × hall × media × fault ensemble; plus the
//!   enumeration [`Strategy`] (full grid, seeded random subsample, or
//!   successive-halving adaptive search that spends cheap generation and
//!   placement proxies before full pipelines).
//! * [`runner`] — [`run_search`] / [`run_search_to_path`]: wave-by-wave
//!   execution through [`pd_core::batch::evaluate_many_with_cache`], with
//!   the JSONL output file doubling as a kill-safe resume checkpoint.
//! * [`record`] — the [`PointRecord`] JSONL schema and its tolerant
//!   parser.
//! * [`frontier`] — Pareto fronts over configurable [`frontier::Axis`]es
//!   (cost/server, fault retention, TCO/server, bisection, …), built on
//!   the NaN/∞-hardened [`pd_core::score::pareto_front_points`].
//! * [`envelope_map`] — per-family feasibility boundaries along the
//!   server-count axis: the swept rendering of the paper's capability
//!   envelope.
//!
//! ## Determinism
//!
//! Everything here inherits the repo's batch-engine contract: a search's
//! records — and therefore its JSONL bytes — are identical at any `--jobs`
//! count, and a killed-and-resumed run produces the same file as an
//! uninterrupted one. Strategies use the repo's own `SplitMix64`, never
//! wall-clock or thread identity; cache statistics (which may legitimately
//! vary under a bounded cache) stay out of the output file.
//!
//! ```
//! use pd_search::prelude::*;
//!
//! let cfg = SearchConfig {
//!     space: ParamSpace {
//!         families: vec![Family::FatTree, Family::LeafSpine],
//!         servers: vec![64],
//!         fault_scenarios: vec![0],
//!         trials: TrialProfile { yield_trials: 3, repair_trials: 2 },
//!         ..ParamSpace::default()
//!     },
//!     strategy: Strategy::Grid { budget: None },
//!     jobs: 2,
//!     ..SearchConfig::default()
//! };
//! let out = run_search(&cfg);
//! assert_eq!(out.records.len(), 2);
//! let front = frontier::frontier(&out.records, &frontier::axes_by_name(&["cost", "bisection"]).unwrap());
//! assert!(!front.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envelope_map;
pub mod frontier;
pub mod record;
pub mod runner;
pub mod space;

pub use envelope_map::{map_envelopes, render_envelopes, FamilyEnvelope};
pub use frontier::{axes_by_name, default_axes, frontier_by_family, Axis};
pub use record::{parse_jsonl, PointMetrics, PointRecord, PointStatus};
pub use runner::{run_search, run_search_to_path, run_search_with, SearchConfig, SearchOutcome};
pub use space::{Family, HallVariant, MediaPolicy, ParamSpace, Point, Strategy, TrialProfile};

/// One-stop imports for binaries and tests.
pub mod prelude {
    pub use crate::envelope_map::{self, map_envelopes, render_envelopes, FamilyEnvelope};
    pub use crate::frontier::{self, axes_by_name, default_axes, frontier_by_family, Axis};
    pub use crate::record::{parse_jsonl, PointMetrics, PointRecord, PointStatus};
    pub use crate::runner::{
        run_search, run_search_to_path, run_search_with, SearchConfig, SearchOutcome,
    };
    pub use crate::space::{
        Family, HallVariant, MediaPolicy, ParamSpace, Point, Strategy, TrialProfile,
    };
}
