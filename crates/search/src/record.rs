//! One-line-per-point result records — the search's JSONL output format.
//!
//! A [`PointRecord`] is the durable trace of one design-space point: its
//! coordinates, how the search disposed of it ([`PointStatus`]), and the
//! frontier-relevant metric slice ([`PointMetrics`]) when the full
//! pipeline ran. Records serialize one-per-line (JSONL), and **the output
//! file doubles as the checkpoint**: a resumed run parses the file back
//! with [`parse_jsonl`], reuses every record whose [`PointRecord::key`]
//! matches a planned point, and only evaluates the gaps.
//!
//! Round-trip stability is the contract that makes that sound:
//! `serde_json` prints `f64`s canonically (shortest round-trippable form),
//! so a record parsed from disk re-serializes to the exact bytes it was
//! written as, and a resumed run's file is byte-identical to an
//! uninterrupted one.

use pd_core::pipeline::{EvalError, Evaluation};
use serde::{Deserialize, Serialize};

use crate::space::{Point, TrialProfile};

/// How the search disposed of a point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", content = "detail")]
pub enum PointStatus {
    /// Full pipeline ran; metrics are present.
    Ok,
    /// An adaptive rung dropped the point before the full pipeline. The
    /// detail keeps the rung's reason — `generation: …` / `placement: …`
    /// for proxy failures, `not promoted …` for budget cuts — so the
    /// envelope mapper can tell a hard infeasibility from a budget cut.
    Pruned(String),
    /// The full pipeline returned an error (rendered [`EvalError`]).
    Error(String),
}

impl PointStatus {
    /// True for the rendering of a hard infeasibility: a pipeline error or
    /// a proxy-stage failure — as opposed to a budget cut, which says
    /// nothing about the design.
    ///
    /// Rung prune reasons are rendered [`EvalError`]s, so the recognized
    /// prefixes are the error's stage tags: `generation:` / `placement:`
    /// for the adaptive rungs, plus `network:` should a custom-network
    /// point ever fail its structural validation stage.
    pub fn is_infeasible(&self) -> bool {
        match self {
            PointStatus::Ok => false,
            PointStatus::Error(_) => true,
            PointStatus::Pruned(reason) => {
                reason.starts_with("generation:")
                    || reason.starts_with("placement:")
                    || reason.starts_with("network:")
            }
        }
    }

    /// True for the rendering of an *interrupted* evaluation —
    /// `cancelled: …` / `timed out: …` ([`EvalError::is_interruption`]).
    /// An interruption is a statement about the run, not the design, so
    /// the search runner never writes such records to the JSONL checkpoint
    /// and never reuses one found there: a resume re-evaluates the point.
    pub fn is_interrupted(&self) -> bool {
        matches!(
            self,
            PointStatus::Error(e) if e.starts_with("cancelled") || e.starts_with("timed out")
        )
    }
}

/// The frontier-relevant metric slice of a full evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointMetrics {
    /// Servers actually built (families round targets up).
    pub servers_built: u32,
    /// Day-1 cost per server ($).
    pub cost_per_server: f64,
    /// Lifetime (TCO-horizon) cost per server ($).
    pub tco_per_server: f64,
    /// Normalized sampled bisection (≥ 1 = full).
    pub bisection: f64,
    /// Per-server uniform-traffic throughput proxy (Gbps).
    pub throughput_per_server: f64,
    /// Time-to-deploy (hours).
    pub time_to_deploy_h: f64,
    /// Mean throughput retention over the correlated fault sweep (absent
    /// when the point's fault knob is 0).
    pub fault_mean_retention: Option<f64>,
    /// Whether the design deploys at all (no twin errors, no unrealizable
    /// links).
    pub deployable: bool,
    /// Out-of-envelope dimensions found by the capability-envelope check.
    pub envelope_breaks: usize,
}

/// One design-space point's durable result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointRecord {
    /// Stable identity (FNV-1a over the canonical point encoding +
    /// trial profile); the checkpoint dedup key.
    pub key: u64,
    /// Human-readable point label (also the evaluated spec's name).
    pub label: String,
    /// Topology family name.
    pub family: String,
    /// Target server count (the swept knob, not the built count).
    pub target_servers: usize,
    /// Link speed (Gbps).
    pub speed_gbps: f64,
    /// Construction seed.
    pub seed: u64,
    /// Hall variant name.
    pub hall: String,
    /// Media policy name.
    pub media: String,
    /// Fault-sweep ensemble size.
    pub fault_scenarios: usize,
    /// Disposition.
    pub status: PointStatus,
    /// Metrics (present iff `status` is [`PointStatus::Ok`]).
    pub metrics: Option<PointMetrics>,
}

impl PointRecord {
    fn base(point: &Point, trials: &TrialProfile, status: PointStatus) -> Self {
        Self {
            key: point.key(trials),
            label: point.label(),
            family: point.family.name().to_string(),
            target_servers: point.servers,
            speed_gbps: point.speed_gbps,
            seed: point.seed,
            hall: point.hall.name().to_string(),
            media: point.media.name().to_string(),
            fault_scenarios: point.fault_scenarios,
            status,
            metrics: None,
        }
    }

    /// Record for a completed full evaluation.
    pub fn from_evaluation(point: &Point, trials: &TrialProfile, ev: &Evaluation) -> Self {
        let r = &ev.report;
        let per_server = |d: pd_geometry::Dollars| {
            if r.servers == 0 {
                f64::NAN
            } else {
                d.value() / f64::from(r.servers)
            }
        };
        let mut rec = Self::base(point, trials, PointStatus::Ok);
        rec.metrics = Some(PointMetrics {
            servers_built: r.servers,
            cost_per_server: r.day_one_per_server().value(),
            tco_per_server: per_server(r.lifetime_cost),
            bisection: r.bisection,
            throughput_per_server: r.throughput_per_server,
            time_to_deploy_h: r.time_to_deploy.value(),
            fault_mean_retention: r.fault_mean_retention,
            deployable: r.deployable(),
            envelope_breaks: r.envelope_breaks,
        });
        rec
    }

    /// Record for a full-pipeline error.
    pub fn from_error(point: &Point, trials: &TrialProfile, err: &EvalError) -> Self {
        Self::base(point, trials, PointStatus::Error(err.to_string()))
    }

    /// Record for a point an adaptive rung dropped.
    pub fn pruned(point: &Point, trials: &TrialProfile, reason: impl Into<String>) -> Self {
        Self::base(point, trials, PointStatus::Pruned(reason.into()))
    }

    /// True iff the point is fully feasible: evaluated, deployable, and
    /// inside the capability envelope. The envelope mapper's "inside"
    /// predicate.
    pub fn feasible(&self) -> bool {
        matches!(self.status, PointStatus::Ok)
            && self
                .metrics
                .as_ref()
                .is_some_and(|m| m.deployable && m.envelope_breaks == 0)
    }

    /// Why the point is not [`Self::feasible`], for envelope summaries;
    /// `None` when it is.
    pub fn infeasibility(&self) -> Option<String> {
        match &self.status {
            PointStatus::Error(e) => Some(e.clone()),
            PointStatus::Pruned(reason) => Some(reason.clone()),
            PointStatus::Ok => {
                let m = self.metrics.as_ref()?;
                if !m.deployable {
                    Some("undeployable (twin errors or unrealizable links)".into())
                } else if m.envelope_breaks > 0 {
                    Some(format!("{} envelope break(s)", m.envelope_breaks))
                } else {
                    None
                }
            }
        }
    }

    /// The record's JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("PointRecord serializes")
    }
}

/// Parses JSONL text back into records, tolerantly: blank lines and
/// unparseable lines — in particular a torn final line from a killed
/// writer — are skipped, not errors. Used to load the checkpoint prefix.
pub fn parse_jsonl(text: &str) -> Vec<PointRecord> {
    text.lines()
        .filter_map(|l| serde_json::from_str(l.trim()).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Family, HallVariant, MediaPolicy};

    fn point() -> Point {
        Point {
            family: Family::FatTree,
            servers: 64,
            speed_gbps: 100.0,
            seed: 5,
            hall: HallVariant::Standard,
            media: MediaPolicy::Standard,
            fault_scenarios: 2,
        }
    }

    #[test]
    fn records_round_trip_to_identical_bytes() {
        let trials = TrialProfile::default();
        let mut rec = PointRecord::pruned(&point(), &trials, "generation: q too small");
        rec.metrics = Some(PointMetrics {
            servers_built: 64,
            cost_per_server: 1234.567891,
            tco_per_server: 1.0 / 3.0, // exercises shortest-round-trip floats
            bisection: 1.02,
            throughput_per_server: 87.5,
            time_to_deploy_h: 40.25,
            fault_mean_retention: Some(0.93),
            deployable: true,
            envelope_breaks: 0,
        });
        let line = rec.to_json_line();
        let parsed = parse_jsonl(&line);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0], rec);
        // The checkpoint contract: parse → re-serialize is byte-identical.
        assert_eq!(parsed[0].to_json_line(), line);
    }

    #[test]
    fn torn_trailing_line_is_dropped() {
        let trials = TrialProfile::default();
        let a = PointRecord::pruned(&point(), &trials, "placement: hall full").to_json_line();
        let torn = &a[..a.len() / 2];
        let text = format!("{a}\n\n{torn}");
        let parsed = parse_jsonl(&text);
        assert_eq!(parsed.len(), 1, "whole line kept, torn line dropped");
    }

    #[test]
    fn feasibility_classification() {
        let trials = TrialProfile::default();
        let p = point();
        let pruned_hard = PointRecord::pruned(&p, &trials, "placement: no slots");
        assert!(pruned_hard.status.is_infeasible());
        assert!(!pruned_hard.feasible());
        let pruned_invalid = PointRecord::pruned(&p, &trials, "network: duplicate name");
        assert!(pruned_invalid.status.is_infeasible());
        let pruned_budget = PointRecord::pruned(&p, &trials, "not promoted past rung A");
        assert!(!pruned_budget.status.is_infeasible());
        assert!(pruned_budget.infeasibility().is_some());

        // Interruptions are about the run, not the design.
        let cancelled = PointRecord::from_error(&p, &trials, &EvalError::Cancelled);
        assert!(cancelled.status.is_interrupted());
        let timed_out = PointRecord::from_error(
            &p,
            &trials,
            &EvalError::TimedOut {
                stage: pd_core::Stage::Place,
                elapsed_ms: 12,
            },
        );
        assert!(timed_out.status.is_interrupted());
        assert!(!pruned_hard.status.is_interrupted());
        assert!(!PointStatus::Ok.is_interrupted());

        let mut ok = PointRecord::base(&p, &trials, PointStatus::Ok);
        ok.metrics = Some(PointMetrics {
            servers_built: 64,
            cost_per_server: 1000.0,
            tco_per_server: 2000.0,
            bisection: 1.0,
            throughput_per_server: 90.0,
            time_to_deploy_h: 30.0,
            fault_mean_retention: None,
            deployable: true,
            envelope_breaks: 0,
        });
        assert!(ok.feasible());
        assert!(ok.infeasibility().is_none());
        let mut broken = ok.clone();
        broken.metrics.as_mut().unwrap().envelope_breaks = 2;
        assert!(!broken.feasible());
        assert!(broken.infeasibility().unwrap().contains("envelope"));
    }
}
