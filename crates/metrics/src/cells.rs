//! The atomic metric cells: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! Cells are the hot-path half of the crate: recording is one or two
//! `Relaxed` atomic read-modify-writes and never allocates, blocks, or
//! branches on contention, so a cell can be shared across a whole parallel
//! batch the way `StageTrace`'s cells are. Reads use `Relaxed` too —
//! metrics are statistics, not synchronization; anything needing
//! happens-before ordering must not build it out of metric cells.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use crate::registry::MetricError;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (snapshot epochs; the perf harness resets between
    /// runs so each `BENCH_PIPELINE.json` reflects exactly one workload).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A value that goes up and down (queue depth, in-flight work, pool size).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Moves the gauge by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge.
    pub fn reset(&self) {
        self.set(0);
    }
}

/// A fixed-bucket histogram of `u64` samples.
///
/// Buckets are defined by a strictly increasing slice of **inclusive upper
/// bounds**: a sample `v` lands in the first bucket whose bound is `>= v`,
/// and samples beyond the last bound land in a dedicated overflow bucket.
/// Bounds are fixed at construction — no dynamic resizing, no quantile
/// sketches — so two histograms with equal bounds merge exactly and
/// deterministically, and a snapshot is a plain array of integers.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` cells; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A histogram over `bounds` (inclusive upper bounds, strictly
    /// increasing).
    ///
    /// # Panics
    ///
    /// If `bounds` is empty or not strictly increasing — bucket layouts are
    /// code constants, so a bad layout is a programming error, not input.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// The bucket bounds this histogram was built with.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps on overflow like any `u64` accumulator;
    /// callers recording nanoseconds have ~584 years of headroom).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket sample counts, in bound order; the final element is the
    /// overflow bucket (samples greater than the last bound).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Adds every sample of `other` into `self`, bucket by bucket.
    ///
    /// Both histograms stay live during the merge (all cells are atomics);
    /// a merge concurrent with recording folds in whatever `other` held at
    /// each cell's load, which is the same guarantee any atomic snapshot
    /// gives. Errs without touching `self` if the bucket layouts differ.
    pub fn merge_from(&self, other: &Histogram) -> Result<(), MetricError> {
        if self.bounds != other.bounds {
            return Err(MetricError::BoundsMismatch {
                name: String::new(),
                existing: self.bounds.clone(),
                requested: other.bounds.clone(),
            });
        }
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        Ok(())
    }

    /// Zeroes every cell, keeping the bucket layout.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        let h = Histogram::new(&[10, 100, 1000]);
        // Exactly on a bound lands in that bound's bucket.
        h.record(10);
        // Strictly below the first bound.
        h.record(3);
        // Between bounds: first bucket whose bound >= v.
        h.record(11);
        h.record(100);
        // Beyond the last bound: overflow.
        h.record(1001);
        assert_eq!(h.bucket_counts(), vec![2, 2, 0, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 10 + 3 + 11 + 100 + 1001);
        assert_eq!(h.max(), 1001);
    }

    #[test]
    fn zero_sample_lands_in_first_bucket_and_mean_is_defined() {
        let h = Histogram::new(&[5]);
        assert_eq!(h.mean(), 0.0, "empty histogram has mean 0");
        h.record(0);
        h.record(5);
        assert_eq!(h.bucket_counts(), vec![2, 0]);
        assert_eq!(h.mean(), 2.5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_bounds_panic() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn merge_adds_every_cell() {
        let a = Histogram::new(&[10, 100]);
        let b = Histogram::new(&[10, 100]);
        a.record(5);
        a.record(500);
        b.record(50);
        b.record(7);
        a.merge_from(&b).unwrap();
        assert_eq!(a.bucket_counts(), vec![2, 1, 1]);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 5 + 500 + 50 + 7);
        assert_eq!(a.max(), 500);
        // b is untouched.
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn merge_rejects_mismatched_layouts() {
        let a = Histogram::new(&[10]);
        let b = Histogram::new(&[10, 100]);
        assert!(matches!(
            a.merge_from(&b),
            Err(MetricError::BoundsMismatch { .. })
        ));
        assert_eq!(a.count(), 0, "failed merge must not touch self");
    }

    #[test]
    fn concurrent_recording_and_merge_lose_nothing() {
        let h = Arc::new(Histogram::new(&[8, 64, 512]));
        let total = Arc::new(Histogram::new(&[8, 64, 512]));
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record((i * 7 + t) % 600);
                    }
                });
            }
        });
        total.merge_from(&h).unwrap();
        assert_eq!(total.count(), 4000);
        assert_eq!(total.bucket_counts().iter().sum::<u64>(), 4000);
        assert_eq!(total.sum(), h.sum());
    }
}
