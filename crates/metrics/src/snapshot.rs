//! Point-in-time metric snapshots and their deterministic serializations.
//!
//! A [`MetricsSnapshot`] is plain data: every registered metric's name,
//! [`Class`], and value, sorted by name. Its JSON form is written by hand
//! (this crate is std-only) with a **fixed field order** — classes
//! segregated into two top-level objects, names sorted within each, and
//! every value an integer — so that the `counts` object of two runs can be
//! compared byte-for-byte as a determinism check. That property is load-
//! bearing: `pd-bench perf` embeds these objects in `BENCH_PIPELINE.json`
//! and its integration tests diff the bytes across `--jobs` settings.

use crate::registry::Class;

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's cells (see [`crate::cells::Histogram`]).
    Histogram {
        /// Samples recorded.
        count: u64,
        /// Sum of all samples.
        sum: u64,
        /// Largest sample (0 when empty).
        max: u64,
        /// Inclusive upper bounds, in order.
        bounds: Vec<u64>,
        /// Per-bucket counts; one longer than `bounds` (overflow last).
        buckets: Vec<u64>,
    },
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// The dotted metric name.
    pub name: String,
    /// The determinism class it was registered under.
    pub class: Class,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// Every registered metric at one point in time, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// The entries, in ascending name order.
    pub entries: Vec<SnapshotEntry>,
}

impl MetricsSnapshot {
    /// The entry named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&SnapshotEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The entries of one class, in name order.
    pub fn of_class(&self, class: Class) -> impl Iterator<Item = &SnapshotEntry> {
        self.entries.iter().filter(move |e| e.class == class)
    }

    /// The deterministic JSON form:
    ///
    /// ```json
    /// {
    ///   "counts": { "<name>": <value>, ... },
    ///   "diagnostics": { "<name>": <value>, ... }
    /// }
    /// ```
    ///
    /// Counters and gauges serialize as bare integers; histograms as
    /// `{"count":N,"sum":N,"max":N,"buckets":[[bound,count],...],
    /// "overflow":N}` — field order fixed, integers only (the float `mean`
    /// is derivable and deliberately excluded, so no float-formatting
    /// question can perturb the bytes).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, class) in [Class::Count, Class::Diagnostic].iter().enumerate() {
            let key = match class {
                Class::Count => "counts",
                Class::Diagnostic => "diagnostics",
            };
            out.push_str("  \"");
            out.push_str(key);
            out.push_str("\": {");
            let mut first = true;
            for e in self.of_class(*class) {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("\n    \"");
                out.push_str(&escape_json(&e.name));
                out.push_str("\": ");
                write_value(&mut out, &e.value);
            }
            if !first {
                out.push_str("\n  ");
            }
            out.push('}');
            if i == 0 {
                out.push(',');
            }
            out.push('\n');
        }
        out.push('}');
        out
    }

    /// The human table the stderr sink prints: class-grouped, name-aligned.
    pub fn render_table(&self) -> String {
        let width = self
            .entries
            .iter()
            .map(|e| e.name.len())
            .max()
            .unwrap_or(0)
            .max("metric".len());
        let mut out = format!("{:<width$}  {:>14}  detail\n", "metric", "value");
        for (class, header) in [
            (Class::Count, "deterministic counts"),
            (Class::Diagnostic, "diagnostics (scheduling/timing-dependent)"),
        ] {
            let mut wrote_header = false;
            for e in self.of_class(class) {
                if !wrote_header {
                    out.push_str(&format!("-- {header} --\n"));
                    wrote_header = true;
                }
                match &e.value {
                    MetricValue::Counter(v) => {
                        out.push_str(&format!("{:<width$}  {v:>14}\n", e.name));
                    }
                    MetricValue::Gauge(v) => {
                        out.push_str(&format!("{:<width$}  {v:>14}  gauge\n", e.name));
                    }
                    MetricValue::Histogram {
                        count, sum, max, ..
                    } => {
                        let mean = if *count == 0 {
                            0.0
                        } else {
                            *sum as f64 / *count as f64
                        };
                        out.push_str(&format!(
                            "{:<width$}  {count:>14}  mean {mean:.1}, max {max}\n",
                            e.name
                        ));
                    }
                }
            }
        }
        out
    }
}

fn write_value(out: &mut String, value: &MetricValue) {
    match value {
        MetricValue::Counter(v) => out.push_str(&v.to_string()),
        MetricValue::Gauge(v) => out.push_str(&v.to_string()),
        MetricValue::Histogram {
            count,
            sum,
            max,
            bounds,
            buckets,
        } => {
            out.push_str(&format!("{{\"count\":{count},\"sum\":{sum},\"max\":{max},\"buckets\":["));
            for (i, (bound, n)) in bounds.iter().zip(buckets).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{bound},{n}]"));
            }
            let overflow = buckets.last().copied().unwrap_or(0);
            out.push_str(&format!("],\"overflow\":{overflow}}}"));
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes);
/// metric names are code constants, but a sink must never emit invalid
/// JSON no matter what it is handed.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("pipeline.generate.runs").add(4);
        reg.counter("batch.specs").add(4);
        reg.diagnostic_counter("pipeline.generate.wall_ns").add(1234);
        reg.diagnostic_gauge("batch.jobs").set(8);
        reg.histogram("search.wave.size", &[4, 16]).record(8);
        reg
    }

    #[test]
    fn json_field_ordering_is_fixed_and_sorted() {
        let json = sample_registry().snapshot().to_json();
        // counts object first, diagnostics second.
        let counts_at = json.find("\"counts\"").unwrap();
        let diags_at = json.find("\"diagnostics\"").unwrap();
        assert!(counts_at < diags_at);
        // Names sorted within each section.
        let batch = json.find("\"batch.specs\"").unwrap();
        let generate = json.find("\"pipeline.generate.runs\"").unwrap();
        let wave = json.find("\"search.wave.size\"").unwrap();
        assert!(batch < generate && generate < wave);
        // Histogram field order is pinned.
        assert!(json.contains(
            "\"search.wave.size\": {\"count\":1,\"sum\":8,\"max\":8,\"buckets\":[[4,0],[16,1]],\"overflow\":0}"
        ));
        // Diagnostics are segregated, not interleaved.
        let counts_obj = &json[counts_at..diags_at];
        assert!(!counts_obj.contains("wall_ns"));
        assert!(!counts_obj.contains("batch.jobs"));
    }

    #[test]
    fn json_is_byte_stable_across_snapshots() {
        let reg = sample_registry();
        assert_eq!(reg.snapshot().to_json(), reg.snapshot().to_json());
    }

    #[test]
    fn empty_snapshot_serializes_cleanly() {
        let json = MetricsSnapshot::default().to_json();
        assert_eq!(json, "{\n  \"counts\": {},\n  \"diagnostics\": {}\n}");
    }

    #[test]
    fn table_groups_by_class() {
        let table = sample_registry().snapshot().render_table();
        let counts_at = table.find("deterministic counts").unwrap();
        let diags_at = table.find("diagnostics (").unwrap();
        assert!(counts_at < diags_at);
        assert!(table.find("batch.specs").unwrap() < diags_at);
        assert!(table.find("pipeline.generate.wall_ns").unwrap() > diags_at);
        assert!(table.contains("mean 8.0, max 8"));
    }

    #[test]
    fn escaping_covers_quotes_and_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn get_and_of_class_accessors() {
        let snap = sample_registry().snapshot();
        assert!(snap.get("batch.specs").is_some());
        assert!(snap.get("nope").is_none());
        assert_eq!(snap.of_class(Class::Count).count(), 3);
        assert_eq!(snap.of_class(Class::Diagnostic).count(), 2);
    }
}
