//! Pluggable snapshot sinks: where a [`MetricsSnapshot`] goes.
//!
//! Two sinks cover the workspace's needs:
//!
//! * [`TableSink`] — the class-grouped human table, conventionally on
//!   stderr (the CLI bins' `--metrics` flag), so deterministic stdout /
//!   JSONL contracts are never polluted.
//! * [`JsonSink`] — the deterministic-field JSON object
//!   ([`MetricsSnapshot::to_json`]), conventionally to a file; this is the
//!   form `BENCH_PIPELINE.json` embeds.
//!
//! Both are thin `io::Write` adapters — a sink decides *formatting*, the
//! caller decides *when* and *where*.

use std::io::{self, Write};

use crate::snapshot::MetricsSnapshot;

/// Something that can receive a snapshot.
pub trait Sink {
    /// Writes one snapshot.
    fn emit(&mut self, snapshot: &MetricsSnapshot) -> io::Result<()>;
}

/// Renders the class-grouped table to a writer.
pub struct TableSink<W: Write> {
    out: W,
}

impl TableSink<io::Stderr> {
    /// A table sink on stderr — the conventional home for diagnostics.
    pub fn stderr() -> Self {
        Self { out: io::stderr() }
    }
}

impl<W: Write> TableSink<W> {
    /// A table sink on any writer.
    pub fn new(out: W) -> Self {
        Self { out }
    }
}

impl<W: Write> Sink for TableSink<W> {
    fn emit(&mut self, snapshot: &MetricsSnapshot) -> io::Result<()> {
        self.out.write_all(snapshot.render_table().as_bytes())?;
        self.out.flush()
    }
}

/// Writes the deterministic JSON object (plus a trailing newline) to a
/// writer.
pub struct JsonSink<W: Write> {
    out: W,
}

impl JsonSink<std::fs::File> {
    /// A JSON sink that creates (or truncates) `path`.
    pub fn to_path(path: &std::path::Path) -> io::Result<Self> {
        Ok(Self {
            out: std::fs::File::create(path)?,
        })
    }
}

impl<W: Write> JsonSink<W> {
    /// A JSON sink on any writer.
    pub fn new(out: W) -> Self {
        Self { out }
    }
}

impl<W: Write> Sink for JsonSink<W> {
    fn emit(&mut self, snapshot: &MetricsSnapshot) -> io::Result<()> {
        self.out.write_all(snapshot.to_json().as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn sinks_write_their_formats() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b").add(2);
        reg.diagnostic_counter("c.d_ns").add(9);
        let snap = reg.snapshot();

        let mut table = Vec::new();
        TableSink::new(&mut table).emit(&snap).unwrap();
        let table = String::from_utf8(table).unwrap();
        assert!(table.contains("a.b") && table.contains("deterministic counts"));

        let mut json = Vec::new();
        JsonSink::new(&mut json).emit(&snap).unwrap();
        let json = String::from_utf8(json).unwrap();
        assert_eq!(json, format!("{}\n", snap.to_json()));
        assert!(json.contains("\"a.b\": 2"));
    }

    #[test]
    fn json_sink_to_path_roundtrips() {
        let reg = MetricsRegistry::new();
        reg.counter("x").incr();
        let dir = std::env::temp_dir().join("pd_metrics_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        JsonSink::to_path(&path)
            .unwrap()
            .emit(&reg.snapshot())
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, format!("{}\n", reg.snapshot().to_json()));
        std::fs::remove_file(&path).ok();
    }
}
