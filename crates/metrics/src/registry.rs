//! The [`MetricsRegistry`]: hierarchical names → shared atomic cells.
//!
//! Names are dotted paths (`pipeline.place.wall_ns`, `cache.gen.hits`,
//! `search.rung_a.pruned`): purely a naming convention — the registry
//! stores a flat sorted map — but sinks group and sort by it, so related
//! metrics render together. Registration is get-or-create: asking for an
//! existing name with the same kind, class, and (for histograms) bucket
//! layout returns a handle to the *same* cell, so independent instrument
//! sites can share a metric without coordinating; asking with a different
//! kind, class, or layout is an error — silently splitting or shadowing a
//! metric would corrupt every consumer downstream.
//!
//! The registry's mutex guards only the name map. Recording goes straight
//! to the `Arc`'d cells; hot paths register once (e.g. in a `OnceLock`)
//! and never touch the map again.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::cells::{Counter, Gauge, Histogram};
use crate::snapshot::{MetricValue, MetricsSnapshot, SnapshotEntry};

/// The determinism class of a metric — see the crate docs for the
/// contract this encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Class {
    /// Deterministic: a pure function of the workload, byte-identical at
    /// any `--jobs` setting (stage runs, artifacts, specs, prune counts).
    Count,
    /// Scheduling- or timing-dependent: may vary run to run (wall times,
    /// queue depths, occupancy, bounded-cache hit/miss/evictions).
    Diagnostic,
}

impl Class {
    /// Stable lowercase name, used in snapshots and sink output.
    pub fn name(self) -> &'static str {
        match self {
            Class::Count => "count",
            Class::Diagnostic => "diagnostic",
        }
    }
}

/// What kind of cell a name is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotone [`Counter`].
    Counter,
    /// An up/down [`Gauge`].
    Gauge,
    /// A fixed-bucket [`Histogram`].
    Histogram,
}

impl MetricKind {
    /// Stable lowercase name for error messages and tables.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Why a registration was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricError {
    /// The name is already bound to a different kind of cell.
    KindMismatch {
        /// The contested name.
        name: String,
        /// What the name is bound to.
        existing: MetricKind,
        /// What the caller asked for.
        requested: MetricKind,
    },
    /// The name is already registered under the other determinism class.
    ClassMismatch {
        /// The contested name.
        name: String,
        /// The registered class.
        existing: Class,
        /// What the caller asked for.
        requested: Class,
    },
    /// The name is a histogram with a different bucket layout (also
    /// returned by [`Histogram::merge_from`] on layout mismatch, with an
    /// empty name).
    BoundsMismatch {
        /// The contested name (empty for direct merges).
        name: String,
        /// The registered layout.
        existing: Vec<u64>,
        /// What the caller asked for.
        requested: Vec<u64>,
    },
}

impl std::fmt::Display for MetricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricError::KindMismatch {
                name,
                existing,
                requested,
            } => write!(
                f,
                "metric {name:?} is a {}, not a {}",
                existing.name(),
                requested.name()
            ),
            MetricError::ClassMismatch {
                name,
                existing,
                requested,
            } => write!(
                f,
                "metric {name:?} is registered as {}, not {}",
                existing.name(),
                requested.name()
            ),
            MetricError::BoundsMismatch {
                name,
                existing,
                requested,
            } => write!(
                f,
                "histogram {name:?} has bounds {existing:?}, not {requested:?}"
            ),
        }
    }
}

impl std::error::Error for MetricError {}

enum Cell {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Cell {
    fn kind(&self) -> MetricKind {
        match self {
            Cell::Counter(_) => MetricKind::Counter,
            Cell::Gauge(_) => MetricKind::Gauge,
            Cell::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Entry {
    class: Class,
    cell: Cell,
}

/// A named collection of metric cells — see the module docs.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_register<T>(
        &self,
        name: &str,
        class: Class,
        extract: impl Fn(&Entry) -> Option<Arc<T>>,
        kind: MetricKind,
        make: impl FnOnce() -> Cell,
    ) -> Result<Arc<T>, MetricError> {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(entry) = entries.get(name) {
            if entry.class != class {
                return Err(MetricError::ClassMismatch {
                    name: name.to_string(),
                    existing: entry.class,
                    requested: class,
                });
            }
            return extract(entry).ok_or_else(|| MetricError::KindMismatch {
                name: name.to_string(),
                existing: entry.cell.kind(),
                requested: kind,
            });
        }
        let entry = Entry {
            class,
            cell: make(),
        };
        let handle = extract(&entry).expect("freshly made cell matches its kind");
        entries.insert(name.to_string(), entry);
        Ok(handle)
    }

    /// Gets or registers a counter under `name` with an explicit class.
    pub fn try_counter(&self, name: &str, class: Class) -> Result<Arc<Counter>, MetricError> {
        self.get_or_register(
            name,
            class,
            |e| match &e.cell {
                Cell::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            MetricKind::Counter,
            || Cell::Counter(Arc::new(Counter::new())),
        )
    }

    /// A deterministic ([`Class::Count`]) counter.
    ///
    /// # Panics
    ///
    /// On kind/class collision — instrument sites use fixed literal names,
    /// so a collision is a programming error. Use [`Self::try_counter`]
    /// where names are data.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.try_counter(name, Class::Count).unwrap()
    }

    /// A [`Class::Diagnostic`] counter (timings, scheduling-dependent
    /// tallies). Panics like [`Self::counter`].
    pub fn diagnostic_counter(&self, name: &str) -> Arc<Counter> {
        self.try_counter(name, Class::Diagnostic).unwrap()
    }

    /// Gets or registers a gauge under `name` with an explicit class.
    pub fn try_gauge(&self, name: &str, class: Class) -> Result<Arc<Gauge>, MetricError> {
        self.get_or_register(
            name,
            class,
            |e| match &e.cell {
                Cell::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            MetricKind::Gauge,
            || Cell::Gauge(Arc::new(Gauge::new())),
        )
    }

    /// A deterministic gauge. Panics like [`Self::counter`].
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.try_gauge(name, Class::Count).unwrap()
    }

    /// A [`Class::Diagnostic`] gauge. Panics like [`Self::counter`].
    pub fn diagnostic_gauge(&self, name: &str) -> Arc<Gauge> {
        self.try_gauge(name, Class::Diagnostic).unwrap()
    }

    /// Gets or registers a histogram under `name` with an explicit class
    /// and bucket layout (inclusive upper bounds, strictly increasing).
    /// Re-registration must present the identical layout.
    pub fn try_histogram(
        &self,
        name: &str,
        class: Class,
        bounds: &[u64],
    ) -> Result<Arc<Histogram>, MetricError> {
        let h = self.get_or_register(
            name,
            class,
            |e| match &e.cell {
                Cell::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            MetricKind::Histogram,
            || Cell::Histogram(Arc::new(Histogram::new(bounds))),
        )?;
        if h.bounds() != bounds {
            return Err(MetricError::BoundsMismatch {
                name: name.to_string(),
                existing: h.bounds().to_vec(),
                requested: bounds.to_vec(),
            });
        }
        Ok(h)
    }

    /// A deterministic histogram. Panics like [`Self::counter`].
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        self.try_histogram(name, Class::Count, bounds).unwrap()
    }

    /// A [`Class::Diagnostic`] histogram. Panics like [`Self::counter`].
    pub fn diagnostic_histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        self.try_histogram(name, Class::Diagnostic, bounds).unwrap()
    }

    /// Registered metric count.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("metrics registry poisoned").len()
    }

    /// Whether nothing is registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zeroes every cell, keeping all registrations (and live handles)
    /// valid. The perf harness calls this at the start of a run so the
    /// final snapshot covers exactly one workload.
    pub fn reset(&self) {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        for entry in entries.values() {
            match &entry.cell {
                Cell::Counter(c) => c.reset(),
                Cell::Gauge(g) => g.reset(),
                Cell::Histogram(h) => h.reset(),
            }
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    ///
    /// Concurrent recording is fine — each cell is read atomically; the
    /// snapshot is consistent per cell, not across cells, which is the
    /// usual (and sufficient) guarantee for run-end reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let entries = entries
            .iter()
            .map(|(name, entry)| SnapshotEntry {
                name: name.clone(),
                class: entry.class,
                value: match &entry.cell {
                    Cell::Counter(c) => MetricValue::Counter(c.get()),
                    Cell::Gauge(g) => MetricValue::Gauge(g.get()),
                    Cell::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                        bounds: h.bounds().to_vec(),
                        buckets: h.bucket_counts(),
                    },
                },
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry every in-tree instrument site records into.
///
/// Always available and always recording (a disabled counter would cost
/// the same branch the increment costs); whether anything is *reported* is
/// the caller's choice — the CLI bins only sink it behind `--metrics`, and
/// the perf harness snapshots it into `BENCH_PIPELINE.json`.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_kind_shares_the_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("cache.gen.hits");
        let b = reg.counter("cache.gen.hits");
        assert!(Arc::ptr_eq(&a, &b));
        a.add(2);
        assert_eq!(b.get(), 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn kind_collision_is_an_error() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("pipeline.place.wall_ns");
        let err = reg
            .try_gauge("pipeline.place.wall_ns", Class::Count)
            .unwrap_err();
        assert_eq!(
            err,
            MetricError::KindMismatch {
                name: "pipeline.place.wall_ns".into(),
                existing: MetricKind::Counter,
                requested: MetricKind::Gauge,
            }
        );
        // The display names the kinds, for the panic path's message.
        assert!(err.to_string().contains("counter"));
    }

    #[test]
    fn class_collision_is_an_error() {
        let reg = MetricsRegistry::new();
        let _ = reg.diagnostic_counter("batch.worker.busy_ns");
        let err = reg
            .try_counter("batch.worker.busy_ns", Class::Count)
            .unwrap_err();
        assert!(matches!(err, MetricError::ClassMismatch { .. }));
    }

    #[test]
    fn histogram_layout_collision_is_an_error() {
        let reg = MetricsRegistry::new();
        let a = reg.histogram("batch.queue.depth", &[1, 8, 64]);
        let b = reg
            .try_histogram("batch.queue.depth", Class::Count, &[1, 8, 64])
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let err = reg
            .try_histogram("batch.queue.depth", Class::Count, &[1, 2])
            .unwrap_err();
        assert!(matches!(err, MetricError::BoundsMismatch { .. }));
    }

    #[test]
    fn reset_zeroes_cells_but_keeps_handles_live() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a");
        let g = reg.diagnostic_gauge("b");
        let h = reg.histogram("c", &[10]);
        c.add(5);
        g.set(-2);
        h.record(3);
        reg.reset();
        assert_eq!((c.get(), g.get(), h.count()), (0, 0, 0));
        c.incr();
        assert_eq!(c.get(), 1, "old handles still reach the live cell");
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").incr();
        reg.counter("a.first").incr();
        reg.diagnostic_counter("m.middle").incr();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a.first", "m.middle", "z.last"]);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global().counter("test.registry.global");
        let b = global().counter("test.registry.global");
        assert!(Arc::ptr_eq(&a, &b));
    }
}
