//! # pd-metrics — std-only observability for the physnet workspace
//!
//! The ROADMAP's north star demands a system that "runs as fast as the
//! hardware allows" — which is unfalsifiable without numbers that persist
//! across runs. This crate is the workspace's measurement substrate:
//! counters, gauges, and fixed-bucket histograms behind lock-free atomic
//! cells (the same discipline as `pd_core::stages::StageTrace`), collected
//! in a [`MetricsRegistry`] under hierarchical dotted names
//! (`pipeline.place.wall_ns`, `cache.gen.hits`, `search.rung_a.pruned`)
//! and drained through pluggable [`sink`]s — a pretty table for stderr and
//! deterministic-field JSON for files such as `BENCH_PIPELINE.json`.
//!
//! ## The determinism contract
//!
//! Every metric is registered under a [`Class`]:
//!
//! * [`Class::Count`] — **deterministic** quantities (stage runs, artifact
//!   counts, specs evaluated, rungs pruned). These are pure functions of
//!   the workload and must be byte-identical at any `--jobs` setting; the
//!   perf harness's regression checks and `BENCH_PIPELINE.json`'s `counts`
//!   section rely on this.
//! * [`Class::Diagnostic`] — **scheduling- or timing-dependent** quantities
//!   (wall nanoseconds, queue depths, worker occupancy, bounded-cache
//!   hit/miss/eviction counters). These may vary run to run and are
//!   segregated into their own snapshot section so they can never leak
//!   into deterministic outputs.
//!
//! The split is enforced structurally: [`snapshot::MetricsSnapshot`]
//! serializes the two classes into separate top-level JSON objects, so a
//! byte comparison of the `counts` object is a meaningful determinism
//! check even when the same file also records timings. See
//! `docs/OBSERVABILITY.md` for the full metric-name catalog.
//!
//! ## Design constraints
//!
//! * **std-only.** No external dependencies, so every workspace crate can
//!   instrument itself without widening its dependency cone, and the crate
//!   compiles (and its tests run) with a bare `rustc`.
//! * **Lock-free on the hot path.** Recording into a cell is one or two
//!   `Relaxed` atomic RMWs. The registry's mutex is touched only at
//!   registration time; instrument sites cache their `Arc` handles (see
//!   `pd_core::batch` for the idiom).
//! * **Zero policy.** The crate never prints, never samples, never
//!   truncates; deciding when to snapshot and where to sink is entirely
//!   the caller's.
//!
//! ```
//! use pd_metrics::{MetricsRegistry, Class};
//!
//! let reg = MetricsRegistry::new();
//! let evals = reg.counter("pipeline.evaluations");
//! let wall = reg.diagnostic_histogram("pipeline.wall_ns", &[1_000, 1_000_000]);
//! evals.add(3);
//! wall.record(500);
//! wall.record(2_000_000);
//!
//! let snap = reg.snapshot();
//! assert_eq!(snap.get("pipeline.evaluations").unwrap().class, Class::Count);
//! let json = snap.to_json();
//! assert!(json.starts_with("{\n  \"counts\": {"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod registry;
pub mod sink;
pub mod snapshot;

pub use cells::{Counter, Gauge, Histogram};
pub use registry::{global, Class, MetricError, MetricKind, MetricsRegistry};
pub use sink::{JsonSink, Sink, TableSink};
pub use snapshot::{MetricValue, MetricsSnapshot, SnapshotEntry};

/// One-stop imports for instrument sites and snapshot consumers.
pub mod prelude {
    pub use crate::cells::{Counter, Gauge, Histogram};
    pub use crate::registry::{global, Class, MetricError, MetricKind, MetricsRegistry};
    pub use crate::sink::{JsonSink, Sink, TableSink};
    pub use crate::snapshot::{MetricValue, MetricsSnapshot, SnapshotEntry};
}
