//! Property-based tests for the costing substrate.

use pd_cabling::{BundlingReport, CablingPlan, CablingPolicy};
use pd_costing::calib::LaborCalibration;
use pd_costing::{DeploymentPlan, Schedule, ScheduleParams, YieldParams, YieldReport};
use pd_geometry::{Gbps, Hours, Meters};
use pd_physical::placement::EquipmentProfile;
use pd_physical::{Hall, HallSpec, Placement, PlacementStrategy};
use pd_topology::gen::{jellyfish, JellyfishParams};
use proptest::prelude::*;

fn build(seed: u64, tors: usize, bundled: bool) -> (Hall, DeploymentPlan) {
    let net = jellyfish(&JellyfishParams {
        tors,
        network_degree: 4,
        servers_per_tor: 4,
        link_speed: Gbps::new(100.0),
        seed,
    })
    .unwrap();
    let hall = Hall::new(HallSpec::default());
    let placement = Placement::place(
        &net,
        &hall,
        PlacementStrategy::BlockLocal,
        &EquipmentProfile::default(),
    )
    .unwrap();
    let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
    let rep = BundlingReport::analyze(&plan, 4);
    let dp = DeploymentPlan::from_cabling(&net, &placement, &plan, bundled.then_some(&rep));
    (hall, dp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scheduler invariants hold across random networks and pool sizes:
    /// makespan ≥ critical path, precedence respected, utilization ≤ 1.
    #[test]
    fn scheduler_invariants(seed in 0u64..40, tors in 8usize..24, techs in 1usize..12) {
        prop_assume!(tors * 4 % 2 == 0);
        let (hall, dp) = build(seed, tors, seed % 2 == 0);
        let params = ScheduleParams {
            technicians: techs,
            ..ScheduleParams::default()
        };
        let sched = Schedule::run(&dp, &hall, &params);
        let cp = dp.critical_path(&params.calib);
        prop_assert!(sched.makespan + Hours::new(1e-9) >= cp);
        for t in &dp.tasks {
            for p in &t.preds {
                prop_assert!(
                    sched.start[t.id.0 as usize] + Hours::new(1e-9)
                        >= sched.finish[p.0 as usize]
                );
            }
        }
        let u = sched.utilization();
        prop_assert!(u > 0.0 && u <= 1.0 + 1e-9, "utilization {u}");
    }

    /// More technicians never makes the makespan dramatically worse
    /// (greedy list scheduling anomaly bound: allow 15% slack).
    #[test]
    fn more_techs_roughly_monotone(seed in 0u64..20) {
        let (hall, dp) = build(seed, 16, true);
        let mk = |n: usize| {
            Schedule::run(&dp, &hall, &ScheduleParams {
                technicians: n,
                ..ScheduleParams::default()
            })
            .makespan
        };
        let few = mk(2);
        let many = mk(12);
        prop_assert!(many <= few * 1.15, "few {few} many {many}");
    }

    /// Yield decreases (weakly) as the error rate grows, and rework scales
    /// with errors.
    #[test]
    fn yield_monotone_in_error_rate(seed in 0u64..20, rate_bump in 1.0f64..20.0) {
        let (_, dp) = build(seed, 16, false);
        let base = LaborCalibration::default();
        let noisy = LaborCalibration {
            loose_error_rate: (base.loose_error_rate * rate_bump).min(0.5),
            ..base.clone()
        };
        let p = YieldParams { trials: 40, seed, threads: 2 };
        let a = YieldReport::simulate(&dp, &base, &p);
        let b = YieldReport::simulate(&dp, &noisy, &p);
        prop_assert!(b.first_pass_yield <= a.first_pass_yield + 1e-9);
        prop_assert!(b.mean_errors + 1e-9 >= a.mean_errors);
        prop_assert!(a.worst_yield <= a.first_pass_yield);
    }

    /// Person-hour accounting: total work equals the sum over tasks of
    /// duration × crew, and crews never exceed 2 in the default profile.
    #[test]
    fn person_hour_accounting(seed in 0u64..20) {
        let (_, dp) = build(seed, 12, true);
        let calib = LaborCalibration::default();
        let manual: Hours = dp
            .tasks
            .iter()
            .map(|t| t.kind.duration(&calib) * t.techs_required as f64)
            .sum();
        prop_assert!((dp.total_work(&calib) - manual).abs() < Hours::new(1e-9));
        prop_assert!(dp.tasks.iter().all(|t| (1..=2).contains(&t.techs_required)));
    }

    /// Labor helpers behave dimensionally: longer cables cost more time,
    /// bundles of n cost less than n loose pulls for n ≥ 8 at 20 m.
    #[test]
    fn labor_helper_properties(len in 1.0f64..80.0, n in 8usize..64) {
        let c = LaborCalibration::default();
        let l1 = c.loose_cable_time(Meters::new(len));
        let l2 = c.loose_cable_time(Meters::new(len + 1.0));
        prop_assert!(l2 > l1);
        let bundle = c.bundle_time(n, Meters::new(20.0));
        let loose = c.loose_cable_time(Meters::new(20.0)) * n as f64;
        prop_assert!(bundle < loose, "n={n} bundle {bundle} loose {loose}");
    }
}
