//! Lowering a cabling plan into a precedence-ordered deployment task graph.
//!
//! Precedence structure:
//!
//! 1. every rack must be installed before its switches;
//! 2. every switch at both ends of a cable must be installed before the
//!    cable is pulled (bundles wait for all member endpoints);
//! 3. every cable of a link must be in before the link is tested.
//!
//! The graph is what the paper's "automated planning of operator actions"
//! (§2.3) consumes: the scheduler walks it with a technician pool, and the
//! yield model samples errors on its connecting tasks.

use crate::calib::LaborCalibration;
use crate::labor::WorkKind;
use pd_cabling::{BundlingReport, CablingPlan};
use pd_geometry::Hours;
use pd_physical::{Placement, SlotId};
use pd_topology::{LinkId, Network};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a task within a [`DeploymentPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

/// Re-export of the labor vocabulary for plan consumers.
pub use crate::labor::WorkKind as TaskKind;

/// One schedulable unit of physical work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkTask {
    /// Identifier (dense index).
    pub id: TaskId,
    /// What the work is.
    pub kind: WorkKind,
    /// Where the technician stands (rack-exclusion + walking).
    pub site: SlotId,
    /// Tasks that must complete first.
    pub preds: Vec<TaskId>,
    /// The link this task serves, if any (test/pull/bundle tasks).
    pub link: Option<LinkId>,
    /// Technicians needed simultaneously (§3.2 safety: heavy chassis are a
    /// two-person lift; most tasks need one).
    pub techs_required: usize,
}

/// The full deployment task graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentPlan {
    /// Tasks, indexed by `TaskId.0`.
    pub tasks: Vec<WorkTask>,
}

impl DeploymentPlan {
    /// Builds the task graph for a placed, cabled network.
    ///
    /// If `bundling` is provided, every manufacturable bundle becomes one
    /// [`WorkKind::InstallBundle`] task and only loose cables get
    /// individual pulls; otherwise every cable is pulled loose.
    pub fn from_cabling(
        net: &Network,
        placement: &Placement,
        plan: &CablingPlan,
        bundling: Option<&BundlingReport>,
    ) -> Self {
        let mut tasks: Vec<WorkTask> = Vec::new();
        let mut push = |kind: WorkKind,
                        site: SlotId,
                        preds: Vec<TaskId>,
                        link: Option<LinkId>,
                        techs: usize| {
            let id = TaskId(tasks.len() as u32);
            tasks.push(WorkTask {
                id,
                kind,
                site,
                preds,
                link,
                techs_required: techs.max(1),
            });
            id
        };

        // 1. Rack installs.
        let mut rack_task: HashMap<SlotId, TaskId> = HashMap::new();
        for rack in &placement.racks {
            // Standing a rack up is always a two-person job (tip hazard).
            let t = push(WorkKind::InstallRack, rack.slot, Vec::new(), None, 2);
            rack_task.insert(rack.slot, t);
        }
        // Indirection sites are racks too.
        for site in &plan.sites {
            let t = push(WorkKind::InstallRack, site.slot, Vec::new(), None, 2);
            rack_task.insert(site.slot, t);
        }

        // 2. Switch installs.
        let mut switch_task: HashMap<pd_topology::SwitchId, TaskId> = HashMap::new();
        for s in net.switches() {
            if let Some(slot) = placement.slot_of(s.id) {
                let preds = rack_task.get(&slot).map(|&t| vec![t]).unwrap_or_default();
                // §3.2 safety: chassis switches (radix > 64 ⇒ 4 RU, ~45 kg)
                // are a two-person lift.
                let techs = if s.radix > 64 { 2 } else { 1 };
                let t = push(WorkKind::InstallSwitch, slot, preds, None, techs);
                switch_task.insert(s.id, t);
            }
        }

        // 3. Cables: bundles first (each member run covered once), then
        // loose runs.
        let mut covered: Vec<bool> = vec![false; plan.runs.len()];
        let mut cable_tasks_of_link: HashMap<LinkId, Vec<TaskId>> = HashMap::new();
        if let Some(rep) = bundling {
            for bundle in rep.manufacturable() {
                let mut preds: Vec<TaskId> = Vec::new();
                let mut links: Vec<LinkId> = Vec::new();
                for &m in &bundle.members {
                    covered[m] = true;
                    let run = &plan.runs[m];
                    links.push(run.link);
                    if let Some(l) = net.link(run.link) {
                        for end in [l.a, l.b] {
                            if let Some(&t) = switch_task.get(&end) {
                                preds.push(t);
                            }
                        }
                    }
                    // Site racks must exist before a mediated cable lands.
                    if run.via_site.is_some() {
                        for slot in [run.from_slot, run.to_slot] {
                            if let Some(&t) = rack_task.get(&slot) {
                                preds.push(t);
                            }
                        }
                    }
                }
                preds.sort();
                preds.dedup();
                let t = push(
                    WorkKind::InstallBundle {
                        members: bundle.size(),
                        length: bundle.length,
                    },
                    bundle.from_slot,
                    preds,
                    None,
                    1,
                );
                links.sort();
                links.dedup();
                for l in links {
                    cable_tasks_of_link.entry(l).or_default().push(t);
                }
            }
        }
        for (i, run) in plan.runs.iter().enumerate() {
            if covered[i] {
                continue;
            }
            let mut preds: Vec<TaskId> = Vec::new();
            if let Some(l) = net.link(run.link) {
                for end in [l.a, l.b] {
                    if let Some(&t) = switch_task.get(&end) {
                        preds.push(t);
                    }
                }
            }
            for slot in [run.from_slot, run.to_slot] {
                if let Some(&t) = rack_task.get(&slot) {
                    preds.push(t);
                }
            }
            preds.sort();
            preds.dedup();
            let t = push(
                WorkKind::PullLooseCable {
                    length: run.routed_length,
                },
                run.from_slot,
                preds,
                Some(run.link),
                1,
            );
            cable_tasks_of_link.entry(run.link).or_default().push(t);
        }

        // 4. Link tests.
        for (link, cable_tasks) in {
            let mut v: Vec<_> = cable_tasks_of_link.into_iter().collect();
            v.sort_by_key(|(l, _)| *l);
            v
        } {
            let site = net
                .link(link)
                .and_then(|l| placement.slot_of(l.a))
                .unwrap_or(SlotId(0));
            push(WorkKind::TestLink, site, cable_tasks, Some(link), 1);
        }

        Self { tasks }
    }

    /// Total labor in **person-hours** (multi-person tasks count once per
    /// crew member) — the labor-cost denominator.
    pub fn total_work(&self, calib: &LaborCalibration) -> Hours {
        self.tasks
            .iter()
            .map(|t| t.kind.duration(calib) * t.techs_required.max(1) as f64)
            .sum()
    }

    /// Critical-path length (infinite technicians, no walking) — the lower
    /// bound on any schedule's makespan.
    pub fn critical_path(&self, calib: &LaborCalibration) -> Hours {
        let mut finish: Vec<Hours> = vec![Hours::ZERO; self.tasks.len()];
        // Tasks are topologically ordered by construction (preds always
        // have smaller ids).
        for t in &self.tasks {
            let ready = t
                .preds
                .iter()
                .map(|p| finish[p.0 as usize])
                .fold(Hours::ZERO, Hours::max);
            finish[t.id.0 as usize] = ready + t.kind.duration(calib);
        }
        finish.into_iter().fold(Hours::ZERO, Hours::max)
    }

    /// Total individual connections made (for yield math).
    pub fn total_connections(&self) -> usize {
        self.tasks.iter().map(|t| t.kind.connections()).sum()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if there is no work.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_cabling::CablingPolicy;
    use pd_geometry::Gbps;
    use pd_physical::placement::EquipmentProfile;
    use pd_physical::{Hall, HallSpec, PlacementStrategy};
    use pd_topology::gen::fat_tree;

    fn build(bundled: bool) -> (Network, DeploymentPlan) {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        let rep = BundlingReport::analyze(&plan, 4);
        let dp = DeploymentPlan::from_cabling(
            &net,
            &placement,
            &plan,
            bundled.then_some(&rep),
        );
        (net, dp)
    }

    #[test]
    fn graph_shape_unbundled() {
        let (net, dp) = build(false);
        // 13 racks + 20 switches + 32 pulls + 32 tests.
        assert_eq!(dp.len(), 13 + 20 + 32 + 32);
        let tests = dp
            .tasks
            .iter()
            .filter(|t| matches!(t.kind, WorkKind::TestLink))
            .count();
        assert_eq!(tests, net.link_count());
    }

    #[test]
    fn preds_are_topologically_ordered() {
        let (_, dp) = build(true);
        for t in &dp.tasks {
            for p in &t.preds {
                assert!(p.0 < t.id.0, "task {} has forward pred {}", t.id.0, p.0);
            }
        }
    }

    #[test]
    fn bundling_reduces_task_count_and_work() {
        // k=4 bundles are tiny (2–4 cables) and roughly a wash against the
        // bundle's fixed cost — itself a faithful effect. Use k=8, where
        // pod→spine groups reach 8 cables and the savings are clear.
        let net = fat_tree(8, Gbps::new(100.0)).unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        let rep = BundlingReport::analyze(&plan, 4);
        let loose = DeploymentPlan::from_cabling(&net, &placement, &plan, None);
        let bundled = DeploymentPlan::from_cabling(&net, &placement, &plan, Some(&rep));
        assert!(bundled.len() < loose.len());
        let c = LaborCalibration::default();
        assert!(
            bundled.total_work(&c) < loose.total_work(&c) * 0.9,
            "bundled {} loose {}",
            bundled.total_work(&c),
            loose.total_work(&c)
        );
    }

    #[test]
    fn critical_path_at_most_total_work() {
        let (_, dp) = build(true);
        let c = LaborCalibration::default();
        let cp = dp.critical_path(&c);
        let tw = dp.total_work(&c);
        assert!(cp > Hours::ZERO);
        assert!(cp <= tw);
    }

    #[test]
    fn connections_counted() {
        let (net, dp) = build(false);
        // Every loose cable contributes 2 connections.
        assert_eq!(dp.total_connections(), net.link_count() * 2);
    }
}
