//! # pd-costing — capex, labor, scheduling, yield, and TCO
//!
//! The paper's internal metrics (§2) are "time to deploy (hours of effort),
//! cost to deploy, and first-pass yield". This crate computes all three for
//! any cabling plan, plus the §2.3 stranded-capital cost of slow deployment
//! and the §3.5/§5.4 day-1-versus-lifetime tradeoff:
//!
//! * [`calib`] — every labor/cost constant, with its provenance.
//! * [`capex`] — switch, cable, transceiver, and indirection-site BOM costs.
//! * [`labor`] — the task model: what a technician physically does, how
//!   long each task takes, and the per-task error rates.
//! * [`deploy`] — lowers a cabling plan into a precedence-ordered task
//!   graph (rack installs → switch installs → cable pulls/bundles →
//!   connect → test).
//! * [`schedule`] — a k-technician list scheduler with walking time and
//!   one-tech-per-rack exclusion (§3.2); makespan = **time-to-deploy**.
//! * [`yield_model`] — Monte-Carlo first-pass yield with rework.
//! * [`supply`] — §2.2/§3.3 fungibility audits and vendor-outage impact.
//! * [`tco`] — day-1 vs lifetime cost aggregation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
pub mod capex;
pub mod deploy;
pub mod labor;
pub mod schedule;
pub mod supply;
pub mod tco;
pub mod yield_model;

pub use calib::LaborCalibration;
pub use capex::{switch_cost, CapexReport};
pub use deploy::{DeploymentPlan, TaskId, TaskKind, WorkTask};
pub use schedule::{Schedule, ScheduleParams};
pub use supply::{fungibility_audit, FungibilityReport, OutageImpact, Substitution, VendorOutage};
pub use tco::{TcoParams, TcoReport};
pub use yield_model::{YieldParams, YieldReport};
