//! Calibration constants for labor and cost models, with provenance.
//!
//! These are the toolkit's "proxy metrics" knobs (§2: researchers without
//! hyperscale networks "will need proxy metrics"). Absolute values are
//! order-of-magnitude realistic; experiments rely on *relative* structure
//! and print sensitivity sweeps where a constant is load-bearing.
//!
//! Provenance notes:
//!
//! * The paper's §2.3 example — "an extra 5 minutes per thing adds up
//!   quickly when you have to install 10k things (about 1 week of added
//!   time)" — implies ~830 parallel-tech hours/week of deployment effort;
//!   our defaults are chosen so E1 reproduces that arithmetic exactly.
//! * Singh et al. \[44\] report ≈40 % capex+opex savings and weeks of delay
//!   avoided from pre-built bundles; the per-cable vs per-bundle task times
//!   below are set so bundle installation amortizes to ≈½ the per-cable
//!   pull+dress time at typical bundle sizes, which reproduces that
//!   magnitude in E3 (and is swept there).
//! * Error rates: public first-pass-yield data is scarce (paper footnote
//!   3); defaults put a few miswires per thousand connections, consistent
//!   with the existence (and market) of automated validation tooling.

use pd_geometry::{Hours, Meters};
use serde::{Deserialize, Serialize};

/// All labor-model constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaborCalibration {
    /// Position, bolt down, and power a rack.
    pub install_rack: Hours,
    /// Rack, cable-manage, and firmware-check one switch.
    pub install_switch: Hours,
    /// Fixed time to pull one loose cable — route finding through trays on
    /// an active floor, labeling, verification — independent of length.
    /// (Singh et al. \[44\] motivate bundling precisely because loose pulls
    /// on the datacenter floor are slow; §3.1 "cable installation can be
    /// tedious".)
    pub pull_cable_fixed: Hours,
    /// Additional pull time per meter of tray run.
    pub pull_cable_per_meter: Hours,
    /// Terminate/connect one cable end and dress it.
    pub connect_end: Hours,
    /// Install one pre-built bundle (crane/cart, lay-in), independent of
    /// member count.
    pub install_bundle_fixed: Hours,
    /// Per-member breakout/terminate time within a bundle (much less than a
    /// loose pull: no route finding, pre-labeled, pre-cut).
    pub install_bundle_per_member: Hours,
    /// Per-meter lay-in time for a bundle (one lay-in for the whole bundle).
    pub install_bundle_per_meter: Hours,
    /// Run link-light/BER test on one link.
    pub test_link: Hours,
    /// Diagnose and repair one miswired/damaged connection (drives rework).
    pub rework_connection: Hours,
    /// Technician walking speed on the floor.
    pub walk_meters_per_hour: Meters,
    /// Probability a loose-cable connection is miswired or damaged on the
    /// first pass.
    pub loose_error_rate: f64,
    /// Probability for a bundle-member connection (pre-labeled: lower).
    pub bundle_error_rate: f64,
    /// Hourly cost of one technician (loaded).
    pub tech_hourly_usd: f64,
    /// Capital value stranded per server-hour without network (amortized
    /// server cost, §2.3 "a machine without a network connection is
    /// 'stranded' capital").
    pub stranded_usd_per_server_hour: f64,
}

impl Default for LaborCalibration {
    fn default() -> Self {
        Self {
            install_rack: Hours::new(1.0),
            install_switch: Hours::new(0.5),
            pull_cable_fixed: Hours::from_minutes(15.0),
            pull_cable_per_meter: Hours::from_minutes(0.3),
            connect_end: Hours::from_minutes(2.0),
            install_bundle_fixed: Hours::from_minutes(20.0),
            install_bundle_per_member: Hours::from_minutes(2.0),
            install_bundle_per_meter: Hours::from_minutes(0.5),
            test_link: Hours::from_minutes(1.5),
            rework_connection: Hours::from_minutes(30.0),
            walk_meters_per_hour: Meters::new(4_000.0), // ~1.1 m/s incl. detours
            loose_error_rate: 0.004,
            bundle_error_rate: 0.001,
            tech_hourly_usd: 95.0,
            stranded_usd_per_server_hour: 0.9, // ~$16k server, 3-year refresh, plus opportunity margin
        }
    }
}

impl LaborCalibration {
    /// A robotic-workforce calibration (§2: "what if we want robots to do
    /// the work instead?"). Robots in this model are *slower per
    /// manipulation* (today's arms handle bend-sensitive cable gingerly),
    /// but far less error-prone, cheaper per hour, and immune to fatigue;
    /// they navigate the floor slightly slower than a walking human.
    /// Deliberately conservative — the experiment shows where robots win
    /// even without optimistic assumptions (yield and cost) and where they
    /// lose (calendar time).
    pub fn robot() -> Self {
        Self {
            install_rack: Hours::new(1.5),
            install_switch: Hours::new(0.75),
            pull_cable_fixed: Hours::from_minutes(20.0),
            pull_cable_per_meter: Hours::from_minutes(0.4),
            connect_end: Hours::from_minutes(4.0),
            install_bundle_fixed: Hours::from_minutes(25.0),
            install_bundle_per_member: Hours::from_minutes(3.0),
            install_bundle_per_meter: Hours::from_minutes(0.6),
            test_link: Hours::from_minutes(0.5), // automated validation is where robots shine
            rework_connection: Hours::from_minutes(40.0),
            walk_meters_per_hour: Meters::new(3_000.0),
            loose_error_rate: 0.0003,
            bundle_error_rate: 0.0001,
            tech_hourly_usd: 35.0, // amortized robot + supervision
            stranded_usd_per_server_hour: 0.9,
        }
    }

    /// Walking time for a floor distance.
    pub fn walk_time(&self, distance: Meters) -> Hours {
        if self.walk_meters_per_hour.value() <= 0.0 {
            return Hours::ZERO;
        }
        Hours::new(distance.value() / self.walk_meters_per_hour.value())
    }

    /// Full labor time to pull and terminate one loose cable of `length`.
    pub fn loose_cable_time(&self, length: Meters) -> Hours {
        self.pull_cable_fixed
            + self.pull_cable_per_meter * length.value()
            + self.connect_end * 2.0
    }

    /// Full labor time to install a bundle of `members` cables of common
    /// `length` and terminate every member at both ends.
    pub fn bundle_time(&self, members: usize, length: Meters) -> Hours {
        self.install_bundle_fixed
            + self.install_bundle_per_meter * length.value()
            + self.install_bundle_per_member * members as f64
            + self.connect_end * 2.0 * members as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundles_amortize_per_cable_cost() {
        let c = LaborCalibration::default();
        let len = Meters::new(20.0);
        let loose_16 = c.loose_cable_time(len) * 16.0;
        let bundled_16 = c.bundle_time(16, len);
        let ratio = bundled_16.ratio(loose_16);
        assert!(
            ratio < 0.65,
            "16-cable bundle should cost well under 65% of loose pulls, got {ratio:.2}"
        );
        // But tiny "bundles" are not worth it.
        let loose_1 = c.loose_cable_time(len);
        let bundled_1 = c.bundle_time(1, len);
        assert!(bundled_1 > loose_1);
    }

    #[test]
    fn walk_time_linear() {
        let c = LaborCalibration::default();
        let t = c.walk_time(Meters::new(2_000.0));
        assert!((t - Hours::new(0.5)).abs() < Hours::new(1e-9));
        assert_eq!(c.walk_time(Meters::ZERO), Hours::ZERO);
    }

    #[test]
    fn five_minute_anecdote_arithmetic() {
        // §2.3: +5 min per thing × 10k things ≈ 1 week of added time.
        // 10 000 × 5 min = 833.3 h ≈ 20.8 forty-hour weeks of single-tech
        // effort; with the ~20 parallel technicians a real deployment runs,
        // that is ≈1 calendar week — the paper's number.
        let added = Hours::from_minutes(5.0) * 10_000.0;
        let techs = 20.0;
        let calendar_weeks = (added / techs).to_work_weeks();
        assert!(
            (calendar_weeks - 1.04).abs() < 0.05,
            "got {calendar_weeks:.2} weeks"
        );
    }

    #[test]
    fn robot_preset_tradeoffs() {
        let human = LaborCalibration::default();
        let robot = LaborCalibration::robot();
        // Slower hands…
        assert!(robot.loose_cable_time(Meters::new(20.0)) > human.loose_cable_time(Meters::new(20.0)));
        // …but far fewer errors and cheaper hours.
        assert!(robot.loose_error_rate < human.loose_error_rate / 5.0);
        assert!(robot.tech_hourly_usd < human.tech_hourly_usd);
    }

    #[test]
    fn error_rates_sane() {
        let c = LaborCalibration::default();
        assert!(c.bundle_error_rate < c.loose_error_rate);
        assert!(c.loose_error_rate < 0.05);
    }
}
