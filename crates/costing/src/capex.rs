//! Capital-expenditure model: switches, cables, optics, indirection sites.
//!
//! Switch prices follow a standard per-port cost curve (cost grows slightly
//! super-linearly with radix at a given speed, and roughly linearly with
//! speed); indirection gear uses public list-price magnitudes (a 1008-port
//! robotic OCS is a ~$250k device; a passive panel is ~$2k). As with the
//! cable catalog, experiments depend on the relative structure.

use pd_cabling::{CablingPlan, IndirectionKind};
use pd_geometry::{Dollars, Gbps};
use pd_physical::Placement;
use pd_topology::Network;
use serde::{Deserialize, Serialize};

/// List price of a switch with `radix` ports at `speed` per port.
///
/// Model: $90 per 100G-equivalent port, with a 1.15 radix exponent to
/// reflect the chassis/fabric premium of very high-radix boxes.
pub fn switch_cost(radix: u16, speed: Gbps) -> Dollars {
    let per_port_100g = 90.0;
    let speed_factor = speed.value() / 100.0;
    Dollars::new(per_port_100g * speed_factor * f64::from(radix).powf(1.15))
}

/// Price of one indirection site (panel rack or OCS).
pub fn indirection_site_cost(kind: IndirectionKind) -> Dollars {
    match kind {
        // A rack of passive panels (enclosures + trays + MPO cassettes).
        IndirectionKind::PatchPanel => Dollars::new(18_000.0),
        // Telescent-class robotic OCS, ~1008 duplex ports.
        IndirectionKind::Ocs => Dollars::new(250_000.0),
    }
}

/// The capital bill of materials for a physicalized design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapexReport {
    /// All switches.
    pub switches: Dollars,
    /// All cables including transceivers/ends.
    pub cables: Dollars,
    /// Patch-panel / OCS sites.
    pub indirection: Dollars,
    /// Rack hardware (one per placed rack).
    pub racks: Dollars,
}

impl CapexReport {
    /// Per-rack hardware cost (enclosure, PDU pair, cable management).
    pub const RACK_COST: Dollars = Dollars(3_500.0);

    /// Computes the BOM for a (network, placement, cabling) triple.
    pub fn compute(net: &Network, placement: &Placement, plan: &CablingPlan) -> Self {
        let switches = net
            .switches()
            .map(|s| switch_cost(s.radix, s.port_speed))
            .sum();
        let cables = plan.total_cable_cost();
        let indirection = plan
            .sites
            .iter()
            .map(|s| indirection_site_cost(s.kind))
            .sum();
        let racks = Self::RACK_COST * placement.rack_count() as f64;
        Self {
            switches,
            cables,
            indirection,
            racks,
        }
    }

    /// Grand total.
    pub fn total(&self) -> Dollars {
        self.switches + self.cables + self.indirection + self.racks
    }

    /// Cabling's share of total capex — Popa et al. \[38\] and §3.1 argue
    /// this is the number abstract comparisons ignore.
    pub fn cabling_fraction(&self) -> f64 {
        let t = self.total();
        if t.value() <= 0.0 {
            0.0
        } else {
            self.cables.ratio(t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_cabling::CablingPolicy;
    use pd_geometry::Gbps;
    use pd_physical::placement::EquipmentProfile;
    use pd_physical::{Hall, HallSpec, PlacementStrategy};
    use pd_topology::gen::fat_tree;

    #[test]
    fn switch_cost_scales_with_radix_and_speed() {
        let small = switch_cost(32, Gbps::new(100.0));
        let big = switch_cost(64, Gbps::new(100.0));
        let fast = switch_cost(32, Gbps::new(400.0));
        assert!(big > small * 2.0, "radix premium expected");
        assert!((fast.value() / small.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ocs_costs_more_than_panels() {
        assert!(
            indirection_site_cost(IndirectionKind::Ocs)
                > indirection_site_cost(IndirectionKind::PatchPanel) * 10.0
        );
    }

    #[test]
    fn bom_totals_add_up() {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        let capex = CapexReport::compute(&net, &placement, &plan);
        let sum = capex.switches + capex.cables + capex.indirection + capex.racks;
        assert_eq!(capex.total(), sum);
        assert!(capex.switches > Dollars::ZERO);
        assert!(capex.cables > Dollars::ZERO);
        assert_eq!(capex.indirection, Dollars::ZERO); // no via_ocs links
        assert!(capex.cabling_fraction() > 0.0 && capex.cabling_fraction() < 1.0);
    }
}
