//! The k-technician list scheduler.
//!
//! Executes a [`DeploymentPlan`] against a pool of technicians, modeling:
//!
//! * **walking** between work sites at calibrated speed (§2.3: automation
//!   plans "so that they don't have to waste time (e.g., repeatedly walking
//!   from one place to another)");
//! * **rack exclusion** (§3.2: "how many people at a time can work on one
//!   rack" — here: one);
//! * **precedence** from the task graph.
//!
//! The dispatch rule is deterministic: tasks are released in ready-time
//! order (ties by id), and each task takes the technician who can *finish*
//! it earliest given walking distance. Makespan is the paper's
//! "time-to-deploy (hours of effort)" headline metric.

use crate::calib::LaborCalibration;
use crate::deploy::DeploymentPlan;
use pd_geometry::{Hours, Meters};
use pd_physical::{Hall, SlotId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Scheduler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleParams {
    /// Size of the technician pool.
    pub technicians: usize,
    /// Labor calibration.
    pub calib: LaborCalibration,
}

impl Default for ScheduleParams {
    fn default() -> Self {
        Self {
            technicians: 8,
            calib: LaborCalibration::default(),
        }
    }
}

/// The executed schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    /// Wall-clock end of the last task: the time-to-deploy.
    pub makespan: Hours,
    /// Per-task start times.
    pub start: Vec<Hours>,
    /// Per-task finish times.
    pub finish: Vec<Hours>,
    /// Which technician performed each task.
    pub tech_of: Vec<usize>,
    /// Total busy (working) time per technician.
    pub busy: Vec<Hours>,
    /// Total walking time across the pool.
    pub walking: Hours,
}

impl Schedule {
    /// Runs the list scheduler.
    ///
    /// # Panics
    /// Panics if `params.technicians == 0`.
    pub fn run(plan: &DeploymentPlan, hall: &Hall, params: &ScheduleParams) -> Self {
        assert!(params.technicians > 0, "need at least one technician");
        let n = plan.tasks.len();
        let calib = &params.calib;

        // Ready times driven by precedence.
        let mut indegree: Vec<usize> = plan.tasks.iter().map(|t| t.preds.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for t in &plan.tasks {
            for p in &t.preds {
                dependents[p.0 as usize].push(t.id.0 as usize);
            }
        }

        let mut ready_time: Vec<Hours> = vec![Hours::ZERO; n];
        let mut start = vec![Hours::ZERO; n];
        let mut finish = vec![Hours::ZERO; n];
        let mut tech_of = vec![0usize; n];

        // Technician state: (free-at, location). All start at slot 0 (the
        // door side of the hall).
        let mut tech_free: Vec<Hours> = vec![Hours::ZERO; params.technicians];
        let mut tech_loc: Vec<SlotId> = vec![SlotId(0); params.technicians];
        let mut busy: Vec<Hours> = vec![Hours::ZERO; params.technicians];
        let mut walking = Hours::ZERO;

        // Slot exclusivity.
        let mut slot_free: HashMap<SlotId, Hours> = HashMap::new();

        // Ready min-heap keyed by (ready_time, id).
        use std::collections::BinaryHeap;
        #[derive(PartialEq)]
        struct Ready(Hours, usize);
        impl Eq for Ready {}
        impl Ord for Ready {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                o.0.total_cmp(&self.0).then(o.1.cmp(&self.1))
            }
        }
        impl PartialOrd for Ready {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        let mut heap = BinaryHeap::new();
        for (i, t) in plan.tasks.iter().enumerate() {
            if t.preds.is_empty() {
                heap.push(Ready(Hours::ZERO, i));
            }
            let _ = t;
        }

        let mut scheduled = 0usize;
        while let Some(Ready(rt, i)) = heap.pop() {
            let task = &plan.tasks[i];
            // A k-person task takes the k technicians who can assemble at
            // the site earliest (§3.2: heavy lifts are multi-person jobs;
            // a crew larger than the pool clamps to the pool).
            let crew = task.techs_required.clamp(1, params.technicians);
            let mut arrivals: Vec<(Hours, Hours, usize)> = (0..params.technicians)
                .map(|k| {
                    let dist = hall
                        .slot_distance(tech_loc[k], task.site)
                        .unwrap_or(Meters::ZERO);
                    let walk = calib.walk_time(dist);
                    (tech_free[k] + walk, walk, k)
                })
                .collect();
            arrivals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
            let chosen = &arrivals[..crew];
            let assembled = chosen
                .iter()
                .map(|(a, _, _)| *a)
                .fold(Hours::ZERO, Hours::max);
            let s = assembled
                .max(rt)
                .max(slot_free.get(&task.site).copied().unwrap_or(Hours::ZERO));
            let f = s + task.kind.duration(calib);
            start[i] = s;
            finish[i] = f;
            tech_of[i] = chosen[0].2;
            for &(_, walk, k) in chosen {
                tech_free[k] = f;
                tech_loc[k] = task.site;
                busy[k] += task.kind.duration(calib);
                walking += walk;
            }
            slot_free.insert(task.site, f);
            scheduled += 1;

            for &d in &dependents[i] {
                indegree[d] -= 1;
                ready_time[d] = ready_time[d].max(f);
                if indegree[d] == 0 {
                    heap.push(Ready(ready_time[d], d));
                }
            }
        }
        debug_assert_eq!(scheduled, n, "cycle in task graph");

        let makespan = finish.iter().copied().fold(Hours::ZERO, Hours::max);
        Self {
            makespan,
            start,
            finish,
            tech_of,
            busy,
            walking,
        }
    }

    /// Mean technician utilization over the makespan.
    pub fn utilization(&self) -> f64 {
        if self.makespan.value() <= 0.0 || self.busy.is_empty() {
            return 0.0;
        }
        let total_busy: Hours = self.busy.iter().copied().sum();
        total_busy.value() / (self.makespan.value() * self.busy.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::DeploymentPlan;
    use pd_cabling::{BundlingReport, CablingPlan, CablingPolicy};
    use pd_geometry::Gbps;
    use pd_physical::placement::EquipmentProfile;
    use pd_physical::{Hall, HallSpec, Placement, PlacementStrategy};
    use pd_topology::gen::fat_tree;

    fn setup() -> (Hall, DeploymentPlan) {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        let rep = BundlingReport::analyze(&plan, 4);
        let dp = DeploymentPlan::from_cabling(&net, &placement, &plan, Some(&rep));
        (hall, dp)
    }

    #[test]
    fn makespan_bounded_by_critical_path_and_serial_work() {
        let (hall, dp) = setup();
        let params = ScheduleParams::default();
        let sched = Schedule::run(&dp, &hall, &params);
        let cp = dp.critical_path(&params.calib);
        let serial = dp.total_work(&params.calib);
        assert!(sched.makespan >= cp, "{} < {}", sched.makespan, cp);
        // Walking makes the serial bound loose, but with ≥1 tech the
        // makespan can't beat the critical path nor exceed serial + all
        // walking.
        assert!(sched.makespan <= serial + sched.walking + Hours::new(1e-9));
    }

    #[test]
    fn more_technicians_never_slower() {
        let (hall, dp) = setup();
        let mk = |t: usize| {
            Schedule::run(
                &dp,
                &hall,
                &ScheduleParams {
                    technicians: t,
                    ..ScheduleParams::default()
                },
            )
            .makespan
        };
        let one = mk(1);
        let four = mk(4);
        let sixteen = mk(16);
        assert!(four <= one);
        // Greedy list scheduling is not strictly monotone in general, but
        // on this graph more techs must not be *much* worse.
        assert!(sixteen <= four * 1.1);
    }

    #[test]
    fn precedence_respected() {
        let (hall, dp) = setup();
        let sched = Schedule::run(&dp, &hall, &ScheduleParams::default());
        for t in &dp.tasks {
            for p in &t.preds {
                assert!(
                    sched.start[t.id.0 as usize] + Hours::new(1e-9)
                        >= sched.finish[p.0 as usize],
                    "task {} started before pred {} finished",
                    t.id.0,
                    p.0
                );
            }
        }
    }

    #[test]
    fn rack_exclusion_no_overlap_same_slot() {
        let (hall, dp) = setup();
        let sched = Schedule::run(&dp, &hall, &ScheduleParams::default());
        // Collect intervals per slot and check pairwise non-overlap.
        let mut per_slot: std::collections::HashMap<_, Vec<(f64, f64)>> = Default::default();
        for t in &dp.tasks {
            per_slot.entry(t.site).or_default().push((
                sched.start[t.id.0 as usize].value(),
                sched.finish[t.id.0 as usize].value(),
            ));
        }
        for (slot, mut iv) in per_slot {
            iv.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in iv.windows(2) {
                assert!(
                    w[1].0 + 1e-9 >= w[0].1,
                    "overlap at {slot}: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn utilization_in_unit_range() {
        let (hall, dp) = setup();
        let sched = Schedule::run(&dp, &hall, &ScheduleParams::default());
        let u = sched.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn two_person_tasks_occupy_two_technicians() {
        let (hall, dp) = setup();
        let sched = Schedule::run(&dp, &hall, &ScheduleParams::default());
        // Find a rack install (crew of 2) and verify two technicians were
        // simultaneously busy: total busy time exceeds the sum of task
        // durations counted once.
        let single_counted: Hours = dp
            .tasks
            .iter()
            .map(|t| t.kind.duration(&ScheduleParams::default().calib))
            .sum();
        let total_busy: Hours = sched.busy.iter().copied().sum();
        assert!(
            total_busy > single_counted,
            "2-person lifts must consume extra person-hours: busy {total_busy} vs {single_counted}"
        );
        // And the plan carries the crew sizes.
        assert!(dp.tasks.iter().any(|t| t.techs_required == 2));
    }

    #[test]
    fn crew_larger_than_pool_clamps() {
        let (hall, dp) = setup();
        // One technician: 2-person rack installs clamp to the single tech
        // and the schedule still completes.
        let sched = Schedule::run(
            &dp,
            &hall,
            &ScheduleParams {
                technicians: 1,
                ..ScheduleParams::default()
            },
        );
        assert!(sched.makespan > Hours::ZERO);
        assert_eq!(sched.start.len(), dp.tasks.len());
    }

    #[test]
    #[should_panic(expected = "at least one technician")]
    fn zero_technicians_panics() {
        let (hall, dp) = setup();
        Schedule::run(
            &dp,
            &hall,
            &ScheduleParams {
                technicians: 0,
                ..ScheduleParams::default()
            },
        );
    }
}
