//! The labor task vocabulary.
//!
//! Physical deployment decomposes into tasks a technician performs at a
//! location. This module defines the vocabulary; [`crate::deploy`] lowers a
//! cabling plan into a task graph; [`crate::schedule`] executes it against
//! a technician pool. Durations come from [`crate::calib`].

use crate::calib::LaborCalibration;
use pd_geometry::{Hours, Meters};
use pd_physical::SlotId;
use serde::{Deserialize, Serialize};

/// The kinds of physical work the scheduler knows about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkKind {
    /// Stand up and power a rack.
    InstallRack,
    /// Install one switch into an already-standing rack.
    InstallSwitch,
    /// Pull one loose cable along a tray route of the given length and
    /// terminate both ends.
    PullLooseCable {
        /// Routed length.
        length: Meters,
    },
    /// Install a pre-built bundle and terminate all members.
    InstallBundle {
        /// Member cables.
        members: usize,
        /// Common length.
        length: Meters,
    },
    /// Link-light / BER test of one link.
    TestLink,
    /// Diagnose + fix one failed first-pass connection.
    Rework,
    /// Move fibers at an OCS/panel rack during a conversion (per-fiber
    /// move; used by the lifecycle crate's conversion planner).
    MoveFiber,
}

impl WorkKind {
    /// Duration of this task under a calibration.
    pub fn duration(&self, calib: &LaborCalibration) -> Hours {
        match self {
            WorkKind::InstallRack => calib.install_rack,
            WorkKind::InstallSwitch => calib.install_switch,
            WorkKind::PullLooseCable { length } => calib.loose_cable_time(*length),
            WorkKind::InstallBundle { members, length } => calib.bundle_time(*members, *length),
            WorkKind::TestLink => calib.test_link,
            WorkKind::Rework => calib.rework_connection,
            // A careful fiber move at a dense panel: locate, unlatch,
            // re-route, latch, verify — comparable to two connect-ends.
            WorkKind::MoveFiber => calib.connect_end * 2.0,
        }
    }

    /// First-pass error probability of this task (0 for non-connecting
    /// tasks).
    pub fn error_rate(&self, calib: &LaborCalibration) -> f64 {
        match self {
            WorkKind::PullLooseCable { .. } => calib.loose_error_rate,
            WorkKind::InstallBundle { members, .. } => {
                // Each member connection can independently fail; expected
                // errors = members × rate. We expose the *per-task* expected
                // error count here, capped at 1 for probability use.
                (calib.bundle_error_rate * *members as f64).min(1.0)
            }
            WorkKind::MoveFiber => calib.loose_error_rate,
            _ => 0.0,
        }
    }

    /// Number of individual connections this task makes (for yield math).
    pub fn connections(&self) -> usize {
        match self {
            WorkKind::PullLooseCable { .. } => 2,
            WorkKind::InstallBundle { members, .. } => members * 2,
            WorkKind::MoveFiber => 1,
            _ => 0,
        }
    }
}

/// Where a task happens (for walking-time and rack-exclusion purposes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorkSite(pub SlotId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_positive_and_ordered() {
        let c = LaborCalibration::default();
        let pull = WorkKind::PullLooseCable {
            length: Meters::new(20.0),
        }
        .duration(&c);
        let test = WorkKind::TestLink.duration(&c);
        assert!(pull > test);
        assert!(WorkKind::InstallRack.duration(&c) > WorkKind::InstallSwitch.duration(&c));
        assert!(WorkKind::Rework.duration(&c) > test);
    }

    #[test]
    fn longer_pulls_take_longer() {
        let c = LaborCalibration::default();
        let short = WorkKind::PullLooseCable {
            length: Meters::new(5.0),
        }
        .duration(&c);
        let long = WorkKind::PullLooseCable {
            length: Meters::new(50.0),
        }
        .duration(&c);
        assert!(long > short);
    }

    #[test]
    fn error_rates_and_connections() {
        let c = LaborCalibration::default();
        let pull = WorkKind::PullLooseCable {
            length: Meters::new(5.0),
        };
        assert_eq!(pull.connections(), 2);
        assert!(pull.error_rate(&c) > 0.0);
        let bundle = WorkKind::InstallBundle {
            members: 16,
            length: Meters::new(5.0),
        };
        assert_eq!(bundle.connections(), 32);
        assert!(bundle.error_rate(&c) > pull.error_rate(&c) / 2.0);
        assert_eq!(WorkKind::TestLink.connections(), 0);
        assert_eq!(WorkKind::TestLink.error_rate(&c), 0.0);
    }
}
