//! Day-1 versus lifetime cost: the §3.5 / §5.4 tradeoff.
//!
//! "We also need to represent the tradeoff between day-1 costs and
//! longer-term costs, since a hard-to-evolve design might be sufficiently
//! cheaper up-front to merit its use." [`TcoReport`] aggregates:
//!
//! * **day 1**: capex + deployment labor + the stranded-capital cost of
//!   servers waiting for their network (§2.3);
//! * **annual**: network power (switch + transceiver, at PUE-inflated
//!   energy price) and repair labor from component failure rates;
//! * **lifetime**: day 1 + years × annual (+ any expansion costs the caller
//!   adds from the lifecycle crate).

use crate::calib::LaborCalibration;
use crate::capex::CapexReport;
use pd_geometry::{Dollars, Hours, Watts};
use serde::{Deserialize, Serialize};

/// TCO aggregation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcoParams {
    /// Evaluation horizon.
    pub years: f64,
    /// Energy price.
    pub usd_per_kwh: f64,
    /// Power usage effectiveness multiplier (cooling overhead).
    pub pue: f64,
    /// Expected annual repair labor hours per 1000 components (switches +
    /// cables); a proxy for the FIT-derived rate when the caller has not
    /// run the repair simulator.
    pub repair_hours_per_kilo_component_year: f64,
}

impl Default for TcoParams {
    fn default() -> Self {
        Self {
            years: 5.0,
            usd_per_kwh: 0.08,
            pue: 1.2,
            repair_hours_per_kilo_component_year: 120.0,
        }
    }
}

/// The aggregated cost report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcoReport {
    /// Capital bill of materials.
    pub capex: Dollars,
    /// Deployment labor cost (serial work hours × rate).
    pub deploy_labor: Dollars,
    /// Stranded-capital cost of servers idle during deployment.
    pub stranded: Dollars,
    /// Power cost per year.
    pub annual_power: Dollars,
    /// Repair labor per year.
    pub annual_repair: Dollars,
    /// Evaluation horizon in years.
    pub years: f64,
}

impl TcoReport {
    /// Builds the report.
    ///
    /// `makespan` is the scheduled time-to-deploy; `work` the serial labor
    /// hours; `network_power` the steady-state draw (switches +
    /// transceivers); `servers` the server count idled until deployment
    /// completes; `components` the count of failable components.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        capex: &CapexReport,
        calib: &LaborCalibration,
        params: &TcoParams,
        makespan: Hours,
        work: Hours,
        network_power: Watts,
        servers: u32,
        components: usize,
    ) -> Self {
        let deploy_labor = Dollars::new(work.value() * calib.tech_hourly_usd);
        let stranded = Dollars::new(
            f64::from(servers) * makespan.value() * calib.stranded_usd_per_server_hour,
        );
        let hours_per_year = 24.0 * 365.0;
        let annual_power = (network_power * params.pue)
            .energy_cost(Hours::new(hours_per_year), params.usd_per_kwh);
        let annual_repair = Dollars::new(
            components as f64 / 1000.0
                * params.repair_hours_per_kilo_component_year
                * calib.tech_hourly_usd,
        );
        Self {
            capex: capex.total(),
            deploy_labor,
            stranded,
            annual_power,
            annual_repair,
            years: params.years,
        }
    }

    /// Everything paid before the network carries traffic.
    pub fn day_one(&self) -> Dollars {
        self.capex + self.deploy_labor + self.stranded
    }

    /// Recurring cost per year.
    pub fn annual(&self) -> Dollars {
        self.annual_power + self.annual_repair
    }

    /// Total over the horizon.
    pub fn lifetime(&self) -> Dollars {
        self.day_one() + self.annual() * self.years
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capex() -> CapexReport {
        CapexReport {
            switches: Dollars::new(100_000.0),
            cables: Dollars::new(30_000.0),
            indirection: Dollars::ZERO,
            racks: Dollars::new(10_000.0),
        }
    }

    #[test]
    fn components_add_up() {
        let rep = TcoReport::build(
            &capex(),
            &LaborCalibration::default(),
            &TcoParams::default(),
            Hours::new(100.0),
            Hours::new(500.0),
            Watts::new(10_000.0),
            1000,
            500,
        );
        assert_eq!(rep.capex, Dollars::new(140_000.0));
        assert_eq!(rep.deploy_labor, Dollars::new(500.0 * 95.0));
        assert_eq!(rep.stranded, Dollars::new(1000.0 * 100.0 * 0.9));
        let lt = rep.lifetime();
        assert!((lt - (rep.day_one() + rep.annual() * 5.0)).abs() < Dollars::new(1e-6));
    }

    #[test]
    fn faster_deploy_strands_less() {
        let mk = |makespan: f64| {
            TcoReport::build(
                &capex(),
                &LaborCalibration::default(),
                &TcoParams::default(),
                Hours::new(makespan),
                Hours::new(500.0),
                Watts::new(10_000.0),
                1000,
                500,
            )
            .stranded
        };
        assert!(mk(50.0) < mk(200.0));
    }

    #[test]
    fn power_cost_reflects_pue() {
        let base = TcoParams::default();
        let hot = TcoParams { pue: 2.0, ..base.clone() };
        let mk = |p: &TcoParams| {
            TcoReport::build(
                &capex(),
                &LaborCalibration::default(),
                p,
                Hours::new(10.0),
                Hours::new(10.0),
                Watts::new(10_000.0),
                10,
                10,
            )
            .annual_power
        };
        let r = mk(&hot).ratio(mk(&base));
        assert!((r - 2.0 / 1.2).abs() < 1e-9);
    }
}
