//! First-pass yield: how much of what was deployed actually works.
//!
//! The paper names "first-pass yield (what fraction of deployed switches or
//! links actually work without further repair)" as one of its three
//! internal metrics (§2). We model it per *connection*: each cable end
//! seated by a technician independently fails (miswire/damage) with the
//! task's calibrated error rate; a link passes first-pass test only if all
//! its connections are good; every bad connection costs a rework cycle.
//!
//! The simulator is Monte Carlo (seeded, deterministic), parallelized over
//! trials with `crossbeam` scoped threads; results accumulate under a
//! `parking_lot` mutex.

use crate::calib::LaborCalibration;
use crate::deploy::DeploymentPlan;
use crate::labor::WorkKind;
use pd_geometry::Hours;
use pd_topology::gen::SplitMix64;
use serde::{Deserialize, Serialize};

/// Yield-simulation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YieldParams {
    /// Monte-Carlo trials.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for YieldParams {
    fn default() -> Self {
        Self {
            trials: 200,
            seed: 1,
            threads: 4,
        }
    }
}

/// Aggregated yield results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YieldReport {
    /// Mean fraction of links passing first-pass test.
    pub first_pass_yield: f64,
    /// Mean bad connections per trial.
    pub mean_errors: f64,
    /// Mean rework labor per trial.
    pub mean_rework: Hours,
    /// Worst (minimum) yield observed across trials.
    pub worst_yield: f64,
    /// Trials run.
    pub trials: usize,
}

impl YieldReport {
    /// Runs the Monte-Carlo yield simulation over a deployment plan.
    pub fn simulate(plan: &DeploymentPlan, calib: &LaborCalibration, params: &YieldParams) -> Self {
        // Pre-extract the connecting tasks: (connections, per-connection
        // error rate, link id index).
        #[derive(Clone, Copy)]
        struct Conn {
            count: usize,
            rate: f64,
            /// Dense link index, usize::MAX for link-less tasks.
            link: usize,
        }
        let mut link_index: std::collections::HashMap<pd_topology::LinkId, usize> =
            Default::default();
        // For bundles, connections belong to several links; approximate by
        // attributing bundle-member connections to the bundle's *test*
        // tasks instead: we instead walk test tasks to define the link
        // population, and treat connection errors as link-scoped via the
        // task's link when present, else spread over the bundle's links.
        let mut conns: Vec<Conn> = Vec::new();
        for t in &plan.tasks {
            let count = t.kind.connections();
            if count == 0 {
                continue;
            }
            let rate = match &t.kind {
                WorkKind::PullLooseCable { .. } | WorkKind::MoveFiber => calib.loose_error_rate,
                WorkKind::InstallBundle { .. } => calib.bundle_error_rate,
                _ => 0.0,
            };
            let link = match t.link {
                Some(l) => {
                    let next = link_index.len();
                    *link_index.entry(l).or_insert(next)
                }
                None => usize::MAX,
            };
            conns.push(Conn { count, rate, link });
        }
        let total_links = plan
            .tasks
            .iter()
            .filter(|t| matches!(t.kind, WorkKind::TestLink))
            .count()
            .max(link_index.len())
            .max(1);

        let trials = params.trials.max(1);
        let threads = params.threads.clamp(1, 64);
        let results = parking_lot::Mutex::new(Vec::with_capacity(trials));

        crossbeam::thread::scope(|scope| {
            for w in 0..threads {
                let conns = &conns;
                let results = &results;
                let base_seed = params.seed;
                scope.spawn(move |_| {
                    let mut local = Vec::new();
                    let mut t = w;
                    while t < trials {
                        let mut rng = SplitMix64::new(
                            base_seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15),
                        );
                        let mut errors = 0usize;
                        let mut bad_links: std::collections::HashSet<usize> = Default::default();
                        for c in conns {
                            for _ in 0..c.count {
                                let u = rng.next_u64() as f64 / u64::MAX as f64;
                                if u < c.rate {
                                    errors += 1;
                                    if c.link != usize::MAX {
                                        bad_links.insert(c.link);
                                    }
                                }
                            }
                        }
                        local.push((errors, bad_links.len()));
                        t += threads;
                    }
                    results.lock().extend(local);
                });
            }
        })
        .expect("yield worker panicked");

        let all = results.into_inner();
        let mut yield_sum = 0.0;
        let mut err_sum = 0usize;
        let mut worst = 1.0f64;
        for &(errors, bad_links) in &all {
            let y = 1.0 - bad_links as f64 / total_links as f64;
            yield_sum += y;
            err_sum += errors;
            worst = worst.min(y);
        }
        let n = all.len() as f64;
        let mean_errors = err_sum as f64 / n;
        Self {
            first_pass_yield: yield_sum / n,
            mean_errors,
            mean_rework: calib.rework_connection * mean_errors,
            worst_yield: worst,
            trials: all.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::DeploymentPlan;
    use pd_cabling::{BundlingReport, CablingPlan, CablingPolicy};
    use pd_geometry::Gbps;
    use pd_physical::placement::EquipmentProfile;
    use pd_physical::{Hall, HallSpec, Placement, PlacementStrategy};
    use pd_topology::gen::fat_tree;

    fn plan(bundled: bool) -> DeploymentPlan {
        let net = fat_tree(6, Gbps::new(100.0)).unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        let cp = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        let rep = BundlingReport::analyze(&cp, 4);
        DeploymentPlan::from_cabling(&net, &placement, &cp, bundled.then_some(&rep))
    }

    #[test]
    fn yield_is_high_but_imperfect() {
        let dp = plan(false);
        let rep = YieldReport::simulate(
            &dp,
            &LaborCalibration::default(),
            &YieldParams {
                trials: 100,
                ..YieldParams::default()
            },
        );
        assert!(rep.first_pass_yield > 0.9, "{}", rep.first_pass_yield);
        assert!(rep.first_pass_yield < 1.0, "some errors expected");
        assert!(rep.mean_errors > 0.0);
        assert!(rep.mean_rework > Hours::ZERO);
        assert!(rep.worst_yield <= rep.first_pass_yield);
    }

    #[test]
    fn deterministic_under_seed() {
        let dp = plan(false);
        let c = LaborCalibration::default();
        let p = YieldParams {
            trials: 50,
            seed: 9,
            threads: 4,
        };
        let a = YieldReport::simulate(&dp, &c, &p);
        let b = YieldReport::simulate(&dp, &c, &p);
        assert_eq!(a.first_pass_yield, b.first_pass_yield);
        assert_eq!(a.mean_errors, b.mean_errors);
    }

    #[test]
    fn bundling_improves_yield() {
        let loose = plan(false);
        let bundled = plan(true);
        let c = LaborCalibration::default();
        let p = YieldParams {
            trials: 200,
            ..YieldParams::default()
        };
        let ry_loose = YieldReport::simulate(&loose, &c, &p);
        let ry_bundled = YieldReport::simulate(&bundled, &c, &p);
        assert!(
            ry_bundled.mean_errors < ry_loose.mean_errors,
            "bundled {} vs loose {}",
            ry_bundled.mean_errors,
            ry_loose.mean_errors
        );
    }

    #[test]
    fn zero_error_rate_gives_perfect_yield() {
        let dp = plan(false);
        let calib = LaborCalibration {
            loose_error_rate: 0.0,
            bundle_error_rate: 0.0,
            ..LaborCalibration::default()
        };
        let rep = YieldReport::simulate(&dp, &calib, &YieldParams::default());
        assert_eq!(rep.first_pass_yield, 1.0);
        assert_eq!(rep.mean_errors, 0.0);
    }
}
