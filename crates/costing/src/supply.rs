//! Supply-chain fungibility: §2.2 and §3.3.
//!
//! "If the network design … supports fungible hardware (the ability to
//! replace one part with another, without other consequences), then a
//! supply-chain problem at one vendor can be resolved by buying compatible
//! parts from another. … Fungibility implies a need to design a network
//! without depending on the best available parts, but rather the
//! second-best. This could, for example, reduce the allowable length for a
//! cable."
//!
//! Two instruments here:
//!
//! * [`fungibility_audit`] — re-selects every cable in a plan under a
//!   *second-best-vendor* catalog (derated reach). Cables with no feasible
//!   substitute are the design's single-source exposure; the audit also
//!   prices the substitution premium for those that do substitute.
//! * [`VendorOutage::deployment_delay`] — the schedule impact of a vendor
//!   outage on the exposed portion of the BOM: single-sourced parts wait
//!   out the outage (stranding capital, §2.3); dual-sourced parts pay only
//!   the second vendor's lead-time difference.

use crate::calib::LaborCalibration;
use pd_cabling::{CableCatalog, CablingPlan, MediaClass};
use pd_geometry::{Dollars, Hours};
use serde::{Deserialize, Serialize};

/// One cable's fungibility verdict.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Substitution {
    /// A second-best part covers the run at this extra cost (possibly a
    /// different media class).
    Substitutable {
        /// Cost delta of the substitute (may be negative if the substitute
        /// is cheaper — rare but possible across classes).
        premium: Dollars,
        /// True if the substitute changed media class (operational churn:
        /// new sparing, new optics handling).
        changes_class: bool,
    },
    /// No second-best part can cover the run: hard single-source exposure.
    SingleSource,
}

/// Whole-plan fungibility audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FungibilityReport {
    /// Per-run verdicts (index-aligned with the plan's runs).
    pub verdicts: Vec<Substitution>,
    /// Fraction of cables with a feasible second-best substitute.
    pub fungible_fraction: f64,
    /// Total substitution premium if the entire BOM had to switch.
    pub total_premium: Dollars,
    /// Cables that changed media class under substitution.
    pub class_changes: usize,
    /// The derating used for the second-best catalog.
    pub reach_derating: f64,
}

/// Audits a plan against a second-best-vendor catalog built from `catalog`
/// with `derating` applied to every reach limit (§3.3's "second-best"
/// rule).
pub fn fungibility_audit(
    plan: &CablingPlan,
    catalog: &CableCatalog,
    derating: f64,
) -> FungibilityReport {
    let second_best = CableCatalog {
        reach_derating: catalog.reach_derating * derating,
        ..catalog.clone()
    };
    let mut verdicts = Vec::with_capacity(plan.runs.len());
    let mut fungible = 0usize;
    let mut premium = Dollars::ZERO;
    let mut class_changes = 0usize;
    for run in &plan.runs {
        // Mediated halves carry their site's element budget; approximate
        // with one OCS traversal when a site is involved.
        let (panels, ocs) = if run.via_site.is_some() { (0, 1) } else { (0, 0) };
        match second_best.choose(run.choice.sku.speed, run.routed_length, panels, ocs) {
            Some(sub) => {
                fungible += 1;
                premium += sub.cost - run.choice.cost;
                if sub.sku.class != run.choice.sku.class {
                    class_changes += 1;
                }
                verdicts.push(Substitution::Substitutable {
                    premium: sub.cost - run.choice.cost,
                    changes_class: sub.sku.class != run.choice.sku.class,
                });
            }
            None => verdicts.push(Substitution::SingleSource),
        }
    }
    let n = plan.runs.len().max(1);
    FungibilityReport {
        verdicts,
        fungible_fraction: fungible as f64 / n as f64,
        total_premium: premium,
        class_changes,
        reach_derating: derating,
    }
}

/// A vendor outage affecting one media class during deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VendorOutage {
    /// The media class whose primary vendor cannot deliver.
    pub class: MediaClass,
    /// How long the primary vendor is out.
    pub outage: Hours,
    /// Lead time to spin up the secondary vendor for dual-sourced parts.
    pub secondary_lead: Hours,
}

/// The deployment impact of a vendor outage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageImpact {
    /// Cables affected (the outage class's share of the BOM).
    pub affected_cables: usize,
    /// Of those, cables with no substitute (they wait out the outage).
    pub single_sourced: usize,
    /// Added calendar delay to the deployment.
    pub delay: Hours,
    /// Stranded-capital cost of the delay.
    pub stranded: Dollars,
}

impl VendorOutage {
    /// Computes the impact on a plan given the fungibility audit.
    ///
    /// Dual-sourced cables incur the secondary vendor's lead time; cables
    /// with no substitute wait the full outage. The deployment is gated by
    /// the worst affected part (cabling is on the critical path of rack
    /// turn-up), so the delay is the max, and `servers` idle for it.
    pub fn deployment_delay(
        &self,
        plan: &CablingPlan,
        audit: &FungibilityReport,
        calib: &LaborCalibration,
        servers: u32,
    ) -> OutageImpact {
        let mut affected = 0usize;
        let mut single = 0usize;
        for (run, verdict) in plan.runs.iter().zip(&audit.verdicts) {
            if run.choice.sku.class != self.class {
                continue;
            }
            affected += 1;
            if matches!(verdict, Substitution::SingleSource) {
                single += 1;
            }
        }
        let delay = if affected == 0 {
            Hours::ZERO
        } else if single > 0 {
            self.outage
        } else {
            self.secondary_lead.min(self.outage)
        };
        OutageImpact {
            affected_cables: affected,
            single_sourced: single,
            delay,
            stranded: Dollars::new(
                f64::from(servers) * delay.value() * calib.stranded_usd_per_server_hour,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_cabling::CablingPolicy;
    use pd_geometry::Gbps;
    use pd_physical::placement::EquipmentProfile;
    use pd_physical::{Hall, HallSpec, Placement, PlacementStrategy};
    use pd_topology::gen::fat_tree;

    fn plan() -> (CablingPlan, CableCatalog) {
        let net = fat_tree(6, Gbps::new(100.0)).unwrap();
        let hall = Hall::new(HallSpec::default());
        let placement = Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        let policy = CablingPolicy::default();
        (
            CablingPlan::build(&net, &hall, &placement, &policy),
            policy.catalog,
        )
    }

    #[test]
    fn mild_derating_keeps_most_cables_fungible() {
        let (plan, catalog) = plan();
        let audit = fungibility_audit(&plan, &catalog, 0.9);
        assert!(
            audit.fungible_fraction > 0.95,
            "fraction {}",
            audit.fungible_fraction
        );
        assert_eq!(audit.verdicts.len(), plan.runs.len());
    }

    #[test]
    fn harsh_derating_exposes_single_sourcing_or_premiums() {
        let (plan, catalog) = plan();
        let mild = fungibility_audit(&plan, &catalog, 0.95);
        let harsh = fungibility_audit(&plan, &catalog, 0.5);
        assert!(harsh.fungible_fraction <= mild.fungible_fraction);
        // Harsher derating forces marginal copper onto pricier media.
        assert!(harsh.total_premium >= mild.total_premium);
        assert!(harsh.class_changes >= mild.class_changes);
    }

    #[test]
    fn outage_delay_depends_on_sourcing() {
        let (plan, catalog) = plan();
        let calib = LaborCalibration::default();
        // Target the plan's most common media class so the outage bites.
        let common = *plan
            .media_histogram()
            .iter()
            .max_by_key(|(_, &n)| n)
            .unwrap()
            .0;
        let outage = VendorOutage {
            class: common,
            outage: Hours::new(6.0 * 168.0), // six weeks
            secondary_lead: Hours::new(168.0), // one week
        };
        // Dual-sourced world: only the secondary lead bites.
        let dual = fungibility_audit(&plan, &catalog, 0.9);
        let i_dual = outage.deployment_delay(&plan, &dual, &calib, 100);
        assert!(i_dual.affected_cables > 0);
        assert_eq!(i_dual.single_sourced, 0);
        assert_eq!(i_dual.delay, Hours::new(168.0));
        // Single-sourced world (catalog with no slack at all): wait it out.
        let single = FungibilityReport {
            verdicts: plan
                .runs
                .iter()
                .map(|_| Substitution::SingleSource)
                .collect(),
            fungible_fraction: 0.0,
            total_premium: Dollars::ZERO,
            class_changes: 0,
            reach_derating: 0.0,
        };
        let i_single = outage.deployment_delay(&plan, &single, &calib, 100);
        assert_eq!(i_single.delay, Hours::new(6.0 * 168.0));
        assert!(i_single.stranded > i_dual.stranded);
    }

    #[test]
    fn outage_on_unused_class_is_free() {
        let (plan, catalog) = plan();
        let audit = fungibility_audit(&plan, &catalog, 0.9);
        let outage = VendorOutage {
            class: MediaClass::ActiveElectrical,
            outage: Hours::new(1000.0),
            secondary_lead: Hours::new(100.0),
        };
        // The 100G fat-tree plan uses DAC/MMF, not AEC.
        let impact =
            outage.deployment_delay(&plan, &audit, &LaborCalibration::default(), 100);
        if impact.affected_cables == 0 {
            assert_eq!(impact.delay, Hours::ZERO);
            assert_eq!(impact.stranded, Dollars::ZERO);
        }
    }
}
