//! Property-based tests for the physical plant substrate.

use pd_geometry::{Gbps, SquareMillimeters};
use pd_physical::placement::EquipmentProfile;
use pd_physical::{Hall, HallSpec, Placement, PlacementStrategy, SlotId, TrayNetwork};
use pd_topology::gen::{jellyfish, JellyfishParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Tray routing between any two slots is at least the Manhattan lower
    /// bound and succeeds on an empty tray network.
    #[test]
    fn tray_route_at_least_lower_bound(rows in 2usize..6, cols in 2usize..10, a in 0usize..60, b in 0usize..60) {
        let hall = Hall::new(HallSpec { rows, slots_per_row: cols, ..HallSpec::default() });
        let mut tn = TrayNetwork::build(&hall);
        let n = hall.slot_count();
        let (sa, sb) = (SlotId(a % n), SlotId(b % n));
        prop_assume!(sa != sb);
        let p = tn.route_cable(sa, sb, SquareMillimeters::new(10.0)).unwrap();
        let lb = tn.path_lower_bound(&hall, sa, sb).unwrap();
        prop_assert!(p.length + pd_geometry::Meters::new(1e-9) >= lb);
    }

    /// Placement is total and injective on slots for every strategy.
    #[test]
    fn placement_total_and_slot_injective(seed in 0u64..100, tors in 8usize..40) {
        prop_assume!(tors * 4 % 2 == 0 && tors > 4);
        let net = jellyfish(&JellyfishParams {
            tors,
            network_degree: 4,
            servers_per_tor: 4,
            link_speed: Gbps::new(100.0),
            seed,
        }).unwrap();
        let hall = Hall::new(HallSpec::default());
        for strat in [PlacementStrategy::BlockLocal, PlacementStrategy::Linear, PlacementStrategy::Scattered(seed)] {
            let p = Placement::place(&net, &hall, strat, &EquipmentProfile::default()).unwrap();
            prop_assert_eq!(p.rack_of_switch.len(), net.switch_count());
            let mut slots = std::collections::HashSet::new();
            for r in &p.racks {
                prop_assert!(slots.insert(r.slot));
            }
        }
    }

    /// The local-search improver never increases the wiring bound.
    #[test]
    fn improver_monotone(seed in 0u64..50) {
        let net = jellyfish(&JellyfishParams {
            tors: 20,
            network_degree: 4,
            servers_per_tor: 2,
            link_speed: Gbps::new(100.0),
            seed,
        }).unwrap();
        let hall = Hall::new(HallSpec::default());
        let mut p = Placement::place(&net, &hall, PlacementStrategy::Scattered(seed), &EquipmentProfile::default()).unwrap();
        let before = p.wiring_lower_bound(&net, &hall);
        let after = p.improve(&net, &hall, 200, seed);
        prop_assert!(after <= before);
    }
}
