//! Rack instances: RU slots, weight and power budgets, conjoined pairs.
//!
//! Racks are where abstract switches become physical objects with size,
//! weight, and power draw. The budgets here feed the twin's constraint
//! engine; the `conjoined_with` marker models the §3.1 "atomic unit of
//! network capacity" that is pre-cabled off-site — and that must still fit
//! through the door.

use crate::hall::SlotId;
use crate::spec::RackSpec;
use pd_geometry::{Kilograms, Watts};
use serde::{Deserialize, Serialize};

/// Identifier of a rack instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RackId(pub u32);

impl std::fmt::Display for RackId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

/// What kind of equipment occupies a rack unit span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EquipmentKind {
    /// A network switch, identified by the abstract switch id's raw value.
    Switch(u32),
    /// A passive patch panel.
    PatchPanel(u32),
    /// An optical circuit switch.
    Ocs(u32),
    /// A server (only modeled in aggregate).
    Server(u32),
    /// Blanking/cable-management filler.
    Filler,
}

/// One installed piece of equipment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackUnit {
    /// What it is.
    pub kind: EquipmentKind,
    /// First rack unit it occupies (0-based from the bottom).
    pub first_ru: u16,
    /// Rack units occupied.
    pub ru_size: u16,
    /// Weight of the unit.
    pub weight: Kilograms,
    /// Power draw of the unit.
    pub power: Watts,
}

/// Errors from rack mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RackError {
    /// Not enough contiguous rack units.
    NoSpace {
        /// RUs requested.
        requested: u16,
        /// Largest contiguous free span.
        largest_free: u16,
    },
    /// The addition would exceed the weight budget.
    OverWeight {
        /// Weight after the addition.
        would_be: Kilograms,
        /// The limit.
        limit: Kilograms,
    },
    /// The addition would exceed the power budget.
    OverPower {
        /// Power after the addition.
        would_be: Watts,
        /// The limit.
        limit: Watts,
    },
}

impl std::fmt::Display for RackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RackError::NoSpace {
                requested,
                largest_free,
            } => write!(
                f,
                "no contiguous {requested} RU span (largest free: {largest_free})"
            ),
            RackError::OverWeight { would_be, limit } => {
                write!(f, "weight {would_be} exceeds limit {limit}")
            }
            RackError::OverPower { would_be, limit } => {
                write!(f, "power {would_be} exceeds limit {limit}")
            }
        }
    }
}

impl std::error::Error for RackError {}

/// A rack instance installed in a slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rack {
    /// Identifier.
    pub id: RackId,
    /// The slot it stands in.
    pub slot: SlotId,
    /// The model spec.
    pub spec: RackSpec,
    /// Installed equipment, sorted by `first_ru`.
    pub units: Vec<RackUnit>,
    /// If this rack was delivered pre-cabled as part of a conjoined
    /// assembly, the partner rack.
    pub conjoined_with: Option<RackId>,
}

impl Rack {
    /// Creates an empty rack in a slot.
    pub fn new(id: RackId, slot: SlotId, spec: RackSpec) -> Self {
        Self {
            id,
            slot,
            spec,
            units: Vec::new(),
            conjoined_with: None,
        }
    }

    /// RUs currently occupied.
    pub fn used_ru(&self) -> u16 {
        self.units.iter().map(|u| u.ru_size).sum()
    }

    /// RUs still free (not necessarily contiguous).
    pub fn free_ru(&self) -> u16 {
        self.spec.rack_units.saturating_sub(self.used_ru())
    }

    /// Total installed weight.
    pub fn total_weight(&self) -> Kilograms {
        self.units.iter().map(|u| u.weight).sum()
    }

    /// Total installed power draw.
    pub fn total_power(&self) -> Watts {
        self.units.iter().map(|u| u.power).sum()
    }

    /// Largest contiguous free RU span.
    pub fn largest_free_span(&self) -> u16 {
        let mut occupied = vec![false; usize::from(self.spec.rack_units)];
        for u in &self.units {
            for ru in u.first_ru..(u.first_ru + u.ru_size).min(self.spec.rack_units) {
                occupied[usize::from(ru)] = true;
            }
        }
        let mut best = 0u16;
        let mut run = 0u16;
        for o in occupied {
            if o {
                run = 0;
            } else {
                run += 1;
                best = best.max(run);
            }
        }
        best
    }

    /// Installs equipment into the lowest contiguous free span that fits,
    /// checking RU, weight, and power budgets.
    pub fn install(
        &mut self,
        kind: EquipmentKind,
        ru_size: u16,
        weight: Kilograms,
        power: Watts,
    ) -> Result<u16, RackError> {
        let first = self.find_span(ru_size).ok_or(RackError::NoSpace {
            requested: ru_size,
            largest_free: self.largest_free_span(),
        })?;
        let would_weight = self.total_weight() + weight;
        if would_weight > self.spec.weight_limit {
            return Err(RackError::OverWeight {
                would_be: would_weight,
                limit: self.spec.weight_limit,
            });
        }
        let would_power = self.total_power() + power;
        if would_power > self.spec.power_limit {
            return Err(RackError::OverPower {
                would_be: would_power,
                limit: self.spec.power_limit,
            });
        }
        self.units.push(RackUnit {
            kind,
            first_ru: first,
            ru_size,
            weight,
            power,
        });
        self.units.sort_by_key(|u| u.first_ru);
        Ok(first)
    }

    /// Removes the unit occupying `first_ru`, if any (decom).
    pub fn remove_at(&mut self, first_ru: u16) -> Option<RackUnit> {
        let i = self.units.iter().position(|u| u.first_ru == first_ru)?;
        Some(self.units.remove(i))
    }

    /// The installed switches (abstract ids).
    pub fn switch_ids(&self) -> Vec<u32> {
        self.units
            .iter()
            .filter_map(|u| match u.kind {
                EquipmentKind::Switch(id) => Some(id),
                _ => None,
            })
            .collect()
    }

    fn find_span(&self, ru_size: u16) -> Option<u16> {
        let total = self.spec.rack_units;
        if ru_size == 0 || ru_size > total {
            return None;
        }
        let mut occupied = vec![false; usize::from(total)];
        for u in &self.units {
            for ru in u.first_ru..(u.first_ru + u.ru_size).min(total) {
                occupied[usize::from(ru)] = true;
            }
        }
        let mut run_start = 0u16;
        let mut run = 0u16;
        for (i, &o) in occupied.iter().enumerate() {
            if o {
                run = 0;
                run_start = i as u16 + 1;
            } else {
                run += 1;
                if run == ru_size {
                    return Some(run_start);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rack() -> Rack {
        Rack::new(RackId(0), SlotId(0), RackSpec::default())
    }

    fn sw(id: u32) -> EquipmentKind {
        EquipmentKind::Switch(id)
    }

    #[test]
    fn install_packs_from_bottom() {
        let mut r = rack();
        let a = r.install(sw(1), 2, Kilograms::new(20.0), Watts::new(500.0)).unwrap();
        let b = r.install(sw(2), 1, Kilograms::new(10.0), Watts::new(300.0)).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 2);
        assert_eq!(r.used_ru(), 3);
        assert_eq!(r.free_ru(), 39);
        assert_eq!(r.switch_ids(), vec![1, 2]);
    }

    #[test]
    fn remove_opens_gap_and_reuse() {
        let mut r = rack();
        r.install(sw(1), 2, Kilograms::new(20.0), Watts::new(500.0)).unwrap();
        r.install(sw(2), 2, Kilograms::new(20.0), Watts::new(500.0)).unwrap();
        r.install(sw(3), 2, Kilograms::new(20.0), Watts::new(500.0)).unwrap();
        let removed = r.remove_at(2).unwrap();
        assert_eq!(removed.kind, sw(2));
        // A 2-RU unit fits back into the gap at RU 2.
        let at = r.install(sw(4), 2, Kilograms::new(20.0), Watts::new(500.0)).unwrap();
        assert_eq!(at, 2);
    }

    #[test]
    fn no_space_reports_largest_span() {
        let mut r = Rack::new(
            RackId(1),
            SlotId(0),
            RackSpec {
                rack_units: 4,
                ..RackSpec::default()
            },
        );
        r.install(sw(1), 2, Kilograms::new(1.0), Watts::new(1.0)).unwrap();
        let err = r
            .install(sw(2), 3, Kilograms::new(1.0), Watts::new(1.0))
            .unwrap_err();
        assert_eq!(
            err,
            RackError::NoSpace {
                requested: 3,
                largest_free: 2
            }
        );
    }

    #[test]
    fn weight_budget_enforced() {
        let mut r = rack();
        let heavy = Kilograms::new(1300.0);
        r.install(sw(1), 1, heavy, Watts::new(1.0)).unwrap();
        let err = r
            .install(sw(2), 1, Kilograms::new(100.0), Watts::new(1.0))
            .unwrap_err();
        assert!(matches!(err, RackError::OverWeight { .. }));
    }

    #[test]
    fn power_budget_enforced() {
        let mut r = rack();
        r.install(sw(1), 1, Kilograms::new(1.0), Watts::new(16_500.0)).unwrap();
        let err = r
            .install(sw(2), 1, Kilograms::new(1.0), Watts::new(1000.0))
            .unwrap_err();
        assert!(matches!(err, RackError::OverPower { .. }));
    }

    #[test]
    fn fragmented_rack_finds_first_fit() {
        let mut r = rack();
        // Occupy RU 0-1 and 3-4, leaving a 1-RU hole at 2.
        r.install(sw(1), 2, Kilograms::new(1.0), Watts::new(1.0)).unwrap();
        r.install(sw(2), 1, Kilograms::new(1.0), Watts::new(1.0)).unwrap(); // at 2
        r.install(sw(3), 2, Kilograms::new(1.0), Watts::new(1.0)).unwrap(); // at 3
        r.remove_at(2).unwrap();
        assert_eq!(r.largest_free_span(), 42 - 5);
        let at = r.install(sw(4), 1, Kilograms::new(1.0), Watts::new(1.0)).unwrap();
        assert_eq!(at, 2, "first-fit should reuse the hole");
    }
}
