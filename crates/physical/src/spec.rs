//! Hall, rack, and door specifications.
//!
//! Defaults are calibrated to ordinary datacenter practice (600 mm × 1200 mm
//! racks on a 600 mm tile grid, 42 RU, hot/cold aisle pitch of ~2.4 m) so
//! experiments get realistic distances without per-experiment tuning. Every
//! field is public and plain so experiments can sweep it.

use pd_geometry::{Kilograms, Meters, SquareMillimeters, Watts};
use serde::{Deserialize, Serialize};

/// A door that equipment (and pre-cabled rack assemblies) must pass through.
///
/// The paper opens with the IBM-7090-through-the-doorway story and notes
/// (§3.1) that "double-wide racks don't always fit through doors" — the
/// constraint engine checks conjoined-rack assemblies against this.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DoorSpec {
    /// Clear width of the door aperture.
    pub width: Meters,
    /// Clear height of the door aperture.
    pub height: Meters,
}

impl Default for DoorSpec {
    fn default() -> Self {
        Self {
            // A generous double door: 1.4 m wide, 2.4 m tall. Fits a single
            // rack (0.6 m) and a conjoined pair (1.2 m), but not a triple.
            width: Meters::new(1.4),
            height: Meters::new(2.4),
        }
    }
}

/// Specification of one rack model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackSpec {
    /// Footprint width (along the row).
    pub width: Meters,
    /// Footprint depth (across the row).
    pub depth: Meters,
    /// Overall height (for door checks when moved upright on a pallet the
    /// relevant dimension is usually width × depth, but tall racks tipped
    /// through short doors are a real failure mode).
    pub height: Meters,
    /// Usable rack units.
    pub rack_units: u16,
    /// Static weight budget, equipment only.
    pub weight_limit: Kilograms,
    /// Power budget per rack across both feeds.
    pub power_limit: Watts,
}

impl Default for RackSpec {
    fn default() -> Self {
        Self {
            width: Meters::new(0.6),
            depth: Meters::new(1.2),
            height: Meters::new(2.0),
            rack_units: 42,
            weight_limit: Kilograms::new(1360.0), // common 3000 lb static rating
            power_limit: Watts::new(17_000.0),
        }
    }
}

impl RackSpec {
    /// Whether one upright rack fits through `door` (width and depth both
    /// checked against the aperture width; height against aperture height).
    pub fn fits_through(&self, door: &DoorSpec) -> bool {
        self.width.min(self.depth) <= door.width && self.height <= door.height
    }

    /// Whether an assembly of `n` conjoined racks (side by side) fits
    /// through `door`. The assembly is `n × width` wide and cannot be
    /// rotated to present its depth.
    pub fn conjoined_fits_through(&self, n: usize, door: &DoorSpec) -> bool {
        self.width * n as f64 <= door.width && self.height <= door.height
    }
}

/// Specification of a datacenter hall.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HallSpec {
    /// Number of rack rows.
    pub rows: usize,
    /// Rack slots per row.
    pub slots_per_row: usize,
    /// Rack model used throughout (heterogeneous racks are modeled as
    /// equipment diversity within this footprint).
    pub rack: RackSpec,
    /// Center-to-center distance between adjacent rows (rack depth + aisle).
    pub row_pitch: Meters,
    /// Center-to-center distance between adjacent slots in a row.
    pub slot_pitch: Meters,
    /// Height of the overhead tray plane above the floor.
    pub tray_height: Meters,
    /// Usable cross-sectional area of one tray segment, per cable
    /// generation.
    pub tray_capacity_per_generation: SquareMillimeters,
    /// How many technology generations the trays are provisioned for
    /// (paper §2.1: "we provision enough space in cable trays for several
    /// generations"). Installed capacity = per-generation × generations.
    pub tray_generations: u8,
    /// Cross-aisle tray connections: every `cross_tray_every` slots, a tray
    /// runs perpendicular to the rows connecting all row trays.
    pub cross_tray_every: usize,
    /// The door everything enters through.
    pub door: DoorSpec,
    /// Number of independent power feeds (≥ 2 for redundancy).
    pub power_feeds: usize,
    /// Capacity of each power feed.
    pub feed_capacity: Watts,
    /// If true, rows must hold an odd number of *used* rack positions
    /// (§3.1's floor-space constraint that conflicts with conjoined pairs).
    pub odd_slots_per_row: bool,
}

impl Default for HallSpec {
    fn default() -> Self {
        Self {
            rows: 10,
            slots_per_row: 20,
            rack: RackSpec::default(),
            row_pitch: Meters::new(2.4),
            slot_pitch: Meters::new(0.6),
            tray_height: Meters::new(2.7),
            // A 600 mm × 100 mm tray at 40 % usable fill ≈ 24 000 mm²;
            // per-generation share with 3 generations ≈ 8 000 mm².
            tray_capacity_per_generation: SquareMillimeters::new(8_000.0),
            tray_generations: 3,
            cross_tray_every: 5,
            door: DoorSpec::default(),
            power_feeds: 4,
            feed_capacity: Watts::new(400_000.0),
            odd_slots_per_row: false,
        }
    }
}

impl HallSpec {
    /// Total rack slots.
    pub fn total_slots(&self) -> usize {
        self.rows * self.slots_per_row
    }

    /// Total installed tray capacity per segment.
    pub fn tray_capacity(&self) -> SquareMillimeters {
        self.tray_capacity_per_generation * f64::from(self.tray_generations)
    }

    /// A compact hall for small experiments.
    pub fn small() -> Self {
        Self {
            rows: 4,
            slots_per_row: 8,
            ..Self::default()
        }
    }

    /// A large hall for scale experiments.
    pub fn large() -> Self {
        Self {
            rows: 20,
            slots_per_row: 40,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rack_fits_default_door() {
        let r = RackSpec::default();
        let d = DoorSpec::default();
        assert!(r.fits_through(&d));
        assert!(r.conjoined_fits_through(2, &d));
        assert!(!r.conjoined_fits_through(3, &d), "triple-wide must not fit");
    }

    #[test]
    fn tall_rack_fails_short_door() {
        let r = RackSpec {
            height: Meters::new(2.5),
            ..RackSpec::default()
        };
        assert!(!r.fits_through(&DoorSpec::default()));
    }

    #[test]
    fn hall_slot_count_and_tray_capacity() {
        let h = HallSpec::default();
        assert_eq!(h.total_slots(), 200);
        assert_eq!(
            h.tray_capacity(),
            SquareMillimeters::new(24_000.0)
        );
    }

    #[test]
    fn presets_differ() {
        assert!(HallSpec::small().total_slots() < HallSpec::default().total_slots());
        assert!(HallSpec::large().total_slots() > HallSpec::default().total_slots());
    }
}
