//! Power feeds and physical failure domains.
//!
//! The paper (§3.3) warns that "a network design that abstracts too many
//! physical details conceals physical-world failure domains (e.g., shared
//! power feeds)." This module assigns racks to redundant feeds and exposes
//! the *shared-feed* relation so the twin's SPOF analysis and the repair
//! simulator can reason about correlated failures.

use crate::hall::{Hall, SlotId};
use pd_geometry::Watts;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a power feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FeedId(pub u32);

impl std::fmt::Display for FeedId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "feed{}", self.0)
    }
}

/// The hall's power plan: which feeds serve which slot, and per-feed load.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerPlan {
    /// Feed capacity (uniform across feeds).
    pub feed_capacity: Watts,
    /// Primary and secondary feed per slot.
    assignments: Vec<(FeedId, FeedId)>,
    /// Accumulated draw per feed (each slot's draw is split across its two
    /// feeds; on feed failure the survivor must carry it all, which is what
    /// [`PowerPlan::headroom_under_failure`] checks).
    load: HashMap<FeedId, Watts>,
    feeds: usize,
}

impl PowerPlan {
    /// Builds the default striping: slot in row `r` gets feeds
    /// `(2r) mod feeds` and `(2r + 1) mod feeds`, so a whole row shares one
    /// A/B pair — a realistic busway layout, and a nontrivial failure
    /// domain (losing one feed degrades several rows).
    pub fn stripe_by_row(hall: &Hall) -> Self {
        let feeds = hall.spec.power_feeds.max(2);
        let assignments = hall
            .slots()
            .iter()
            .map(|s| {
                let a = FeedId(((2 * s.row) % feeds) as u32);
                let b = FeedId(((2 * s.row + 1) % feeds) as u32);
                (a, b)
            })
            .collect();
        Self {
            feed_capacity: hall.spec.feed_capacity,
            assignments,
            load: HashMap::new(),
            feeds,
        }
    }

    /// Number of distinct feeds.
    pub fn feed_count(&self) -> usize {
        self.feeds
    }

    /// The (primary, secondary) feeds of a slot.
    pub fn feeds_of(&self, slot: SlotId) -> Option<(FeedId, FeedId)> {
        self.assignments.get(slot.0).copied()
    }

    /// Registers `draw` watts of equipment at `slot`, split evenly across
    /// its two feeds.
    pub fn add_load(&mut self, slot: SlotId, draw: Watts) {
        if let Some((a, b)) = self.feeds_of(slot) {
            *self.load.entry(a).or_insert(Watts::ZERO) += draw / 2.0;
            *self.load.entry(b).or_insert(Watts::ZERO) += draw / 2.0;
        }
    }

    /// Current draw on a feed.
    pub fn feed_load(&self, feed: FeedId) -> Watts {
        self.load.get(&feed).copied().unwrap_or(Watts::ZERO)
    }

    /// True if every feed is within capacity in normal operation.
    pub fn within_capacity(&self) -> bool {
        self.load.values().all(|&w| w <= self.feed_capacity)
    }

    /// Worst-case feed load if `failed` trips and its slots fail over to
    /// their other feed. Returns the most-loaded surviving feed's
    /// (load, capacity) pair.
    pub fn headroom_under_failure(&self, failed: FeedId) -> (Watts, Watts) {
        let mut shifted: HashMap<FeedId, Watts> = self.load.clone();
        let moved = shifted.remove(&failed).unwrap_or(Watts::ZERO);
        // The failed feed's load redistributes to each affected slot's
        // partner feed. We approximate by moving the whole failed-feed load
        // to the partner feeds in proportion to their slot sharing; with
        // row striping the partner is unique.
        let partners: Vec<FeedId> = self
            .assignments
            .iter()
            .filter(|(a, b)| *a == failed || *b == failed)
            .map(|(a, b)| if *a == failed { *b } else { *a })
            .collect();
        if !partners.is_empty() {
            let share = moved / partners.len() as f64;
            for p in partners {
                *shifted.entry(p).or_insert(Watts::ZERO) += share;
            }
        }
        let worst = shifted
            .values()
            .copied()
            .fold(Watts::ZERO, |a, b| a.max(b));
        (worst, self.feed_capacity)
    }

    /// Slots that go dark if `failed` trips: those whose surviving partner
    /// feed would be pushed past capacity by absorbing the failover load.
    ///
    /// Empty when the redundancy works (every partner feed has headroom for
    /// its share of the moved load). Uses the same proportional-shift
    /// approximation as [`PowerPlan::headroom_under_failure`]; the fault
    /// injector (`pd-lifecycle`) turns the returned slots into downed
    /// switches.
    pub fn failover_dark_slots(&self, failed: FeedId) -> Vec<SlotId> {
        let moved = self.feed_load(failed);
        let partners: Vec<(SlotId, FeedId)> = self
            .assignments
            .iter()
            .enumerate()
            .filter(|(_, (a, b))| *a == failed || *b == failed)
            .map(|(i, (a, b))| (SlotId(i), if *a == failed { *b } else { *a }))
            .collect();
        if partners.is_empty() {
            return Vec::new();
        }
        let share = moved / partners.len() as f64;
        let mut shifted: HashMap<FeedId, Watts> = HashMap::new();
        for (_, p) in &partners {
            *shifted.entry(*p).or_insert_with(|| self.feed_load(*p)) += share;
        }
        partners
            .into_iter()
            .filter(|(_, p)| {
                shifted.get(p).copied().unwrap_or(Watts::ZERO) > self.feed_capacity
            })
            .map(|(s, _)| s)
            .collect()
    }

    /// Slots that share at least one feed with `slot` — the correlated
    /// failure domain exposed to SPOF analysis.
    pub fn shared_feed_slots(&self, slot: SlotId) -> Vec<SlotId> {
        let Some((a, b)) = self.feeds_of(slot) else {
            return Vec::new();
        };
        self.assignments
            .iter()
            .enumerate()
            .filter(|(i, (x, y))| {
                *i != slot.0 && (*x == a || *x == b || *y == a || *y == b)
            })
            .map(|(i, _)| SlotId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::HallSpec;

    fn plan() -> (Hall, PowerPlan) {
        let hall = Hall::new(HallSpec {
            rows: 4,
            slots_per_row: 4,
            power_feeds: 4,
            ..HallSpec::default()
        });
        let plan = PowerPlan::stripe_by_row(&hall);
        (hall, plan)
    }

    #[test]
    fn rows_share_feed_pairs() {
        let (hall, plan) = plan();
        for s in hall.slots() {
            let (a, b) = plan.feeds_of(s.id).unwrap();
            assert_ne!(a, b, "redundant feeds must differ");
            let expect_a = FeedId(((2 * s.row) % 4) as u32);
            assert_eq!(a, expect_a);
        }
    }

    #[test]
    fn load_splits_across_feeds() {
        let (_, mut plan) = plan();
        plan.add_load(SlotId(0), Watts::new(10_000.0));
        let (a, b) = plan.feeds_of(SlotId(0)).unwrap();
        assert_eq!(plan.feed_load(a), Watts::new(5_000.0));
        assert_eq!(plan.feed_load(b), Watts::new(5_000.0));
        assert!(plan.within_capacity());
    }

    #[test]
    fn failure_shifts_load_to_partner() {
        let (_, mut plan) = plan();
        plan.add_load(SlotId(0), Watts::new(10_000.0));
        let (a, b) = plan.feeds_of(SlotId(0)).unwrap();
        let (worst, _) = plan.headroom_under_failure(a);
        // Partner feed b must now carry the full 10 kW.
        assert_eq!(worst, Watts::new(10_000.0));
        let _ = b;
    }

    #[test]
    fn shared_feed_domain_is_row_mates() {
        let (hall, plan) = plan();
        let shared = plan.shared_feed_slots(SlotId(0));
        // With 4 feeds and stride-2 striping, rows 0 and 2 share feeds
        // (2·0, 2·0+1) = (0,1) and (4,5) mod 4 = (0,1): rows 0 and 2 share.
        for s in &shared {
            let row = hall.slot(*s).unwrap().row;
            assert!(row == 0 || row == 2, "unexpected row {row}");
        }
        assert_eq!(shared.len(), 7); // 3 other row-0 slots + 4 row-2 slots
    }

    #[test]
    fn failover_dark_slots_only_past_capacity() {
        let (_, mut plan) = plan();
        plan.add_load(SlotId(0), Watts::new(10_000.0));
        let (a, _) = plan.feeds_of(SlotId(0)).unwrap();
        // 10 kW fits on the partner: redundancy holds, nothing goes dark.
        assert!(plan.failover_dark_slots(a).is_empty());
        // Load the slot's pair past a single feed's capacity (default
        // HallSpec capacity is 400 kW; 900 kW split leaves 450 kW moved).
        plan.add_load(SlotId(0), Watts::new(890_000.0));
        let dark = plan.failover_dark_slots(a);
        assert!(dark.contains(&SlotId(0)), "overloaded partner goes dark");
    }

    #[test]
    fn over_capacity_detected() {
        let (_, mut plan) = plan();
        for i in 0..4 {
            plan.add_load(SlotId(i), Watts::new(900_000.0));
        }
        assert!(!plan.within_capacity());
    }
}
