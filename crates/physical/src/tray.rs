//! The overhead cable-tray network.
//!
//! Trays run above each rack row at `tray_height`, with perpendicular
//! cross-trays every `cross_tray_every` slots tying the rows together, and a
//! vertical drop from the tray plane down into each rack slot. The result is
//! a capacity-aware routing graph ([`pd_geometry::CapacityRouter`]): cables
//! claim cross-sectional area on every segment they traverse, which is how
//! the paper's §2.1 "provision enough space in cable trays for several
//! generations" constraint becomes checkable.

use crate::hall::{Hall, SlotId};
use pd_geometry::{CapacityRouter, Meters, RouteNodeId, SquareMillimeters};
use serde::{Deserialize, Serialize};

/// The hall's tray network: a router plus the slot → drop-node mapping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrayNetwork {
    /// The capacity-aware routing graph. Nodes exist at every slot's rack
    /// top (drop) and at every tray junction above slots.
    pub router: CapacityRouter,
    /// For each slot (by dense id), the router node at the *rack top*
    /// (bottom of the vertical drop).
    drops: Vec<RouteNodeId>,
}

impl TrayNetwork {
    /// Builds the tray graph for a hall.
    ///
    /// Geometry per slot: a rack-top node at `z = rack height`, a tray node
    /// directly above at `z = tray_height`, a vertical drop edge between
    /// them, row-tray edges between horizontally adjacent tray nodes, and
    /// cross-tray edges between vertically adjacent rows at every
    /// `cross_tray_every`-th slot column (always including column 0).
    pub fn build(hall: &Hall) -> Self {
        let spec = &hall.spec;
        let mut router = CapacityRouter::new();
        let cap = spec.tray_capacity();
        // Drops are sized like a tray segment: the constraint binds at the
        // rack's cable entry just as in the AWS §3.1 example.
        let rack_top = spec.rack.height;
        let tray_z = spec.tray_height;

        let mut drops = Vec::with_capacity(hall.slot_count());
        let mut tray_nodes = Vec::with_capacity(hall.slot_count());
        for slot in hall.slots() {
            let base = slot.center;
            let drop_node = router.add_node(base.at_height(rack_top));
            let tray_node = router.add_node(base.at_height(tray_z));
            router.add_edge(
                drop_node,
                tray_node,
                tray_z - rack_top,
                cap,
            );
            drops.push(drop_node);
            tray_nodes.push(tray_node);
        }
        // Row trays.
        for row in 0..spec.rows {
            for index in 1..spec.slots_per_row {
                let a = tray_nodes[row * spec.slots_per_row + index - 1];
                let b = tray_nodes[row * spec.slots_per_row + index];
                router.add_edge(a, b, spec.slot_pitch, cap);
            }
        }
        // Cross trays.
        let every = spec.cross_tray_every.max(1);
        for row in 1..spec.rows {
            for index in (0..spec.slots_per_row).step_by(every) {
                let a = tray_nodes[(row - 1) * spec.slots_per_row + index];
                let b = tray_nodes[row * spec.slots_per_row + index];
                router.add_edge(a, b, spec.row_pitch, cap);
            }
        }
        Self { router, drops }
    }

    /// The rack-top node for a slot.
    pub fn drop_node(&self, slot: SlotId) -> Option<RouteNodeId> {
        self.drops.get(slot.0).copied()
    }

    /// Routes a cable of cross-section `area` between two slots and commits
    /// the capacity. Returns the routed length (tray path only; in-rack tails
    /// are the cabling layer's concern).
    pub fn route_cable(
        &mut self,
        from: SlotId,
        to: SlotId,
        area: SquareMillimeters,
    ) -> Result<pd_geometry::route::RoutedPath, pd_geometry::RouteError> {
        let a = self
            .drop_node(from)
            .ok_or(pd_geometry::RouteError::UnknownNode(pd_geometry::RouteNodeId(usize::MAX)))?;
        let b = self
            .drop_node(to)
            .ok_or(pd_geometry::RouteError::UnknownNode(pd_geometry::RouteNodeId(usize::MAX)))?;
        self.router.route_and_commit(a, b, area)
    }

    /// Worst tray fill fraction across all segments — the headroom metric
    /// the multi-generation provisioning rule protects.
    pub fn max_fill(&self) -> f64 {
        self.router
            .edge_ids()
            .map(|e| self.router.fill_fraction(e))
            .fold(0.0, f64::max)
    }

    /// Mean fill over all segments.
    pub fn mean_fill(&self) -> f64 {
        let (sum, n) = self
            .router
            .edge_ids()
            .fold((0.0, 0usize), |(s, n), e| (s + self.router.fill_fraction(e), n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Straight-line tray-path lower bound between two slots: Manhattan
    /// distance at tray height plus both drops.
    pub fn path_lower_bound(&self, hall: &Hall, a: SlotId, b: SlotId) -> Option<Meters> {
        let d = hall.slot_distance(a, b)?;
        let drop = hall.spec.tray_height - hall.spec.rack.height;
        Some(d + drop * 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::HallSpec;

    fn net() -> (Hall, TrayNetwork) {
        let hall = Hall::new(HallSpec::small());
        let tn = TrayNetwork::build(&hall);
        (hall, tn)
    }

    #[test]
    fn node_and_edge_counts() {
        let (hall, tn) = net();
        let spec = &hall.spec;
        // 2 nodes per slot.
        assert_eq!(tn.router.node_count(), 2 * hall.slot_count());
        // Edges: drops (32) + row trays 4×7 (28) + cross trays 3 rows × 2
        // columns (0 and 5) = 6.
        let expected = 32 + spec.rows * (spec.slots_per_row - 1) + (spec.rows - 1) * 2;
        assert_eq!(tn.router.edge_count(), expected);
    }

    #[test]
    fn same_row_route_length() {
        let (hall, mut tn) = net();
        let p = tn
            .route_cable(SlotId(0), SlotId(3), SquareMillimeters::new(50.0))
            .unwrap();
        // 3 slots × 0.6 m along the tray + 2 drops of 0.7 m.
        let expect = 3.0 * 0.6 + 2.0 * 0.7;
        assert!((p.length.value() - expect).abs() < 1e-9, "{}", p.length);
        let lb = tn.path_lower_bound(&hall, SlotId(0), SlotId(3)).unwrap();
        assert!((lb - Meters::new(expect)).abs() < Meters::new(1e-9), "{lb}");
    }

    #[test]
    fn cross_row_route_uses_cross_tray() {
        let (_, mut tn) = net();
        // Slot 2 (row 0) to slot 10 (row 1, index 2): nearest cross trays at
        // columns 0 and 5; via column 0: 2×0.6 + 2.4 + 2×0.6 wait — path is
        // tray along row 0 from index 2 to 0 (1.2), cross (2.4), row 1 from
        // 0 to 2 (1.2), plus 2 drops (1.4) = 6.2. Via column 5: same by
        // symmetry (1.8+2.4+1.8+1.4 = 7.4) → expect 6.2.
        let p = tn
            .route_cable(SlotId(2), SlotId(10), SquareMillimeters::new(50.0))
            .unwrap();
        assert!((p.length.value() - 6.2).abs() < 1e-9, "{}", p.length);
    }

    #[test]
    fn capacity_exhaustion_forces_detour() {
        let (_, mut tn) = net();
        let cap = tn.router.residual(tn.router.edge_ids().next().unwrap());
        // Mostly fill the row segment between slots 1 and 2 (and the drops
        // at 1 and 2, which we won't use again).
        let blocker = SquareMillimeters::new(cap.value() * 0.6);
        tn.route_cable(SlotId(1), SlotId(2), blocker).unwrap();
        // A 0→3 cable that no longer fits through segment 1-2 must detour
        // through the next row via the cross trays: strictly longer than
        // the direct 3.2 m path.
        let p = tn
            .route_cable(SlotId(0), SlotId(3), SquareMillimeters::new(cap.value() * 0.5))
            .unwrap();
        assert!(p.length > Meters::new(3.2 + 1e-9), "detour length {}", p.length);
        // A third demand that exceeds even the detour's drop capacity fails
        // with a congestion (not disconnection) error.
        let err = tn
            .route_cable(SlotId(0), SlotId(3), SquareMillimeters::new(cap.value() * 0.9))
            .unwrap_err();
        assert!(matches!(
            err,
            pd_geometry::RouteError::NoFeasiblePath { connected_ignoring_capacity: true }
        ));
    }

    #[test]
    fn fill_metrics_track_commits() {
        let (_, mut tn) = net();
        assert_eq!(tn.max_fill(), 0.0);
        tn.route_cable(SlotId(0), SlotId(7), SquareMillimeters::new(2400.0))
            .unwrap();
        assert!(tn.max_fill() > 0.09 && tn.max_fill() <= 0.11);
        assert!(tn.mean_fill() > 0.0 && tn.mean_fill() < tn.max_fill());
    }

    #[test]
    fn unknown_slot_errors() {
        let (_, mut tn) = net();
        assert!(tn
            .route_cable(SlotId(999), SlotId(0), SquareMillimeters::new(1.0))
            .is_err());
    }
}
