//! The instantiated hall: rack slots with floor coordinates.
//!
//! Coordinates: rows run along +x, consecutive rows stack along +y. Slot
//! `(row r, index i)` has its center at
//! `(i × slot_pitch + slot_pitch/2, r × row_pitch + row_pitch/2)`.

use crate::spec::HallSpec;
use pd_geometry::{Meters, Point2};
use serde::{Deserialize, Serialize};

/// Identifier of a rack slot (dense index: `row × slots_per_row + index`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SlotId(pub usize);

impl std::fmt::Display for SlotId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// A slot's location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotRef {
    /// The slot id.
    pub id: SlotId,
    /// Row index.
    pub row: usize,
    /// Position within the row.
    pub index: usize,
    /// Floor-plan center of the slot.
    pub center: Point2,
}

/// An instantiated hall: the spec plus computed slot geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hall {
    /// The specification this hall was built from.
    pub spec: HallSpec,
    slots: Vec<SlotRef>,
}

impl Hall {
    /// Lays out a hall from a spec.
    pub fn new(spec: HallSpec) -> Self {
        let mut slots = Vec::with_capacity(spec.total_slots());
        for row in 0..spec.rows {
            for index in 0..spec.slots_per_row {
                let id = SlotId(row * spec.slots_per_row + index);
                let center = Point2 {
                    x: spec.slot_pitch * (index as f64 + 0.5),
                    y: spec.row_pitch * (row as f64 + 0.5),
                };
                slots.push(SlotRef {
                    id,
                    row,
                    index,
                    center,
                });
            }
        }
        Self { spec, slots }
    }

    /// All slots in id order.
    pub fn slots(&self) -> &[SlotRef] {
        &self.slots
    }

    /// A slot by id.
    pub fn slot(&self, id: SlotId) -> Option<&SlotRef> {
        self.slots.get(id.0)
    }

    /// Number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Rectilinear floor distance between two slots — the walking distance
    /// for a technician and the routing lower bound for a cable.
    pub fn slot_distance(&self, a: SlotId, b: SlotId) -> Option<Meters> {
        Some(self.slot(a)?.center.manhattan(self.slot(b)?.center))
    }

    /// The slot whose center is nearest to a point (ties → lowest id).
    pub fn nearest_slot(&self, p: Point2) -> Option<SlotId> {
        self.slots
            .iter()
            .min_by(|a, b| {
                a.center
                    .manhattan(p)
                    .total_cmp(&b.center.manhattan(p))
                    .then(a.id.cmp(&b.id))
            })
            .map(|s| s.id)
    }

    /// Slots in the same row as `id`, nearest first (the candidate set for
    /// conjoined-pair placement and for block-local growth).
    pub fn row_neighbors(&self, id: SlotId) -> Vec<SlotId> {
        let Some(s) = self.slot(id) else {
            return Vec::new();
        };
        let mut same_row: Vec<&SlotRef> =
            self.slots.iter().filter(|t| t.row == s.row && t.id != id).collect();
        same_row.sort_by_key(|t| t.index.abs_diff(s.index));
        same_row.into_iter().map(|t| t.id).collect()
    }

    /// Hall bounding dimensions (x extent, y extent).
    pub fn extent(&self) -> (Meters, Meters) {
        (
            self.spec.slot_pitch * self.spec.slots_per_row as f64,
            self.spec.row_pitch * self.spec.rows as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::HallSpec;

    fn hall() -> Hall {
        Hall::new(HallSpec::small()) // 4 rows × 8 slots
    }

    #[test]
    fn slot_layout() {
        let h = hall();
        assert_eq!(h.slot_count(), 32);
        let s0 = h.slot(SlotId(0)).unwrap();
        assert_eq!(s0.row, 0);
        assert_eq!(s0.index, 0);
        assert_eq!(s0.center, Point2::new(0.3, 1.2));
        let s9 = h.slot(SlotId(9)).unwrap();
        assert_eq!(s9.row, 1);
        assert_eq!(s9.index, 1);
    }

    #[test]
    fn slot_distance_manhattan() {
        let h = hall();
        // Slot 0 and slot 1: adjacent in a row, 0.6 m apart.
        let d01 = h.slot_distance(SlotId(0), SlotId(1)).unwrap();
        assert!((d01 - Meters::new(0.6)).abs() < Meters::new(1e-9), "{d01}");
        // Slot 0 and slot 8: adjacent rows, 2.4 m apart.
        let d08 = h.slot_distance(SlotId(0), SlotId(8)).unwrap();
        assert!((d08 - Meters::new(2.4)).abs() < Meters::new(1e-9), "{d08}");
    }

    #[test]
    fn nearest_slot_round_trip() {
        let h = hall();
        for s in h.slots() {
            assert_eq!(h.nearest_slot(s.center), Some(s.id));
        }
    }

    #[test]
    fn row_neighbors_sorted_by_distance() {
        let h = hall();
        let n = h.row_neighbors(SlotId(3));
        assert_eq!(n.len(), 7);
        // First neighbors are index 2 or 4 (distance 1).
        let first = h.slot(n[0]).unwrap();
        assert_eq!(first.index.abs_diff(3), 1);
        // All in row 0.
        assert!(n.iter().all(|&id| h.slot(id).unwrap().row == 0));
    }

    #[test]
    fn extent_matches_spec() {
        let h = hall();
        let (x, y) = h.extent();
        assert_eq!(x, Meters::new(0.6 * 8.0));
        assert_eq!(y, Meters::new(2.4 * 4.0));
    }
}
