//! # pd-physical — the datacenter plant substrate
//!
//! This crate models the physical environment the paper says network designs
//! must be judged against (§2, §3.1): a hall with a tile grid and rack rows,
//! doors that equipment must fit through, overhead cable trays with finite
//! cross-sections, racks with RU/weight/power budgets, redundant power
//! feeds, and a placement engine that maps abstract switches onto all of it.
//!
//! Modules:
//!
//! * [`spec`] — hall, rack, and door specifications with calibrated defaults.
//! * [`hall`] — the instantiated hall: rack slots with floor coordinates.
//! * [`tray`] — the overhead cable-tray network as a capacity-aware router.
//! * [`rack`] — rack instances with RU slots, weight and power budgets.
//! * [`power`] — redundant feeds and physical failure domains.
//! * [`placement`] — switch→rack→floor assignment strategies plus a
//!   local-search improver that shortens expected cabling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hall;
pub mod placement;
pub mod power;
pub mod rack;
pub mod spec;
pub mod tray;

pub use hall::{Hall, SlotId, SlotRef};
pub use placement::{Placement, PlacementError, PlacementStrategy};
pub use power::{FeedId, PowerPlan};
pub use rack::{EquipmentKind, Rack, RackError, RackId, RackUnit};
pub use spec::{DoorSpec, HallSpec, RackSpec};
pub use tray::TrayNetwork;
