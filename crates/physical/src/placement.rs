//! Placement: mapping abstract switches onto racks and floor slots.
//!
//! Placement policy is one of the quiet determinants of physical
//! deployability: the same topology placed block-locally produces short,
//! bundleable cable runs, while a scattered placement of the *same* graph
//! produces a cabling nightmare (the Jellyfish problem, paper §4.2).
//!
//! Physicalization rules (documented simplifications):
//!
//! * ToR and flat-ToR switches top a server rack: **one per rack**, with the
//!   rack's server power draw accounted alongside.
//! * Aggregation/spine switches are packed into dedicated network racks,
//!   several per rack as RU/weight/power budgets allow.
//! * Racks are assigned to floor slots by the chosen
//!   [`PlacementStrategy`]; a bounded local search
//!   ([`Placement::improve`]) then swaps rack positions to shorten the
//!   total expected cable length.

use crate::hall::{Hall, SlotId};
use crate::power::PowerPlan;
use crate::rack::{EquipmentKind, Rack, RackId};
use pd_geometry::{Kilograms, Meters, Point2, Watts};
use pd_topology::{Network, SwitchId, SwitchRole};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a switch of a given radix physicalizes (RU, weight, power).
///
/// Defaults follow common merchant-silicon boxes: 1 RU up to radix 32,
/// 2 RU up to 64, 4 RU chassis above.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EquipmentProfile {
    /// Power drawn by one server (used for feed loading of ToR racks:
    /// draw = servers under the ToR × this).
    pub watts_per_server: Watts,
    /// Aggregation/spine switches packed per network rack (upper bound; RU
    /// and power budgets may bind first).
    pub switches_per_network_rack: u16,
}

impl Default for EquipmentProfile {
    fn default() -> Self {
        Self {
            watts_per_server: Watts::new(400.0),
            switches_per_network_rack: 8,
        }
    }
}

impl EquipmentProfile {
    /// (RU, weight, power) for a switch of `radix`.
    pub fn switch_shape(&self, radix: u16) -> (u16, Kilograms, Watts) {
        if radix <= 32 {
            (1, Kilograms::new(10.0), Watts::new(350.0))
        } else if radix <= 64 {
            (2, Kilograms::new(20.0), Watts::new(800.0))
        } else {
            (4, Kilograms::new(45.0), Watts::new(1_800.0))
        }
    }
}

/// Strategy for assigning racks to floor slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// Racks of the same deployment block occupy consecutive slots;
    /// spine/core racks are placed in the centre rows (shortest average
    /// reach to all pods).
    BlockLocal,
    /// Racks fill slots in switch-id order with no block awareness.
    Linear,
    /// Racks are assigned to slots pseudo-randomly (seeded). The worst
    /// case — what the paper's cabling horror stories look like.
    Scattered(u64),
}

/// Errors from placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementError {
    /// More racks are needed than the hall has slots.
    NotEnoughSlots {
        /// Racks required.
        needed: usize,
        /// Slots available.
        available: usize,
    },
    /// A switch could not be installed in any rack.
    InstallFailed(String),
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NotEnoughSlots { needed, available } => {
                write!(f, "need {needed} rack slots, hall has {available}")
            }
            PlacementError::InstallFailed(m) => write!(f, "install failed: {m}"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// The result of placement: racks, their slots, and the switch → rack map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Placement {
    /// All racks, indexed by `RackId.0`.
    pub racks: Vec<Rack>,
    /// Switch → rack containing it.
    pub rack_of_switch: HashMap<SwitchId, RackId>,
    /// The power plan with all equipment load registered.
    pub power: PowerPlan,
    /// Strategy used (for reports).
    pub strategy: PlacementStrategy,
}

impl Placement {
    /// Places every switch of `net` into racks and slots of `hall`.
    pub fn place(
        net: &Network,
        hall: &Hall,
        strategy: PlacementStrategy,
        profile: &EquipmentProfile,
    ) -> Result<Self, PlacementError> {
        // 1. Partition switches into rack loads.
        let mut rack_loads: Vec<Vec<SwitchId>> = Vec::new(); // racks as switch groups
        let mut rack_block_key: Vec<(u8, u32)> = Vec::new(); // (layer-class, block) per rack
        let mut tor_racks = 0usize;

        // Group switches by block for block-aware packing.
        let mut order: Vec<&pd_topology::Switch> = net.switches().collect();
        order.sort_by_key(|s| (s.block.map(|b| b.0).unwrap_or(u32::MAX), s.id));

        let mut open_network_rack: HashMap<u32, usize> = HashMap::new(); // block → rack idx
        for s in &order {
            match s.role {
                SwitchRole::Tor | SwitchRole::FlatTor => {
                    rack_loads.push(vec![s.id]);
                    rack_block_key.push((0, s.block.map(|b| b.0).unwrap_or(u32::MAX)));
                    tor_racks += 1;
                }
                SwitchRole::Aggregation | SwitchRole::Spine => {
                    let key = s.block.map(|b| b.0).unwrap_or(u32::MAX);
                    let idx = match open_network_rack.get(&key) {
                        Some(&i)
                            if rack_loads[i].len()
                                < usize::from(profile.switches_per_network_rack) =>
                        {
                            i
                        }
                        _ => {
                            rack_loads.push(Vec::new());
                            rack_block_key.push((1, key));
                            let i = rack_loads.len() - 1;
                            open_network_rack.insert(key, i);
                            i
                        }
                    };
                    rack_loads[idx].push(s.id);
                }
            }
        }
        let _ = tor_racks;

        if rack_loads.len() > hall.slot_count() {
            return Err(PlacementError::NotEnoughSlots {
                needed: rack_loads.len(),
                available: hall.slot_count(),
            });
        }

        // 2. Order racks per strategy and assign slots in that order.
        let mut rack_order: Vec<usize> = (0..rack_loads.len()).collect();
        match strategy {
            PlacementStrategy::Linear => {}
            PlacementStrategy::BlockLocal => {
                // Keep blocks contiguous; spine/core racks (those whose
                // switches are layer ≥ 2) sort to the middle by giving them
                // a key near the median block.
                let layer_of = |idx: usize| -> u8 {
                    rack_loads[idx]
                        .first()
                        .and_then(|&s| net.switch(s))
                        .map(|s| s.layer)
                        .unwrap_or(0)
                };
                rack_order.sort_by_key(|&i| {
                    let (class, block) = rack_block_key[i];
                    let spine = u8::from(layer_of(i) >= 2);
                    // Blocks in order; within a block ToR racks before
                    // network racks; spine blocks in the middle of the hall
                    // handled below by slot interleaving.
                    (spine, block, class)
                });
            }
            PlacementStrategy::Scattered(seed) => {
                let mut rng = pd_topology::gen::SplitMix64::new(seed);
                rng.shuffle(&mut rack_order);
            }
        }

        // Slot assignment happens in two passes. Pass 1: non-spine racks
        // take slots in strategy order — contiguous row-major for
        // BlockLocal/Linear (locality is what enables short runs and
        // bundling), a full-hall shuffle for Scattered (the worst case the
        // paper's cabling stories describe). Pass 2 (BlockLocal only):
        // spine/core racks take the unused slots nearest the *centroid of
        // the pod racks*, minimizing their average reach to every pod.
        let is_spine = |i: usize| -> bool {
            rack_loads[i]
                .first()
                .and_then(|&s| net.switch(s))
                .map(|s| s.layer >= 2)
                .unwrap_or(false)
        };
        let slot_seq: Vec<SlotId> = match strategy {
            PlacementStrategy::Scattered(seed) => {
                let mut ids: Vec<SlotId> = hall.slots().iter().map(|s| s.id).collect();
                let mut rng = pd_topology::gen::SplitMix64::new(seed ^ 0x5CA77E12);
                rng.shuffle(&mut ids);
                ids
            }
            _ => hall.slots().iter().map(|s| s.id).collect(),
        };
        let spine_rack_count = rack_order.iter().filter(|&&i| is_spine(i)).count();
        let spine_slots: Vec<SlotId> = if matches!(strategy, PlacementStrategy::BlockLocal) {
            let pod_rack_count = rack_loads.len() - spine_rack_count;
            let pod_region: Vec<Point2> = slot_seq
                .iter()
                .take(pod_rack_count)
                .filter_map(|&id| hall.slot(id).map(|s| s.center))
                .collect();
            let centroid = if pod_region.is_empty() {
                Point2::ORIGIN
            } else {
                let n = pod_region.len() as f64;
                Point2 {
                    x: pod_region.iter().map(|p| p.x).sum::<Meters>() / n,
                    y: pod_region.iter().map(|p| p.y).sum::<Meters>() / n,
                }
            };
            let mut rest: Vec<SlotId> = slot_seq.iter().copied().skip(pod_rack_count).collect();
            // Total ordering even for stale slot ids: unknown slots sort
            // last instead of panicking mid-comparison.
            let dist = |id: SlotId| {
                hall.slot(id)
                    .map(|s| s.center.manhattan(centroid))
                    .unwrap_or(Meters::new(f64::MAX))
            };
            rest.sort_by(|a, b| dist(*a).total_cmp(&dist(*b)).then(a.cmp(b)));
            rest.into_iter().take(spine_rack_count).collect()
        } else {
            Vec::new()
        };
        let mut racks: Vec<Rack> = Vec::with_capacity(rack_loads.len());
        let mut rack_of_switch = HashMap::new();
        let mut power = PowerPlan::stripe_by_row(hall);
        let mut front = 0usize;
        let mut spine_front = 0usize;
        for &load_idx in &rack_order {
            let is_spine_rack = rack_loads[load_idx]
                .first()
                .and_then(|&s| net.switch(s))
                .map(|s| s.layer >= 2)
                .unwrap_or(false);
            let slot = if matches!(strategy, PlacementStrategy::BlockLocal) && is_spine_rack {
                let s = *spine_slots.get(spine_front).ok_or_else(|| {
                    PlacementError::InstallFailed(format!(
                        "no spine slot left for rack {} of {}",
                        spine_front + 1,
                        spine_rack_count
                    ))
                })?;
                spine_front += 1;
                s
            } else {
                let s = *slot_seq.get(front).ok_or_else(|| {
                    PlacementError::InstallFailed(format!(
                        "no hall slot left for rack {} of {}",
                        front + 1,
                        rack_loads.len()
                    ))
                })?;
                front += 1;
                s
            };
            let rid = RackId(racks.len() as u32);
            let mut rack = Rack::new(rid, slot, hall.spec.rack);
            let mut rack_power = Watts::ZERO;
            for &sid in &rack_loads[load_idx] {
                let sw = net.switch(sid).ok_or_else(|| {
                    PlacementError::InstallFailed(format!("{sid} vanished from the network"))
                })?;
                let (ru, weight, draw) = profile.switch_shape(sw.radix);
                rack.install(EquipmentKind::Switch(sid.0), ru, weight, draw)
                    .map_err(|e| {
                        PlacementError::InstallFailed(format!("{} into {rid}: {e}", sw.name))
                    })?;
                rack_power += draw;
                if matches!(sw.role, SwitchRole::Tor | SwitchRole::FlatTor) {
                    rack_power += profile.watts_per_server * f64::from(sw.server_ports);
                }
                rack_of_switch.insert(sid, rid);
            }
            power.add_load(slot, rack_power);
            racks.push(rack);
        }

        Ok(Self {
            racks,
            rack_of_switch,
            power,
            strategy,
        })
    }

    /// The rack containing a switch.
    pub fn rack_of(&self, s: SwitchId) -> Option<&Rack> {
        self.rack_of_switch
            .get(&s)
            .and_then(|r| self.racks.get(r.0 as usize))
    }

    /// The floor slot of a switch.
    pub fn slot_of(&self, s: SwitchId) -> Option<SlotId> {
        self.rack_of(s).map(|r| r.slot)
    }

    /// Floor position of a switch.
    pub fn position_of(&self, hall: &Hall, s: SwitchId) -> Option<Point2> {
        hall.slot(self.slot_of(s)?).map(|sl| sl.center)
    }

    /// Sum over all links of the slot-to-slot Manhattan distance — the
    /// cabling lower bound this placement implies (same-rack links count 0).
    pub fn wiring_lower_bound(&self, net: &Network, hall: &Hall) -> Meters {
        net.links()
            .filter_map(|l| {
                let (a, b) = (self.slot_of(l.a)?, self.slot_of(l.b)?);
                hall.slot_distance(a, b)
                    .map(|d| d * f64::from(l.trunking))
            })
            .sum()
    }

    /// Bounded local search: try `iterations` random rack-slot swaps and
    /// keep those that reduce [`Self::wiring_lower_bound`]. Returns the
    /// final bound. Deterministic in `seed`.
    pub fn improve(
        &mut self,
        net: &Network,
        hall: &Hall,
        iterations: usize,
        seed: u64,
    ) -> Meters {
        let mut rng = pd_topology::gen::SplitMix64::new(seed);
        let mut best = self.wiring_lower_bound(net, hall);
        if self.racks.len() < 2 {
            return best;
        }
        for _ in 0..iterations {
            let i = rng.below(self.racks.len());
            let mut j = rng.below(self.racks.len());
            while j == i {
                j = rng.below(self.racks.len());
            }
            let (si, sj) = (self.racks[i].slot, self.racks[j].slot);
            self.racks[i].slot = sj;
            self.racks[j].slot = si;
            let cand = self.wiring_lower_bound(net, hall);
            if cand < best {
                best = cand;
            } else {
                self.racks[i].slot = si;
                self.racks[j].slot = sj;
            }
        }
        best
    }

    /// Number of racks used.
    pub fn rack_count(&self) -> usize {
        self.racks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::HallSpec;
    use pd_geometry::Gbps;
    use pd_topology::gen::{fat_tree, jellyfish, JellyfishParams};

    fn hall() -> Hall {
        Hall::new(HallSpec::default()) // 200 slots
    }

    #[test]
    fn fat_tree_block_local_placement() {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let p = Placement::place(
            &net,
            &hall(),
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .unwrap();
        // 8 ToR racks + network racks for 8 aggs + 4 cores (≤8/rack, by block):
        // each pod's 2 aggs share a rack (4 racks) + 1 core rack = 13 racks.
        assert_eq!(p.rack_count(), 13);
        // Every switch is placed exactly once.
        assert_eq!(p.rack_of_switch.len(), net.switch_count());
        for s in net.switches() {
            assert!(p.slot_of(s.id).is_some());
        }
        assert!(p.power.within_capacity());
    }

    #[test]
    fn block_local_beats_scattered_on_wiring() {
        let net = fat_tree(8, Gbps::new(100.0)).unwrap();
        let h = hall();
        let prof = EquipmentProfile::default();
        let local = Placement::place(&net, &h, PlacementStrategy::BlockLocal, &prof).unwrap();
        let scat = Placement::place(&net, &h, PlacementStrategy::Scattered(7), &prof).unwrap();
        let wl = local.wiring_lower_bound(&net, &h);
        let ws = scat.wiring_lower_bound(&net, &h);
        assert!(
            wl < ws,
            "block-local {wl} should beat scattered {ws}"
        );
    }

    #[test]
    fn improve_never_worsens_and_is_deterministic() {
        let net = jellyfish(&JellyfishParams {
            tors: 32,
            network_degree: 6,
            servers_per_tor: 4,
            link_speed: Gbps::new(100.0),
            seed: 2,
        })
        .unwrap();
        let h = hall();
        let prof = EquipmentProfile::default();
        let mut a = Placement::place(&net, &h, PlacementStrategy::Linear, &prof).unwrap();
        let before = a.wiring_lower_bound(&net, &h);
        let after = a.improve(&net, &h, 300, 11);
        assert!(after <= before);

        let mut b = Placement::place(&net, &h, PlacementStrategy::Linear, &prof).unwrap();
        let after_b = b.improve(&net, &h, 300, 11);
        assert_eq!(after, after_b, "improvement must be seed-deterministic");
    }

    #[test]
    fn too_small_hall_errors() {
        let net = fat_tree(8, Gbps::new(100.0)).unwrap();
        let tiny = Hall::new(HallSpec {
            rows: 2,
            slots_per_row: 4,
            ..HallSpec::default()
        });
        let err = Placement::place(
            &net,
            &tiny,
            PlacementStrategy::Linear,
            &EquipmentProfile::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PlacementError::NotEnoughSlots { .. }));
    }

    #[test]
    fn tor_racks_hold_one_switch_each() {
        let net = fat_tree(4, Gbps::new(100.0)).unwrap();
        let p = Placement::place(
            &net,
            &hall(),
            PlacementStrategy::Linear,
            &EquipmentProfile::default(),
        )
        .unwrap();
        for s in net.switches() {
            if s.role == SwitchRole::Tor {
                let rack = p.rack_of(s.id).unwrap();
                assert_eq!(rack.switch_ids().len(), 1);
            }
        }
    }

    #[test]
    fn no_two_racks_share_a_slot() {
        let net = fat_tree(6, Gbps::new(100.0)).unwrap();
        for strat in [
            PlacementStrategy::BlockLocal,
            PlacementStrategy::Linear,
            PlacementStrategy::Scattered(3),
        ] {
            let p =
                Placement::place(&net, &hall(), strat, &EquipmentProfile::default()).unwrap();
            let mut seen = std::collections::HashSet::new();
            for r in &p.racks {
                assert!(seen.insert(r.slot), "{strat:?}: duplicate slot {}", r.slot);
            }
        }
    }
}
