//! Cross-process pin of the kernel determinism contract.
//!
//! The CSR kernels fixed a real hazard: the old ECMP accumulator iterated
//! a `HashMap` while summing `f64` loads, so two *processes* (different
//! `RandomState` seeds) could disagree in the last float bit even though
//! each process was self-consistent. In-process tests cannot catch that
//! class of bug — both runs share one hash seed — so this test spawns the
//! `experiments` binary in fresh subprocesses and asserts byte-identical
//! stdout across processes *and* across `--kernel-jobs` settings.
//!
//! `e6` drives the full goodness pipeline (all-pairs BFS, ECMP, sampled
//! bisection and max-flow) over every topology family, which is exactly
//! the surface the old hazard lived on.

use std::process::Command;

/// Runs `experiments e6` in a fresh subprocess and returns its stdout.
fn run_e6(kernel_jobs: &str) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["e6", "--jobs", "2", "--kernel-jobs", kernel_jobs])
        .output()
        .expect("spawn experiments");
    assert!(
        out.status.success(),
        "experiments e6 --kernel-jobs {kernel_jobs} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!out.stdout.is_empty(), "e6 produced no output");
    out.stdout
}

#[test]
fn e6_stdout_is_byte_identical_across_processes_and_kernel_jobs() {
    let serial = run_e6("1");
    for jobs in ["1", "4", "0"] {
        let other = run_e6(jobs);
        assert_eq!(
            serial, other,
            "experiments e6 stdout drifted between processes \
             (--kernel-jobs 1 vs --kernel-jobs {jobs})"
        );
    }
}
