//! The `perf` report's side of the workspace determinism contract: the
//! `"counts"` section of `BENCH_PIPELINE.json` must be byte-identical at
//! any `--jobs` value, and the baseline diff must accept identical runs
//! while catching injected regressions. `docs/OBSERVABILITY.md` documents
//! the contract; this test pins it.

use std::sync::Mutex;

use pd_bench::perf::{diff, run, PerfConfig};

/// The perf runner records into (and resets) the process-global metrics
/// registry, so tests in this binary must not run it concurrently — the
/// embedded snapshot would mix two workloads.
static PERF_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    PERF_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny(jobs: usize) -> PerfConfig {
    PerfConfig {
        families: vec!["leaf-spine".into(), "fat-tree".into()],
        sizes: vec![64],
        jobs,
        repeats: 1,
        seed: 11,
        clones: 3,
        progress: false,
    }
}

/// Serializes only the `"counts"` section, which is the part of the
/// report the contract covers.
fn counts_bytes(doc: &serde_json::Value) -> String {
    serde_json::to_string_pretty(doc.get("counts").expect("counts section"))
        .expect("serialize counts")
}

#[test]
fn counts_section_is_identical_at_jobs_1_and_jobs_8() {
    let _g = lock();
    let serial = run(&tiny(1)).expect("serial run").to_json();
    let parallel = run(&tiny(8)).expect("parallel run").to_json();
    assert_eq!(
        counts_bytes(&serial),
        counts_bytes(&parallel),
        "deterministic counts drifted between --jobs 1 and --jobs 8"
    );
    // The jobs axis must live in diagnostics, where it is allowed to differ.
    assert_eq!(serial["diagnostics"]["jobs"], serde_json::json!(1));
    assert_eq!(parallel["diagnostics"]["jobs"], serde_json::json!(8));
}

#[test]
fn counts_section_is_stable_across_repeated_runs() {
    let _g = lock();
    let a = run(&tiny(2)).expect("first run").to_json();
    let b = run(&tiny(2)).expect("second run").to_json();
    assert_eq!(counts_bytes(&a), counts_bytes(&b));
}

#[test]
fn baseline_diff_passes_equal_runs_and_flags_injected_regression() {
    let _g = lock();
    let report = run(&tiny(1)).expect("perf run");
    let fresh = report.to_json();

    // A report diffed against itself is never a regression.
    let outcome = diff(&fresh, &fresh, 0.20);
    assert!(outcome.passed(), "self-diff regressed: {:?}", outcome.regressions);

    // Inject a 2× slowdown into the fresh run (relative to the baseline)
    // by halving every baseline median; a 20% threshold must catch it.
    let mut slow_base = fresh.clone();
    for cell in slow_base["diagnostics"]["cells"]
        .as_array_mut()
        .expect("timing cells")
    {
        let ns = cell["median_wall_ns"].as_u64().expect("median");
        cell["median_wall_ns"] = serde_json::json!((ns / 2).max(1));
    }
    let outcome = diff(&fresh, &slow_base, 0.20);
    assert!(!outcome.passed(), "2x regression went undetected");
    assert_eq!(
        outcome.regressions.len(),
        fresh["diagnostics"]["cells"].as_array().unwrap().len(),
        "every cell regressed, every cell should be flagged"
    );
}
