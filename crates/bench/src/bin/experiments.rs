//! The experiment runner.
//!
//! ```text
//! experiments              # list experiments
//! experiments e6           # run one
//! experiments all          # run every experiment in order
//! ```

use pd_bench::{all_experiments, run_by_name};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("list") => {
            println!("physnet experiments (see EXPERIMENTS.md):\n");
            for (name, desc, _) in all_experiments() {
                println!("  {name:<4} {desc}");
            }
            println!("\nusage: experiments <e1..e13 | all>");
        }
        Some("all") => {
            for (name, _, f) in all_experiments() {
                println!("\n{}\n{}", "═".repeat(72), f());
                let _ = name;
            }
        }
        Some(name) => match run_by_name(name) {
            Some(report) => println!("{report}"),
            None => {
                eprintln!("unknown experiment {name:?}; try `experiments list`");
                std::process::exit(2);
            }
        },
    }
}
