//! The experiment runner.
//!
//! ```text
//! experiments                    # list experiments
//! experiments e6                 # run one
//! experiments all                # run every experiment in order
//! experiments all --jobs 8       # same output, 8 worker threads
//! experiments all --jobs 0       # one worker per core
//! experiments e6 --trace         # + per-stage timing table on stderr
//! experiments e6 --metrics       # + global pd-metrics table on stderr
//! experiments e6 --spec-timeout 30s   # per-design deadline
//! experiments all --deadline 10m      # whole-run wall-clock budget
//! experiments all --retries 1         # retry transient failures once
//! ```
//!
//! Experiments are independent and deterministic, so `--jobs` changes only
//! wall-clock time: the output is byte-identical at any job count.
//! `--spec-timeout` and `--deadline` bound wall clock per design and per
//! run (durations like `500ms`, `30s`, `5m`); a design that runs over is
//! reported as `timed out: stage <name>` instead of hanging the run —
//! **partial-success mode**: the run still exits 0 with every completed
//! row present. `--retries N` re-runs a design that panicked or was stalled
//! (watchdog-cancelled) up to N extra times with seeded backoff; retries
//! never change the deterministic outputs (see `docs/OBSERVABILITY.md`).
//! `--trace` turns on the process-wide stage trace
//! ([`pd_core::stages::enable_global_trace`]) and prints the per-stage
//! wall-time/artifact table to **stderr** when the run finishes — stdout
//! stays the canonical, deterministic experiment output. The trace table is
//! an alias view of the `pipeline.<stage>.*` metrics that `--metrics`
//! prints in full (every instrumented subsystem, grouped by determinism
//! class; see `docs/OBSERVABILITY.md`).

use pd_bench::cli::CommonFlags;
use pd_bench::{all_experiments, run_all, run_by_name};

fn main() {
    let mut jobs: usize = 1;
    let mut trace = false;
    let mut common = CommonFlags::new();
    let mut command: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let jobs_value = if let Some(v) = arg.strip_prefix("--jobs=") {
            Some(v.to_string())
        } else if arg == "--jobs" || arg == "-j" {
            Some(args.next().unwrap_or_default())
        } else {
            None
        };
        if let Some(v) = jobs_value {
            jobs = match v.parse() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("--jobs needs a number (0 = one per core), got {v:?}");
                    std::process::exit(2);
                }
            };
        } else if arg == "--trace" {
            trace = true;
        } else if common.consume(&arg, &mut args) {
            // --spec-timeout / --deadline / --retries / --kernel-jobs / --metrics
        } else if command.is_none() {
            command = Some(arg);
        } else {
            eprintln!("unexpected argument {arg:?}; try `experiments list`");
            std::process::exit(2);
        }
    }

    let stage_trace = trace.then(pd_core::stages::enable_global_trace);

    match command.as_deref() {
        None | Some("list") => {
            println!("physnet experiments (see EXPERIMENTS.md):\n");
            for (name, desc, _) in all_experiments() {
                println!("  {name:<4} {desc}");
            }
            println!(
                "\nusage: experiments <e1..e20 | all> [--jobs N] [--kernel-jobs N] \
                 [--trace] [--metrics] [--spec-timeout DUR] [--deadline DUR] [--retries N]"
            );
        }
        Some("all") => {
            for (_, report) in run_all(jobs) {
                println!("\n{}\n{}", "═".repeat(72), report);
            }
        }
        Some(name) => match run_by_name(name) {
            Some(report) => println!("{report}"),
            None => {
                eprintln!("unknown experiment {name:?}; try `experiments list`");
                std::process::exit(2);
            }
        },
    }

    if let Some(stage_trace) = stage_trace {
        eprintln!("\nper-stage timing (wall clock; diagnostics only, not part of the output):");
        eprint!("{}", stage_trace.render_table());
        eprintln!("(alias view: the same data is pipeline.<stage>.* under --metrics)");
    }
    common.finish();
}
