//! A one-shot pd-serve client.
//!
//! ```text
//! client --op status                      # health check
//! client --op evaluate --family fat-tree --servers 64
//! client --op shutdown                    # begin graceful drain
//! client --file request.json              # send a raw request document
//! echo '{"op":"status"}' | client         # ... or from stdin
//! client --wait 10s --op status           # retry the connect (CI startup)
//! ```
//!
//! Prints the server's response line to stdout verbatim — the byte-stable
//! body `loadgen` checksums — and exits 0 iff the response says
//! `ok: true`. A server-reported error (bad request, overload, evaluation
//! failure) exits 1 with the response still on stdout; connection and
//! usage problems exit 2.

use std::io::Read;
use std::process::exit;
use std::time::Duration;

use pd_bench::cli::{duration, parse};
use pd_serve::prelude::parse_request;
use pd_serve::{Client, Op, Request, WireSpec};
use serde_json::Value;

fn usage() -> ! {
    eprintln!(
        "usage: client [--addr HOST:PORT] [--wait DUR] [--id STR] [--deadline-ms N]\n\
         \x20       client --op status|shutdown\n\
         \x20       client --op evaluate --family NAME --servers N [--speed G] [--seed N]\n\
         \x20                [--hall NAME] [--media NAME] [--fault-scenarios N]\n\
         \x20                [--yield-trials N] [--repair-trials N]\n\
         \x20       client --file PATH      # or a request document on stdin\n\
         default --addr 127.0.0.1:4717; exit 0 iff the response is ok"
    );
    exit(2)
}

fn main() {
    let mut addr = "127.0.0.1:4717".to_string();
    let mut wait: Option<Duration> = None;
    let mut op: Option<String> = None;
    let mut file: Option<String> = None;
    let mut id = Value::from("cli");
    let mut deadline_ms: Option<u64> = None;
    let mut family: Option<String> = None;
    let mut servers: Option<usize> = None;
    let mut speed: Option<f64> = None;
    let mut seed: Option<u64> = None;
    let mut hall: Option<String> = None;
    let mut media: Option<String> = None;
    let mut fault_scenarios: Option<usize> = None;
    let mut yield_trials: Option<usize> = None;
    let mut repair_trials: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse("--addr", args.next()),
            "--wait" => wait = Some(duration("--wait", args.next())),
            "--op" => op = Some(parse("--op", args.next())),
            "--file" => file = Some(parse("--file", args.next())),
            "--id" => id = Value::from(parse::<String>("--id", args.next())),
            "--deadline-ms" => deadline_ms = Some(parse("--deadline-ms", args.next())),
            "--family" => family = Some(parse("--family", args.next())),
            "--servers" => servers = Some(parse("--servers", args.next())),
            "--speed" => speed = Some(parse("--speed", args.next())),
            "--seed" => seed = Some(parse("--seed", args.next())),
            "--hall" => hall = Some(parse("--hall", args.next())),
            "--media" => media = Some(parse("--media", args.next())),
            "--fault-scenarios" => fault_scenarios = Some(parse("--fault-scenarios", args.next())),
            "--yield-trials" => yield_trials = Some(parse("--yield-trials", args.next())),
            "--repair-trials" => repair_trials = Some(parse("--repair-trials", args.next())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }

    let request = match op.as_deref() {
        Some("status") => Request::bare(id, Op::Status),
        Some("shutdown") => Request::bare(id, Op::Shutdown),
        Some("evaluate") => {
            let (Some(family), Some(servers)) = (family, servers) else {
                eprintln!("--op evaluate needs --family and --servers");
                usage()
            };
            // Deserialize a minimal document so omitted fields get the
            // wire defaults, exactly as an omitted JSON field would.
            let mut spec: WireSpec =
                serde_json::from_value(serde_json::json!({"family": family, "servers": servers}))
                    .expect("minimal wire spec");
            if let Some(v) = speed {
                spec.speed_gbps = v;
            }
            if let Some(v) = seed {
                spec.seed = v;
            }
            if let Some(v) = hall {
                spec.hall = v;
            }
            if let Some(v) = media {
                spec.media = v;
            }
            if let Some(v) = fault_scenarios {
                spec.fault_scenarios = v;
            }
            if let Some(v) = yield_trials {
                spec.yield_trials = v;
            }
            if let Some(v) = repair_trials {
                spec.repair_trials = v;
            }
            Request {
                deadline_ms,
                ..Request::evaluate(id, spec)
            }
        }
        Some(other) => {
            eprintln!("unknown --op {other:?} (conveniences: status, shutdown, evaluate; \
                       use --file/stdin for batch and search)");
            usage()
        }
        None => {
            let doc = match &file {
                Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("client: cannot read {path}: {e}");
                    exit(2)
                }),
                None => {
                    let mut buf = String::new();
                    if std::io::stdin().read_to_string(&mut buf).is_err() || buf.trim().is_empty() {
                        eprintln!("client: no --op, no --file, and nothing on stdin");
                        usage()
                    }
                    buf
                }
            };
            // Validate locally so a typo fails with the parser's message
            // instead of a round trip (the document may be multi-line
            // pretty JSON; it is re-serialized to one line for the wire).
            parse_request(&doc).unwrap_or_else(|e| {
                eprintln!("client: invalid request document: {e}");
                exit(2)
            })
        }
    };

    let mut client = match wait {
        Some(budget) => Client::connect_retry(addr.as_str(), budget),
        None => Client::connect(addr.as_str()),
    }
    .unwrap_or_else(|e| {
        eprintln!("client: cannot connect to {addr}: {e}");
        exit(2)
    });

    client.send(&request).unwrap_or_else(|e| {
        eprintln!("client: send failed: {e}");
        exit(2)
    });
    let line = client
        .recv_line()
        .unwrap_or_else(|e| {
            eprintln!("client: receive failed: {e}");
            exit(2)
        })
        .unwrap_or_else(|| {
            eprintln!("client: server closed the connection before responding");
            exit(2)
        });
    let _ = client.finish_sending();

    println!("{line}");
    // Pretty-print status cache tiers to stderr; stdout stays the verbatim
    // response line loadgen checksums.
    if let Ok(resp) = pd_serve::prelude::parse_response(&line) {
        if let Some(status) = &resp.status {
            let table = pd_serve::prelude::render_tier_table(&status.artifact_tiers);
            if !table.is_empty() {
                eprint!("{table}");
            }
        }
    }
    let ok = serde_json::from_str::<Value>(&line)
        .ok()
        .and_then(|v| v.get("ok").and_then(Value::as_bool))
        .unwrap_or(false);
    exit(if ok { 0 } else { 1 })
}
