//! The pipeline performance benchmark CLI (`pd-bench perf`).
//!
//! ```text
//! perf                                   # full matrix, BENCH_PIPELINE.json
//! perf --families leaf-spine,fat-tree --sizes 128 --repeats 5
//! perf --jobs 1 --out serial.json        # pin the worker count
//! perf --baseline old.json               # diff mode: exit 1 on regression
//! perf --baseline old.json --threshold 0.10
//! perf --warm                            # matrix twice over one cache
//! ```
//!
//! Writes `BENCH_PIPELINE.json` (see `docs/OBSERVABILITY.md` for the
//! schema): deterministic counts under `"counts"` — byte-identical at any
//! `--jobs` — and wall times, throughput, and diagnostic metrics under
//! `"diagnostics"`. With `--baseline` the fresh run is compared against an
//! earlier report; the process exits non-zero when any cell's median wall
//! time regressed beyond `--threshold` (default 20%) or any deterministic
//! count drifted.
//!
//! `--warm` runs the matrix twice over one shared artifact cache and
//! reports cold vs warm medians per cell. The written report is the cold
//! pass. The run fails (exit 1) if the two passes' `"counts"` sections
//! are not byte-identical — caching must be invisible in deterministic
//! output — or if the warm pass was not at least as fast in total.
//!
//! `--kernels` measures the dense graph kernels in isolation (CSR
//! construction, all-pairs BFS, ECMP, max-flow, masked-ECMP failure
//! sweep) on each matrix network and writes `BENCH_KERNELS.json` in the
//! same schema, so `--baseline`/`--threshold` work unchanged. Kernel
//! parallelism comes from the shared `--kernel-jobs` flag; output digests
//! are byte-identical at every setting.

use std::path::{Path, PathBuf};
use std::process::exit;

use pd_bench::cli::{emit_metrics_table, parse, parse_list, write_atomic, CommonFlags};
use pd_bench::perf::{diff, run, run_kernels, run_warm, PerfConfig};

fn usage() -> ! {
    eprintln!(
        "usage: perf [--families a,b,...] [--sizes n,m,...] [--jobs N] \
         [--repeats N] [--clones N] [--seed N] [--out PATH] \
         [--baseline PATH] [--threshold F] [--warm] [--kernels] \
         [--kernel-jobs N] [--metrics] [--quiet] \
         [--spec-timeout DUR] [--deadline DUR] [--retries N]\n\
         families: fat-tree, folded-clos, leaf-spine, jellyfish, xpander, \
         slimfly, flat-bf, fatclique, direct-connect"
    );
    exit(2)
}

/// Atomically writes the JSON document, exiting 1 on I/O failure.
fn write_report(doc: &serde_json::Value, out_path: &Path) {
    let pretty = serde_json::to_string_pretty(doc).expect("serialize report");
    if let Err(e) = write_atomic(out_path, &(pretty + "\n")) {
        eprintln!("perf: cannot write {}: {e}", out_path.display());
        exit(1);
    }
    println!("report: {}", out_path.display());
}

/// Diffs `doc` against the baseline file, exiting 1 on any regression.
fn compare_baseline(doc: &serde_json::Value, base_path: &Path, threshold: f64) {
    let base: serde_json::Value = std::fs::read_to_string(base_path)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
        .unwrap_or_else(|e| {
            eprintln!("perf: cannot read baseline {}: {e}", base_path.display());
            exit(1)
        });
    let outcome = diff(doc, &base, threshold);
    println!("\nbaseline comparison (threshold {:.0}%):", threshold * 100.0);
    for line in &outcome.lines {
        println!("  {line}");
    }
    if !outcome.passed() {
        eprintln!(
            "perf: {} regression(s) beyond {:.0}%",
            outcome.regressions.len(),
            threshold * 100.0
        );
        exit(1);
    }
    println!("baseline comparison passed");
}

fn main() {
    let mut cfg = PerfConfig::default();
    let mut out_path: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut threshold = 0.20f64;
    let mut warm = false;
    let mut kernels = false;
    let mut common = CommonFlags::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--families" => cfg.families = parse_list("--families", args.next()),
            "--sizes" => cfg.sizes = parse_list("--sizes", args.next()),
            "--jobs" | "-j" => cfg.jobs = parse("--jobs", args.next()),
            "--repeats" => cfg.repeats = parse("--repeats", args.next()),
            "--clones" => cfg.clones = parse("--clones", args.next()),
            "--seed" => cfg.seed = parse("--seed", args.next()),
            "--out" => out_path = Some(PathBuf::from(parse::<String>("--out", args.next()))),
            "--baseline" => {
                baseline = Some(PathBuf::from(parse::<String>("--baseline", args.next())))
            }
            "--threshold" => threshold = parse("--threshold", args.next()),
            "--warm" => warm = true,
            "--kernels" => kernels = true,
            "--quiet" => cfg.progress = false,
            "--help" | "-h" => usage(),
            other => {
                if !common.consume(other, &mut args) {
                    eprintln!("unknown argument {other:?}");
                    usage()
                }
            }
        }
    }
    if cfg.sizes.is_empty() {
        eprintln!("--sizes needs at least one size");
        usage()
    }

    if kernels {
        let report = run_kernels(&cfg).unwrap_or_else(|e| {
            eprintln!("perf: {e}");
            usage()
        });
        print!("{}", report.render_table());
        let doc = report.to_json();
        write_report(
            &doc,
            &out_path.unwrap_or_else(|| PathBuf::from("BENCH_KERNELS.json")),
        );
        if common.metrics {
            emit_metrics_table();
        }
        if let Some(base_path) = baseline {
            compare_baseline(&doc, &base_path, threshold);
        }
        return;
    }
    let out_path = out_path.unwrap_or_else(|| PathBuf::from("BENCH_PIPELINE.json"));

    let report = if warm {
        let outcome = run_warm(&cfg).unwrap_or_else(|e| {
            eprintln!("perf: {e}");
            usage()
        });
        print!("{}", outcome.render_table());
        if !outcome.counts_identical() {
            eprintln!("perf: cold and warm counts sections differ — caching leaked into deterministic output");
            exit(1);
        }
        let total = |r: &pd_bench::perf::PerfReport| -> u64 {
            r.cells.iter().map(|c| c.median_wall_ns()).sum()
        };
        let (cold_ns, warm_ns) = (total(&outcome.cold), total(&outcome.warm));
        println!(
            "warm pass: counts byte-identical; total median {:.3} ms cold vs {:.3} ms warm",
            cold_ns as f64 / 1e6,
            warm_ns as f64 / 1e6,
        );
        if warm_ns > cold_ns {
            eprintln!("perf: warm pass slower than cold pass — the artifact cache is not adopting");
            exit(1);
        }
        outcome.cold
    } else {
        let report = run(&cfg).unwrap_or_else(|e| {
            eprintln!("perf: {e}");
            usage()
        });
        print!("{}", report.render_table());
        report
    };

    let doc = report.to_json();
    write_report(&doc, &out_path);

    if common.metrics {
        eprintln!("\nglobal metrics (this run):");
        eprint!("{}", report.snapshot.render_table());
    }

    if let Some(base_path) = baseline {
        compare_baseline(&doc, &base_path, threshold);
    }
}
