//! The design-space search CLI.
//!
//! ```text
//! search                                 # default grid over every family
//! search --budget 24 --jobs 2           # first 24 grid points, 2 workers
//! search --strategy random --budget 16 --seed 7
//! search --strategy adaptive --budget 12 --eta 2
//! search --out results.jsonl            # stream JSONL; file is the resume
//!                                       # checkpoint — rerun to continue
//! search --axes cost,tco,bisection      # pick frontier axes by name
//! ```
//!
//! The JSONL output is byte-identical at any `--jobs` count, and a killed
//! run rerun with the same `--out` resumes from the file instead of
//! re-evaluating completed points. `--eval-budget N` stops the run
//! gracefully (flushing completed records) after at most `N` full
//! evaluations — deterministic incremental exploration: rerun with the
//! same `--out` to continue. `--spec-timeout`/`--deadline` bound wall
//! clock per design / per run; timed-out or cancelled points are *not*
//! written to the JSONL (a resume re-evaluates them), so the finished
//! file is byte-identical to an uninterrupted run's. `--retries N`
//! re-runs designs that panicked or stalled, without touching the output
//! bytes. Progress (with generation-cache
//! hit/miss counters) goes to stderr; tables go to stdout. `--trace`
//! additionally prints the per-stage timing table on stderr when the run
//! finishes — like the cache counters, stage timings are
//! scheduling-dependent and never enter the JSONL records. The trace table
//! is an alias view of the `pipeline.<stage>.*` metrics; `--metrics`
//! prints the full registry (search rungs, batch engine, caches) grouped
//! by determinism class — see `docs/OBSERVABILITY.md`.

use std::path::PathBuf;
use std::process::exit;

use pd_bench::cli::{parse, CommonFlags};
use pd_search::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: search [--strategy grid|random|adaptive] [--budget N] [--eta N] \
         [--seed N] [--jobs N] [--wave N] [--cache-cap N] [--out PATH] \
         [--axes a,b,...] [--eval-budget N] [--spec-timeout DUR] \
         [--deadline DUR] [--retries N] [--trace] [--metrics] [--quiet]\n\
         axes: cost, tco, bisection, fault, throughput, deploy-time"
    );
    exit(2)
}

fn main() {
    let mut strategy_name = "grid".to_string();
    let mut budget: Option<usize> = None;
    let mut eta: usize = 2;
    let mut seed: u64 = 11;
    let mut jobs: usize = 0;
    let mut wave: usize = 8;
    let mut cache_cap: Option<usize> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut axis_names = "cost,fault,tco,bisection".to_string();
    let mut progress = true;
    let mut trace = false;
    let mut common = CommonFlags::new();
    let mut eval_budget: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strategy" => strategy_name = parse("--strategy", args.next()),
            "--budget" => budget = Some(parse("--budget", args.next())),
            "--eta" => eta = parse("--eta", args.next()),
            "--seed" => seed = parse("--seed", args.next()),
            "--jobs" | "-j" => jobs = parse("--jobs", args.next()),
            "--wave" => wave = parse("--wave", args.next()),
            "--cache-cap" => cache_cap = Some(parse("--cache-cap", args.next())),
            "--out" => out_path = Some(PathBuf::from(parse::<String>("--out", args.next()))),
            "--axes" => axis_names = parse("--axes", args.next()),
            "--eval-budget" => eval_budget = Some(parse("--eval-budget", args.next())),
            "--trace" => trace = true,
            "--quiet" => progress = false,
            "--help" | "-h" => usage(),
            other => {
                if !common.consume(other, &mut args) {
                    eprintln!("unknown argument {other:?}");
                    usage()
                }
            }
        }
    }

    let strategy = match strategy_name.as_str() {
        "grid" => Strategy::Grid { budget },
        "random" => Strategy::Random {
            samples: budget.unwrap_or(16),
            seed,
        },
        "adaptive" => Strategy::Adaptive {
            budget: budget.unwrap_or(16),
            eta,
        },
        other => {
            eprintln!("unknown strategy {other:?}");
            usage()
        }
    };
    let names: Vec<&str> = axis_names.split(',').map(str::trim).collect();
    let axes = axes_by_name(&names).unwrap_or_else(|| {
        eprintln!("unknown axis in {axis_names:?}");
        usage()
    });

    // The default space: every family at the two E6-bracketing sizes in
    // both the standard and the floor-constrained hall, with a small fault
    // ensemble so the fault-retention axis is populated.
    let cfg = SearchConfig {
        space: ParamSpace {
            halls: vec![HallVariant::Standard, HallVariant::Dense],
            seeds: vec![seed],
            ..ParamSpace::default()
        },
        strategy,
        jobs,
        wave,
        cache_capacity: cache_cap,
        cache: None,
        progress,
        cancel: None,
        eval_budget,
    };

    // Stage timings go to stderr only: the JSONL records and stdout tables
    // are deterministic, and scheduling-dependent timings must stay out.
    let stage_trace = trace.then(pd_core::stages::enable_global_trace);

    let outcome = match &out_path {
        Some(path) => run_search_to_path(&cfg, path).unwrap_or_else(|e| {
            eprintln!("search: cannot write {}: {e}", path.display());
            exit(1)
        }),
        None => run_search(&cfg),
    };

    if let Some(stage_trace) = stage_trace {
        eprintln!("per-stage timing (wall clock; diagnostics only, not in the JSONL):");
        eprint!("{}", stage_trace.render_table());
        eprintln!("(alias view: the same data is pipeline.<stage>.* under --metrics)");
    }
    common.finish();

    println!(
        "search: {} strategy over {} grid points → {} records \
         ({} evaluated, {} reused, {} pruned; gen-cache {} hits / {} misses)",
        cfg.strategy.name(),
        cfg.space.len(),
        outcome.records.len(),
        outcome.evaluated,
        outcome.reused,
        outcome.pruned,
        outcome.cache_hits,
        outcome.cache_misses,
    );
    if outcome.interrupted {
        println!(
            "search: stopped early (budget/deadline/cancel); completed records \
             are flushed — rerun with the same --out to continue"
        );
    }
    if let Some(path) = &out_path {
        println!("records: {}", path.display());
    }

    println!("\nglobal Pareto frontier:");
    let front = pd_search::frontier::frontier(&outcome.records, &axes);
    print!("{}", pd_search::frontier::render_frontier(&outcome.records, &front, &axes));

    println!("\nper-family frontier sizes:");
    for (family, front) in frontier_by_family(&outcome.records, &axes) {
        println!("  {family:<14} {} frontier point(s)", front.len());
    }

    println!("\nfeasibility envelope:");
    print!("{}", render_envelopes(&map_envelopes(&outcome.records)));
}
