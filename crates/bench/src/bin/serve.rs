//! The pd-serve daemon CLI.
//!
//! ```text
//! serve                                  # loopback :4717, one worker/core
//! serve --addr 127.0.0.1:0 --jobs 2      # OS-assigned port, 2 workers
//! serve --queue-cap 8 --spec-timeout 30s --deadline 2m
//! serve --cache-cap 1024 --metrics       # bigger session cache, table on exit
//! ```
//!
//! Binds, prints `pd-serve listening on <addr>` (stdout, flushed — scripts
//! backgrounding the daemon can wait for it), then serves until a client
//! sends `{"op":"shutdown"}` or [`pd_serve::ServerHandle::shutdown`] fires.
//! The drain finishes every admitted request, flushes every connection,
//! and the process exits 0. Protocol and drain semantics:
//! `docs/ARCHITECTURE.md` ("Serving layer").

use std::io::Write;
use std::process::exit;

use pd_bench::cli::{duration, emit_metrics_table, parse};
use pd_serve::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--jobs N] [--queue-cap N] \
         [--spec-timeout DUR] [--deadline DUR] [--retries N] \
         [--watchdog DUR] [--cache-cap N] [--max-line-bytes N] [--metrics]\n\
         defaults: --addr 127.0.0.1:4717, --jobs 0 (one per core), \
         --queue-cap 64, --cache-cap 512 (0 = unbounded)"
    );
    exit(2)
}

fn main() {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:4717".to_string(),
        ..ServerConfig::default()
    };
    let mut metrics = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = parse("--addr", args.next()),
            "--jobs" | "-j" => cfg.jobs = parse("--jobs", args.next()),
            "--queue-cap" => cfg.queue_cap = parse("--queue-cap", args.next()),
            // Resilience knobs are per-server config here, not the
            // process-wide defaults the batch bins set: the daemon owns
            // its own BatchControl.
            "--spec-timeout" => cfg.spec_timeout = Some(duration("--spec-timeout", args.next())),
            "--deadline" => cfg.default_deadline = Some(duration("--deadline", args.next())),
            "--retries" => cfg.retries = parse("--retries", args.next()),
            "--watchdog" => cfg.watchdog = Some(duration("--watchdog", args.next())),
            "--cache-cap" => {
                let cap: usize = parse("--cache-cap", args.next());
                cfg.cache_cap = (cap > 0).then_some(cap);
            }
            "--max-line-bytes" => cfg.max_line_bytes = parse("--max-line-bytes", args.next()),
            "--metrics" => metrics = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }

    let server = Server::bind(cfg).unwrap_or_else(|e| {
        eprintln!("serve: cannot bind: {e}");
        exit(1)
    });
    println!("pd-serve listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();

    let stats = server.run().unwrap_or_else(|e| {
        eprintln!("serve: {e}");
        exit(1)
    });
    println!(
        "pd-serve drained: {} connection(s), {} request(s), {} completed, {} rejected",
        stats.connections, stats.requests, stats.completed, stats.rejected
    );
    if metrics {
        emit_metrics_table();
    }
}
