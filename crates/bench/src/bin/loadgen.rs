//! The pd-serve load generator and live determinism checker.
//!
//! ```text
//! loadgen                                    # 4 connections × 16 requests
//! loadgen --connections 8 --requests 64 --seed 7
//! loadgen --families fat-tree,jellyfish --servers 64
//! loadgen --deadline-ms 5000                 # attach a per-request deadline
//! ```
//!
//! Drives a running server (`serve`) with seeded closed-loop traffic drawn
//! from a parameter space, prints throughput and latency percentiles, and
//! **exits 1 if any repeated spec got non-byte-identical response bodies**
//! — the serving layer's core determinism contract. The printed body
//! digest is comparable across invocations: the same `--seed`/space/shape
//! against servers at any `--jobs` count must print the same digest.
//!
//! Space flags default to the harness space (every family at 128 servers,
//! no fault sweep, 5/2 trials); each flag narrows or widens one axis.

use std::process::exit;

use pd_bench::cli::{parse, parse_list};
use pd_serve::{run_loadgen, LoadgenConfig, WireSpace};

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--connections N] [--requests N] \
         [--seed N] [--deadline-ms N]\n\
         \x20       [--families a,b,...] [--servers n,m,...] [--speeds g,...] \
         [--space-seeds s,...]\n\
         \x20       [--halls a,...] [--media a,...] [--fault-scenarios n,...]\n\
         \x20       [--yield-trials N] [--repair-trials N]\n\
         exit 0 iff every repeated spec got byte-identical response bodies"
    );
    exit(2)
}

fn main() {
    let mut cfg = LoadgenConfig::default();
    // The wire-space defaults mirror pd_serve::loadgen::default_space so
    // "no space flags" and "all space flags at their defaults" agree.
    let mut space = WireSpace {
        servers: vec![128],
        fault_scenarios: vec![0],
        yield_trials: Some(5),
        repair_trials: Some(2),
        ..WireSpace::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = parse("--addr", args.next()),
            "--connections" => cfg.connections = parse("--connections", args.next()),
            "--requests" => cfg.requests = parse("--requests", args.next()),
            "--seed" => cfg.seed = parse("--seed", args.next()),
            "--deadline-ms" => cfg.deadline_ms = Some(parse("--deadline-ms", args.next())),
            "--families" => space.families = parse_list("--families", args.next()),
            "--servers" => space.servers = parse_list("--servers", args.next()),
            "--speeds" => space.speeds = parse_list("--speeds", args.next()),
            "--space-seeds" => space.seeds = parse_list("--space-seeds", args.next()),
            "--halls" => space.halls = parse_list("--halls", args.next()),
            "--media" => space.media = parse_list("--media", args.next()),
            "--fault-scenarios" => {
                space.fault_scenarios = parse_list("--fault-scenarios", args.next())
            }
            "--yield-trials" => space.yield_trials = Some(parse("--yield-trials", args.next())),
            "--repair-trials" => space.repair_trials = Some(parse("--repair-trials", args.next())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }

    cfg.space = space.resolve().unwrap_or_else(|e| {
        eprintln!("loadgen: invalid space: {e}");
        usage()
    });

    let outcome = run_loadgen(&cfg).unwrap_or_else(|e| {
        eprintln!("loadgen: {e}");
        exit(2)
    });
    print!("{}", outcome.render_summary());

    if !outcome.bodies_consistent() {
        eprintln!("loadgen: DETERMINISM VIOLATION — repeated specs got different bytes:");
        for m in &outcome.mismatches {
            eprintln!("  {m}");
        }
        exit(1);
    }
}
