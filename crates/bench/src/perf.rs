//! The pinned pipeline-performance workload behind `pd-bench perf`.
//!
//! A *cell* is one (family, target-server-count) pair from a fixed matrix.
//! Each cell's workload is the family's normalized comparison spec
//! ([`pd_core::compare::all_families`]) cloned [`PerfConfig::clones`] times
//! under distinct names, evaluated as one batch through
//! [`pd_core::batch::evaluate_many`] — so the measurement exercises the
//! work-stealing engine and the shared generation cache exactly the way
//! experiments do. Every cell is repeated [`PerfConfig::repeats`] times and
//! the per-repeat wall times are kept; the report stores the median and
//! minimum.
//!
//! The JSON report (`BENCH_PIPELINE.json` by convention) follows the
//! workspace determinism contract (`docs/OBSERVABILITY.md`): everything
//! under `"counts"` is byte-identical across runs at any `--jobs` value —
//! the jobs axis deliberately does **not** participate in cell identity —
//! while wall times, throughput, and the diagnostic metrics live under
//! `"diagnostics"`. [`diff`] compares two reports and flags cells whose
//! median wall time regressed beyond a threshold, plus any drift in the
//! deterministic counts (which should never happen and is reported as a
//! regression regardless of the threshold).

use std::time::Instant;

use pd_core::batch::{evaluate_many, evaluate_many_with_cache, ArtifactCache, BatchOptions};
use pd_core::compare::all_families;
use pd_core::design::{DesignSpec, TopologySpec};
use pd_geometry::Gbps;
use pd_topology::csr::{self, CsrNet};
use pd_topology::TrafficMatrix;
use serde_json::{json, Map, Value};

/// The perf matrix and its knobs.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Family names (as produced by [`all_families`]); empty = all nine.
    pub families: Vec<String>,
    /// Target server counts, one matrix column per entry.
    pub sizes: Vec<usize>,
    /// Worker threads for the batch engine; 0 = one per core.
    pub jobs: usize,
    /// Repeats per cell; the report keeps the median and minimum.
    pub repeats: usize,
    /// Seed for the seeded families (jellyfish, xpander).
    pub seed: u64,
    /// Copies of the cell spec in each batch; >1 gives the work-stealing
    /// engine something to steal.
    pub clones: usize,
    /// Print per-cell progress to stderr.
    pub progress: bool,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            families: Vec::new(),
            sizes: vec![128, 432],
            jobs: 0,
            repeats: 3,
            seed: 11,
            clones: 4,
            progress: true,
        }
    }
}

/// One measured cell: deterministic counts plus per-repeat wall times.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Family name from [`all_families`].
    pub family: String,
    /// The matrix size the cell was built for.
    pub target_servers: usize,
    /// Specs in the batch (= [`PerfConfig::clones`]).
    pub specs: usize,
    /// Successful evaluations per repeat.
    pub ok: usize,
    /// Failed evaluations per repeat.
    pub errors: usize,
    /// Servers summed over the successful evaluations.
    pub servers: u64,
    /// Switches summed over the successful evaluations.
    pub switches: u64,
    /// Logical links summed over the successful evaluations.
    pub links: u64,
    /// Physical cables summed over the successful evaluations.
    pub cables: u64,
    /// Wall time of each repeat, in nanoseconds, in run order.
    pub wall_ns: Vec<u64>,
}

impl CellResult {
    /// Median wall time (lower middle for even repeat counts, so the value
    /// is always one actually-observed sample).
    pub fn median_wall_ns(&self) -> u64 {
        let mut v = self.wall_ns.clone();
        v.sort_unstable();
        v.get(v.len().saturating_sub(1) / 2).copied().unwrap_or(0)
    }

    /// Fastest repeat.
    pub fn min_wall_ns(&self) -> u64 {
        self.wall_ns.iter().copied().min().unwrap_or(0)
    }

    /// Specs evaluated per second at the median wall time.
    pub fn specs_per_sec(&self) -> f64 {
        let ns = self.median_wall_ns();
        if ns == 0 {
            0.0
        } else {
            self.specs as f64 * 1e9 / ns as f64
        }
    }
}

/// A full perf run: the matrix results plus a metrics snapshot taken at
/// the end (the registry is reset when the run starts, so the snapshot
/// covers exactly this workload).
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// One entry per (family, size) cell, in matrix order.
    pub cells: Vec<CellResult>,
    /// Worker threads the run used (0 = one per core).
    pub jobs: usize,
    /// Repeats per cell.
    pub repeats: usize,
    /// Seed the seeded families used.
    pub seed: u64,
    /// Global metrics snapshot at end of run.
    pub snapshot: pd_metrics::MetricsSnapshot,
}

/// Runs the pinned matrix. Resets the global metrics registry first so the
/// embedded snapshot describes only this run's work. Each batch call owns
/// a fresh artifact cache, exactly as `evaluate_many` does for
/// experiments.
pub fn run(cfg: &PerfConfig) -> Result<PerfReport, String> {
    run_pass(cfg, None)
}

/// One matrix pass; with `Some(cache)` every batch call shares the given
/// artifact cache (the `--warm` machinery), with `None` each call builds
/// its own.
fn run_pass(cfg: &PerfConfig, cache: Option<&ArtifactCache>) -> Result<PerfReport, String> {
    pd_metrics::global().reset();
    let opts = BatchOptions::jobs(cfg.jobs);
    let repeats = cfg.repeats.max(1);
    let clones = cfg.clones.max(1);
    let mut cells = Vec::new();

    for &size in &cfg.sizes {
        let menu = all_families(size, Gbps::new(100.0), cfg.seed);
        let picked = pick_families(&menu, &cfg.families)?;

        for (family, topo) in picked {
            let specs: Vec<DesignSpec> = (0..clones)
                .map(|i| {
                    let mut s =
                        DesignSpec::new(format!("{family}-{size}-r{i}"), topo.clone());
                    // Pinned quick-trial profile: the perf workload measures
                    // the pipeline, not Monte-Carlo convergence.
                    s.yields.trials = 10;
                    s.repair.trials = 2;
                    s
                })
                .collect();

            let mut cell = CellResult {
                family: family.clone(),
                target_servers: size,
                specs: specs.len(),
                ok: 0,
                errors: 0,
                servers: 0,
                switches: 0,
                links: 0,
                cables: 0,
                wall_ns: Vec::with_capacity(repeats),
            };
            for rep in 0..repeats {
                let started = Instant::now();
                let results = match cache {
                    Some(shared) => evaluate_many_with_cache(&specs, &opts, shared),
                    None => evaluate_many(&specs, &opts),
                };
                cell.wall_ns.push(started.elapsed().as_nanos() as u64);
                if rep == 0 {
                    for r in &results {
                        match r {
                            Ok(ev) => {
                                cell.ok += 1;
                                cell.servers += u64::from(ev.report.servers);
                                cell.switches += ev.report.switches as u64;
                                cell.links += ev.report.links as u64;
                                cell.cables += ev.report.cables as u64;
                            }
                            Err(_) => cell.errors += 1,
                        }
                    }
                }
            }
            if cfg.progress {
                eprintln!(
                    "[perf] {family:<14} {size:>6} servers: median {:>9.3} ms over {repeats} repeat(s) ({:.1} specs/s)",
                    cell.median_wall_ns() as f64 / 1e6,
                    cell.specs_per_sec(),
                );
            }
            cells.push(cell);
        }
    }

    Ok(PerfReport {
        cells,
        jobs: cfg.jobs,
        repeats,
        seed: cfg.seed,
        snapshot: pd_metrics::global().snapshot(),
    })
}

/// Resolves `want` against the family menu, or the whole menu when empty;
/// unknown names get the full list in the error.
fn pick_families<'a>(
    menu: &'a [(String, TopologySpec)],
    want: &[String],
) -> Result<Vec<&'a (String, TopologySpec)>, String> {
    if want.is_empty() {
        return Ok(menu.iter().collect());
    }
    let mut picked = Vec::new();
    for name in want {
        match menu.iter().find(|(n, _)| n == name) {
            Some(entry) => picked.push(entry),
            None => {
                let known: Vec<&str> = menu.iter().map(|(n, _)| n.as_str()).collect();
                return Err(format!("unknown family {name:?}; known: {}", known.join(", ")));
            }
        }
    }
    Ok(picked)
}

impl PerfReport {
    /// The `BENCH_PIPELINE.json` document. `serde_json`'s default map is
    /// ordered, so serialization is key-sorted and stable; everything under
    /// `"counts"` is byte-identical at any `--jobs` value.
    pub fn to_json(&self) -> Value {
        // The snapshot's own serializer already segregates classes; fold
        // its two sections into ours.
        let snap: Value = serde_json::from_str(&self.snapshot.to_json())
            .unwrap_or_else(|_| json!({"counts": {}, "diagnostics": {}}));

        let count_cells: Vec<Value> = self
            .cells
            .iter()
            .map(|c| {
                json!({
                    "family": c.family,
                    "target_servers": c.target_servers,
                    "specs": c.specs,
                    "ok": c.ok,
                    "errors": c.errors,
                    "servers": c.servers,
                    "switches": c.switches,
                    "links": c.links,
                    "cables": c.cables,
                })
            })
            .collect();
        let timing_cells: Vec<Value> = self
            .cells
            .iter()
            .map(|c| {
                json!({
                    "family": c.family,
                    "target_servers": c.target_servers,
                    "median_wall_ns": c.median_wall_ns(),
                    "min_wall_ns": c.min_wall_ns(),
                    "specs_per_sec": c.specs_per_sec(),
                })
            })
            .collect();

        json!({
            "schema": "pd-bench-perf/1",
            "counts": {
                "cells": count_cells,
                "metrics": snap.get("counts").cloned().unwrap_or_else(|| json!({})),
                "seed": self.seed,
            },
            "diagnostics": {
                "cells": timing_cells,
                "jobs": self.jobs,
                "metrics": snap.get("diagnostics").cloned().unwrap_or_else(|| json!({})),
                "repeats": self.repeats,
            },
        })
    }

    /// Human-readable per-cell table (stderr-friendly).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>8} {:>6} {:>4} {:>12} {:>12} {:>10}\n",
            "family", "servers", "specs", "err", "median ms", "min ms", "specs/s"
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:<14} {:>8} {:>6} {:>4} {:>12.3} {:>12.3} {:>10.1}\n",
                c.family,
                c.target_servers,
                c.specs,
                c.errors,
                c.median_wall_ns() as f64 / 1e6,
                c.min_wall_ns() as f64 / 1e6,
                c.specs_per_sec(),
            ));
        }
        out
    }
}

/// A `--warm` run: the same matrix twice over one shared
/// [`ArtifactCache`], so the second pass adopts every cached stage prefix
/// the first pass stored.
#[derive(Debug, Clone)]
pub struct WarmOutcome {
    /// The first pass, started against an empty cache. This is the report
    /// written to disk — its counts are the contract.
    pub cold: PerfReport,
    /// The second pass over the now-warm cache.
    pub warm: PerfReport,
}

impl WarmOutcome {
    /// Whether the two passes' `"counts"` sections serialize to the same
    /// bytes — the caching-is-invisible contract, checked at the report
    /// level (cell counts *and* every Count-class metric).
    pub fn counts_identical(&self) -> bool {
        let section = |r: &PerfReport| {
            serde_json::to_string(&r.to_json()["counts"]).expect("counts serialize")
        };
        section(&self.cold) == section(&self.warm)
    }

    /// Per-cell cold vs warm medians with the speedup factor.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>8} {:>14} {:>14} {:>9}\n",
            "family", "servers", "cold median ms", "warm median ms", "speedup"
        ));
        for (c, w) in self.cold.cells.iter().zip(&self.warm.cells) {
            let cold_ns = c.median_wall_ns();
            let warm_ns = w.median_wall_ns();
            let speedup = if warm_ns > 0 {
                cold_ns as f64 / warm_ns as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<14} {:>8} {:>14.3} {:>14.3} {:>8.2}x\n",
                c.family,
                c.target_servers,
                cold_ns as f64 / 1e6,
                warm_ns as f64 / 1e6,
                speedup,
            ));
        }
        out
    }
}

/// Runs the matrix twice over one shared artifact cache. The metrics
/// registry is reset at the start of each pass, so each embedded snapshot
/// covers exactly that pass — which is what makes
/// [`WarmOutcome::counts_identical`] a real assertion: adopted stages
/// replay their Count-class metrics, so a warm pass must reproduce the
/// cold pass's counts byte for byte.
pub fn run_warm(cfg: &PerfConfig) -> Result<WarmOutcome, String> {
    let cache = ArtifactCache::new();
    let cold = run_pass(cfg, Some(&cache))?;
    let warm = run_pass(cfg, Some(&cache))?;
    Ok(WarmOutcome { cold, warm })
}

/// The outcome of comparing a fresh report against a baseline.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// One human-readable line per compared cell.
    pub lines: Vec<String>,
    /// Regression descriptions; empty means the diff passes.
    pub regressions: Vec<String>,
}

impl DiffOutcome {
    /// True when no regression was found.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn cell_key(c: &Value) -> Option<(String, u64)> {
    Some((
        c.get("family")?.as_str()?.to_string(),
        c.get("target_servers")?.as_u64()?,
    ))
}

fn cells_by_key(report: &Value, section: &str) -> Map<String, Value> {
    let mut map = Map::new();
    if let Some(cells) = report
        .get(section)
        .and_then(|s| s.get("cells"))
        .and_then(Value::as_array)
    {
        for c in cells {
            if let Some((family, size)) = cell_key(c) {
                map.insert(format!("{family}@{size}"), c.clone());
            }
        }
    }
    map
}

/// Compares `new` against `old` (both `BENCH_PIPELINE.json` documents).
///
/// A timing regression is a cell whose median wall time grew by more than
/// `threshold` (e.g. `0.20` = 20%). Deterministic-count drift between
/// matching cells is always a regression — counts must not move without a
/// code change that intends it. Cells present in only one report are
/// reported but not failed, so matrices can evolve.
pub fn diff(new: &Value, old: &Value, threshold: f64) -> DiffOutcome {
    let mut out = DiffOutcome { lines: Vec::new(), regressions: Vec::new() };

    let new_counts = cells_by_key(new, "counts");
    let old_counts = cells_by_key(old, "counts");
    for (key, new_cell) in &new_counts {
        match old_counts.get(key) {
            Some(old_cell) if old_cell != new_cell => {
                let msg = format!("count drift in {key}: {old_cell} -> {new_cell}");
                out.lines.push(msg.clone());
                out.regressions.push(msg);
            }
            Some(_) => {}
            None => out.lines.push(format!("{key}: new cell (no baseline)")),
        }
    }

    let new_timing = cells_by_key(new, "diagnostics");
    let old_timing = cells_by_key(old, "diagnostics");
    for (key, new_cell) in &new_timing {
        let new_ns = new_cell.get("median_wall_ns").and_then(Value::as_u64);
        let old_ns = old_timing
            .get(key)
            .and_then(|c| c.get("median_wall_ns"))
            .and_then(Value::as_u64);
        match (new_ns, old_ns) {
            (Some(n), Some(o)) if o > 0 => {
                let ratio = n as f64 / o as f64;
                let line = format!(
                    "{key}: median {:.3} ms vs baseline {:.3} ms ({:+.1}%)",
                    n as f64 / 1e6,
                    o as f64 / 1e6,
                    (ratio - 1.0) * 100.0
                );
                if ratio > 1.0 + threshold {
                    out.regressions.push(line.clone());
                }
                out.lines.push(line);
            }
            _ => out.lines.push(format!("{key}: no comparable baseline timing")),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Graph-kernel micro-benchmarks (`perf --kernels`)
// ---------------------------------------------------------------------------

/// Masked-ECMP samples the `sweep` kernel cell evaluates (a fixed, small
/// count so the CI smoke stays quick; the cell identity does not encode
/// it, so changing it requires a baseline refresh).
const SWEEP_SAMPLES: usize = 8;

/// One measured graph kernel on one (family, size) network: a
/// deterministic output digest plus per-repeat wall times.
///
/// In the JSON document the cell's `"family"` field is the composite
/// `kernel/family` (e.g. `allpairs/fat-tree`), so [`diff`] keys kernel
/// cells exactly like pipeline cells.
#[derive(Debug, Clone)]
pub struct KernelCell {
    /// Kernel name: `csrbuild`, `allpairs`, `ecmp`, `maxflow`, `sweep`.
    pub kernel: String,
    /// Family name from [`all_families`].
    pub family: String,
    /// The matrix size the network was built for.
    pub target_servers: usize,
    /// Deterministic digest of the kernel's output (distance sums, float
    /// bit patterns, flow values). The kernel determinism contract says
    /// this is identical at any `--kernel-jobs` value, so digest drift
    /// against a baseline means a behavior change, not scheduling.
    pub checksum: u64,
    /// Wall time of each repeat, in nanoseconds, in run order.
    pub wall_ns: Vec<u64>,
}

impl KernelCell {
    /// Median wall time (lower middle, always an observed sample).
    pub fn median_wall_ns(&self) -> u64 {
        let mut v = self.wall_ns.clone();
        v.sort_unstable();
        v.get(v.len().saturating_sub(1) / 2).copied().unwrap_or(0)
    }

    /// Fastest repeat.
    pub fn min_wall_ns(&self) -> u64 {
        self.wall_ns.iter().copied().min().unwrap_or(0)
    }
}

/// A `perf --kernels` run: per-kernel cells over the same family matrix
/// the pipeline workload uses.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// One entry per (kernel, family, size), kernels innermost.
    pub cells: Vec<KernelCell>,
    /// The `--kernel-jobs` value in effect during the run.
    pub kernel_jobs: usize,
    /// Repeats per cell.
    pub repeats: usize,
    /// Seed the seeded families used.
    pub seed: u64,
}

impl KernelReport {
    /// The `BENCH_KERNELS.json` document, in the same
    /// `counts`/`diagnostics` shape as [`PerfReport::to_json`] so
    /// [`diff`] compares either kind. Checksums live under `counts`
    /// (byte-stable at any `--kernel-jobs`); wall times under
    /// `diagnostics`.
    pub fn to_json(&self) -> Value {
        let count_cells: Vec<Value> = self
            .cells
            .iter()
            .map(|c| {
                json!({
                    "family": format!("{}/{}", c.kernel, c.family),
                    "target_servers": c.target_servers,
                    "checksum": c.checksum,
                })
            })
            .collect();
        let timing_cells: Vec<Value> = self
            .cells
            .iter()
            .map(|c| {
                json!({
                    "family": format!("{}/{}", c.kernel, c.family),
                    "target_servers": c.target_servers,
                    "median_wall_ns": c.median_wall_ns(),
                    "min_wall_ns": c.min_wall_ns(),
                })
            })
            .collect();
        json!({
            "schema": "pd-bench-kernels/1",
            "counts": {
                "cells": count_cells,
                "seed": self.seed,
            },
            "diagnostics": {
                "cells": timing_cells,
                "kernel_jobs": self.kernel_jobs,
                "repeats": self.repeats,
            },
        })
    }

    /// Human-readable per-cell table (stderr-friendly).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:<14} {:>8} {:>12} {:>12} {:>18}\n",
            "kernel", "family", "servers", "median ms", "min ms", "checksum"
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:<10} {:<14} {:>8} {:>12.3} {:>12.3} {:>18x}\n",
                c.kernel,
                c.family,
                c.target_servers,
                c.median_wall_ns() as f64 / 1e6,
                c.min_wall_ns() as f64 / 1e6,
                c.checksum,
            ));
        }
        out
    }
}

/// Measures the dense graph kernels in isolation — CSR construction,
/// all-pairs BFS, ECMP flow splitting, max-flow path diversity, and the
/// masked-ECMP failure sweep — on each (family, size) network of the
/// matrix, outside the pipeline (no placement, costing, or caching in the
/// measurement). `cfg.jobs` is unused; the kernels honor the process-wide
/// `--kernel-jobs` knob ([`pd_topology::csr::set_kernel_jobs`]).
pub fn run_kernels(cfg: &PerfConfig) -> Result<KernelReport, String> {
    let repeats = cfg.repeats.max(1);
    let mut cells = Vec::new();

    for &size in &cfg.sizes {
        let menu = all_families(size, Gbps::new(100.0), cfg.seed);
        for (family, topo) in pick_families(&menu, &cfg.families)? {
            let net = topo
                .build()
                .map_err(|e| format!("{family}@{size}: {e:?}"))?;
            let view = CsrNet::build(&net);
            let tm = TrafficMatrix::uniform_servers(&net, Gbps::new(1.0));
            let demands = csr::IndexedDemands::build(&view, &tm);
            let hosts = view.host_switches();

            let mut measure = |kernel: &str, f: &mut dyn FnMut() -> u64| {
                let mut cell = KernelCell {
                    kernel: kernel.to_string(),
                    family: family.clone(),
                    target_servers: size,
                    checksum: 0,
                    wall_ns: Vec::with_capacity(repeats),
                };
                for rep in 0..repeats {
                    let started = Instant::now();
                    let digest = f();
                    cell.wall_ns.push(started.elapsed().as_nanos() as u64);
                    if rep == 0 {
                        cell.checksum = digest;
                    }
                }
                if cfg.progress {
                    eprintln!(
                        "[perf] {kernel:<10} {family:<14} {size:>6} servers: median {:>9.3} ms over {repeats} repeat(s)",
                        cell.median_wall_ns() as f64 / 1e6,
                    );
                }
                cells.push(cell);
            };

            measure("csrbuild", &mut || {
                let v = CsrNet::build(&net);
                ((v.switch_count() as u64) << 32) | v.link_count() as u64
            });
            measure("allpairs", &mut || {
                let dist = csr::all_pairs_dist(&view);
                dist.iter()
                    .flat_map(|row| row.iter())
                    .filter(|&&d| d != csr::UNREACHABLE)
                    .map(|&d| u64::from(d))
                    .sum()
            });
            measure("ecmp", &mut || {
                let out = csr::with_scratch(|s| csr::ecmp_evaluate(&view, &demands, None, s));
                out.max_utilization.to_bits().wrapping_add(out.routable as u64)
            });
            if hosts.len() >= 2 {
                let (s, t) = (hosts[0], *hosts.last().expect("nonempty"));
                measure("maxflow", &mut || {
                    csr::with_scratch(|sc| csr::max_flow(&view, s, t, None, sc)) as u64
                });
            }
            measure("sweep", &mut || {
                pd_topology::metrics::failure_resilience_on(
                    &net,
                    &view,
                    0.10,
                    SWEEP_SAMPLES,
                    cfg.seed,
                )
                .mean_retention
                .to_bits()
            });
        }
    }

    Ok(KernelReport {
        cells,
        kernel_jobs: csr::kernel_jobs(),
        repeats,
        seed: cfg.seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> PerfConfig {
        PerfConfig {
            families: vec!["leaf-spine".into()],
            sizes: vec![64],
            jobs: 1,
            repeats: 1,
            seed: 11,
            clones: 2,
            progress: false,
        }
    }

    #[test]
    fn unknown_family_is_an_error() {
        let mut cfg = tiny_cfg();
        cfg.families = vec!["moebius".into()];
        let err = run(&cfg).unwrap_err();
        assert!(err.contains("unknown family"), "{err}");
    }

    #[test]
    fn report_json_segregates_counts_from_diagnostics() {
        let report = run(&tiny_cfg()).expect("perf run");
        let doc = report.to_json();
        let counts = doc.get("counts").expect("counts section");
        let diags = doc.get("diagnostics").expect("diagnostics section");
        // jobs is a diagnostic: it must not appear anywhere under counts.
        assert!(counts.get("jobs").is_none());
        assert_eq!(diags.get("jobs"), Some(&serde_json::json!(1)));
        let cell = &counts["cells"][0];
        assert_eq!(cell["family"], "leaf-spine");
        assert_eq!(cell["specs"], 2);
        assert_eq!(cell["errors"], 0);
        assert!(cell.get("median_wall_ns").is_none(), "timing leaked into counts");
        assert!(diags["cells"][0].get("median_wall_ns").is_some());
    }

    #[test]
    fn warm_pass_adopts_and_reproduces_counts_byte_for_byte() {
        let out = run_warm(&tiny_cfg()).expect("warm run");
        assert!(
            out.counts_identical(),
            "warm pass drifted the counts section:\ncold: {}\nwarm: {}",
            out.cold.to_json()["counts"],
            out.warm.to_json()["counts"],
        );
        // The warm pass must have adopted cached prefixes, visible as
        // Place-tier hits in its (per-pass) metrics snapshot.
        let hits = match out.warm.snapshot.get("cache.artifact.place.hits") {
            Some(e) => match e.value {
                pd_metrics::MetricValue::Counter(v) => v,
                _ => panic!("place hits should be a counter"),
            },
            None => panic!("cache.artifact.place.hits not registered"),
        };
        assert!(hits > 0, "warm pass never hit the Place tier");
        // Both passes report the same matrix shape.
        assert_eq!(out.cold.cells.len(), out.warm.cells.len());
    }

    #[test]
    fn median_is_an_observed_sample() {
        let mut cell = CellResult {
            family: "x".into(),
            target_servers: 0,
            specs: 1,
            ok: 1,
            errors: 0,
            servers: 0,
            switches: 0,
            links: 0,
            cables: 0,
            wall_ns: vec![30, 10, 20, 40],
        };
        assert_eq!(cell.median_wall_ns(), 20); // lower middle of {10,20,30,40}
        cell.wall_ns = vec![30, 10, 20];
        assert_eq!(cell.median_wall_ns(), 20);
        assert_eq!(cell.min_wall_ns(), 10);
    }

    #[test]
    fn diff_flags_regression_beyond_threshold_and_passes_equal_runs() {
        let doc = |ns: u64| {
            serde_json::json!({
                "counts": {"cells": [{"family": "leaf-spine", "target_servers": 64,
                                       "specs": 2, "ok": 2, "errors": 0,
                                       "servers": 128, "switches": 12, "links": 32,
                                       "cables": 32}]},
                "diagnostics": {"cells": [{"family": "leaf-spine", "target_servers": 64,
                                            "median_wall_ns": ns, "min_wall_ns": ns,
                                            "specs_per_sec": 1.0}]},
            })
        };
        let base = doc(1_000_000);
        assert!(diff(&base, &base, 0.20).passed());
        // +50% median: regression at a 20% threshold.
        let slow = doc(1_500_000);
        let d = diff(&slow, &base, 0.20);
        assert!(!d.passed());
        assert!(d.regressions[0].contains("+50.0%"), "{:?}", d.regressions);
        // +10%: inside the threshold.
        assert!(diff(&doc(1_100_000), &base, 0.20).passed());
    }

    #[test]
    fn kernel_report_is_deterministic_and_diffs_clean() {
        let cfg = tiny_cfg();
        let a = run_kernels(&cfg).expect("kernel run");
        let b = run_kernels(&cfg).expect("kernel run");
        assert!(!a.cells.is_empty());
        let digests = |r: &KernelReport| {
            r.cells
                .iter()
                .map(|c| (c.kernel.clone(), c.checksum))
                .collect::<Vec<_>>()
        };
        assert_eq!(digests(&a), digests(&b), "kernel digests drifted between runs");
        // A huge threshold ignores timing jitter; digest drift would
        // still fail, so a clean diff pins the determinism contract.
        let d = diff(&a.to_json(), &b.to_json(), 1_000.0);
        assert!(d.passed(), "{:?}", d.regressions);
        let doc = a.to_json();
        assert!(doc["counts"]["cells"][0].get("checksum").is_some());
        assert!(doc["counts"]["cells"][0].get("median_wall_ns").is_none());
        assert!(doc["diagnostics"]["cells"][0].get("median_wall_ns").is_some());
    }

    #[test]
    fn diff_fails_on_count_drift_regardless_of_threshold() {
        let mut base = serde_json::json!({
            "counts": {"cells": [{"family": "f", "target_servers": 64, "ok": 2}]},
            "diagnostics": {"cells": []},
        });
        let fresh = base.clone();
        assert!(diff(&fresh, &base, 10.0).passed());
        base["counts"]["cells"][0]["ok"] = serde_json::json!(1);
        let d = diff(&fresh, &base, 10.0);
        assert!(!d.passed());
        assert!(d.regressions[0].contains("count drift"), "{:?}", d.regressions);
    }
}
