//! E18 — ablations over the toolkit's own design knobs.
//!
//! Not a paper claim: this experiment justifies the modeling choices
//! DESIGN.md calls out by showing each knob moves the answer. Four
//! ablations on one fixed fat-tree:
//!
//! 1. **Placement local search** — does the bounded swap-improver earn its
//!    keep over the plain block-local heuristic?
//! 2. **Bundle threshold** — how sensitive are the labor savings to what
//!    counts as "manufacturable"?
//! 3. **Technician pool size** — where parallelism stops paying (walking
//!    and rack exclusion dominate).
//! 4. **Cross-tray frequency** — sparser tray interconnects force longer
//!    detours; the plant model matters, not just the graph.

use pd_core::prelude::*;
use pd_costing::{DeploymentPlan, Schedule, ScheduleParams};
use pd_cabling::{BundlingReport, CablingPlan, CablingPolicy};
use pd_physical::placement::EquipmentProfile;
use pd_physical::Hall;

fn base_spec() -> DesignSpec {
    DesignSpec::new("ablate", compare::fat_tree_near(512, Gbps::new(100.0)))
}

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("E18 — toolkit ablations (modeling knobs, not paper claims)\n\n");

    // 1. Placement improvement iterations.
    out.push_str("placement local-search iterations → total cable length:\n");
    for iters in [0usize, 100, 500, 2000] {
        let mut spec = base_spec();
        spec.placement_improvement = iters;
        let ev = evaluate(&spec).expect("eval");
        out.push_str(&format!(
            "  {iters:>5} iters: {:>7.2} km ordered, capex {:>6.0}k\n",
            ev.report.cable_length.value() / 1000.0,
            ev.report.capex.value() / 1e3,
        ));
    }

    // 2. Bundle threshold.
    out.push_str("\nmin bundle size → bundled fraction and labor:\n");
    for min in [2usize, 4, 8, 16] {
        let mut spec = base_spec();
        spec.min_bundle_size = min;
        let ev = evaluate(&spec).expect("eval");
        out.push_str(&format!(
            "  min {min:>2}: {:>4.0}% bundled, {:>5.0} person-h, deploy {:>4.0} h\n",
            ev.report.bundled_fraction * 100.0,
            ev.report.labor.value(),
            ev.report.time_to_deploy.value(),
        ));
    }

    // 3. Technician pool.
    out.push_str("\ntechnician pool → makespan (diminishing returns):\n");
    let ev = evaluate(&base_spec()).expect("eval");
    let dp = DeploymentPlan::from_cabling(
        &ev.network,
        &ev.placement,
        &ev.cabling,
        Some(&ev.bundling),
    );
    for techs in [2usize, 4, 8, 16, 32] {
        let sched = Schedule::run(
            &dp,
            &ev.hall,
            &ScheduleParams {
                technicians: techs,
                ..ScheduleParams::default()
            },
        );
        out.push_str(&format!(
            "  {techs:>3} techs: {:>5.0} h makespan, {:>4.0}% utilization\n",
            sched.makespan.value(),
            sched.utilization() * 100.0,
        ));
    }

    // 4. Cross-tray frequency.
    out.push_str("\ncross-tray spacing → mean routed cable length:\n");
    let net = base_spec().topology.build().expect("net");
    for every in [2usize, 5, 10, 20] {
        let hall = Hall::new(HallSpec {
            cross_tray_every: every,
            ..HallSpec::default()
        });
        let placement = pd_physical::Placement::place(
            &net,
            &hall,
            PlacementStrategy::BlockLocal,
            &EquipmentProfile::default(),
        )
        .expect("place");
        let plan = CablingPlan::build(&net, &hall, &placement, &CablingPolicy::default());
        let rep = BundlingReport::analyze(&plan, 4);
        out.push_str(&format!(
            "  every {every:>2} slots: mean run {:>5.2} m, {:>4.0}% bundled, max fill {:>3.0}%\n",
            plan.mean_routed_length().value(),
            rep.bundled_fraction() * 100.0,
            plan.max_tray_fill() * 100.0,
        ));
    }
    out.push_str(
        "\nreading: each knob visibly moves cost, labor, or feasibility — the\n\
         physical-plant details the paper says abstractions hide are load-bearing\n\
         in this model too.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_search_never_lengthens_cabling() {
        let baseline = {
            let spec = base_spec();
            evaluate(&spec).unwrap().report.cable_length
        };
        let improved = {
            let mut spec = base_spec();
            spec.placement_improvement = 500;
            evaluate(&spec).unwrap().report.cable_length
        };
        assert!(improved <= baseline, "improved {improved} baseline {baseline}");
    }

    #[test]
    fn stricter_bundle_threshold_bundles_less() {
        let frac = |min: usize| {
            let mut spec = base_spec();
            spec.min_bundle_size = min;
            evaluate(&spec).unwrap().report.bundled_fraction
        };
        assert!(frac(16) <= frac(2));
    }

    #[test]
    fn sparser_cross_trays_lengthen_runs() {
        let r = run();
        let rows: Vec<f64> = r
            .lines()
            .filter(|l| l.trim_start().starts_with("every"))
            .filter_map(|l| l.split("mean run").nth(1)?.trim().split(' ').next()?.parse().ok())
            .collect();
        assert_eq!(rows.len(), 4, "{r}");
        assert!(
            rows.last().unwrap() >= rows.first().unwrap(),
            "sparser trays must not shorten runs: {rows:?}"
        );
    }
}
